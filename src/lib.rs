//! # dtm-repro — reproduction of "Directed Transmission Method" (SPAA 2008)
//!
//! Facade crate: re-exports the four subsystem crates so examples and
//! integration tests can use one import path. See the README for the tour
//! and DESIGN.md / EXPERIMENTS.md for the paper mapping.

pub use dtm_core as core;
pub use dtm_graph as graph;
pub use dtm_simnet as simnet;
pub use dtm_sparse as sparse;

pub use dtm_core::{DtmBuilder, DtmProblem, ImpedancePolicy, SolveReport};

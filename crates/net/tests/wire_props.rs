//! Wire-format properties: encode→decode is the identity for **every**
//! [`Msg`] variant — including K-column [`SmallBlock`]s straddling the
//! inline/spill boundary — and decode is *total*: truncated frames,
//! garbage headers and random byte soup produce typed errors, never
//! panics.

use dtm_core::local::LocalSolverKind;
use dtm_core::runtime::{DtmMsg, PortUpdate, SmallBlock, Termination, SMALL_BLOCK_INLINE};
use dtm_graph::evs::{split as evs_split, EvsOptions};
use dtm_graph::{partition, ElectricGraph, PartitionPlan};
use dtm_net::wire::{decode, encode, read_frame, write_frame, GroupPlan, GroupRates};
use dtm_net::wire::{Msg, PartPlan, Snapshot, Wave};
use dtm_sparse::generators;
use proptest::prelude::*;

/// Block widths covering the scalar path, both sides of the
/// inline/spill boundary, and a wide spill.
const BLOCK_WIDTHS: [usize; 4] = [1, 4, 5, 16];

/// Deterministic f64 stream (seeded xorshift, same idiom as the sparse
/// property tests).
fn f64_stream(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }
}

fn wave(k: usize, n_updates: usize, seed: u64) -> Wave {
    let mut next = f64_stream(seed);
    let updates = (0..n_updates)
        .map(|p| PortUpdate {
            port: p,
            u: SmallBlock::from_fn(k, |_| next()),
            omega: SmallBlock::from_fn(k, |_| next()),
        })
        .collect();
    Wave {
        round: seed % 97,
        src: seed % 13,
        dst: seed % 7,
        msg: DtmMsg { updates },
    }
}

/// A real [`GroupPlan`]: the 6×6 grid Laplacian torn into 4 parts, with
/// genuine subdomains (matrices, ports, source shares) — the same data a
/// production `Plan` frame carries.
fn real_plan() -> GroupPlan {
    let side = 6;
    let a = generators::grid2d_laplacian(side, side);
    let b = generators::random_rhs(side * side, 77);
    let g = ElectricGraph::from_system(a, b).expect("symmetric");
    let asg = partition::grid_blocks(side, side, 2, 2);
    let plan = PartitionPlan::from_assignment(&g, &asg).expect("valid");
    let ss = evs_split(&g, &plan, &EvsOptions::default()).expect("splits");
    let mut next = f64_stream(4242);
    let parts: Vec<PartPlan> = ss
        .subdomains
        .iter()
        .map(|sd| PartPlan {
            sub: sd.clone(),
            z_ports: sd.ports.iter().map(|_| next().abs() + 0.05).collect(),
        })
        .collect();
    GroupPlan {
        group: 1,
        n_groups: 2,
        n_parts: 4,
        group_of_part: vec![0, 0, 1, 1],
        max_rounds: 10_000,
        solver_kind: LocalSolverKind::Auto,
        termination: Termination::Residual { tol: 1e-8 },
        max_solves_per_node: 200_000,
        listen_spec: "/tmp/dtm-net-test/peer-1.sock".to_string(),
        parts,
    }
}

fn roundtrip(msg: &Msg) -> Msg {
    decode(&encode(msg)).expect("decode of a valid encoding")
}

#[test]
fn every_variant_roundtrips() {
    let msgs = vec![
        Msg::Hello { group: 3 },
        Msg::PeerHello { group: 0 },
        Msg::Plan(Box::new(real_plan())),
        Msg::Listening {
            addr: "/tmp/x.sock".into(),
        },
        Msg::PeerMap {
            addrs: vec![(0, "/a".into()), (1, "127.0.0.1:4411".into())],
        },
        Msg::Ready(GroupRates {
            solves_per_round: 2,
            messages_per_round: 6,
            flops_per_round: 12_345,
        }),
        Msg::Go,
        Msg::Wave(wave(5, 3, 9)),
        Msg::Snapshot(Snapshot {
            part: 2,
            round: 41,
            values: vec![0.5, -0.25, 3.75],
        }),
        Msg::Stop,
        Msg::Done,
        Msg::Err {
            text: "boundary ütf-8 ✓".into(),
        },
    ];
    for msg in &msgs {
        assert_eq!(&roundtrip(msg), msg, "roundtrip identity");
    }
}

#[test]
fn small_block_widths_roundtrip_losslessly() {
    for &k in &BLOCK_WIDTHS {
        let w = Msg::Wave(wave(k, 2, k as u64 + 1));
        let back = roundtrip(&w);
        let (Msg::Wave(a), Msg::Wave(b)) = (&w, &back) else {
            panic!("variant changed in roundtrip");
        };
        for (ua, ub) in a.msg.updates.iter().zip(&b.msg.updates) {
            assert_eq!(ua.u.len(), k);
            assert_eq!(ub.u.len(), k);
            // Lossless at the representation level, not just value
            // equality: the inline-vs-spill split is a function of the
            // length alone, so `as_slice` must expose identical bits.
            for (x, y) in ua.u.as_slice().iter().zip(ub.u.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in ua.omega.as_slice().iter().zip(ub.omega.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Sanity: the chosen widths actually straddle the boundary.
        assert!(BLOCK_WIDTHS.contains(&SMALL_BLOCK_INLINE));
        assert!(BLOCK_WIDTHS.contains(&(SMALL_BLOCK_INLINE + 1)));
    }
}

#[test]
fn special_float_bit_patterns_survive() {
    let specials = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -0.0,
        f64::MIN_POSITIVE,
        f64::MAX,
    ];
    let snap = Msg::Snapshot(Snapshot {
        part: 0,
        round: 0,
        values: specials.to_vec(),
    });
    let Msg::Snapshot(back) = roundtrip(&snap) else {
        panic!("variant changed in roundtrip");
    };
    for (a, b) in specials.iter().zip(&back.values) {
        assert_eq!(a.to_bits(), b.to_bits(), "bit pattern of {a:?}");
    }
}

#[test]
fn framing_roundtrips_and_reports_clean_eof() {
    let mut buf: Vec<u8> = Vec::new();
    let msgs = [Msg::Hello { group: 7 }, Msg::Go, Msg::Stop];
    for m in &msgs {
        write_frame(&mut buf, m).expect("write");
    }
    let mut r = buf.as_slice();
    for m in &msgs {
        let got = read_frame(&mut r).expect("read").expect("frame present");
        assert_eq!(&got, m);
    }
    assert!(read_frame(&mut r).expect("clean eof").is_none());
}

#[test]
fn truncated_frames_error_never_panic() {
    let msgs = [
        Msg::Plan(Box::new(real_plan())),
        Msg::Wave(wave(16, 3, 5)),
        Msg::Snapshot(Snapshot {
            part: 1,
            round: 2,
            values: vec![1.0; 9],
        }),
        Msg::PeerMap {
            addrs: vec![(0, "addr".into())],
        },
    ];
    for m in &msgs {
        let payload = encode(m);
        // Every strict prefix of the payload must decode to an error.
        for cut in 0..payload.len() {
            assert!(
                decode(&payload[..cut]).is_err(),
                "prefix of length {cut} decoded successfully"
            );
        }
        // Mid-frame EOF at every cut of the framed byte stream.
        let mut framed: Vec<u8> = Vec::new();
        write_frame(&mut framed, m).expect("write");
        for cut in 1..framed.len() {
            let mut r = &framed[..cut];
            assert!(
                read_frame(&mut r).is_err(),
                "stream cut at {cut} read successfully"
            );
        }
    }
}

#[test]
fn garbage_headers_error_never_panic() {
    // Oversized length prefix: rejected before any allocation.
    let mut huge = (u32::MAX).to_le_bytes().to_vec();
    huge.extend_from_slice(&[0u8; 16]);
    assert!(read_frame(&mut huge.as_slice()).is_err());

    // Unknown tag.
    assert!(decode(&[200]).is_err());
    // Empty payload.
    assert!(decode(&[]).is_err());
    // Known tag, trailing bytes.
    let mut go = encode(&Msg::Go);
    go.push(0);
    assert!(decode(&go).is_err());
    // Count field far beyond the frame: rejected before allocation.
    let mut snap = Vec::new();
    snap.push(8u8); // TAG_SNAPSHOT
    snap.extend_from_slice(&0u64.to_le_bytes()); // part
    snap.extend_from_slice(&0u64.to_le_bytes()); // round
    snap.extend_from_slice(&u64::MAX.to_le_bytes()); // values count: absurd
    assert!(decode(&snap).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Encode→decode identity on randomized waves across all block
    /// widths (scalar, inline boundary, first spill, wide spill).
    #[test]
    fn wave_roundtrip(
        k_idx in 0usize..BLOCK_WIDTHS.len(),
        n_updates in 0usize..5,
        seed in any::<u64>(),
    ) {
        let w = Msg::Wave(wave(BLOCK_WIDTHS[k_idx], n_updates, seed));
        prop_assert_eq!(roundtrip(&w), w);
    }

    /// Encode→decode identity on randomized snapshots.
    #[test]
    fn snapshot_roundtrip(
        part in 0u64..64,
        round in any::<u64>(),
        values in proptest::collection::vec(-1e9f64..1e9, 0..40),
    ) {
        let s = Msg::Snapshot(Snapshot { part, round, values });
        prop_assert_eq!(roundtrip(&s), s);
    }

    /// Encode→decode identity on randomized control frames.
    #[test]
    fn control_roundtrip(
        group in any::<u64>(),
        solves in any::<u64>(),
        messages in any::<u64>(),
        flops in any::<u64>(),
        text in proptest::collection::vec(0x20u64..0x7f, 0..60)
            .prop_map(|cs| cs.into_iter().map(|c| c as u8 as char).collect::<String>()),
    ) {
        for m in [
            Msg::Hello { group },
            Msg::PeerHello { group },
            Msg::Listening { addr: text.clone() },
            Msg::PeerMap { addrs: vec![(group, text.clone())] },
            Msg::Ready(GroupRates {
                solves_per_round: solves,
                messages_per_round: messages,
                flops_per_round: flops,
            }),
            Msg::Err { text: text.clone() },
        ] {
            prop_assert_eq!(roundtrip(&m), m);
        }
    }

    /// Decode is total on arbitrary byte soup: typed error or a valid
    /// message (e.g. a lone `Go` tag), never a panic. A successful decode
    /// must re-encode to the same byte string (NaN-safe canonicity check:
    /// bytes, not `PartialEq`, which NaN payloads would break).
    #[test]
    fn decode_never_panics_on_random_bytes(
        bytes in proptest::collection::vec(0u64..256, 0..300)
            .prop_map(|v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()),
    ) {
        if let Ok(msg) = decode(&bytes) {
            prop_assert_eq!(encode(&msg), bytes);
        }
        let mut r = bytes.as_slice();
        // read_frame on the same soup: Ok(frame), Ok(None) or Err — no
        // panic, no unbounded allocation.
        let _ = read_frame(&mut r);
    }
}

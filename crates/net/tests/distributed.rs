//! End-to-end distributed-backend tests: the multi-process socket run
//! must reproduce the in-process run **bit for bit** (UDS and TCP), and
//! a child that dies mid-solve must produce a typed error with every
//! remaining child reaped — no orphans, no hang.

use dtm_core::report::SolveReport;
use dtm_core::runtime::{CommonConfig, ExecutorBackend, Termination};
use dtm_graph::evs::{split as evs_split, EvsOptions, SplitSystem};
use dtm_graph::{partition, ElectricGraph, PartitionPlan};
use dtm_net::{
    ChildCommand, DistributedBackend, DistributedConfig, FailInjection, RunMode, TransportKind,
};
use dtm_sparse::generators;
use std::path::PathBuf;
use std::time::Duration;

/// The standalone child binary of this crate (production runs use the
/// `repro` executable's hidden `net-child` mode instead).
fn child_cmd() -> ChildCommand {
    ChildCommand {
        exe: PathBuf::from(env!("CARGO_BIN_EXE_net-child")),
        prefix_args: Vec::new(),
    }
}

/// A `side × side` grid Laplacian with a seeded random RHS, torn into
/// `parts` strips (the `tests/failure_injection.rs` fixture family).
fn grid_split(side: usize, parts: usize, rhs_seed: u64) -> SplitSystem {
    let a = generators::grid2d_laplacian(side, side);
    let b = generators::random_rhs(side * side, rhs_seed);
    let g = ElectricGraph::from_system(a, b).expect("symmetric");
    let plan = PartitionPlan::from_assignment(&g, &partition::grid_strips(side, side, parts))
        .expect("valid");
    evs_split(&g, &plan, &EvsOptions::default()).expect("splits")
}

fn config(tol: f64, processes: usize, mode: RunMode) -> DistributedConfig {
    DistributedConfig {
        common: CommonConfig {
            termination: Termination::Residual { tol },
            ..Default::default()
        },
        mode,
        processes,
        topology: None,
        budget: Duration::from_secs(120),
    }
}

fn solve(split: &SplitSystem, cfg: &DistributedConfig) -> SolveReport {
    DistributedBackend
        .solve(split, None, cfg)
        .expect("distributed solve")
}

fn assert_bitwise(a: &SolveReport, b: &SolveReport) {
    assert_eq!(a.solution.len(), b.solution.len());
    for (i, (x, y)) in a.solution.iter().zip(&b.solution).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "vertex {i}: {x:?} vs {y:?}");
    }
    assert_eq!(a.final_residual.to_bits(), b.final_residual.to_bits());
    assert_eq!(a.total_solves, b.total_solves);
    assert_eq!(a.total_messages, b.total_messages);
    assert_eq!(a.total_flops, b.total_flops);
    assert_eq!(a.converged, b.converged);
}

#[test]
fn uds_two_processes_match_in_process_bitwise() {
    let ss = grid_split(10, 4, 501);
    let reference = solve(&ss, &config(1e-8, 1, RunMode::InProcess));
    assert!(reference.converged, "reference run must converge");
    let distributed = solve(
        &ss,
        &config(
            1e-8,
            2,
            RunMode::Processes {
                transport: TransportKind::Uds,
                child: child_cmd(),
                fail: None,
            },
        ),
    );
    assert_bitwise(&reference, &distributed);
}

#[test]
fn tcp_three_processes_match_in_process_bitwise() {
    let ss = grid_split(10, 3, 502);
    let reference = solve(&ss, &config(1e-8, 1, RunMode::InProcess));
    assert!(reference.converged, "reference run must converge");
    let distributed = solve(
        &ss,
        &config(
            1e-8,
            3,
            RunMode::Processes {
                transport: TransportKind::Tcp,
                child: child_cmd(),
                fail: None,
            },
        ),
    );
    assert_bitwise(&reference, &distributed);
}

#[test]
fn one_process_per_part_matches_too() {
    // The extreme grouping: every part its own OS process.
    let ss = grid_split(8, 3, 503);
    let reference = solve(&ss, &config(1e-8, 1, RunMode::InProcess));
    let distributed = solve(
        &ss,
        &config(
            1e-8,
            3,
            RunMode::Processes {
                transport: TransportKind::Uds,
                child: child_cmd(),
                fail: None,
            },
        ),
    );
    assert_bitwise(&reference, &distributed);
}

#[test]
fn grouping_does_not_change_the_in_process_bits() {
    // The structural half of the guarantee, without sockets: 1 group vs
    // 3 groups on threads produce identical bits.
    let ss = grid_split(10, 3, 504);
    let one = solve(&ss, &config(1e-8, 1, RunMode::InProcess));
    let three = solve(&ss, &config(1e-8, 3, RunMode::InProcess));
    assert_bitwise(&one, &three);
}

#[test]
fn killed_child_yields_typed_error_and_reaps_the_rest() {
    // Group 1 exits with a nonzero status after round 1 — long before
    // the 1e-10 tolerance can be met — simulating a mid-solve crash. The
    // parent must return a typed error (not hang) and reap every child.
    let ss = grid_split(10, 3, 505);
    let err = DistributedBackend
        .solve(
            &ss,
            None,
            &config(
                1e-10,
                3,
                RunMode::Processes {
                    transport: TransportKind::Uds,
                    child: child_cmd(),
                    fail: Some(FailInjection {
                        group: 1,
                        after_round: 1,
                    }),
                },
            ),
        )
        .expect_err("a crashed child must fail the solve");
    let text = err.to_string();
    assert!(
        text.contains("group"),
        "error should name the failed group link: {text}"
    );
}

#[test]
fn child_killed_at_round_zero_still_tears_down() {
    // Crash during the very first round: the handshake has completed but
    // almost no waves have flowed — the earliest mid-solve death.
    let ss = grid_split(8, 2, 506);
    let err = DistributedBackend
        .solve(
            &ss,
            None,
            &config(
                1e-10,
                2,
                RunMode::Processes {
                    transport: TransportKind::Uds,
                    child: child_cmd(),
                    fail: Some(FailInjection {
                        group: 0,
                        after_round: 0,
                    }),
                },
            ),
        )
        .expect_err("a crashed child must fail the solve");
    assert!(err.to_string().contains("group"), "typed error: {err}");
}

#[test]
fn unspawnable_child_fails_fast_with_no_orphans() {
    let ss = grid_split(8, 2, 507);
    let err = DistributedBackend
        .solve(
            &ss,
            None,
            &config(
                1e-8,
                2,
                RunMode::Processes {
                    transport: TransportKind::Uds,
                    child: ChildCommand {
                        exe: PathBuf::from("/nonexistent/dtm-net-child"),
                        prefix_args: Vec::new(),
                    },
                    fail: None,
                },
            ),
        )
        .expect_err("spawn failure must surface");
    assert!(err.to_string().contains("spawn"), "typed error: {err}");
}

#[test]
fn rejects_non_residual_termination() {
    let ss = grid_split(8, 2, 508);
    let mut cfg = config(1e-8, 1, RunMode::InProcess);
    cfg.common.termination = Termination::OracleRms { tol: 1e-8 };
    let err = DistributedBackend
        .solve(&ss, None, &cfg)
        .expect_err("oracle termination is not supported");
    assert!(err.to_string().contains("Residual"), "typed error: {err}");
}

#[test]
fn rejects_more_processes_than_parts() {
    let ss = grid_split(8, 2, 509);
    let err = DistributedBackend
        .solve(&ss, None, &config(1e-8, 7, RunMode::InProcess))
        .expect_err("7 groups over 2 parts is invalid");
    assert!(err.to_string().contains("processes"), "typed error: {err}");
}

#[test]
fn missing_topology_link_is_a_build_time_error() {
    // Strips chain parts 0-1-2, but the supplied machine only has the
    // 0↔1 link: validation must list the missing 1↔2 routes before
    // anything is spawned or solved.
    let ss = grid_split(9, 3, 510);
    let mut cfg = config(1e-8, 3, RunMode::InProcess);
    cfg.topology = Some(
        dtm_simnet::Topology::star(2)
            .with_delays(&dtm_simnet::DelayModel::uniform_ms(5.0, 20.0, 1)),
    );
    let err = DistributedBackend
        .solve(&ss, None, &cfg)
        .expect_err("missing link must fail validation");
    let text = err.to_string();
    assert!(
        text.contains("1->2") && text.contains("2->1"),
        "error must list the missing links: {text}"
    );
}

//! The child-process side of the socket backend: one process per
//! partition group.
//!
//! A child connects back to the parent, introduces itself (`Hello`),
//! receives its [`GroupPlan`](crate::wire::GroupPlan) (its subdomains, impedances and solver
//! settings), rebuilds its nodes with
//! [`build_node`] — bitwise-identical to the
//! in-process construction — then wires up the peer mesh and runs the
//! same [`crate::round::run_group`] loop the in-process mode runs on a
//! thread. Sockets only ever appear here, wrapped into the channels the
//! executor expects.
//!
//! Orphan protection: a dedicated thread reads the parent link; `Stop`
//! *or EOF* raises the stop flag, so a dying parent takes its children
//! down instead of leaking solver processes.

use crate::round::{self, GroupCtx, GroupIo, UpEvent};
use crate::runner::FAIL_ENV;
use crate::socket::{Listener, Stream, TransportKind};
use crate::wire::{self, Msg, Wave};
use dtm_core::runtime::{build_node, CommonConfig, NodeRuntime};
use dtm_sparse::{Error, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);

fn derr(what: impl std::fmt::Display) -> Error {
    Error::Parse(format!("net-child: {what}"))
}

/// Flag-style argument lookup (mirrors the `repro` CLI idiom).
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Entry point of the hidden `net-child` mode: parse the protocol flags,
/// run the group, report the outcome on the parent link. Returns the
/// process exit code (0 success, 1 runtime failure, 2 usage error).
pub fn child_main(args: &[String]) -> i32 {
    let Some(addr) = flag_value(args, "--connect") else {
        eprintln!("net-child: missing --connect <addr>");
        return 2;
    };
    let Some(group) = flag_value(args, "--group").and_then(|s| s.parse::<usize>().ok()) else {
        eprintln!("net-child: missing or invalid --group <n>");
        return 2;
    };
    let Some(kind) = flag_value(args, "--transport").and_then(TransportKind::parse) else {
        eprintln!("net-child: missing or invalid --transport <uds|tcp>");
        return 2;
    };

    match run_child(kind, addr, group) {
        Ok(()) => 0,
        Err(e) => {
            // Best effort: the parent learns more from an Err frame than
            // from an exit status, but the link may be what failed.
            if let Ok(mut s) = Stream::connect(kind, addr) {
                let _ = wire::write_frame(
                    &mut s,
                    &Msg::Hello {
                        group: group as u64,
                    },
                );
                let _ = wire::write_frame(
                    &mut s,
                    &Msg::Err {
                        text: e.to_string(),
                    },
                );
            }
            eprintln!("net-child group {group}: {e}");
            1
        }
    }
}

fn run_child(kind: TransportKind, addr: &str, group: usize) -> Result<()> {
    // Handshake: introduce, receive the plan.
    let mut parent = Stream::connect(kind, addr)?;
    parent.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    wire::write_frame(
        &mut parent,
        &Msg::Hello {
            group: group as u64,
        },
    )?;
    let plan = match wire::read_frame(&mut parent)? {
        Some(Msg::Plan(p)) => *p,
        other => return Err(derr(format!("expected Plan, got {other:?}"))),
    };
    if plan.group as usize != group {
        return Err(derr(format!(
            "plan addressed to group {}, this child is group {group}",
            plan.group
        )));
    }

    // Rebuild this group's nodes exactly as the in-process mode would.
    let common = CommonConfig {
        solver_kind: plan.solver_kind,
        termination: plan.termination,
        max_solves_per_node: usize::try_from(plan.max_solves_per_node).unwrap_or(usize::MAX),
        ..Default::default()
    };
    let mut nodes: BTreeMap<usize, NodeRuntime> = BTreeMap::new();
    for pp in &plan.parts {
        let node = build_node(&pp.sub, &pp.z_ports, &common)?;
        nodes.insert(pp.sub.part, node);
    }

    // Bind the peer listener, report where it actually landed.
    let (listener, peer_addr) = Listener::bind(kind, &plan.listen_spec)?;
    wire::write_frame(&mut parent, &Msg::Listening { addr: peer_addr })?;
    let peer_map = match wire::read_frame(&mut parent)? {
        Some(Msg::PeerMap { addrs }) => addrs,
        other => return Err(derr(format!("expected PeerMap, got {other:?}"))),
    };

    // Full mesh: connect to every lower group, accept every higher one.
    let n_groups = plan.n_groups as usize;
    let mut peer_links: BTreeMap<usize, Stream> = BTreeMap::new();
    for h in 0..group {
        let addr = peer_map
            .iter()
            .find(|&&(g, _)| g as usize == h)
            .map(|(_, a)| a.as_str())
            .ok_or_else(|| derr(format!("peer map missing group {h}")))?;
        let mut s = Stream::connect(kind, addr)?;
        wire::write_frame(
            &mut s,
            &Msg::PeerHello {
                group: group as u64,
            },
        )?;
        peer_links.insert(h, s);
    }
    for _ in group + 1..n_groups {
        let mut s = listener.accept()?;
        s.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        match wire::read_frame(&mut s)? {
            Some(Msg::PeerHello { group: h }) => {
                s.set_read_timeout(None)?;
                peer_links.insert(h as usize, s);
            }
            other => return Err(derr(format!("expected PeerHello, got {other:?}"))),
        }
    }

    // Mesh up: report per-round rates, wait for the starting gun.
    wire::write_frame(&mut parent, &Msg::Ready(round::group_rates(&nodes)))?;
    match wire::read_frame(&mut parent)? {
        Some(Msg::Go) => {}
        other => return Err(derr(format!("expected Go, got {other:?}"))),
    }
    parent.set_read_timeout(None)?;

    // Steady state: wrap every socket in a thread so the executor sees
    // only channels and the stop flag.
    let stop = Arc::new(AtomicBool::new(false));
    let (wave_tx, wave_rx) = channel::<Wave>();
    let mut peers: BTreeMap<usize, Sender<Wave>> = BTreeMap::new();
    for (h, link) in peer_links {
        let reader = link.try_clone()?;
        let tx_in = wave_tx.clone();
        std::thread::spawn(move || peer_reader(reader, &tx_in));
        let (tx_out, rx_out) = channel::<Wave>();
        std::thread::spawn(move || peer_writer(link, &rx_out));
        peers.insert(h, tx_out);
    }
    drop(wave_tx);

    // Parent link: reader thread for Stop/EOF, uplink thread for
    // snapshots (it hands the write half back when the run ends).
    let stop_in = stop.clone();
    let parent_reader = parent.try_clone()?;
    std::thread::spawn(move || watch_parent(parent_reader, &stop_in));
    let (up_tx, up_rx) = channel::<(usize, UpEvent)>();
    let uplink = std::thread::spawn(move || pump_uplink(parent, &up_rx));

    let ctx = GroupCtx {
        group,
        group_of_part: plan.group_of_part.iter().map(|&g| g as usize).collect(),
        max_rounds: plan.max_rounds,
        fail_after_round: std::env::var(FAIL_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok()),
    };
    let stopped = stop.clone();
    let io = GroupIo {
        wave_rx,
        peers,
        up: up_tx,
        stop,
    };
    let run = round::run_group(&mut nodes, &ctx, &io);

    // Closing the uplink channel flushes the snapshot writer and returns
    // the parent write half for the final Done/Err frame.
    drop(io);
    let mut parent = match uplink.join() {
        Ok(s) => s,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    match run {
        Ok(()) => {
            // After Stop the parent may already have decided the run and
            // closed the link — a failed Done is then benign teardown
            // noise, not a protocol error.
            if let Err(e) = wire::write_frame(&mut parent, &Msg::Done) {
                if !stopped.load(Ordering::Acquire) {
                    return Err(e);
                }
            }
            Ok(())
        }
        Err(e) => {
            let _ = wire::write_frame(
                &mut parent,
                &Msg::Err {
                    text: e.to_string(),
                },
            );
            Err(e)
        }
    }
}

/// Pump one peer link's incoming waves into the shared inbox. EOF or a
/// wire error ends the pump; if the run is still live the executor
/// notices (the wave it is waiting for never arrives), and the *parent*
/// — watching the dead peer's supervisor link — tears the run down, so
/// nothing needs to escalate from here.
fn peer_reader(mut link: Stream, tx: &Sender<Wave>) {
    loop {
        match wire::read_frame(&mut link) {
            Ok(Some(Msg::Wave(w))) => {
                if tx.send(w).is_err() {
                    break;
                }
            }
            Ok(Some(_)) => {}
            Ok(None) | Err(_) => break,
        }
    }
}

/// Drain one peer's outbound queue onto its socket. A write failure
/// drops the receiver, which [`round::run_group`] observes as a failed
/// send and converts to a typed error (unless the run is stopping).
fn peer_writer(mut link: Stream, rx: &Receiver<Wave>) {
    while let Ok(w) = rx.recv() {
        if wire::write_frame(&mut link, &Msg::Wave(w)).is_err() {
            break;
        }
    }
}

/// Watch the parent link: `Stop` is the graceful shutdown signal, EOF or
/// an error means the parent is gone — either way, stop solving.
fn watch_parent(mut link: Stream, stop: &AtomicBool) {
    loop {
        match wire::read_frame(&mut link) {
            Ok(Some(Msg::Stop)) | Ok(None) | Err(_) => {
                stop.store(true, Ordering::Release);
                break;
            }
            Ok(Some(_)) => {}
        }
    }
}

/// Serialize snapshot events onto the parent link; returns the write
/// half when the event channel closes so the caller can send the final
/// frame on the same socket.
fn pump_uplink(mut parent: Stream, rx: &Receiver<(usize, UpEvent)>) -> Stream {
    while let Ok((_, ev)) = rx.recv() {
        let msg = match ev {
            UpEvent::Snapshot(s) => Msg::Snapshot(s),
            UpEvent::Done => Msg::Done,
            UpEvent::Failed(text) => Msg::Err { text },
        };
        if wire::write_frame(&mut parent, &msg).is_err() {
            break;
        }
    }
    parent
}

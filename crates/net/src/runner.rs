//! The parent supervisor: partitions the solve into groups, runs them —
//! as threads (in-process reference) or as spawned OS processes over
//! sockets — and evaluates rounds in order until the residual tolerance
//! is met.
//!
//! Both modes funnel into one `supervise` loop: per-round snapshots
//! arrive on a merged event channel, the parent gathers the global
//! estimate for each *complete* round in round order (ascending part
//! order within the round, matching
//! [`SplitSystem::reconstruct`]-style averaging of copies) and stops at
//! the first round whose relative residual meets the tolerance. Because
//! rounds — not wall-clock races — define the stop decision, the
//! returned solution is a pure function of the problem, and socket and
//! in-process runs agree bit for bit.
//!
//! Teardown is unconditional in process mode: whatever happens — clean
//! convergence, a child crash, a wire error — every spawned child is
//! killed and reaped before the runner returns, so a failed solve leaves
//! no orphan processes behind.

use crate::round::{self, GroupCtx, GroupIo, UpEvent};
use crate::socket::{Listener, Stream, TransportKind};
use crate::wire::{self, GroupPlan, GroupRates, Msg, PartPlan, Snapshot, Wave};
use dtm_core::runtime::{build_node, CommonConfig, NodeRuntime};
use dtm_graph::evs::SplitSystem;
use dtm_sparse::{Error, Result};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variable the failure-injection hook travels through: set
/// on one child process, makes it exit mid-solve after the given round.
pub const FAIL_ENV: &str = "DTM_NET_FAIL_AFTER_ROUND";

const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);
const REAP_TIMEOUT: Duration = Duration::from_secs(10);

/// Everything both run modes need.
pub(crate) struct RunInputs<'a> {
    pub split: &'a SplitSystem,
    pub z_ports: &'a [Vec<f64>],
    pub common: &'a CommonConfig,
    pub group_of_part: &'a [usize],
    pub n_groups: usize,
    pub tol: f64,
    pub budget: Duration,
    pub max_rounds: u64,
}

/// What a run produced, mode-independent.
pub(crate) struct RunOutcome {
    pub rounds_completed: u64,
    pub converged: bool,
    pub solution: Vec<f64>,
    pub final_residual: f64,
    pub series: Vec<(f64, f64)>,
    pub rates: GroupRates,
    pub elapsed: Duration,
}

fn derr(what: impl std::fmt::Display) -> Error {
    Error::Parse(format!("distributed: {what}"))
}

// ---------------------------------------------------------------------------
// Shared round evaluation
// ---------------------------------------------------------------------------

struct SupOutcome {
    rounds_completed: u64,
    converged: bool,
    solution: Vec<f64>,
    final_residual: f64,
    series: Vec<(f64, f64)>,
}

/// Average each original vertex's copies into the global estimate —
/// the same copy-averaging the wall-clock supervisor applies.
fn gather(split: &SplitSystem, parts_snap: &BTreeMap<usize, Vec<f64>>, est: &mut [f64]) {
    est.iter_mut().for_each(|v| *v = 0.0);
    for (p, sd) in split.subdomains.iter().enumerate() {
        let Some(vals) = parts_snap.get(&p) else {
            continue;
        };
        for (l, &g) in sd.global_of_local.iter().enumerate() {
            if let (Some(&v), Some(e)) = (vals.get(l), est.get_mut(g)) {
                *e += v;
            }
        }
    }
    for (v, &cc) in est.iter_mut().zip(&split.copy_count) {
        *v /= cc as f64;
    }
}

/// Consume group events until the tolerance is met at some round, every
/// group reports done (round cap), or the budget expires. Rounds are
/// evaluated strictly in order, each only once all parts' snapshots for
/// it have arrived.
fn supervise(
    inp: &RunInputs<'_>,
    events: &Receiver<(usize, UpEvent)>,
    started: Instant,
) -> Result<SupOutcome> {
    let split = inp.split;
    let n_parts = split.n_parts();
    let (a, b) = split.reconstruct();
    let b_scale = dtm_sparse::vector::norm2_or_one(&b);
    let deadline = started + inp.budget;

    let mut snaps: BTreeMap<u64, BTreeMap<usize, Vec<f64>>> = BTreeMap::new();
    let mut est = vec![0.0; split.original_n];
    let mut series: Vec<(f64, f64)> = Vec::new();
    let mut next_round: u64 = 0;
    let mut done_groups = 0usize;
    let mut converged = false;

    'outer: loop {
        // Evaluate every round that just became complete, in order.
        while snaps.get(&next_round).is_some_and(|m| m.len() == n_parts) {
            let m = snaps.remove(&next_round).unwrap_or_default();
            gather(split, &m, &mut est);
            let metric = a.residual_norm(&est, &b) / b_scale;
            series.push((started.elapsed().as_secs_f64() * 1e3, metric));
            next_round += 1;
            if metric <= inp.tol {
                converged = true;
                break 'outer;
            }
        }
        if done_groups == inp.n_groups {
            // Nothing more will arrive (per-sender FIFO: every snapshot
            // a group sent precedes its Done on the merged channel).
            break;
        }
        match events.recv_timeout(Duration::from_millis(50)) {
            Ok((_, UpEvent::Snapshot(s))) => record_snapshot(&mut snaps, s, n_parts, next_round),
            Ok((_, UpEvent::Done)) => done_groups += 1,
            Ok((g, UpEvent::Failed(text))) => {
                return Err(derr(format!("group {g} failed: {text}")));
            }
            Err(RecvTimeoutError::Timeout) => {
                if Instant::now() >= deadline {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(derr("all group links closed before completion"));
            }
        }
    }

    let final_residual = a.residual_norm(&est, &b) / b_scale;
    Ok(SupOutcome {
        rounds_completed: next_round,
        converged,
        solution: est,
        final_residual,
        series,
    })
}

fn record_snapshot(
    snaps: &mut BTreeMap<u64, BTreeMap<usize, Vec<f64>>>,
    s: Snapshot,
    n_parts: usize,
    next_round: u64,
) {
    let part = s.part as usize;
    // Out-of-contract or already-evaluated rounds are dropped (late
    // snapshots keep streaming in while a stop decision propagates).
    if part >= n_parts || s.round < next_round {
        return;
    }
    snaps.entry(s.round).or_default().insert(part, s.values);
}

// ---------------------------------------------------------------------------
// In-process mode: groups as threads, channels as links
// ---------------------------------------------------------------------------

/// Build each part's node and bucket them by group.
fn build_groups(inp: &RunInputs<'_>) -> Result<BTreeMap<usize, BTreeMap<usize, NodeRuntime>>> {
    let mut groups: BTreeMap<usize, BTreeMap<usize, NodeRuntime>> = BTreeMap::new();
    for (p, sd) in inp.split.subdomains.iter().enumerate() {
        let z = inp
            .z_ports
            .get(p)
            .ok_or_else(|| derr("impedance table shorter than part list"))?;
        let node = build_node(sd, z, inp.common)?;
        let g = inp.group_of_part.get(p).copied().unwrap_or(0);
        groups.entry(g).or_default().insert(p, node);
    }
    Ok(groups)
}

/// Run the solve with every group on an OS thread in this process — the
/// bitwise reference the socket mode is compared against.
pub(crate) fn run_in_process(inp: &RunInputs<'_>) -> Result<RunOutcome> {
    let started = Instant::now();
    let groups = build_groups(inp)?;
    let mut rates = GroupRates::default();
    for nodes in groups.values() {
        let r = round::group_rates(nodes);
        rates.solves_per_round += r.solves_per_round;
        rates.messages_per_round += r.messages_per_round;
        rates.flops_per_round += r.flops_per_round;
    }

    let mut wave_tx: BTreeMap<usize, Sender<Wave>> = BTreeMap::new();
    let mut wave_rx: BTreeMap<usize, Receiver<Wave>> = BTreeMap::new();
    for &g in groups.keys() {
        let (tx, rx) = channel();
        wave_tx.insert(g, tx);
        wave_rx.insert(g, rx);
    }
    let (ev_tx, ev_rx) = channel();
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for (g, mut nodes) in groups {
        let peers: BTreeMap<usize, Sender<Wave>> = wave_tx
            .iter()
            .filter(|&(&h, _)| h != g)
            .map(|(&h, tx)| (h, tx.clone()))
            .collect();
        let Some(rx) = wave_rx.remove(&g) else {
            continue;
        };
        let io = GroupIo {
            wave_rx: rx,
            peers,
            up: ev_tx.clone(),
            stop: stop.clone(),
        };
        let ctx = GroupCtx {
            group: g,
            group_of_part: inp.group_of_part.to_vec(),
            max_rounds: inp.max_rounds,
            fail_after_round: None,
        };
        handles.push(std::thread::spawn(move || {
            match round::run_group(&mut nodes, &ctx, &io) {
                Ok(()) => {
                    let _ = io.up.send((g, UpEvent::Done));
                }
                Err(e) => {
                    let _ = io.up.send((g, UpEvent::Failed(e.to_string())));
                }
            }
        }));
    }
    drop(ev_tx);
    drop(wave_tx);

    let sup = supervise(inp, &ev_rx, started);
    stop.store(true, Ordering::Release);
    for h in handles {
        match h.join() {
            Ok(()) => {}
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    let sup = sup?;
    Ok(RunOutcome {
        rounds_completed: sup.rounds_completed,
        converged: sup.converged,
        solution: sup.solution,
        final_residual: sup.final_residual,
        series: sup.series,
        rates,
        elapsed: started.elapsed(),
    })
}

// ---------------------------------------------------------------------------
// Process mode: groups as spawned children over sockets
// ---------------------------------------------------------------------------

/// How child processes are launched: the executable plus any leading
/// arguments before the protocol flags (`repro` passes itself plus the
/// hidden `net-child` subcommand; the crate's own tests pass the
/// `net-child` binary directly).
#[derive(Debug, Clone)]
pub struct ChildCommand {
    /// Executable path.
    pub exe: PathBuf,
    /// Arguments inserted before `--connect …`.
    pub prefix_args: Vec<String>,
}

/// Failure-injection hook for teardown tests: group `group` exits with a
/// nonzero status after completing round `after_round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailInjection {
    /// Which group's child crashes.
    pub group: usize,
    /// The round after which it crashes.
    pub after_round: u64,
}

struct Brood {
    children: Vec<(usize, std::process::Child)>,
}

impl Brood {
    /// Kill and reap every child unconditionally (idempotent).
    fn kill_all(&mut self) {
        for (_, c) in &mut self.children {
            let _ = c.kill();
            let _ = c.wait();
        }
        self.children.clear();
    }

    /// Give children until `deadline` to exit on their own, then kill
    /// the rest. Always reaps everything.
    fn reap_graceful(&mut self, deadline: Instant) {
        loop {
            let mut all_done = true;
            for (_, c) in &mut self.children {
                match c.try_wait() {
                    Ok(Some(_)) => {}
                    Ok(None) => all_done = false,
                    Err(_) => {}
                }
            }
            if all_done || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.kill_all();
    }

    /// Fail if any child has already exited (used while waiting on
    /// handshake steps, so a child that died at startup surfaces as a
    /// typed error instead of a 30-second timeout).
    fn check_alive(&mut self) -> Result<()> {
        for (g, c) in &mut self.children {
            if let Ok(Some(status)) = c.try_wait() {
                return Err(derr(format!("child for group {g} exited early: {status}")));
            }
        }
        Ok(())
    }
}

/// Unique scratch directory for this run's UDS paths.
fn scratch_dir() -> Result<PathBuf> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dtm-net-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).map_err(|e| derr(format!("scratch dir: {e}")))?;
    Ok(dir)
}

/// Run the solve with one spawned OS process per group, linked over
/// `transport` sockets. Children are always reaped before returning,
/// error or not.
pub(crate) fn run_processes(
    inp: &RunInputs<'_>,
    transport: TransportKind,
    child_cmd: &ChildCommand,
    fail: Option<FailInjection>,
) -> Result<RunOutcome> {
    let started = Instant::now();
    let dir = scratch_dir()?;
    let parent_spec = match transport {
        TransportKind::Uds => dir.join("parent.sock").to_string_lossy().into_owned(),
        TransportKind::Tcp => "127.0.0.1:0".to_string(),
    };
    let (listener, parent_addr) = Listener::bind(transport, &parent_spec)?;
    listener.set_nonblocking(true)?;

    let mut brood = Brood {
        children: Vec::new(),
    };
    for g in 0..inp.n_groups {
        let mut cmd = std::process::Command::new(&child_cmd.exe);
        cmd.args(&child_cmd.prefix_args)
            .arg("--connect")
            .arg(&parent_addr)
            .arg("--group")
            .arg(g.to_string())
            .arg("--transport")
            .arg(transport.name());
        if let Some(f) = fail {
            if f.group == g {
                cmd.env(FAIL_ENV, f.after_round.to_string());
            }
        }
        match cmd.spawn() {
            Ok(child) => brood.children.push((g, child)),
            Err(e) => {
                brood.kill_all();
                let _ = std::fs::remove_dir_all(&dir);
                return Err(derr(format!("spawn child for group {g}: {e}")));
            }
        }
    }

    let result = run_processes_inner(inp, transport, &listener, &dir, &mut brood, started);
    match result {
        Ok(outcome) => {
            // Graceful teardown: Stop frames were already sent; give the
            // children a moment to flush Done and exit, then reap.
            brood.reap_graceful(Instant::now() + REAP_TIMEOUT);
            let _ = std::fs::remove_dir_all(&dir);
            Ok(outcome)
        }
        Err(e) => {
            brood.kill_all();
            let _ = std::fs::remove_dir_all(&dir);
            Err(e)
        }
    }
}

/// The fallible part of process mode; the caller owns teardown.
fn run_processes_inner(
    inp: &RunInputs<'_>,
    transport: TransportKind,
    listener: &Listener,
    dir: &std::path::Path,
    brood: &mut Brood,
    started: Instant,
) -> Result<RunOutcome> {
    let n_groups = inp.n_groups;

    // Accept one supervisor link per child; each opens with Hello.
    let mut conns: BTreeMap<usize, Stream> = BTreeMap::new();
    let accept_deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    while conns.len() < n_groups {
        match listener.try_accept()? {
            Some(s) => {
                s.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
                let mut s = s;
                match wire::read_frame(&mut s)? {
                    Some(Msg::Hello { group }) => {
                        conns.insert(group as usize, s);
                    }
                    other => return Err(derr(format!("expected Hello, got {other:?}"))),
                }
            }
            None => {
                brood.check_alive()?;
                if Instant::now() >= accept_deadline {
                    return Err(derr("timed out waiting for children to connect"));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    if conns.len() != n_groups || conns.keys().copied().ne(0..n_groups) {
        return Err(derr("children identified with unexpected group ids"));
    }

    // Ship each group its plan.
    for (&g, conn) in &mut conns {
        let parts: Vec<PartPlan> = inp
            .split
            .subdomains
            .iter()
            .enumerate()
            .filter(|&(p, _)| inp.group_of_part.get(p) == Some(&g))
            .map(|(p, sd)| PartPlan {
                sub: sd.clone(),
                z_ports: inp.z_ports.get(p).cloned().unwrap_or_default(),
            })
            .collect();
        let listen_spec = match transport {
            TransportKind::Uds => dir
                .join(format!("peer-{g}.sock"))
                .to_string_lossy()
                .into_owned(),
            TransportKind::Tcp => "127.0.0.1:0".to_string(),
        };
        let plan = GroupPlan {
            group: g as u64,
            n_groups: n_groups as u64,
            n_parts: inp.split.n_parts() as u64,
            group_of_part: inp.group_of_part.iter().map(|&x| x as u64).collect(),
            max_rounds: inp.max_rounds,
            solver_kind: inp.common.solver_kind,
            termination: inp.common.termination,
            max_solves_per_node: inp.common.max_solves_per_node as u64,
            listen_spec,
            parts,
        };
        wire::write_frame(conn, &Msg::Plan(Box::new(plan)))?;
    }

    // Collect peer listener addresses, broadcast the map.
    let mut addrs: Vec<(u64, String)> = Vec::with_capacity(n_groups);
    for (&g, conn) in &mut conns {
        brood.check_alive()?;
        match wire::read_frame(conn)? {
            Some(Msg::Listening { addr }) => addrs.push((g as u64, addr)),
            other => return Err(derr(format!("expected Listening, got {other:?}"))),
        }
    }
    for conn in conns.values_mut() {
        wire::write_frame(
            conn,
            &Msg::PeerMap {
                addrs: addrs.clone(),
            },
        )?;
    }

    // Wait for Ready (peer mesh up), summing per-round rates.
    let mut rates = GroupRates::default();
    for conn in conns.values_mut() {
        brood.check_alive()?;
        match wire::read_frame(conn)? {
            Some(Msg::Ready(r)) => {
                rates.solves_per_round += r.solves_per_round;
                rates.messages_per_round += r.messages_per_round;
                rates.flops_per_round += r.flops_per_round;
            }
            other => return Err(derr(format!("expected Ready, got {other:?}"))),
        }
    }
    for conn in conns.values_mut() {
        wire::write_frame(conn, &Msg::Go)?;
    }

    // Steady state: one reader thread per child feeds the merged event
    // channel; the write halves stay here for the Stop frames.
    let (ev_tx, ev_rx) = channel();
    let mut writers: BTreeMap<usize, Stream> = BTreeMap::new();
    for (g, conn) in conns {
        conn.set_read_timeout(None)?;
        let reader = conn.try_clone()?;
        writers.insert(g, conn);
        let ev = ev_tx.clone();
        std::thread::spawn(move || child_link_reader(g, reader, &ev));
    }
    drop(ev_tx);

    let sup = supervise(inp, &ev_rx, started);

    // Stop everyone regardless of how supervision ended; the caller
    // reaps.
    for conn in writers.values_mut() {
        let _ = wire::write_frame(conn, &Msg::Stop);
    }
    let sup = sup?;
    Ok(RunOutcome {
        rounds_completed: sup.rounds_completed,
        converged: sup.converged,
        solution: sup.solution,
        final_residual: sup.final_residual,
        series: sup.series,
        rates,
        elapsed: started.elapsed(),
    })
}

/// Pump one child's supervisor link into the merged event channel. A
/// link that closes before `Done` is a child failure.
fn child_link_reader(g: usize, mut stream: Stream, ev: &Sender<(usize, UpEvent)>) {
    let mut saw_done = false;
    loop {
        match wire::read_frame(&mut stream) {
            Ok(Some(Msg::Snapshot(s))) => {
                if ev.send((g, UpEvent::Snapshot(s))).is_err() {
                    break;
                }
            }
            Ok(Some(Msg::Done)) => {
                saw_done = true;
                let _ = ev.send((g, UpEvent::Done));
            }
            Ok(Some(Msg::Err { text })) => {
                let _ = ev.send((g, UpEvent::Failed(text)));
                break;
            }
            Ok(Some(_)) => {}
            Ok(None) => {
                if !saw_done {
                    let _ = ev.send((g, UpEvent::Failed("supervisor link closed".into())));
                }
                break;
            }
            Err(e) => {
                if !saw_done {
                    let _ = ev.send((g, UpEvent::Failed(format!("supervisor link error: {e}"))));
                }
                break;
            }
        }
    }
}

//! Standalone child-process binary for the socket backend's own tests
//! (`repro` embeds the same entry point behind its hidden `net-child`
//! subcommand, so production runs need only one executable on disk).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(dtm_net::child_main(&args));
}

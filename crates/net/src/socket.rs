//! Thin transport abstraction: Unix-domain and TCP sockets behind one
//! enum, so every other module speaks [`Stream`]/[`Listener`] and the
//! `--transport` flag is a pure dispatch decision.

use dtm_sparse::{Error, Result};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

/// Which socket family carries the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Unix-domain sockets (filesystem paths; single-host).
    Uds,
    /// TCP loopback (`127.0.0.1`; the same code path a multi-host run
    /// would use).
    Tcp,
}

impl TransportKind {
    /// CLI name, mirrored by [`TransportKind::parse`].
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Uds => "uds",
            TransportKind::Tcp => "tcp",
        }
    }

    /// Parse a `--transport` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "uds" => Some(TransportKind::Uds),
            "tcp" => Some(TransportKind::Tcp),
            _ => None,
        }
    }
}

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::Parse(format!("socket: {what}: {e}"))
}

/// A bound listener of either family.
pub enum Listener {
    /// Unix-domain listener (owns its filesystem path).
    Uds(UnixListener, String),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Bind per `kind`: `spec` is a filesystem path for UDS, an
    /// `ip:port` (typically port 0) for TCP. Returns the listener and
    /// the *actual* address peers should connect to.
    ///
    /// # Errors
    /// Propagates bind failures as typed errors.
    pub fn bind(kind: TransportKind, spec: &str) -> Result<(Self, String)> {
        match kind {
            TransportKind::Uds => {
                // A stale socket file from a crashed run blocks bind.
                let _ = std::fs::remove_file(spec);
                let l = UnixListener::bind(spec).map_err(|e| io_err("uds bind", e))?;
                Ok((Listener::Uds(l, spec.to_string()), spec.to_string()))
            }
            TransportKind::Tcp => {
                let l = TcpListener::bind(spec).map_err(|e| io_err("tcp bind", e))?;
                let addr = l
                    .local_addr()
                    .map_err(|e| io_err("tcp local_addr", e))?
                    .to_string();
                Ok((Listener::Tcp(l), addr))
            }
        }
    }

    /// Switch blocking mode (the parent polls accepts so a child that
    /// died before connecting cannot hang the run).
    ///
    /// # Errors
    /// Propagates the fcntl failure as a typed error.
    pub fn set_nonblocking(&self, nb: bool) -> Result<()> {
        match self {
            Listener::Uds(l, _) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
        .map_err(|e| io_err("set_nonblocking", e))
    }

    /// Non-blocking accept: `Ok(None)` when no connection is pending.
    ///
    /// # Errors
    /// Propagates accept failures (other than would-block) as typed
    /// errors.
    pub fn try_accept(&self) -> Result<Option<Stream>> {
        let r = match self {
            Listener::Uds(l, _) => l.accept().map(|(s, _)| Stream::Uds(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::tcp_low_latency(s)),
        };
        match r {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(io_err("accept", e)),
        }
    }

    /// Accept one connection.
    ///
    /// # Errors
    /// Propagates accept failures as typed errors.
    pub fn accept(&self) -> Result<Stream> {
        match self {
            Listener::Uds(l, _) => l
                .accept()
                .map(|(s, _)| Stream::Uds(s))
                .map_err(|e| io_err("uds accept", e)),
            Listener::Tcp(l) => l
                .accept()
                .map(|(s, _)| Stream::tcp_low_latency(s))
                .map_err(|e| io_err("tcp accept", e)),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A connected duplex stream of either family.
pub enum Stream {
    /// Unix-domain stream.
    Uds(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Stream {
    /// Connect per `kind` to an address produced by [`Listener::bind`].
    ///
    /// # Errors
    /// Propagates connect failures as typed errors.
    pub fn connect(kind: TransportKind, addr: &str) -> Result<Self> {
        match kind {
            TransportKind::Uds => UnixStream::connect(addr)
                .map(Stream::Uds)
                .map_err(|e| io_err("uds connect", e)),
            TransportKind::Tcp => TcpStream::connect(addr)
                .map(Self::tcp_low_latency)
                .map_err(|e| io_err("tcp connect", e)),
        }
    }

    /// Wrap a TCP stream with Nagle's algorithm disabled: wave frames
    /// are small and latency-bound, and a round cannot proceed until the
    /// last one lands, so delayed-ACK batching would serialize whole
    /// rounds behind 40 ms timers. Best effort — a failed setsockopt
    /// costs latency, not correctness.
    fn tcp_low_latency(s: TcpStream) -> Self {
        let _ = s.set_nodelay(true);
        Stream::Tcp(s)
    }

    /// Clone the handle (sockets are duplex; reader and writer threads
    /// each take a clone).
    ///
    /// # Errors
    /// Propagates the OS `dup` failure as a typed error.
    pub fn try_clone(&self) -> Result<Self> {
        match self {
            Stream::Uds(s) => s
                .try_clone()
                .map(Stream::Uds)
                .map_err(|e| io_err("uds clone", e)),
            Stream::Tcp(s) => s
                .try_clone()
                .map(Stream::Tcp)
                .map_err(|e| io_err("tcp clone", e)),
        }
    }

    /// Set (or clear) the read timeout — bounded during handshakes,
    /// unbounded for the steady-state reader threads.
    ///
    /// # Errors
    /// Propagates the setsockopt failure as a typed error.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> Result<()> {
        match self {
            Stream::Uds(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
        .map_err(|e| io_err("set_read_timeout", e))
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Uds(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Uds(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Uds(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

//! The hand-rolled binary wire format of the socket backend.
//!
//! Everything on a socket is a **frame**: a 4-byte little-endian payload
//! length followed by the payload, whose first byte is a message tag. All
//! integers are little-endian; `usize` fields travel as `u64` so the
//! format is identical across pointer widths. [`SmallBlock`]s are encoded
//! losslessly as `u32` length + that many `f64`s — the inline-vs-spill
//! distinction is a property of the length alone, so decode rebuilds the
//! exact in-memory representation via [`SmallBlock::from_fn`].
//!
//! The vendored `serde` is a no-op facade (see `vendor/serde`), so this
//! module is the real serializer. Decoding is total: any truncated frame,
//! overlong count or malformed structure returns a typed
//! [`Error`] — the decoder never panics and never
//! trusts a length field without checking it against the bytes actually
//! present.

use dtm_core::local::LocalSolverKind;
use dtm_core::runtime::{DtmMsg, PortUpdate, SmallBlock, Termination};
use dtm_graph::evs::{Port, PortRef, Subdomain};
use dtm_sparse::{Csr, Error, Result};
use std::io::{Read, Write};

/// Hard cap on a frame's payload length: guards the reader against a
/// garbage length prefix committing us to a gigantic allocation.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// One group's share of the solve, shipped parent → child after `Hello`.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupPlan {
    /// This child's group id.
    pub group: u64,
    /// Total number of groups (= processes).
    pub n_groups: u64,
    /// Total number of parts across all groups.
    pub n_parts: u64,
    /// Part → group map (length `n_parts`).
    pub group_of_part: Vec<u64>,
    /// Round cap: children run rounds `0..max_rounds` unless stopped.
    pub max_rounds: u64,
    /// Local factorization backend.
    pub solver_kind: LocalSolverKind,
    /// Stopping rule (the parent enforces it; shipped for node
    /// construction).
    pub termination: Termination,
    /// Safety cap on solves per node.
    pub max_solves_per_node: u64,
    /// Where this child should listen for peer-group links: a filesystem
    /// path for UDS, `"127.0.0.1:0"` for TCP.
    pub listen_spec: String,
    /// The subdomains this group executes, with their port impedances.
    pub parts: Vec<PartPlan>,
}

/// One subdomain plus the impedances the parent assigned to its ports.
#[derive(Debug, Clone, PartialEq)]
pub struct PartPlan {
    /// The subdomain (matrix, rhs, ports — everything `build_node`
    /// needs).
    pub sub: Subdomain,
    /// One characteristic impedance per port of `sub`.
    pub z_ports: Vec<f64>,
}

/// One cross-group wave: a [`DtmMsg`] tagged with its round and route.
#[derive(Debug, Clone, PartialEq)]
pub struct Wave {
    /// Round that produced this wave.
    pub round: u64,
    /// Sending part.
    pub src: u64,
    /// Receiving part.
    pub dst: u64,
    /// The wave-front payload.
    pub msg: DtmMsg,
}

/// One part's per-round solution snapshot, child → parent.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The part.
    pub part: u64,
    /// The round the solution belongs to.
    pub round: u64,
    /// The local solution (`n_local × k`, column-major).
    pub values: Vec<f64>,
}

/// Per-round work rates of one group — the deterministic counter basis:
/// totals are `rounds × rate`, independent of how far children overshoot
/// the stop round before the `Stop` frame lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupRates {
    /// Local solves per round (= parts in the group).
    pub solves_per_round: u64,
    /// Messages scattered per round (= wave routes of the group).
    pub messages_per_round: u64,
    /// Estimated flops per round.
    pub flops_per_round: u64,
}

/// Every message of the parent/child and peer/peer protocols.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Child → parent, first frame on the supervisor link.
    Hello {
        /// The connecting child's group id.
        group: u64,
    },
    /// Peer → peer, first frame on a peer link (sent by the connecting,
    /// lower-id group).
    PeerHello {
        /// The connecting group's id.
        group: u64,
    },
    /// Parent → child: the group's share of the solve.
    Plan(Box<GroupPlan>),
    /// Child → parent: the child's peer listener is bound at `addr`.
    Listening {
        /// UDS path or `ip:port`.
        addr: String,
    },
    /// Parent → child: every group's peer listener address.
    PeerMap {
        /// `(group, addr)` pairs, ascending by group.
        addrs: Vec<(u64, String)>,
    },
    /// Child → parent: nodes built, peer links up; includes the group's
    /// per-round work rates.
    Ready(GroupRates),
    /// Parent → child: start round 0.
    Go,
    /// Peer → peer: one cross-group wave.
    Wave(Wave),
    /// Child → parent: one per-round solution snapshot.
    Snapshot(Snapshot),
    /// Parent → child: cease after the current round.
    Stop,
    /// Child → parent: round loop finished (stop or round cap).
    Done,
    /// Child → parent: fatal error; the parent tears the run down.
    Err {
        /// Human-readable cause.
        text: String,
    },
}

const TAG_HELLO: u8 = 0;
const TAG_PEER_HELLO: u8 = 1;
const TAG_PLAN: u8 = 2;
const TAG_LISTENING: u8 = 3;
const TAG_PEER_MAP: u8 = 4;
const TAG_READY: u8 = 5;
const TAG_GO: u8 = 6;
const TAG_WAVE: u8 = 7;
const TAG_SNAPSHOT: u8 = 8;
const TAG_STOP: u8 = 9;
const TAG_DONE: u8 = 10;
const TAG_ERR: u8 = 11;

fn parse_err(what: &str) -> Error {
    Error::Parse(format!("wire: {what}"))
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn us(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64s(&mut self, vs: &[f64]) {
        self.us(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    fn usizes(&mut self, vs: &[usize]) {
        self.us(vs.len());
        for &v in vs {
            self.us(v);
        }
    }

    fn str(&mut self, s: &str) {
        self.us(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn small_block(&mut self, b: &SmallBlock) {
        self.u32(b.len() as u32);
        for &v in b.as_slice() {
            self.f64(v);
        }
    }

    fn dtm_msg(&mut self, m: &DtmMsg) {
        self.us(m.updates.len());
        for u in &m.updates {
            self.us(u.port);
            self.small_block(&u.u);
            self.small_block(&u.omega);
        }
    }

    fn csr(&mut self, a: &Csr) {
        self.us(a.n_rows());
        self.us(a.n_cols());
        self.usizes(a.row_ptr());
        self.usizes(a.col_idx());
        self.f64s(a.values());
    }

    fn subdomain(&mut self, sd: &Subdomain) {
        self.us(sd.part);
        self.csr(&sd.matrix);
        self.f64s(&sd.rhs);
        self.f64s(&sd.rhs_weight);
        self.usizes(&sd.global_of_local);
        self.us(sd.n_copies);
        self.us(sd.ports.len());
        for p in &sd.ports {
            self.us(p.local_vertex);
            self.us(p.global_vertex);
            self.us(p.peer.part);
            self.us(p.peer.port);
            self.us(p.dtlp);
        }
    }

    fn termination(&mut self, t: Termination) {
        match t {
            Termination::OracleRms { tol } => {
                self.u8(0);
                self.f64(tol);
            }
            Termination::Residual { tol } => {
                self.u8(1);
                self.f64(tol);
            }
            Termination::LocalDelta { tol, patience } => {
                self.u8(2);
                self.f64(tol);
                self.us(patience);
            }
        }
    }
}

/// Encode one message into a frame payload (tag + body, no length
/// prefix).
pub fn encode(msg: &Msg) -> Vec<u8> {
    let mut e = Enc::new();
    match msg {
        Msg::Hello { group } => {
            e.u8(TAG_HELLO);
            e.u64(*group);
        }
        Msg::PeerHello { group } => {
            e.u8(TAG_PEER_HELLO);
            e.u64(*group);
        }
        Msg::Plan(p) => {
            e.u8(TAG_PLAN);
            e.u64(p.group);
            e.u64(p.n_groups);
            e.u64(p.n_parts);
            e.us(p.group_of_part.len());
            for &g in &p.group_of_part {
                e.u64(g);
            }
            e.u64(p.max_rounds);
            e.u8(match p.solver_kind {
                LocalSolverKind::Auto => 0,
                LocalSolverKind::Dense => 1,
                LocalSolverKind::Sparse => 2,
                LocalSolverKind::SparseRcm => 3,
            });
            e.termination(p.termination);
            e.u64(p.max_solves_per_node);
            e.str(&p.listen_spec);
            e.us(p.parts.len());
            for part in &p.parts {
                e.subdomain(&part.sub);
                e.f64s(&part.z_ports);
            }
        }
        Msg::Listening { addr } => {
            e.u8(TAG_LISTENING);
            e.str(addr);
        }
        Msg::PeerMap { addrs } => {
            e.u8(TAG_PEER_MAP);
            e.us(addrs.len());
            for (g, a) in addrs {
                e.u64(*g);
                e.str(a);
            }
        }
        Msg::Ready(r) => {
            e.u8(TAG_READY);
            e.u64(r.solves_per_round);
            e.u64(r.messages_per_round);
            e.u64(r.flops_per_round);
        }
        Msg::Go => e.u8(TAG_GO),
        Msg::Wave(w) => {
            e.u8(TAG_WAVE);
            e.u64(w.round);
            e.u64(w.src);
            e.u64(w.dst);
            e.dtm_msg(&w.msg);
        }
        Msg::Snapshot(s) => {
            e.u8(TAG_SNAPSHOT);
            e.u64(s.part);
            e.u64(s.round);
            e.f64s(&s.values);
        }
        Msg::Stop => e.u8(TAG_STOP),
        Msg::Done => e.u8(TAG_DONE),
        Msg::Err { text } => {
            e.u8(TAG_ERR);
            e.str(text);
        }
    }
    e.buf
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

struct Dec<'a> {
    b: &'a [u8],
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.b.len() < n {
            return Err(parse_err("truncated frame"));
        }
        let (head, rest) = self.b.split_at(n);
        self.b = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(s);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(s);
        Ok(u64::from_le_bytes(a))
    }

    fn us(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| parse_err("count exceeds address space"))
    }

    fn f64(&mut self) -> Result<f64> {
        let s = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(s);
        Ok(f64::from_le_bytes(a))
    }

    /// A count followed by that many fixed-width items: refuse counts the
    /// remaining bytes cannot possibly satisfy before allocating.
    fn count(&mut self, item_width: usize) -> Result<usize> {
        let n = self.us()?;
        let need = n
            .checked_mul(item_width)
            .ok_or_else(|| parse_err("count overflow"))?;
        if need > self.b.len() {
            return Err(parse_err("count exceeds frame"));
        }
        Ok(n)
    }

    fn f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.count(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn usizes(&mut self) -> Result<Vec<usize>> {
        let n = self.count(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.us()?);
        }
        Ok(out)
    }

    fn str(&mut self) -> Result<String> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| parse_err("invalid utf-8 string"))
    }

    fn small_block(&mut self) -> Result<SmallBlock> {
        let len = self.u32()? as usize;
        let need = len
            .checked_mul(8)
            .ok_or_else(|| parse_err("block length overflow"))?;
        if need > self.b.len() {
            return Err(parse_err("block length exceeds frame"));
        }
        let mut vals = Vec::with_capacity(len);
        for _ in 0..len {
            vals.push(self.f64()?);
        }
        Ok(SmallBlock::from_slice(&vals))
    }

    fn dtm_msg(&mut self) -> Result<DtmMsg> {
        // Each update is at least 8 (port) + 4 + 4 (two block headers).
        let n = self.count(16)?;
        let mut updates = Vec::with_capacity(n);
        for _ in 0..n {
            let port = self.us()?;
            let u = self.small_block()?;
            let omega = self.small_block()?;
            updates.push(PortUpdate { port, u, omega });
        }
        Ok(DtmMsg { updates })
    }

    /// Decode a CSR matrix, re-validating every invariant
    /// [`Csr::from_raw_parts`] asserts so a malformed frame surfaces as a
    /// typed error instead of a panic.
    fn csr(&mut self) -> Result<Csr> {
        let n_rows = self.us()?;
        let n_cols = self.us()?;
        let row_ptr = self.usizes()?;
        let col_idx = self.usizes()?;
        let values = self.f64s()?;
        if row_ptr.len() != n_rows + 1 || row_ptr.first() != Some(&0) {
            return Err(parse_err("csr row_ptr malformed"));
        }
        if row_ptr.last() != Some(&col_idx.len()) || col_idx.len() != values.len() {
            return Err(parse_err("csr lengths disagree"));
        }
        for r in 0..n_rows {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            if lo > hi || hi > col_idx.len() {
                return Err(parse_err("csr row_ptr not monotone"));
            }
            let cols = &col_idx[lo..hi];
            if cols.windows(2).any(|w| w[0] >= w[1]) {
                return Err(parse_err("csr columns not strictly increasing"));
            }
            if cols.last().is_some_and(|&c| c >= n_cols) {
                return Err(parse_err("csr column out of bounds"));
            }
        }
        Ok(Csr::from_raw_parts(
            n_rows, n_cols, row_ptr, col_idx, values,
        ))
    }

    fn subdomain(&mut self) -> Result<Subdomain> {
        let part = self.us()?;
        let matrix = self.csr()?;
        let rhs = self.f64s()?;
        let rhs_weight = self.f64s()?;
        let global_of_local = self.usizes()?;
        let n_copies = self.us()?;
        let n_ports = self.count(40)?;
        let mut ports = Vec::with_capacity(n_ports);
        for _ in 0..n_ports {
            ports.push(Port {
                local_vertex: self.us()?,
                global_vertex: self.us()?,
                peer: PortRef {
                    part: self.us()?,
                    port: self.us()?,
                },
                dtlp: self.us()?,
            });
        }
        let n_local = matrix.n_rows();
        if rhs.len() != n_local
            || rhs_weight.len() != n_local
            || global_of_local.len() != n_local
            || n_copies > n_local
            || ports.iter().any(|p| p.local_vertex >= n_local)
        {
            return Err(parse_err("subdomain fields disagree with matrix"));
        }
        Ok(Subdomain {
            part,
            matrix,
            rhs,
            rhs_weight,
            global_of_local,
            n_copies,
            ports,
        })
    }

    fn termination(&mut self) -> Result<Termination> {
        match self.u8()? {
            0 => Ok(Termination::OracleRms { tol: self.f64()? }),
            1 => Ok(Termination::Residual { tol: self.f64()? }),
            2 => Ok(Termination::LocalDelta {
                tol: self.f64()?,
                patience: self.us()?,
            }),
            _ => Err(parse_err("unknown termination tag")),
        }
    }
}

/// Decode one frame payload (as produced by [`encode`]).
///
/// # Errors
/// Returns a typed parse error on any truncation, unknown tag, overlong
/// count or structural violation. Never panics, whatever the bytes.
pub fn decode(payload: &[u8]) -> Result<Msg> {
    let mut d = Dec { b: payload };
    let tag = d.u8()?;
    let msg = match tag {
        TAG_HELLO => Msg::Hello { group: d.u64()? },
        TAG_PEER_HELLO => Msg::PeerHello { group: d.u64()? },
        TAG_PLAN => {
            let group = d.u64()?;
            let n_groups = d.u64()?;
            let n_parts = d.u64()?;
            let n_map = d.count(8)?;
            let mut group_of_part = Vec::with_capacity(n_map);
            for _ in 0..n_map {
                group_of_part.push(d.u64()?);
            }
            let max_rounds = d.u64()?;
            let solver_kind = match d.u8()? {
                0 => LocalSolverKind::Auto,
                1 => LocalSolverKind::Dense,
                2 => LocalSolverKind::Sparse,
                3 => LocalSolverKind::SparseRcm,
                _ => return Err(parse_err("unknown solver kind")),
            };
            let termination = d.termination()?;
            let max_solves_per_node = d.u64()?;
            let listen_spec = d.str()?;
            let n_parts_here = d.count(1)?;
            let mut parts = Vec::with_capacity(n_parts_here.min(1024));
            for _ in 0..n_parts_here {
                parts.push(PartPlan {
                    sub: d.subdomain()?,
                    z_ports: d.f64s()?,
                });
            }
            Msg::Plan(Box::new(GroupPlan {
                group,
                n_groups,
                n_parts,
                group_of_part,
                max_rounds,
                solver_kind,
                termination,
                max_solves_per_node,
                listen_spec,
                parts,
            }))
        }
        TAG_LISTENING => Msg::Listening { addr: d.str()? },
        TAG_PEER_MAP => {
            let n = d.count(16)?;
            let mut addrs = Vec::with_capacity(n);
            for _ in 0..n {
                let g = d.u64()?;
                let a = d.str()?;
                addrs.push((g, a));
            }
            Msg::PeerMap { addrs }
        }
        TAG_READY => Msg::Ready(GroupRates {
            solves_per_round: d.u64()?,
            messages_per_round: d.u64()?,
            flops_per_round: d.u64()?,
        }),
        TAG_GO => Msg::Go,
        TAG_WAVE => Msg::Wave(Wave {
            round: d.u64()?,
            src: d.u64()?,
            dst: d.u64()?,
            msg: d.dtm_msg()?,
        }),
        TAG_SNAPSHOT => Msg::Snapshot(Snapshot {
            part: d.u64()?,
            round: d.u64()?,
            values: d.f64s()?,
        }),
        TAG_STOP => Msg::Stop,
        TAG_DONE => Msg::Done,
        TAG_ERR => Msg::Err { text: d.str()? },
        _ => return Err(parse_err("unknown message tag")),
    };
    if !d.b.is_empty() {
        return Err(parse_err("trailing bytes after message"));
    }
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one length-prefixed frame.
///
/// # Errors
/// Propagates I/O errors as typed parse errors.
pub fn write_frame(w: &mut impl Write, msg: &Msg) -> Result<()> {
    let payload = encode(msg);
    if payload.len() > MAX_FRAME_LEN {
        return Err(parse_err("frame too large"));
    }
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len)
        .and_then(|()| w.write_all(&payload))
        .and_then(|()| w.flush())
        .map_err(|e| parse_err(&format!("write failed: {e}")))
}

/// Read one length-prefixed frame. `Ok(None)` is a clean EOF **between**
/// frames; EOF inside a frame is an error.
///
/// # Errors
/// Returns a typed parse error on I/O failure, an oversized length
/// prefix, a mid-frame EOF, or an undecodable payload.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Msg>> {
    let mut len = [0u8; 4];
    match read_exact_or_eof(r, &mut len)? {
        ReadStatus::Eof => return Ok(None),
        ReadStatus::Full => {}
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME_LEN {
        return Err(parse_err("frame length prefix too large"));
    }
    let mut payload = vec![0u8; n];
    match read_exact_or_eof(r, &mut payload)? {
        ReadStatus::Eof => Err(parse_err("eof inside frame")),
        ReadStatus::Full => decode(&payload).map(Some),
    }
}

enum ReadStatus {
    Full,
    Eof,
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadStatus> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(ReadStatus::Eof)
                } else {
                    Err(parse_err("eof inside frame"))
                }
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(parse_err(&format!("read failed: {e}"))),
        }
    }
    Ok(ReadStatus::Full)
}

//! The deterministic round-structured wavefront executor.
//!
//! Each group runs its parts in ascending order once per **round**: at
//! round `r > 0` a node first absorbs every neighbour's round-`r−1` wave
//! (in ascending source-part order), then steps once — solve and scatter
//! its round-`r` waves — and ships a round-tagged solution snapshot to
//! the supervisor. Round 0 is the initial solve under the zero boundary
//! guess, with nothing to absorb.
//!
//! Because every node consumes exactly one wave per neighbour per round
//! and [`NodeRuntime::step`] emits exactly one wave per route per step,
//! the sequence of floating-point operations a node performs is a pure
//! function of the problem — independent of how parts are grouped into
//! processes, of socket scheduling, and of thread interleaving. That is
//! the backend's bit-for-bit guarantee: the same solve on 1 thread, N
//! threads or N OS processes produces identical bits.
//!
//! The executor only sees [`std::sync::mpsc`] channels and an atomic stop
//! flag; the socket child wraps its links in reader/writer threads that
//! feed the same channels, so this file is the *entire* algorithm for
//! both transports.

use crate::wire::{GroupRates, Snapshot, Wave};
use dtm_core::runtime::NodeRuntime;
use dtm_sparse::{Error, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Upward events a group reports to its supervisor. The socket child
/// serializes these onto the parent link; the in-process runner delivers
/// them over a channel directly.
#[derive(Debug)]
pub enum UpEvent {
    /// One part's round-tagged solution snapshot.
    Snapshot(Snapshot),
    /// The group's round loop finished (stop flag or round cap).
    Done,
    /// The group failed; the supervisor should tear the run down.
    Failed(String),
}

/// A group's connections, transport-agnostic.
pub struct GroupIo {
    /// Incoming cross-group waves (any source).
    pub wave_rx: Receiver<Wave>,
    /// Outbound wave queue per peer group.
    pub peers: BTreeMap<usize, Sender<Wave>>,
    /// Upward event channel to the supervisor, tagged with this group id.
    pub up: Sender<(usize, UpEvent)>,
    /// Cease after the current absorb/step when set.
    pub stop: Arc<AtomicBool>,
}

/// Static execution context of one group.
pub struct GroupCtx {
    /// This group's id.
    pub group: usize,
    /// Part → group map for the whole solve.
    pub group_of_part: Vec<usize>,
    /// Run rounds `0..max_rounds` unless stopped earlier.
    pub max_rounds: u64,
    /// Test hook: call [`std::process::exit`]`(3)` after this round
    /// completes, simulating a mid-solve child crash. Never set outside
    /// failure-injection tests.
    pub fail_after_round: Option<u64>,
}

/// Per-round work rates of a built group (the deterministic counter
/// basis — see [`GroupRates`]).
pub fn group_rates(nodes: &BTreeMap<usize, NodeRuntime>) -> GroupRates {
    let mut r = GroupRates::default();
    for node in nodes.values() {
        r.solves_per_round += 1;
        r.messages_per_round += node.neighbor_parts().count() as u64;
        r.flops_per_round += 4 * node.local().factor_nnz() as u64 * node.local().n_rhs() as u64;
    }
    r
}

/// Run one group's round loop to completion. Returns `Ok` whether the
/// loop ended by stop flag or by round cap; channel failures while the
/// run is still live are errors (a peer vanished mid-solve).
///
/// # Errors
/// Fails if a wave channel disconnects or a send fails before the stop
/// flag is raised.
pub fn run_group(
    nodes: &mut BTreeMap<usize, NodeRuntime>,
    ctx: &GroupCtx,
    io: &GroupIo,
) -> Result<()> {
    // Neighbours per part, ascending — the canonical absorb order.
    let neighbors: BTreeMap<usize, Vec<usize>> = nodes
        .iter()
        .map(|(&p, node)| {
            let mut ns: Vec<usize> = node.neighbor_parts().collect();
            ns.sort_unstable();
            ns.dedup();
            (p, ns)
        })
        .collect();
    let parts: Vec<usize> = nodes.keys().copied().collect();
    // Waves buffered until their round comes up, keyed (round, dst, src).
    let mut pending: BTreeMap<(u64, usize, usize), dtm_core::runtime::DtmMsg> = BTreeMap::new();
    let mut outbox: Vec<(usize, dtm_core::runtime::DtmMsg)> = Vec::new();

    'rounds: for round in 0..ctx.max_rounds {
        for &p in &parts {
            if round > 0 {
                for &src in neighbors.get(&p).map(Vec::as_slice).unwrap_or_default() {
                    let msg = match wait_wave(&mut pending, io, round - 1, p, src)? {
                        Some(m) => m,
                        None => break 'rounds, // stopped while waiting
                    };
                    if let Some(node) = nodes.get_mut(&p) {
                        node.absorb_owned(msg);
                    }
                }
            }
            let Some(node) = nodes.get_mut(&p) else {
                continue;
            };
            outbox.clear();
            let _ = node.step(&mut outbox);
            for (dst, msg) in outbox.drain(..) {
                let dst_group = ctx.group_of_part.get(dst).copied().unwrap_or(ctx.group);
                if dst_group == ctx.group {
                    pending.insert((round, dst, p), msg);
                } else if let Some(tx) = io.peers.get(&dst_group) {
                    let wave = Wave {
                        round,
                        src: p as u64,
                        dst: dst as u64,
                        msg,
                    };
                    if tx.send(wave).is_err() && !io.stop.load(Ordering::Acquire) {
                        return Err(Error::Parse(format!(
                            "distributed group {}: peer link to group {dst_group} closed mid-solve",
                            ctx.group
                        )));
                    }
                }
            }
            let snap = Snapshot {
                part: p as u64,
                round,
                values: node.local().solution().to_vec(),
            };
            if io.up.send((ctx.group, UpEvent::Snapshot(snap))).is_err()
                && !io.stop.load(Ordering::Acquire)
            {
                return Err(Error::Parse(format!(
                    "distributed group {}: supervisor link closed mid-solve",
                    ctx.group
                )));
            }
        }
        if ctx.fail_after_round == Some(round) {
            // Failure injection: vanish like a crashed process would.
            std::process::exit(3);
        }
        if io.stop.load(Ordering::Acquire) {
            break;
        }
    }
    Ok(())
}

/// Block until the wave `(round, dst, src)` is available, draining the
/// shared inbox into the pending buffer. Returns `Ok(None)` if the stop
/// flag was raised while waiting.
fn wait_wave(
    pending: &mut BTreeMap<(u64, usize, usize), dtm_core::runtime::DtmMsg>,
    io: &GroupIo,
    round: u64,
    dst: usize,
    src: usize,
) -> Result<Option<dtm_core::runtime::DtmMsg>> {
    loop {
        if let Some(m) = pending.remove(&(round, dst, src)) {
            return Ok(Some(m));
        }
        if io.stop.load(Ordering::Acquire) {
            return Ok(None);
        }
        match io.wave_rx.recv_timeout(Duration::from_millis(5)) {
            Ok(w) => {
                pending.insert((w.round, w.dst as usize, w.src as usize), w.msg);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                if io.stop.load(Ordering::Acquire) {
                    return Ok(None);
                }
                return Err(Error::Parse(
                    "distributed: wave channel disconnected mid-solve".into(),
                ));
            }
        }
    }
}

//! Distributed socket backend: DTM across OS processes.
//!
//! Every other executor in this workspace keeps the solve inside one
//! address space — the [`Transport`](dtm_core::runtime::Transport) is a
//! channel or a simulated fabric. This crate takes the transport out of
//! the process: partitions are grouped, each group runs in its **own OS
//! process**, and waves travel over real sockets (Unix-domain by
//! default, TCP behind the same code path) in a hand-rolled,
//! length-prefixed binary wire format ([`wire`]).
//!
//! The headline property is *bitwise reproducibility*: the distributed
//! run returns the **same bits** as the in-process reference run, not
//! merely a result of similar quality. That falls out of the
//! round-structured executor ([`round`]): each node absorbs exactly one
//! wave per neighbour per round in canonical order and steps once, so
//! its floating-point schedule is a pure function of the problem —
//! independent of process count, socket timing and thread interleaving.
//! `repro compare --transport uds --processes 2` asserts this equality
//! on every run.
//!
//! Module map:
//! - [`wire`] — the binary frame format (no serde; the vendored stub is
//!   a no-op) with a total, panic-free decoder.
//! - [`socket`] — UDS/TCP behind one [`socket::Stream`] enum.
//! - [`round`] — the deterministic round executor both modes share.
//! - [`runner`] — the parent supervisor: spawn, handshake, evaluate
//!   rounds, tear down (children are always reaped, error or not).
//! - [`child`] — the child-process side behind the hidden `net-child`
//!   CLI mode.

pub mod child;
pub mod round;
pub mod runner;
pub mod socket;
pub mod wire;

pub use child::child_main;
pub use runner::{ChildCommand, FailInjection, FAIL_ENV};
pub use socket::TransportKind;

use dtm_core::impedance;
use dtm_core::report::{AlgorithmKind, BackendKind, SolveReport, StopKind};
use dtm_core::runtime::{CommonConfig, ExecutorBackend, Termination};
use dtm_graph::evs::SplitSystem;
use dtm_simnet::Topology;
use dtm_sparse::{Error, Result};
use runner::{RunInputs, RunOutcome};
use std::time::Duration;

/// How the groups execute.
#[derive(Debug, Clone)]
pub enum RunMode {
    /// Every group on an OS thread in this process — the bitwise
    /// reference the socket mode is compared against.
    InProcess,
    /// One spawned OS process per group, linked over sockets.
    Processes {
        /// Socket family for all links.
        transport: TransportKind,
        /// How to launch children (executable + argument prefix).
        child: ChildCommand,
        /// Optional failure injection (teardown tests only).
        fail: Option<FailInjection>,
    },
}

/// Configuration of a distributed solve.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Algorithm knobs shared with every other backend. The termination
    /// rule must be [`Termination::Residual`] — the distributed monitor
    /// is reference-free by construction.
    pub common: CommonConfig,
    /// Thread or process execution.
    pub mode: RunMode,
    /// Number of partition groups (= processes in process mode). Parts
    /// are grouped contiguously and balanced: part `p` joins group
    /// `p·groups/n_parts`.
    pub processes: usize,
    /// When set, every cross-part wave route is validated against this
    /// delay topology before anything is spawned; a route with no link
    /// is a typed build-time error (the socket fabric will carry waves
    /// anywhere, but a run that claims to model a machine must not use
    /// links the machine does not have).
    pub topology: Option<Topology>,
    /// Wall-clock budget; the run stops unconverged when it expires.
    pub budget: Duration,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        Self {
            common: CommonConfig {
                termination: Termination::Residual { tol: 1e-8 },
                ..Default::default()
            },
            mode: RunMode::InProcess,
            processes: 1,
            topology: None,
            budget: Duration::from_secs(600),
        }
    }
}

/// The multi-process executor backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistributedBackend;

impl ExecutorBackend for DistributedBackend {
    type Config = DistributedConfig;

    fn kind(&self) -> BackendKind {
        BackendKind::Distributed
    }

    fn solve(
        &self,
        split: &SplitSystem,
        reference: Option<Vec<f64>>,
        config: &DistributedConfig,
    ) -> Result<SolveReport> {
        let tol = match config.common.termination {
            Termination::Residual { tol } => tol,
            other => {
                return Err(Error::Parse(format!(
                    "distributed backend requires Termination::Residual \
                     (reference-free monitoring), got {other:?}"
                )))
            }
        };
        let n_parts = split.n_parts();
        if config.processes == 0 || config.processes > n_parts {
            return Err(Error::Parse(format!(
                "distributed: processes must be in 1..={n_parts} (one group \
                 needs at least one part), got {}",
                config.processes
            )));
        }
        if let Some(topo) = &config.topology {
            validate_routes(split, topo)?;
        }

        let z_per_dtlp = config.common.impedance.assign(split)?;
        let z_ports = impedance::per_port(split, &z_per_dtlp);
        let group_of_part = group_assignment(n_parts, config.processes);
        let inp = RunInputs {
            split,
            z_ports: &z_ports,
            common: &config.common,
            group_of_part: &group_of_part,
            n_groups: config.processes,
            tol,
            budget: config.budget,
            max_rounds: config.common.max_solves_per_node as u64,
        };
        let outcome = match &config.mode {
            RunMode::InProcess => runner::run_in_process(&inp)?,
            RunMode::Processes {
                transport,
                child,
                fail,
            } => runner::run_processes(&inp, *transport, child, *fail)?,
        };
        Ok(assemble_report(split, reference.as_deref(), &outcome))
    }
}

/// Contiguous balanced grouping: part `p` → group `p·groups/n_parts`.
pub fn group_assignment(n_parts: usize, groups: usize) -> Vec<usize> {
    (0..n_parts).map(|p| p * groups / n_parts).collect()
}

/// Check every cross-part wave route against the machine's link table,
/// reporting **all** missing links in one typed error.
fn validate_routes(split: &SplitSystem, topo: &Topology) -> Result<()> {
    let mut missing: Vec<String> = Vec::new();
    for (p, sd) in split.subdomains.iter().enumerate() {
        for port in &sd.ports {
            let q = port.peer.part;
            if p != q && topo.try_delay(p, q).is_err() {
                let s = format!("{p}->{q}");
                if !missing.contains(&s) {
                    missing.push(s);
                }
            }
        }
    }
    if missing.is_empty() {
        Ok(())
    } else {
        Err(Error::Parse(format!(
            "distributed: wave routes with no link in the delay topology: {}",
            missing.join(", ")
        )))
    }
}

/// Fold a [`RunOutcome`] into the workspace-wide report vocabulary.
fn assemble_report(
    split: &SplitSystem,
    reference: Option<&[f64]>,
    out: &RunOutcome,
) -> SolveReport {
    let (final_rms, final_rms_per_rhs) = match reference {
        Some(r) => {
            let rms = dtm_sparse::vector::rms_error(&out.solution, r);
            (rms, vec![rms])
        }
        None => (f64::NAN, Vec::new()),
    };
    let rounds = out.rounds_completed;
    SolveReport {
        backend: BackendKind::Distributed,
        algorithm: AlgorithmKind::Dtm,
        solution: out.solution.clone(),
        n_rhs: 1,
        solutions: vec![out.solution.clone()],
        final_rms_per_rhs,
        converged: out.converged,
        final_rms,
        final_residual: out.final_residual,
        final_residual_per_rhs: vec![out.final_residual],
        final_time_ms: out.elapsed.as_secs_f64() * 1e3,
        series: out.series.clone(),
        // Deterministic counters: rates × evaluated rounds, independent
        // of how far past the stop decision the children overshot.
        total_solves: rounds * out.rates.solves_per_round,
        total_messages: rounds * out.rates.messages_per_round,
        total_flops: rounds * out.rates.flops_per_round,
        coalesced_batches: 0,
        n_parts: split.n_parts(),
        stop: if out.converged {
            StopKind::OracleTolerance
        } else {
            StopKind::Budget
        },
    }
}

//! Project lint: source-level invariants clippy cannot express.
//!
//! A hand-rolled line lexer (no `syn`) splits every source line into its
//! code and comment halves — tracking block comments, string/char
//! literals, and raw strings — and five rules run over the result:
//!
//! 1. **panic-free** — no `.unwrap()` / `.expect(` / `panic!` in library
//!    crates outside test code. Existing debt is carried by a ratcheting
//!    per-file allowlist ([`ALLOWLIST`]): counts may only go down, and
//!    `--update-allowlist` re-records the current (lower) counts.
//! 2. **no-fma** — no `mul_add` anywhere in `crates/sparse`: the panel
//!    kernels' bitwise-reproducibility contract forbids FMA contraction,
//!    in scalar code as much as in intrinsics.
//! 3. **determinism** — no `Instant` / `SystemTime` / default-hasher
//!    `HashMap` in the simnet crate: virtual time and seeded iteration
//!    order are the whole point of the deterministic network simulator.
//! 4. **safety-comment** — every `unsafe` block is annotated with a
//!    `SAFETY:` comment on the block or just above it.
//! 5. **hot-path-alloc** — no `Vec::new` / `vec![` / `Box::new` /
//!    `.collect(` / `.to_vec()` inside a function tagged
//!    `// lint: hot-path` (the alloc-free inner-loop contract).
//!
//! Run as `cargo run -p dtm-lint` or `repro lint`; both exit nonzero on
//! any finding, which is what gates CI.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Workspace-relative path of the ratcheting allowlist for rule 1.
pub const ALLOWLIST: &str = "crates/lint/panic_allowlist.txt";

/// Which rule produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    PanicFree,
    NoFma,
    Determinism,
    SafetyComment,
    HotPathAlloc,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::PanicFree => "panic-free",
            Rule::NoFma => "no-fma",
            Rule::Determinism => "determinism",
            Rule::SafetyComment => "safety-comment",
            Rule::HotPathAlloc => "hot-path-alloc",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub file: PathBuf,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Line lexer
// ---------------------------------------------------------------------------

/// A source line split into code and comment text. String and char
/// literal *contents* are blanked in `code` (quotes kept) so token
/// scans never match inside literals; comment text never appears in
/// `code` and vice versa.
#[derive(Debug, Default, Clone)]
pub struct LexedLine {
    pub code: String,
    pub comment: String,
}

#[derive(Clone, Copy)]
enum LexState {
    Code,
    /// Inside a `"…"` literal.
    Str,
    /// Inside a raw string with this many `#` marks.
    RawStr(usize),
    /// Inside `/* … */` comments nested this deep.
    BlockComment(usize),
}

/// Lex full source text into per-line code/comment splits. The lexer is
/// deliberately line-oriented and approximate — good enough for token
/// scanning, not a parser — but it does get block-comment nesting, raw
/// strings, escapes, and the char-literal/lifetime ambiguity right.
pub fn lex(text: &str) -> Vec<LexedLine> {
    let mut out = Vec::new();
    let mut state = LexState::Code;
    for raw in text.lines() {
        let b: Vec<char> = raw.chars().collect();
        let mut line = LexedLine::default();
        let mut i = 0;
        while i < b.len() {
            match state {
                LexState::Code => {
                    let c = b[i];
                    if c == '/' && b.get(i + 1) == Some(&'/') {
                        // Line comment: rest of the line is comment text.
                        line.comment.extend(&b[i..]);
                        i = b.len();
                    } else if c == '/' && b.get(i + 1) == Some(&'*') {
                        state = LexState::BlockComment(1);
                        i += 2;
                    } else if c == '"' {
                        line.code.push('"');
                        state = LexState::Str;
                        i += 1;
                    } else if c == 'r'
                        && matches!(b.get(i + 1), Some('"' | '#'))
                        && !prev_is_ident(&line.code)
                    {
                        // Raw string r"…" / r#"…"#.
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while b.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if b.get(j) == Some(&'"') {
                            line.code.push_str("r\"");
                            state = LexState::RawStr(hashes);
                            i = j + 1;
                        } else {
                            // `r#ident` raw identifier, not a string.
                            line.code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal vs lifetime: 'x' or '\n' closes
                        // with a quote; 'a (lifetime) does not.
                        if b.get(i + 1) == Some(&'\\') {
                            line.code.push_str("' '");
                            let mut j = i + 2;
                            while j < b.len() && b[j] != '\'' {
                                j += 1;
                            }
                            i = j + 1;
                        } else if b.get(i + 2) == Some(&'\'') {
                            line.code.push_str("' '");
                            i += 3;
                        } else {
                            line.code.push(c); // lifetime tick
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
                LexState::Str => {
                    let c = b[i];
                    if c == '\\' {
                        line.code.push(' ');
                        i += 2; // skip the escaped char (incl. \")
                        i = i.min(b.len());
                    } else if c == '"' {
                        line.code.push('"');
                        state = LexState::Code;
                        i += 1;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    let closes = b[i] == '"'
                        && b[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&c| c == '#')
                            .count()
                            == hashes;
                    if closes {
                        line.code.push('"');
                        state = LexState::Code;
                        i += 1 + hashes;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                LexState::BlockComment(depth) => {
                    if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            LexState::Code
                        } else {
                            LexState::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        state = LexState::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        line.comment.push(b[i]);
                        i += 1;
                    }
                }
            }
        }
        // Strings and block comments legitimately span lines in Rust,
        // so `state` carries across the newline unchanged.
        out.push(line);
    }
    out
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Mark the lines belonging to `#[cfg(test)] mod … { … }` regions so the
/// panic-free rule can skip test code. Returns one flag per line.
pub fn test_region_mask(lines: &[LexedLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].code.trim();
        if t.starts_with("#[cfg(test)]") {
            // Scan forward past further attributes/blank lines to the
            // item; if it opens a brace-block, mask to the matching
            // close (covers `mod tests {` and `#[cfg(test)] fn`s).
            let mut j = i + 1;
            while j < lines.len() && {
                let s = lines[j].code.trim();
                s.is_empty() || s.starts_with("#[")
            } {
                j += 1;
            }
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut k = j;
            while k < lines.len() {
                for c in lines[k].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                k += 1;
            }
            let end = k.min(lines.len().saturating_sub(1));
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = k + 1;
        } else {
            i += 1;
        }
    }
    mask
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn finding(rule: Rule, file: &Path, line: usize, message: impl Into<String>) -> Finding {
    Finding {
        rule,
        file: file.to_path_buf(),
        line: line + 1,
        message: message.into(),
    }
}

/// Rule 1 body: report every panic-capable call outside test regions.
/// The allowlist layer downstream decides which hits are new debt.
pub fn scan_panics(file: &Path, lines: &[LexedLine]) -> Vec<Finding> {
    let mask = test_region_mask(lines);
    let mut out = Vec::new();
    for (n, l) in lines.iter().enumerate() {
        if mask[n] {
            continue;
        }
        for (tok, what) in [
            (".unwrap()", "unwrap() can panic"),
            (".expect(", "expect() can panic"),
            ("panic!", "explicit panic!"),
        ] {
            let mut hay = l.code.as_str();
            while let Some(p) = hay.find(tok) {
                // `.expect(` cannot match `.expect_err(` because the
                // token includes the open paren; `panic!` must not match
                // the tail of e.g. `dont_panic!`.
                let pre = &l.code[..l.code.len() - hay.len() + p];
                if tok != "panic!" || !prev_is_ident(pre) {
                    out.push(finding(
                        Rule::PanicFree,
                        file,
                        n,
                        format!("{what} in library code (use a typed error)"),
                    ));
                }
                hay = &hay[p + tok.len()..];
            }
        }
    }
    out
}

/// Rule 2: the sparse kernels' never-FMA contract.
pub fn scan_fma(file: &Path, lines: &[LexedLine]) -> Vec<Finding> {
    lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.code.contains("mul_add"))
        .map(|(n, _)| {
            finding(
                Rule::NoFma,
                file,
                n,
                "mul_add violates the bitwise-reproducibility (never-FMA) contract",
            )
        })
        .collect()
}

/// Rule 3: wall clocks and unordered iteration break simnet determinism.
pub fn scan_determinism(file: &Path, lines: &[LexedLine]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (n, l) in lines.iter().enumerate() {
        for (tok, what) in [
            ("Instant", "wall-clock Instant in a virtual-time module"),
            (
                "SystemTime",
                "wall-clock SystemTime in a virtual-time module",
            ),
            (
                "HashMap",
                "default-hasher HashMap iterates in seed-dependent order (use BTreeMap)",
            ),
        ] {
            let mut hay = l.code.as_str();
            while let Some(p) = hay.find(tok) {
                let pre = &l.code[..l.code.len() - hay.len() + p];
                let post = &hay[p + tok.len()..];
                let next_ident = post
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
                if !prev_is_ident(pre) && !next_ident {
                    out.push(finding(Rule::Determinism, file, n, what));
                }
                hay = post;
            }
        }
    }
    out
}

/// Rule 4: every `unsafe` block carries a `SAFETY:` comment, either on
/// the block's own line or in the comment block directly above it.
pub fn scan_safety(file: &Path, lines: &[LexedLine]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (n, l) in lines.iter().enumerate() {
        let code = &l.code;
        let mut hay = code.as_str();
        while let Some(p) = hay.find("unsafe") {
            let abs = code.len() - hay.len() + p;
            let pre = &code[..abs];
            let post = &hay[p + "unsafe".len()..];
            hay = post;
            if prev_is_ident(pre)
                || post
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                continue; // identifier containing "unsafe"
            }
            let rest = post.trim_start();
            // `unsafe fn` / `unsafe impl` / `unsafe trait` declare a
            // contract rather than discharge one; `unsafe_op_in_unsafe_fn`
            // (denied workspace-wide) forces interior blocks, which is
            // where this rule then applies.
            if rest.starts_with("fn")
                || rest.starts_with("impl")
                || rest.starts_with("trait")
                || rest.starts_with("extern")
            {
                continue;
            }
            // Accept `SAFETY:` on the block's own line or anywhere in
            // the contiguous run of pure-comment lines directly above
            // it (multi-line justifications are encouraged, not capped).
            let mut documented = l.comment.contains("SAFETY:");
            let mut m = n;
            while !documented && m > 0 {
                m -= 1;
                let above = &lines[m];
                if !above.code.trim().is_empty() {
                    break;
                }
                documented = above.comment.contains("SAFETY:");
                if above.comment.is_empty() {
                    break; // blank line ends the comment block
                }
            }
            if !documented {
                out.push(finding(
                    Rule::SafetyComment,
                    file,
                    n,
                    "unsafe block without a `// SAFETY:` comment",
                ));
            }
        }
    }
    out
}

/// Rule 5: functions tagged `// lint: hot-path` must not allocate.
pub fn scan_hot_path(file: &Path, lines: &[LexedLine]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        // The tag must BE the comment, not merely appear in one —
        // otherwise prose mentioning the marker (like this lint's own
        // docs) would tag whatever function follows it.
        if !lines[i]
            .comment
            .trim_start()
            .starts_with("// lint: hot-path")
        {
            i += 1;
            continue;
        }
        // Find the tagged fn's body: first `{` at or after the tag,
        // then brace-balance to its close.
        let mut j = i;
        while j < lines.len() && !lines[j].code.contains('{') {
            j += 1;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut k = j;
        while k < lines.len() {
            let l = &lines[k];
            for (tok, what) in [
                ("Vec::new", "Vec::new allocates"),
                ("vec!", "vec! allocates"),
                ("Box::new", "Box::new allocates"),
                (".collect(", "collect() allocates"),
                (".collect::<", "collect() allocates"),
                (".to_vec()", "to_vec() allocates"),
            ] {
                if l.code.contains(tok) {
                    out.push(finding(
                        Rule::HotPathAlloc,
                        file,
                        k,
                        format!("{what} inside a `lint: hot-path` function"),
                    ));
                }
            }
            for c in l.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            k += 1;
        }
        i = k + 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Workspace driver
// ---------------------------------------------------------------------------

/// Crates whose `src/` must be panic-free (rule 1). The bench harness
/// and vendored stand-ins are exempt: the harness is allowed to die
/// loudly, and minloom uses panics as scheduler control flow.
const LIBRARY_CRATES: [&str; 5] = [
    "crates/core",
    "crates/graph",
    "crates/net",
    "crates/simnet",
    "crates/sparse",
];

/// Directories scanned for the universal safety rule (and the
/// per-crate rules 2/3/5). Fixture files under `crates/lint/fixtures`
/// are excluded — they exist to trip every rule in the self-tests.
const SCAN_ROOTS: [&str; 2] = ["crates", "vendor"];

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            let name = p.file_name().and_then(|s| s.to_str()).unwrap_or("");
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn rel<'a>(root: &Path, p: &'a Path) -> &'a Path {
    p.strip_prefix(root).unwrap_or(p)
}

/// Scan one file, applying every rule whose scope covers `relpath`.
/// Panic findings are returned separately — they go through the
/// allowlist, not straight to the report.
pub fn scan_file(relpath: &Path, text: &str) -> (Vec<Finding>, Vec<Finding>) {
    let lines = lex(text);
    let s = relpath.to_string_lossy().replace('\\', "/");
    let mut findings = scan_safety(relpath, &lines);
    if s.starts_with("crates/sparse/") {
        findings.extend(scan_fma(relpath, &lines));
    }
    if s.starts_with("crates/simnet/src/") {
        findings.extend(scan_determinism(relpath, &lines));
    }
    findings.extend(scan_hot_path(relpath, &lines));
    let mut panics = Vec::new();
    let in_lib = LIBRARY_CRATES
        .iter()
        .any(|c| s.starts_with(&format!("{c}/src/")));
    if in_lib {
        panics = scan_panics(relpath, &lines);
    }
    (findings, panics)
}

/// Parse the ratcheting allowlist: `<count> <path>` per line.
fn parse_allowlist(text: &str) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        if let (Some(count), Some(path)) = (it.next(), it.next()) {
            if let Ok(c) = count.parse::<usize>() {
                map.insert(path.to_string(), c);
            }
        }
    }
    map
}

fn render_allowlist(counts: &BTreeMap<String, usize>) -> String {
    let mut s = String::from(
        "# Ratcheting allowlist for the panic-free-library lint rule.\n\
         # Format: <count> <path>. Counts may only decrease; after paying\n\
         # down debt, regenerate with `cargo run -p dtm-lint -- --update-allowlist`.\n",
    );
    for (path, count) in counts {
        if *count > 0 {
            s.push_str(&format!("{count} {path}\n"));
        }
    }
    s
}

/// Outcome of a workspace lint run.
pub struct Summary {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    /// Files whose panic count dropped below the allowlist cap:
    /// `(file, current, cap)` ratchet opportunities, reported but not
    /// failing.
    pub ratchet: Vec<(String, usize, usize)>,
}

/// Locate the workspace root: walk up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut d = Some(start.to_path_buf());
    while let Some(cur) = d {
        let manifest = cur.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(cur);
            }
        }
        d = cur.parent().map(Path::to_path_buf);
    }
    None
}

/// Run every rule over the workspace at `root`. With `update_allowlist`
/// the panic allowlist is rewritten to the current counts instead of
/// being enforced.
pub fn run(root: &Path, update_allowlist: bool) -> std::io::Result<Summary> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        collect_rs(&root.join(sub), &mut files);
    }
    let mut findings = Vec::new();
    let mut panic_hits: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for path in &files {
        let text = fs::read_to_string(path)?;
        let relpath = rel(root, path).to_path_buf();
        let (f, p) = scan_file(&relpath, &text);
        findings.extend(f);
        if !p.is_empty() {
            panic_hits.insert(relpath.to_string_lossy().replace('\\', "/"), p);
        }
    }

    let allowlist_path = root.join(ALLOWLIST);
    let mut ratchet = Vec::new();
    if update_allowlist {
        let counts: BTreeMap<String, usize> = panic_hits
            .iter()
            .map(|(k, v)| (k.clone(), v.len()))
            .collect();
        fs::write(&allowlist_path, render_allowlist(&counts))?;
    } else {
        let allowed = parse_allowlist(&fs::read_to_string(&allowlist_path).unwrap_or_default());
        for (file, hits) in &panic_hits {
            let cap = allowed.get(file).copied().unwrap_or(0);
            match hits.len() {
                n if n > cap => {
                    // Over budget: new debt is indistinguishable from
                    // old, so report every site with the budget context.
                    for h in hits {
                        let mut h = h.clone();
                        h.message = format!("{} [{n} in file, allowlist caps {cap}]", h.message);
                        findings.push(h);
                    }
                }
                n if n < cap => ratchet.push((file.clone(), n, cap)),
                _ => {}
            }
        }
        // Stale entries for files that went fully clean are ratchet
        // opportunities too.
        for (file, cap) in &allowed {
            if !panic_hits.contains_key(file) && *cap > 0 {
                ratchet.push((file.clone(), 0, *cap));
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(Summary {
        files_scanned: files.len(),
        findings,
        ratchet,
    })
}

/// CLI entry shared by `cargo run -p dtm-lint` and `repro lint`:
/// lint the enclosing workspace, print findings, and return `Err` (for
/// a nonzero exit) if any rule fired.
pub fn run_cli(args: &[String]) -> Result<(), String> {
    let update = args.iter().any(|a| a == "--update-allowlist");
    let start = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = find_root(&start)
        .or_else(|| {
            // Fall back to the compile-time layout (this crate lives at
            // <root>/crates/lint) for out-of-tree invocations.
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .and_then(Path::parent)
                .map(Path::to_path_buf)
        })
        .ok_or("cannot locate workspace root")?;
    let summary = run(&root, update).map_err(|e| e.to_string())?;
    for f in &summary.findings {
        eprintln!("{f}");
    }
    for (file, now, cap) in &summary.ratchet {
        eprintln!(
            "note: {file} has {now} panic sites but the allowlist caps {cap} — \
             ratchet down with `cargo run -p dtm-lint -- --update-allowlist`"
        );
    }
    if update {
        println!("allowlist rewritten: {ALLOWLIST}");
    }
    if summary.findings.is_empty() {
        println!(
            "lint clean: {} files scanned, 0 findings{}",
            summary.files_scanned,
            if summary.ratchet.is_empty() {
                String::new()
            } else {
                format!(" ({} ratchet notes)", summary.ratchet.len())
            }
        );
        Ok(())
    } else {
        Err(format!("{} lint finding(s)", summary.findings.len()))
    }
}

#[cfg(test)]
mod tests;

//! `cargo run -p dtm-lint [-- --update-allowlist]` — lint the workspace.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = dtm_lint::run_cli(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

//! Lint self-tests: the lexer corner cases, and each rule against its
//! committed fixture (`crates/lint/fixtures/`, excluded from workspace
//! scans so the findings asserted here never gate CI).

use super::*;

fn fixture(name: &str) -> &'static str {
    match name {
        "panics" => include_str!("../fixtures/panics.rs"),
        "fma" => include_str!("../fixtures/fma.rs"),
        "nondet" => include_str!("../fixtures/nondet.rs"),
        "unsafe" => include_str!("../fixtures/unsafe_no_safety.rs"),
        "hot" => include_str!("../fixtures/hot_path_alloc.rs"),
        other => panic!("unknown fixture {other}"),
    }
}

fn p(name: &str) -> PathBuf {
    PathBuf::from(format!("crates/lint/fixtures/{name}.rs"))
}

// --- lexer ---------------------------------------------------------------

#[test]
fn lexer_strips_line_comments() {
    let l = lex("let x = 1; // SAFETY: not really\n");
    assert_eq!(l[0].code.trim_end(), "let x = 1;");
    assert!(l[0].comment.contains("SAFETY:"));
}

#[test]
fn lexer_blanks_string_contents() {
    let l = lex(r#"let s = "call .unwrap() and panic!";"#);
    assert!(!l[0].code.contains("unwrap"));
    assert!(!l[0].code.contains("panic"));
    assert!(l[0].code.starts_with("let s = \""));
}

#[test]
fn lexer_handles_escaped_quote_in_string() {
    let l = lex(r#"let s = "a\"b.unwrap()"; x.unwrap();"#);
    assert_eq!(l[0].code.matches(".unwrap()").count(), 1, "{:?}", l[0]);
}

#[test]
fn lexer_handles_raw_strings() {
    let l = lex(r##"let s = r#"mul_add inside"#; y.mul_add(a, b);"##);
    assert_eq!(l[0].code.matches("mul_add").count(), 1, "{:?}", l[0]);
}

#[test]
fn lexer_tracks_multiline_block_comments() {
    let text = "a();\n/* commented\n .unwrap()\n still */ b();\n";
    let l = lex(text);
    assert!(l[2].code.is_empty());
    assert!(l[2].comment.contains(".unwrap()"));
    assert!(l[3].code.contains("b();"));
}

#[test]
fn lexer_char_literal_vs_lifetime() {
    let l = lex("fn f<'a>(c: char) -> bool { c == '\"' }");
    // The quote inside the char literal must not open a string.
    assert!(l[0].code.contains("'a"), "{:?}", l[0]);
    assert!(l[0].code.ends_with('}'), "{:?}", l[0]);
}

#[test]
fn lexer_multiline_string_carries_state() {
    let text = "let s = \"first\n.unwrap() second\";\nx.unwrap();";
    let l = lex(text);
    assert!(!l[1].code.contains(".unwrap()"), "{:?}", l[1]);
    assert!(l[2].code.contains(".unwrap()"));
}

#[test]
fn test_region_mask_covers_cfg_test_mod() {
    let lines = lex("fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n");
    let mask = test_region_mask(&lines);
    assert_eq!(mask, vec![false, true, true, true, true, false]);
}

// --- rules vs fixtures ---------------------------------------------------

#[test]
fn panic_rule_on_fixture() {
    let f = scan_panics(&p("panics"), &lex(fixture("panics")));
    assert_eq!(f.len(), 4, "{f:#?}");
    assert!(f.iter().all(|x| x.rule == Rule::PanicFree));
    // All findings in `trips()` (lines 4..=14), none in the test mod.
    assert!(f.iter().all(|x| x.line <= 14), "{f:#?}");
}

#[test]
fn fma_rule_on_fixture() {
    let f = scan_fma(&p("fma"), &lex(fixture("fma")));
    assert_eq!(f.len(), 2, "{f:#?}");
    assert!(f.iter().all(|x| x.rule == Rule::NoFma));
}

#[test]
fn determinism_rule_on_fixture() {
    let f = scan_determinism(&p("nondet"), &lex(fixture("nondet")));
    assert_eq!(f.len(), 7, "{f:#?}");
    assert!(f.iter().all(|x| x.rule == Rule::Determinism));
    // The wrapper-ident function must contribute nothing.
    let does_not_trip_line = fixture("nondet")
        .lines()
        .position(|l| l.contains("fn does_not_trip"))
        .unwrap()
        + 1;
    assert!(f.iter().all(|x| x.line < does_not_trip_line), "{f:#?}");
}

#[test]
fn safety_rule_on_fixture() {
    let f = scan_safety(&p("unsafe"), &lex(fixture("unsafe")));
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, Rule::SafetyComment);
    assert_eq!(f[0].line, 5, "must flag only the undocumented block");
}

#[test]
fn hot_path_rule_on_fixture() {
    let f = scan_hot_path(&p("hot"), &lex(fixture("hot")));
    assert_eq!(f.len(), 5, "{f:#?}");
    assert!(f.iter().all(|x| x.rule == Rule::HotPathAlloc));
    // The untagged function below must contribute nothing.
    let untagged_line = fixture("hot")
        .lines()
        .position(|l| l.contains("fn does_not_trip"))
        .unwrap()
        + 1;
    assert!(f.iter().all(|x| x.line < untagged_line), "{f:#?}");
}

#[test]
fn scan_file_applies_scopes() {
    // The same text under a sparse path trips no-fma; under a core path
    // it does not (FMA is legal outside the bitwise kernels).
    let text = "pub fn f(a: f64) -> f64 { a.mul_add(a, a) }\n";
    let (sparse, _) = scan_file(Path::new("crates/sparse/src/x.rs"), text);
    let (core, _) = scan_file(Path::new("crates/core/src/x.rs"), text);
    assert_eq!(sparse.len(), 1);
    assert!(core.is_empty());
}

#[test]
fn scan_file_separates_panic_findings() {
    let text = "pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
    let (f, panics) = scan_file(Path::new("crates/core/src/x.rs"), text);
    assert!(f.is_empty());
    assert_eq!(panics.len(), 1);
    // Non-library paths skip the panic rule entirely.
    let (_, none) = scan_file(Path::new("crates/bench/src/x.rs"), text);
    assert!(none.is_empty());
}

// --- allowlist -----------------------------------------------------------

#[test]
fn allowlist_roundtrip() {
    let mut counts = BTreeMap::new();
    counts.insert("crates/core/src/a.rs".to_string(), 3);
    counts.insert("crates/core/src/b.rs".to_string(), 0);
    let text = render_allowlist(&counts);
    let back = parse_allowlist(&text);
    assert_eq!(back.get("crates/core/src/a.rs"), Some(&3));
    assert!(!back.contains_key("crates/core/src/b.rs"), "zeros dropped");
}

#[test]
fn allowlist_ignores_comments_and_garbage() {
    let m = parse_allowlist("# header\n\nnot-a-count x.rs\n2 crates/a.rs\n");
    assert_eq!(m.len(), 1);
    assert_eq!(m.get("crates/a.rs"), Some(&2));
}

// --- the real tree -------------------------------------------------------

#[test]
fn workspace_is_lint_clean() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let s = run(&root, false).expect("lint run");
    assert!(s.files_scanned > 30, "scanned only {}", s.files_scanned);
    let report: Vec<String> = s.findings.iter().map(ToString::to_string).collect();
    assert!(
        s.findings.is_empty(),
        "tree not lint-clean:\n{}",
        report.join("\n")
    );
}

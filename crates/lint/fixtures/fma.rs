//! Fixture: must trip the never-FMA rule twice (scalar and method
//! position), and not on the comment mentioning mul_add below.

pub fn trips(a: f64, b: f64, c: f64) -> f64 {
    let d = a.mul_add(b, c); // finding 1
    f64::mul_add(d, b, c) // finding 2
}

pub fn does_not_trip(a: f64, b: f64, c: f64) -> f64 {
    // mul_add in a comment is fine; the contract is about emitted code.
    a * b + c
}

//! Fixture: must trip the safety-comment rule exactly once — on the
//! undocumented block, not the documented one or the declarations.

pub fn trips(p: *const u8) -> u8 {
    unsafe { *p } // finding 1: no SAFETY comment anywhere above
}

pub fn does_not_trip(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads (fixture).
    unsafe { *p }
}

/// Declarations state a contract; only blocks discharge one.
pub unsafe fn decl_not_flagged(p: *const u8) -> u8 {
    // SAFETY: forwarded verbatim to the caller's obligation.
    unsafe { *p }
}

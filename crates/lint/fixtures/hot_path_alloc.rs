//! Fixture: must trip the hot-path-alloc rule five times inside the
//! tagged function and zero times in the untagged one below it.

// lint: hot-path
pub fn trips(xs: &[u32]) -> usize {
    let a: Vec<u32> = Vec::new(); // finding 1
    let b = vec![1u32, 2]; // finding 2
    let c = Box::new(3u32); // finding 3
    let d: Vec<u32> = xs.iter().copied().collect(); // finding 4
    let e = xs.to_vec(); // finding 5
    a.len() + b.len() + d.len() + e.len() + *c as usize
}

pub fn does_not_trip(xs: &[u32]) -> Vec<u32> {
    // Untagged functions may allocate freely.
    let mut out = Vec::new();
    out.extend(xs.iter().copied());
    out
}

//! Fixture: must trip the panic-free rule exactly four times in
//! library positions, and zero times in the test module or literals.

pub fn trips() {
    let v: Option<u32> = None;
    let _ = v.unwrap(); // finding 1
    let _ = v.expect("gone"); // finding 2
    let r: Result<(), ()> = Err(());
    let _ = r.unwrap(); // finding 3
    if v.is_none() {
        panic!("boom"); // finding 4
    }
}

pub fn does_not_trip() {
    let v: Option<u32> = Some(1);
    let _ = v.unwrap_or(0);
    let _ = v.unwrap_or_else(|| 0);
    let _ = v.unwrap_or_default();
    let r: Result<(), u8> = Err(3);
    let _ = r.expect_err("fine");
    let _ = "a string mentioning .unwrap() and panic! is not code";
    // a comment mentioning .unwrap() and panic! is not code either
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Option<u32> = Some(2);
        assert_eq!(v.unwrap(), 2);
        v.expect("tests are allowed to be loud");
        if false {
            panic!("also fine here");
        }
    }
}

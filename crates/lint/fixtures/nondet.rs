//! Fixture: must trip the determinism rule three times (Instant,
//! SystemTime, HashMap) and not on BTreeMap or suffixed identifiers.

use std::collections::HashMap; // finding 1
use std::time::{Instant, SystemTime}; // findings 2 and 3 (one line, two tokens)

pub fn trips() -> usize {
    let m: HashMap<u32, u32> = HashMap::new(); // findings 4 and 5
    let _ = Instant::now(); // finding 6
    let _ = SystemTime::now(); // finding 7
    m.len()
}

pub fn does_not_trip() -> usize {
    let m: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    struct InstantLike;
    struct MyHashMapWrapper;
    let _ = (InstantLike, MyHashMapWrapper);
    m.len()
}

//! §5's key performance remark: the DTM local matrix is constant, so the
//! Cholesky factor is computed **once** and every boundary update costs only
//! a substitution. This bench quantifies the claim by comparing
//! factor-once + substitute against refactor-every-update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtm_bench::{fig11_topology, paper_split};
use dtm_core::impedance::{per_port, ImpedancePolicy};
use dtm_core::local::{LocalSolverKind, LocalSystem};
use std::hint::black_box;

fn bench_local_solve(c: &mut Criterion) {
    let topo = fig11_topology();
    let ss = paper_split(33, 4, 4, &topo); // n = 1089 on 16 parts
    let z = ImpedancePolicy::default().assign(&ss).expect("impedances");
    let zp = per_port(&ss, &z);
    let sd = &ss.subdomains[5]; // an interior part with many ports

    let mut group = c.benchmark_group("local_solve");
    for kind in [LocalSolverKind::Dense, LocalSolverKind::SparseRcm] {
        let label = format!("{kind:?}");
        // Factor once, substitute per update (the DTM design).
        group.bench_with_input(
            BenchmarkId::new("substitute_only", &label),
            &kind,
            |bench, &kind| {
                let mut ls = LocalSystem::new(sd, &zp[5], kind).expect("factors");
                let mut t = 0.0f64;
                bench.iter(|| {
                    t += 0.01;
                    for p in 0..ls.n_ports() {
                        ls.set_remote(p, t.sin(), t.cos());
                    }
                    black_box(ls.solve()[0])
                });
            },
        );
        // Strawman: refactor on every update.
        group.bench_with_input(
            BenchmarkId::new("refactor_every_update", &label),
            &kind,
            |bench, &kind| {
                let mut t = 0.0f64;
                bench.iter(|| {
                    let mut ls = LocalSystem::new(sd, &zp[5], kind).expect("factors");
                    t += 0.01;
                    for p in 0..ls.n_ports() {
                        ls.set_remote(p, t.sin(), t.cos());
                    }
                    black_box(ls.solve()[0])
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_local_solve
}
criterion_main!(benches);

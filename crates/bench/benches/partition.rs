//! Phase costs of the multilevel partitioner on the CI-sized 16³ grid and
//! the 110k-unknown 48³ grid: **coarsen** (repeated heavy-edge matching),
//! **initial** (nested dissection of the coarsest graph), and **refine**
//! (projection + boundary FM at every level), each timed separately, plus
//! the end-to-end `multilevel` and the `nested_dissection` reference.

use criterion::{criterion_group, criterion_main, Criterion};
use dtm_graph::partition::multilevel::{coarsen, uncoarsen_refine};
use dtm_graph::partition::{
    multilevel, nested_dissection, nested_dissection_with, PartitionConfig,
};
use dtm_sparse::generators;
use std::hint::black_box;

fn bench_grid(c: &mut Criterion, side: usize, parts: usize, samples: usize) {
    let a = generators::grid3d_laplacian(side, side, side);
    let cfg = PartitionConfig::default();
    let mut group = c.benchmark_group(&format!("partition_grid3d{side}p{parts}"));
    group.sample_size(samples);

    group.bench_function("coarsen", |bench| {
        bench.iter(|| black_box(coarsen(&a, parts, &cfg)));
    });

    let hierarchy = coarsen(&a, parts, &cfg);
    let coarse = hierarchy.coarsest_csr();
    group.bench_function("initial", |bench| {
        bench.iter(|| black_box(nested_dissection_with(&coarse, parts, &cfg)));
    });

    let initial = nested_dissection_with(&coarse, parts, &cfg);
    group.bench_function("refine", |bench| {
        bench.iter(|| black_box(uncoarsen_refine(&hierarchy, initial.clone(), parts, &cfg)));
    });

    group.bench_function("multilevel_total", |bench| {
        bench.iter(|| black_box(multilevel(&a, parts, &cfg)));
    });

    group.bench_function("nested_dissection_reference", |bench| {
        bench.iter(|| black_box(nested_dissection(&a, parts)));
    });

    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    bench_grid(c, 16, 8, 10);
    bench_grid(c, 48, 32, 5);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partition
}
criterion_main!(benches);

//! Wave-exchange throughput on the real-execution backends.
//!
//! The hot path under test is the pooled, allocation-free pipeline of
//! `dtm_core::runtime`: solve → refill recycled payload buffers in place →
//! send one coalesced message per neighbour → absorb-and-recycle at the
//! receiver — plus the dirty-column snapshot hand-off to the supervisor.
//! Runs terminate on the reference-free relative residual, so no oracle
//! direct solve pollutes the measurement; what's timed is purely exchange
//! plus local substitutions.
//!
//! Axes: backend (threaded = one OS thread per subdomain, rayon = work-
//! stealing pool), number of subdomains, and block width K (K ≤ 4 is the
//! zero-allocation inline path; see `tests/alloc_free.rs` for the counted
//! proof).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtm_core::rayon_backend::{self, RayonConfig};
use dtm_core::runtime::{CommonConfig, Termination};
use dtm_core::threaded::{self, ThreadedConfig};
use dtm_graph::evs::{split as evs_split, EvsOptions, SplitSystem};
use dtm_graph::{partition, ElectricGraph, PartitionPlan};
use dtm_sparse::generators;
use std::hint::black_box;
use std::time::Duration;

fn grid_split(side: usize, n_parts: usize) -> SplitSystem {
    let a = generators::grid2d_laplacian(side, side);
    let b = generators::random_rhs(side * side, 7_001);
    let g = ElectricGraph::from_system(a, b).expect("symmetric");
    let asg = partition::grid_strips(side, side, n_parts);
    let plan = PartitionPlan::from_assignment(&g, &asg).expect("valid");
    evs_split(&g, &plan, &EvsOptions::default()).expect("splits")
}

fn common() -> CommonConfig {
    CommonConfig {
        termination: Termination::Residual { tol: 1e-7 },
        max_solves_per_node: 1_000_000,
        ..Default::default()
    }
}

fn bench_wave_exchange(c: &mut Criterion) {
    let side = 8; // n = 64: the exchange, not the substitutions, dominates
    let mut group = c.benchmark_group("wave_exchange");
    for &n_parts in &[2usize, 4] {
        let ss = grid_split(side, n_parts);
        for &k in &[1usize, 4] {
            let cols: Vec<Vec<f64>> = (0..k)
                .map(|c| generators::random_rhs(side * side, 8_000 + c as u64))
                .collect();

            let threaded_config = ThreadedConfig {
                common: common(),
                budget: Duration::from_secs(30),
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("threaded/p{n_parts}"), k),
                &k,
                |bench, _| {
                    bench.iter(|| {
                        let report = threaded::solve_block(&ss, &cols, None, &threaded_config)
                            .expect("threaded block solve");
                        assert!(report.converged, "resid {}", report.final_residual);
                        black_box(report.total_messages)
                    });
                },
            );

            let rayon_config = RayonConfig {
                common: common(),
                num_threads: 2,
                budget: Duration::from_secs(30),
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("rayon/p{n_parts}"), k),
                &k,
                |bench, _| {
                    bench.iter(|| {
                        let report = rayon_backend::solve_block(&ss, &cols, None, &rayon_config)
                            .expect("rayon block solve");
                        assert!(report.converged, "resid {}", report.final_residual);
                        black_box(report.total_messages)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_wave_exchange
}
criterion_main!(benches);

//! Multi-RHS amortization: the factor-once design (§5) means additional
//! right-hand sides ride the same factorization and the same wave
//! exchange. This bench measures the wall-clock cost of a streaming
//! [`SolveSession`](dtm_core::SolveSession) batch at K ∈ {1, 4, 16, 64}
//! on the grid-Laplacian workload — divide a batch time by its K to get
//! the per-RHS amortized cost, which must fall as K grows (K = 16 strictly
//! below the K = 1 per-solve time is the acceptance bar; `repro batched`
//! prints the division). Two termination modes are measured side by side:
//! the oracle path pays K direct reference substitutions per batch for RMS
//! monitoring (cached factor, substitution only), while the reference-free
//! residual path (`Termination::Residual`) skips them — and the session's
//! reference factorization — entirely, stopping on the incrementally
//! tracked `‖b − A·x‖/‖b‖` instead; the difference between the groups is
//! the oracle tax.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtm_core::runtime::Termination;
use dtm_core::solver::ComputeModel;
use dtm_core::DtmBuilder;
use dtm_simnet::SimDuration;
use dtm_sparse::generators;
use std::hint::black_box;

fn bench_batched_rhs(c: &mut Criterion) {
    let side = 9; // n = 81: small enough that a batch is interactive
    let mut group = c.benchmark_group("batched_rhs");
    for (mode, termination) in [
        ("oracle", Termination::OracleRms { tol: 1e-8 }),
        ("residual", Termination::Residual { tol: 1e-8 }),
    ] {
        let a = generators::grid2d_laplacian(side, side);
        let b = generators::random_rhs(side * side, 4_001);
        let problem = DtmBuilder::new(a, b)
            .grid_blocks(side, side, 2, 2)
            .termination(termination)
            .compute(ComputeModel::Fixed(SimDuration::from_micros_f64(100.0)))
            .build()
            .expect("valid problem");
        for k in [1usize, 4, 16, 64] {
            let cols: Vec<Vec<f64>> = (0..k)
                .map(|c| generators::random_rhs(side * side, 5_000 + c as u64))
                .collect();
            // Factor once outside the measurement: the session IS the
            // product being measured — each iteration is one streamed
            // batch of K RHS.
            let mut session = problem.session().expect("factors");
            group.bench_with_input(
                BenchmarkId::new(format!("solve_batch/{mode}"), k),
                &k,
                |bench, _| {
                    bench.iter(|| {
                        for col in &cols {
                            session.push_rhs(col).expect("dimension ok");
                        }
                        let report = session.solve_batch().expect("converges");
                        assert!(report.converged);
                        black_box(report.final_residual)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batched_rhs
}
criterion_main!(benches);

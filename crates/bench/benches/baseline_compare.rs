//! DTM vs the randomized-asynchrony baselines, as a wall-clock bench.
//!
//! All three algorithms solve the identical workload on the identical
//! simulated machine — same 9×9 grid Laplacian, same 2×2 block partition,
//! same seeded asymmetric-delay mesh, same 1 ms compute model, same
//! reference-free residual tolerance (`dtm_bench::compare` is the single
//! source of that setup, shared with `repro compare`). The simulated-time
//! and counter comparison (the scientific result) is printed by
//! `repro compare`; this bench pins the *driver cost* — the wall-clock
//! price of running each algorithm's full exchange through the
//! discrete-event engine — and keeps all three code paths from rotting.

use criterion::{criterion_group, criterion_main, Criterion};
use dtm_bench::compare;
use std::hint::black_box;

fn bench_baseline_compare(c: &mut Criterion) {
    let setup = compare::grid_setup(9, 2, 2, 1e-6);
    let mut group = c.benchmark_group("baseline_compare");
    group.bench_function("dtm", |b| {
        b.iter(|| {
            let report = compare::dtm_report(&setup);
            assert!(report.converged);
            black_box(report.total_messages)
        });
    });
    group.bench_function("randomized_richardson", |b| {
        b.iter(|| {
            let report = compare::richardson_report(&setup);
            assert!(report.converged);
            black_box(report.total_messages)
        });
    });
    group.bench_function("d_iteration", |b| {
        b.iter(|| {
            let report = compare::diteration_report(&setup);
            assert!(report.converged);
            black_box(report.total_messages)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_baseline_compare
}
criterion_main!(benches);

//! Substrate kernels: sparse matvec, sparse vs dense Cholesky
//! factorization and substitution at DTM-local-system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtm_sparse::{generators, DenseCholesky, SparseCholesky};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec");
    for side in [17usize, 33, 65] {
        let a = generators::grid2d_random(side, side, 1.0, 5);
        let x = generators::random_rhs(a.n_rows(), 6);
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &a, |bench, a| {
            let mut y = vec![0.0; a.n_rows()];
            bench.iter(|| {
                a.matvec_into(&x, &mut y);
                black_box(y[0])
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cholesky_factor");
    for side in [9usize, 17, 33] {
        let a = generators::grid2d_random(side, side, 1.0, 5);
        group.bench_with_input(
            BenchmarkId::new("sparse_rcm", side * side),
            &a,
            |bench, a| {
                bench.iter(|| black_box(SparseCholesky::factor_rcm(a).expect("SPD").nnz_l()));
            },
        );
        if side <= 17 {
            group.bench_with_input(BenchmarkId::new("dense", side * side), &a, |bench, a| {
                bench.iter(|| black_box(DenseCholesky::factor_csr(a).expect("SPD").n()));
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("cholesky_substitute");
    for side in [9usize, 17, 33] {
        let a = generators::grid2d_random(side, side, 1.0, 5);
        let b = generators::random_rhs(a.n_rows(), 6);
        let f = SparseCholesky::factor_rcm(&a).expect("SPD");
        group.bench_with_input(
            BenchmarkId::new("sparse_rcm", side * side),
            &f,
            |bench, f| {
                let mut x = b.clone();
                bench.iter(|| {
                    x.copy_from_slice(&b);
                    f.solve_in_place(&mut x);
                    black_box(x[0])
                });
            },
        );
    }
    group.finish();

    // 3-D factors are where the cache-blocked kernel earns its keep: the
    // fill per column is much denser than in 2-D, so interleaving K RHS
    // turns each traversed factor entry into K unit-stride flops.
    let mut group = c.benchmark_group("block_substitute_3d");
    let a = generators::grid3d_laplacian(12, 12, 12);
    let n = a.n_rows();
    let f = SparseCholesky::factor_rcm(&a).expect("SPD");
    for k in [1usize, 8, 16] {
        let b: Vec<f64> = (0..k)
            .flat_map(|c| generators::random_rhs(n, 6 + c as u64))
            .collect();
        group.bench_with_input(BenchmarkId::new("colmajor", k), &f, |bench, f| {
            let mut x = b.clone();
            bench.iter(|| {
                x.copy_from_slice(&b);
                f.solve_block_colmajor(&mut x, k);
                black_box(x[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("blocked", k), &f, |bench, f| {
            let mut x = b.clone();
            let mut scratch = Vec::new();
            bench.iter(|| {
                x.copy_from_slice(&b);
                f.solve_block_with_scratch(&mut x, k, &mut scratch);
                black_box(x[0])
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels
}
criterion_main!(benches);

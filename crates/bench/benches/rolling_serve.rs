//! Rolling admission vs the batch barrier, as a wall-clock serving bench.
//!
//! Both policies serve the identical seeded Poisson arrival stream of
//! mixed-tolerance right-hand sides on the 9×9 grid-Laplacian problem
//! (the acceptance workload): `rolling/*` admits each arrival into the
//! live wave exchange the moment a column slot frees up and retires it at
//! its own tolerance; `batch_barrier` queues arrivals behind the running
//! batch and pays the strictest member's tolerance for every column. The
//! simulated-time *latency* comparison (the serving metric itself) is
//! printed by `repro serve`; this bench pins the *throughput* side — the
//! wall-clock cost of driving each policy through the same trace — and
//! keeps both paths from rotting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtm_bench::serve;
use std::hint::black_box;

fn bench_rolling_serve(c: &mut Criterion) {
    let problem = serve::serve_problem();
    let trace = serve::poisson_trace(81, 12, 4.0, 4_201);
    let mut group = c.benchmark_group("rolling_serve");
    for slots in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("rolling", slots), &slots, |bench, &s| {
            bench.iter(|| {
                let latencies = serve::serve_rolling(&problem, &trace, s);
                black_box(serve::latency_stats(&latencies))
            });
        });
    }
    group.bench_function("batch_barrier", |bench| {
        bench.iter(|| {
            let latencies = serve::serve_batch(&problem, &trace);
            black_box(serve::latency_stats(&latencies))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rolling_serve
}
criterion_main!(benches);

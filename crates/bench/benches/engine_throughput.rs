//! Raw discrete-event engine throughput: events per second with message
//! ping-pong and with a 16-node mesh flood — the simulator must stay out of
//! the way of the solver being measured.

use criterion::{criterion_group, criterion_main, Criterion};
use dtm_simnet::{Ctx, DelayModel, Engine, Envelope, Node, SimDuration, SimTime, Topology};
use std::hint::black_box;

struct Pinger {
    id: usize,
    hops: u64,
}

impl Node for Pinger {
    type Msg = u64;
    fn start(&mut self, ctx: &mut Ctx<u64>) {
        if self.id == 0 {
            ctx.send(1, 0);
        }
    }
    fn receive(&mut self, ctx: &mut Ctx<u64>, batch: &mut Vec<Envelope<u64>>) {
        for env in batch.drain(..) {
            if env.payload < self.hops {
                ctx.send(1 - self.id, env.payload + 1);
            }
        }
    }
}

struct Gossiper;

impl Node for Gossiper {
    type Msg = u32;
    fn start(&mut self, ctx: &mut Ctx<u32>) {
        let neighbors: Vec<usize> = ctx.neighbors().collect();
        for n in neighbors {
            ctx.send(n, 0);
        }
    }
    fn receive(&mut self, ctx: &mut Ctx<u32>, batch: &mut Vec<Envelope<u32>>) {
        ctx.set_compute(SimDuration::from_micros_f64(100.0));
        let hop = batch.iter().map(|e| e.payload).max().unwrap_or(0);
        if hop < 200 {
            let neighbors: Vec<usize> = ctx.neighbors().collect();
            for n in neighbors {
                ctx.send(n, hop + 1);
            }
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("pingpong_10k_messages", |bench| {
        bench.iter(|| {
            let topo = Topology::complete(2).with_delays(&DelayModel::fixed_us(5.0));
            let mut engine = Engine::new(
                topo,
                vec![
                    Pinger {
                        id: 0,
                        hops: 10_000,
                    },
                    Pinger {
                        id: 1,
                        hops: 10_000,
                    },
                ],
            );
            let out = engine.run_until(SimTime::from_nanos(u64::MAX - 1));
            black_box(out.events)
        });
    });

    c.bench_function("mesh4x4_gossip_200_rounds", |bench| {
        bench.iter(|| {
            let topo = Topology::mesh(4, 4).with_delays(&DelayModel::uniform_ms(1.0, 9.0, 3));
            let nodes = (0..16).map(|_| Gossiper).collect();
            let mut engine = Engine::new(topo, nodes);
            let out = engine.run_until(SimTime::from_nanos(u64::MAX - 1));
            black_box(out.events)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine
}
criterion_main!(benches);

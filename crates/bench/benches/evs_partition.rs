//! Cost of the preprocessing pipeline: plan derivation (greedy cut cover),
//! Electric Vertex Splitting, and reverse Cuthill–McKee ordering, at the
//! paper's largest size (n = 4225 on 64 parts).

use criterion::{criterion_group, criterion_main, Criterion};
use dtm_graph::evs::{split, EvsOptions};
use dtm_graph::{partition, ElectricGraph, PartitionPlan};
use dtm_sparse::{generators, ordering};
use std::hint::black_box;

fn bench_evs(c: &mut Criterion) {
    let a = generators::grid2d_random(65, 65, 1.0, 7);
    let b = generators::random_rhs(65 * 65, 8);
    let g = ElectricGraph::from_system(a.clone(), b).expect("symmetric");
    let asg = partition::grid_blocks(65, 65, 8, 8);

    c.bench_function("plan_from_assignment_4225", |bench| {
        bench.iter(|| black_box(PartitionPlan::from_assignment(&g, &asg).expect("valid")));
    });

    let plan = PartitionPlan::from_assignment(&g, &asg).expect("valid");
    c.bench_function("evs_split_4225_into_64", |bench| {
        bench.iter(|| black_box(split(&g, &plan, &EvsOptions::default()).expect("splits")));
    });

    c.bench_function("rcm_ordering_4225", |bench| {
        bench.iter(|| black_box(ordering::reverse_cuthill_mckee(&a)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_evs
}
criterion_main!(benches);

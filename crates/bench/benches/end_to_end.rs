//! End-to-end solver comparison at n = 289 on the Fig.-11 machine: wall
//! time of *our implementations* (simulation included for the distributed
//! ones) to reach RMS 10⁻⁶. Complements `repro cmp-*`, which reports
//! simulated time.

use criterion::{criterion_group, criterion_main, Criterion};
use dtm_bench::{fig11_topology, mesh_config, paper_split, paper_system};
use dtm_core::baselines::{self, BlockJacobiConfig};
use dtm_core::solver::{self, ComputeModel, Termination};
use dtm_core::vtm;
use dtm_simnet::SimDuration;
use dtm_sparse::solvers::{cg, IterConfig};
use dtm_sparse::SparseCholesky;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let side = 17;
    let topo = fig11_topology();
    let ss = paper_split(side, 4, 4, &topo);
    let (a, b) = paper_system(side);
    let asg = dtm_graph::partition::grid_blocks(side, side, 4, 4);
    let tol = 1e-6;

    let mut group = c.benchmark_group("end_to_end_289");
    group.bench_function("dtm_simulated", |bench| {
        bench.iter(|| {
            let r = solver::solve(&ss, fig11_topology(), None, &mesh_config(tol, 120_000.0))
                .expect("runs");
            black_box(r.final_rms)
        });
    });
    group.bench_function("vtm_rounds", |bench| {
        bench.iter(|| {
            let r = vtm::solve(
                &ss,
                None,
                &vtm::VtmConfig {
                    tol,
                    ..Default::default()
                },
            )
            .expect("runs");
            black_box(r.final_rms)
        });
    });
    group.bench_function("async_block_jacobi_simulated", |bench| {
        let config = BlockJacobiConfig {
            compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
            termination: Termination::OracleRms { tol },
            horizon: SimDuration::from_millis_f64(240_000.0),
            ..Default::default()
        };
        bench.iter(|| {
            let r = baselines::solve_async(&a, &b, &asg, fig11_topology(), None, &config)
                .expect("runs");
            black_box(r.final_rms)
        });
    });
    group.bench_function("cg_sequential", |bench| {
        bench.iter(|| {
            let r = cg::solve(&a, &b, &IterConfig::with_rtol(1e-10));
            black_box(r.residual)
        });
    });
    group.bench_function("sparse_cholesky_direct", |bench| {
        bench.iter(|| {
            let x = SparseCholesky::factor_rcm(&a).expect("SPD").solve(&b);
            black_box(x[0])
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_end_to_end
}
criterion_main!(benches);

//! Serving-workload plumbing shared by `repro serve` and
//! `benches/rolling_serve.rs`: a seeded Poisson arrival stream with mixed
//! per-ticket tolerances, driven either through a rolling session
//! (admission mid-exchange, per-column completion) or through the
//! batch-barrier [`SolveSession`](dtm_core::SolveSession) baseline
//! (arrivals wait for the running batch to drain, then share one exchange
//! and one tolerance).
//!
//! The serving metric is **per-RHS completion latency**: submission to
//! completion, in simulated milliseconds, per arrival. The rolling design
//! exists to lower it — a loose-tolerance ticket retires the moment *its*
//! residual crosses, instead of waiting for the tightest column of its
//! barrier batch.

use dtm_core::runtime::Termination;
use dtm_core::solver::ComputeModel;
use dtm_core::{DtmBuilder, DtmProblem};
use dtm_simnet::SimDuration;
use dtm_sparse::generators;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One arrival of the serving workload.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Simulated arrival instant, in milliseconds.
    pub at_ms: f64,
    /// The right-hand side.
    pub b: Vec<f64>,
    /// The ticket's own stopping rule.
    pub termination: Termination,
}

/// The tightest residual tolerance in the mixed traffic — the batch
/// baseline must run every batch at this tolerance (a barrier batch is
/// only done when its strictest member is).
pub const SERVE_TIGHT_TOL: f64 = 1e-6;

/// Default seed of the `repro serve` arrival trace (`repro serve --seed N`
/// overrides it; the same seed always reproduces the identical ticket
/// trace).
pub const SERVE_TRACE_SEED: u64 = 4_201;

/// The serving workload shape of `repro serve`:
/// `(arrival count, mean inter-arrival gap in simulated ms, rolling
/// slots)` — `quick` is the CI smoke variant.
pub fn serve_workload(quick: bool) -> (usize, f64, usize) {
    // Mean gap chosen near the single-ticket service time (~a few tens of
    // ms of simulated exchange): a loaded-but-not-saturated stream, where
    // admission policy — not raw throughput — decides the latency. The
    // slot pool is sized to the offered load.
    if quick {
        (12, 12.0, 4)
    } else {
        (36, 12.0, 8)
    }
}

/// The exact arrival trace `repro serve` drives for a given `--quick` /
/// `--seed` combination — deterministic per seed, so a run can be
/// reproduced ticket for ticket.
pub fn serve_trace(quick: bool, seed: u64) -> Vec<Arrival> {
    let (count, mean_gap_ms, _) = serve_workload(quick);
    poisson_trace(81, count, mean_gap_ms, seed)
}

/// The 9×9 grid-Laplacian serving problem (the acceptance benchmark),
/// torn 2×2, residual termination at the tightest traffic tolerance.
pub fn serve_problem() -> DtmProblem {
    let side = 9;
    let a = generators::grid2d_laplacian(side, side);
    DtmBuilder::new(a, vec![1.0; side * side])
        .grid_blocks(side, side, 2, 2)
        .termination(Termination::Residual {
            tol: SERVE_TIGHT_TOL,
        })
        .compute(ComputeModel::Fixed(SimDuration::from_micros_f64(100.0)))
        .build()
        .expect("serving problem builds")
}

/// A seeded Poisson arrival stream: exponential inter-arrival gaps with
/// mean `mean_gap_ms`, right-hand sides seeded per arrival, tolerances
/// cycling through mixed traffic — tight residual, loose residual, oracle
/// RMS — so one stream exercises every admission path.
pub fn poisson_trace(n: usize, count: usize, mean_gap_ms: f64, seed: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0_f64;
    (0..count)
        .map(|i| {
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -mean_gap_ms * (1.0 - u).ln();
            let termination = match i % 3 {
                0 => Termination::Residual {
                    tol: SERVE_TIGHT_TOL,
                },
                1 => Termination::Residual { tol: 1e-3 },
                _ => Termination::OracleRms { tol: 1e-7 },
            };
            Arrival {
                at_ms: t,
                b: generators::random_rhs(n, seed.wrapping_mul(1_000).wrapping_add(i as u64)),
                termination,
            }
        })
        .collect()
}

/// Serve `trace` through a rolling session with `slots` column slots;
/// returns per-arrival completion latency (ms of simulated time), in
/// arrival order.
///
/// # Panics
/// Panics if a ticket fails to complete within the drain budget.
pub fn serve_rolling(problem: &DtmProblem, trace: &[Arrival], slots: usize) -> Vec<f64> {
    let mut session = problem.rolling(slots).expect("rolling session builds");
    let mut reports = Vec::with_capacity(trace.len());
    for arrival in trace {
        let now = session.now().as_millis_f64();
        if arrival.at_ms > now {
            reports.extend(session.run_for(SimDuration::from_millis_f64(arrival.at_ms - now)));
        }
        session
            .submit(&arrival.b, arrival.termination)
            .expect("arrival admissible");
    }
    reports.extend(session.drain_for(SimDuration::from_millis_f64(600_000.0)));
    assert_eq!(
        reports.len(),
        trace.len(),
        "every ticket completes ({} outstanding)",
        session.outstanding()
    );
    let mut latencies = vec![f64::NAN; trace.len()];
    for r in &reports {
        latencies[r.ticket.0 as usize] = r.latency_ms();
    }
    assert!(latencies.iter().all(|l| l.is_finite()));
    latencies
}

/// Serve `trace` through the batch-barrier baseline: arrivals queue while
/// a batch runs; when it drains, everything queued forms the next batch,
/// solved at [`SERVE_TIGHT_TOL`] (the barrier pays the strictest member's
/// tolerance for every column). Returns per-arrival completion latency in
/// arrival order — each arrival completes when its whole batch does.
///
/// # Panics
/// Panics if a batch fails to converge.
pub fn serve_batch(problem: &DtmProblem, trace: &[Arrival]) -> Vec<f64> {
    let mut session = problem.session().expect("batch session builds");
    let mut latencies = vec![0.0_f64; trace.len()];
    let mut clock = 0.0_f64;
    let mut next = 0;
    while next < trace.len() {
        // Idle until the next arrival if nothing is queued.
        clock = clock.max(trace[next].at_ms);
        let mut batch = Vec::new();
        while next < trace.len() && trace[next].at_ms <= clock {
            batch.push(next);
            next += 1;
        }
        for &j in &batch {
            session.push_rhs(&trace[j].b).expect("dimension ok");
        }
        let report = session.solve_batch().expect("batch converges");
        assert!(report.converged, "batch residual {}", report.final_residual);
        clock += report.final_time_ms;
        for &j in &batch {
            latencies[j] = clock - trace[j].at_ms;
        }
    }
    latencies
}

/// `(mean, p50, max)` of a latency set.
pub fn latency_stats(latencies: &[f64]) -> (f64, f64, f64) {
    assert!(!latencies.is_empty());
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let p50 = sorted[sorted.len() / 2];
    let max = *sorted.last().expect("non-empty");
    (mean, p50, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_is_seeded_and_monotone() {
        let a = poisson_trace(81, 12, 5.0, 42);
        let b = poisson_trace(81, 12, 5.0, 42);
        let c = poisson_trace(81, 12, 5.0, 43);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_ms, y.at_ms, "deterministic per seed");
            assert_eq!(x.b, y.b);
        }
        assert!(a.iter().zip(&c).any(|(x, y)| x.at_ms != y.at_ms));
        assert!(a.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        // Mixed traffic: both rules and several tolerances appear.
        assert!(a
            .iter()
            .any(|x| matches!(x.termination, Termination::OracleRms { .. })));
        assert!(a
            .iter()
            .any(|x| matches!(x.termination, Termination::Residual { tol } if tol > 1e-4)));
    }

    #[test]
    fn serve_trace_is_reproducible_per_seed() {
        // The `repro serve --seed N` contract: the same seed reproduces
        // the identical ticket trace (arrival instants, right-hand sides
        // AND per-ticket stopping rules), a different seed does not.
        for quick in [true, false] {
            let a = serve_trace(quick, 7);
            let b = serve_trace(quick, 7);
            let (count, _, _) = serve_workload(quick);
            assert_eq!(a.len(), count);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.at_ms, y.at_ms, "identical arrival instants");
                assert_eq!(x.b, y.b, "identical right-hand sides");
                assert_eq!(x.termination, y.termination, "identical rules");
            }
            let c = serve_trace(quick, 8);
            assert!(
                a.iter()
                    .zip(&c)
                    .any(|(x, y)| x.at_ms != y.at_ms || x.b != y.b),
                "a different seed produces a different trace"
            );
        }
        // The default seed is the one the CLI documents.
        let d = serve_trace(true, SERVE_TRACE_SEED);
        let e = serve_trace(true, 4_201);
        assert_eq!(d.len(), e.len());
        for (x, y) in d.iter().zip(&e) {
            assert_eq!(x.at_ms, y.at_ms);
        }
    }

    #[test]
    fn latency_stats_order() {
        let (mean, p50, max) = latency_stats(&[1.0, 3.0, 2.0]);
        assert!((mean - 2.0).abs() < 1e-12);
        assert_eq!(p50, 2.0);
        assert_eq!(max, 3.0);
    }
}

//! Shared experiment plumbing for the figure/table reproduction harness and
//! the Criterion benches: canonical setups for each paper experiment,
//! series decimation, and plain-text chart/table rendering.

#[cfg(feature = "alloc-count")]
pub mod alloc_count;
pub mod compare;
pub mod perf;
pub mod serve;

use dtm_core::impedance::ImpedancePolicy;
use dtm_core::runtime::CommonConfig;
use dtm_core::solver::{ComputeModel, DtmConfig, Termination};
use dtm_graph::evs::{split as evs_split, EvsOptions, SplitSystem, TwinTopology};
use dtm_graph::{partition, ElectricGraph, PartitionPlan};
use dtm_simnet::{DelayModel, SimDuration, Topology};
use dtm_sparse::{generators, Csr};
use std::collections::BTreeSet;

/// Seeds fixed once for the whole reproduction (documented in
/// EXPERIMENTS.md).
pub mod seeds {
    /// Fig. 11 delay table (16-processor mesh).
    pub const FIG11_DELAYS: u64 = 1108;
    /// Fig. 13 delay table (64-processor mesh).
    pub const FIG13_DELAYS: u64 = 1308;
    /// Random-conductance grid systems.
    pub const SYSTEM: u64 = 2008;
    /// Right-hand sides.
    pub const RHS: u64 = 2009;
}

/// The paper's Example 5.1 machine: two processors, τ(A→B) = 6.7 µs,
/// τ(B→A) = 2.9 µs (Fig. 7A).
pub fn example_5_1_topology() -> Topology {
    Topology::from_links(
        2,
        vec![
            dtm_simnet::Link {
                src: 0,
                dst: 1,
                delay: SimDuration::from_micros_f64(6.7),
            },
            dtm_simnet::Link {
                src: 1,
                dst: 0,
                delay: SimDuration::from_micros_f64(2.9),
            },
        ],
    )
}

/// The paper's Example 4.1/5.1 split of system (3.2).
pub fn example_5_1_split() -> SplitSystem {
    let (a, b) = generators::paper_example_system();
    let g = ElectricGraph::from_system(a, b).expect("paper system is symmetric");
    let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).expect("valid plan");
    let options = EvsOptions {
        explicit: dtm_graph::evs::paper_example_shares(),
        ..Default::default()
    };
    evs_split(&g, &plan, &options).expect("paper split is valid")
}

/// Fig. 11's machine: 16 processors in a 4×4 mesh, asymmetric delays in
/// [10, 99] ms (the figure shows only a bar chart; we regenerate a table
/// with the same min/max/spread from a fixed seed — see DESIGN.md §2).
pub fn fig11_topology() -> Topology {
    Topology::mesh(4, 4).with_delays(&DelayModel::uniform_ms(10.0, 99.0, seeds::FIG11_DELAYS))
}

/// Fig. 13's machine: 64 processors in an 8×8 mesh, delays uniform in
/// [10, 100] ms.
pub fn fig13_topology() -> Topology {
    Topology::mesh(8, 8).with_delays(&DelayModel::uniform_ms(10.0, 100.0, seeds::FIG13_DELAYS))
}

/// A paper-style random sparse SPD test system: `side × side` grid with
/// random conductances (n = side²; the paper's sizes are 17² = 289,
/// 33² = 1089, 65² = 4225).
pub fn paper_system(side: usize) -> (Csr, Vec<f64>) {
    let a = generators::grid2d_random(side, side, 1.0, seeds::SYSTEM);
    let b = generators::random_rhs(side * side, seeds::RHS);
    (a, b)
}

/// Tear a `side × side` grid system into `px × py` blocks with machine-
/// aligned DTLP trees (level-1 + level-2 mixed EVS, §7).
pub fn paper_split(side: usize, px: usize, py: usize, topo: &Topology) -> SplitSystem {
    let (a, b) = paper_system(side);
    let g = ElectricGraph::from_system(a, b).expect("generated system is symmetric");
    let asg = partition::grid_blocks(side, side, px, py);
    let plan = PartitionPlan::from_assignment(&g, &asg).expect("regular plan");
    let pairs: BTreeSet<(usize, usize)> = topo
        .links()
        .iter()
        .map(|l| (l.src.min(l.dst), l.src.max(l.dst)))
        .collect();
    let options = EvsOptions {
        twin_topology: TwinTopology::TreeWithin(pairs),
        ..Default::default()
    };
    evs_split(&g, &plan, &options).expect("regular split is valid")
}

/// Which stopping rule the repro subcommands exercise: the paper's oracle
/// RMS (direct solve per RHS) or the production reference-free relative
/// residual (`repro … --termination residual`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TerminationMode {
    /// Oracle RMS against the direct solution (the paper's figures).
    #[default]
    Oracle,
    /// Reference-free relative true residual `‖b − A·x‖/‖b‖`.
    Residual,
}

impl TerminationMode {
    /// Parse a `--termination` argument value.
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "oracle" => Some(Self::Oracle),
            "residual" => Some(Self::Residual),
            _ => None,
        }
    }

    /// Resolve to a concrete [`Termination`] at tolerance `tol`.
    pub fn termination(self, tol: f64) -> Termination {
        match self {
            Self::Oracle => Termination::OracleRms { tol },
            Self::Residual => Termination::Residual { tol },
        }
    }

    /// The report scalar this mode stops on: oracle RMS or relative
    /// residual (`final_rms` is `NaN` on reference-free runs, so pick the
    /// right field for printing — or use [`fmt_metric`] /
    /// [`SolveReport::final_rms_opt`](dtm_core::SolveReport::final_rms_opt)
    /// for table cells).
    pub fn metric_of(self, report: &dtm_core::SolveReport) -> f64 {
        match self {
            Self::Oracle => report.final_rms,
            Self::Residual => report.final_residual,
        }
    }
}

/// Format an optional metric for a table cell: `-` when the value is
/// absent (e.g. the oracle RMS of a reference-free run, where
/// `SolveReport::final_rms` is `NaN` by contract) instead of leaking
/// `NaN` into the output.
pub fn fmt_metric(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v:.2e}"),
        _ => "-".into(),
    }
}

/// The DTM configuration used for the mesh experiments: 1 ms local solves
/// (bounding the asynchronous event rate the way a real CPU does), oracle
/// monitoring.
pub fn mesh_config(tol: f64, horizon_ms: f64) -> DtmConfig {
    mesh_config_mode(tol, horizon_ms, TerminationMode::Oracle)
}

/// [`mesh_config`] with an explicit [`TerminationMode`] (the
/// `--termination` CLI knob).
pub fn mesh_config_mode(tol: f64, horizon_ms: f64, mode: TerminationMode) -> DtmConfig {
    DtmConfig {
        common: CommonConfig {
            impedance: ImpedancePolicy::default(),
            termination: mode.termination(tol),
            ..Default::default()
        },
        compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
        horizon: SimDuration::from_millis_f64(horizon_ms),
        sample_interval: SimDuration::from_millis_f64(5.0),
        ..Default::default()
    }
}

/// Keep at most `max_points` series points, always retaining the last.
pub fn decimate(series: &[(f64, f64)], max_points: usize) -> Vec<(f64, f64)> {
    if series.len() <= max_points || max_points < 2 {
        return series.to_vec();
    }
    let stride = series.len().div_ceil(max_points - 1);
    let mut out: Vec<(f64, f64)> = series.iter().step_by(stride).copied().collect();
    let last = *series.last().expect("non-empty");
    if out.last() != Some(&last) {
        out.push(last);
    }
    out
}

/// Render a horizontal ASCII bar chart (the Fig. 11B / 13B bar charts).
pub fn ascii_bars(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().fold(0.0_f64, |m, &(_, v)| m.max(v)).max(1e-300);
    let mut out = String::new();
    for (label, v) in rows {
        let n = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!("{label:>12} | {} {v:.0}\n", "#".repeat(n)));
    }
    out
}

/// Print a two-column convergence series with a caption.
pub fn print_series(caption: &str, unit: &str, series: &[(f64, f64)]) {
    println!("# {caption}");
    println!("{:>14}  {:>12}", format!("t [{unit}]"), "rms_error");
    for (t, e) in series {
        println!("{t:>14.4}  {e:>12.4e}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimate_keeps_endpoints() {
        let s: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 1.0 / (i + 1) as f64)).collect();
        let d = decimate(&s, 10);
        assert!(d.len() <= 11);
        assert_eq!(d[0], s[0]);
        assert_eq!(*d.last().unwrap(), *s.last().unwrap());
    }

    #[test]
    fn fig11_topology_matches_paper_spread() {
        let t = fig11_topology();
        let (lo, hi) = t.delay_range();
        // "The maximum delay (99ms) is about 9 times larger than the
        // minimum delay (10ms)."
        assert!(lo.as_millis_f64() >= 10.0);
        assert!(hi.as_millis_f64() <= 99.0);
        assert!(hi.as_millis_f64() / lo.as_millis_f64() > 5.0);
        assert!(t.asymmetry() > 0.1, "delays must be asymmetric");
        assert_eq!(t.n_nodes(), 16);
    }

    #[test]
    fn paper_split_sizes() {
        let topo = fig11_topology();
        let ss = paper_split(17, 4, 4, &topo);
        assert_eq!(ss.n_parts(), 16);
        assert_eq!(ss.original_n, 289);
        // Multilevel (3-way) splits exist at the block cross points.
        assert!(ss.copy_count.iter().any(|&c| c >= 3));
    }

    #[test]
    fn example_split_is_the_paper_one() {
        let ss = example_5_1_split();
        assert_eq!(ss.dtlps.len(), 2);
        assert_eq!(ss.subdomains[0].matrix.get(0, 0), 2.5);
    }

    #[test]
    fn fmt_metric_renders_dash_for_missing_values() {
        assert_eq!(fmt_metric(Some(1.25e-7)), "1.25e-7");
        assert_eq!(fmt_metric(None), "-");
        assert_eq!(fmt_metric(Some(f64::NAN)), "-");
    }

    #[test]
    fn bars_render() {
        let s = ascii_bars(&[("a".into(), 10.0), ("b".into(), 5.0)], 20);
        assert!(s.contains("####################"));
        assert!(s.contains("##########"));
    }
}

//! Reproduction harness: one subcommand per table/figure of the paper.
//!
//! ```text
//! repro fig3     electric graph of system (3.2)                 [§3, Fig. 3]
//! repro fig5     EVS split into subsystems (4.1)/(4.2)          [§4, Fig. 5]
//! repro fig7     algorithm-architecture delay mapping setup     [§5, Fig. 7]
//! repro fig8     DTM trajectories for Example 5.1               [§5, Fig. 8]
//! repro fig9     RMS error at t = 100 µs vs impedances          [§5, Fig. 9]
//! repro table1   traced run: N2N only, no sync, no broadcast    [§5, Table 1]
//! repro fig11    16-processor mesh delay table + bar chart      [§7, Fig. 11]
//! repro fig12    DTM convergence on 16 processors               [§7, Fig. 12]
//! repro fig13    64-processor mesh delays + bar chart           [§7, Fig. 13]
//! repro fig14    DTM convergence on 64 processors               [§7, Fig. 14]
//! repro cmp-vtm  DTM vs VTM (conclusion §8)                     [§8]
//! repro cmp-jacobi  DTM vs async/sync block-Jacobi (§1)         [§1]
//! repro sweep-z  spectral radius vs impedance scale (Thm 6.1)   [§6, Fig. 9]
//! repro batched  per-RHS amortized cost of multi-RHS batches    [§5, factor-once]
//! repro serve    rolling admission vs batch barrier latency     [§5, factor-once]
//! repro compare  DTM vs randomized-asynchrony baselines          [§1, §6]
//! repro all      everything above
//! ```
//!
//! `compare` pits DTM against the two randomized-asynchrony baselines —
//! Avron et al.'s randomized asynchronous Richardson and Hong's
//! D-iteration — **message for message on the identical machine**: same
//! grid Laplacian, same 2×2 block partition, same seeded asymmetric-delay
//! mesh, same 1 ms compute model, and the same reference-free
//! `Termination::Residual` rule (no oracle taints the comparison). It
//! prints the uniform message/activation/flop counter table plus tagged
//! activation-trace samples, and asserts all three algorithms converge
//! with populated counters (the CI smoke contract). `--quick` loosens the
//! tolerance.
//!
//! `compare --transport uds|tcp [--processes N]` switches to the
//! **distributed socket backend**: the same DTM solve run once in-process
//! and once across N spawned OS processes linked by real sockets
//! (`dtm-net`), asserted **bit-for-bit** equal — solution bits, residual
//! bits and deterministic work counters. (The hidden `net-child`
//! subcommand is this executable relaunched as a child process.)
//!
//! `batched` sweeps K ∈ {1, 4, 16, 64} by default; `--num-rhs K` pins a
//! single batch width instead.
//!
//! `serve` drives a Poisson arrival stream of mixed-tolerance right-hand
//! sides (tight residual / loose residual / oracle RMS) through a rolling
//! session — tickets admitted into the live wave exchange as column slots
//! free up, each stopping at its own target — and through the batch-barrier
//! baseline, then compares per-RHS completion latency. `--quick` shrinks
//! the stream (the CI smoke test); the subcommand asserts every ticket
//! completes and that rolling beats the barrier on mean latency.
//! `--seed N` pins the arrival-trace seed: the same seed reproduces the
//! identical ticket trace (instants, right-hand sides and stopping rules).
//!
//! `--termination residual|oracle` (default `oracle`) selects the stopping
//! rule for the convergence subcommands (`fig12`, `fig14`, `batched`):
//! `oracle` monitors RMS against a direct solve per right-hand side (the
//! paper's figures); `residual` stops on the reference-free relative true
//! residual `‖b − A·x‖/‖b‖` — the production path, which never
//! direct-solves the original system.
//!
//! Absolute numbers depend on the delay seeds and the compute model (the
//! paper's own testbed was a MATLAB simulation); the *shapes* — monotone
//! staircase convergence, the impedance bowl, larger n converging slower,
//! async beating barrier-synchronised rounds on heterogeneous networks —
//! are the reproduction targets. See EXPERIMENTS.md.

use dtm_bench::*;

use dtm_core::baselines::{self, BlockJacobiConfig};
use dtm_core::impedance::ImpedancePolicy;
use dtm_core::local::LocalSolverKind;
use dtm_core::runtime::CommonConfig;
use dtm_core::solver::{self, ComputeModel, DtmConfig, Termination};
use dtm_core::{analysis, vtm};
use dtm_graph::partition::Partitioner;
use dtm_simnet::{Engine, SimDuration, SimTime};
use dtm_sparse::generators;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    if cmd == "net-child" {
        // Hidden mode: this very executable relaunched as a socket-backend
        // child process (so distributed runs need only one binary on disk).
        std::process::exit(dtm_net::child_main(&args[1..]));
    }
    let quick = args.iter().any(|a| a == "--quick");
    let num_rhs = args
        .iter()
        .position(|a| a == "--num-rhs")
        .and_then(|i| args.get(i + 1))
        .map(|v| match v.parse::<usize>() {
            Ok(k) if k >= 1 => k,
            _ => {
                eprintln!("--num-rhs takes a positive integer, got {v:?}");
                std::process::exit(2);
            }
        });
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .map(|i| match args.get(i + 1).map(|v| v.parse::<u64>()) {
            Some(Ok(s)) => s,
            _ => {
                eprintln!("--seed takes a u64");
                std::process::exit(2);
            }
        })
        .unwrap_or(serve::SERVE_TRACE_SEED);
    let mode = match args.iter().position(|a| a == "--termination") {
        None => TerminationMode::Oracle,
        Some(i) => match args.get(i + 1) {
            Some(v) => TerminationMode::parse(v).unwrap_or_else(|| {
                eprintln!("--termination takes 'residual' or 'oracle', got {v:?}");
                std::process::exit(2);
            }),
            None => {
                eprintln!("--termination requires a value: 'residual' or 'oracle'");
                std::process::exit(2);
            }
        },
    };
    let transport = args.iter().position(|a| a == "--transport").map(|i| {
        match args.get(i + 1).map(String::as_str) {
            Some(v) => dtm_net::TransportKind::parse(v).unwrap_or_else(|| {
                eprintln!("--transport takes 'uds' or 'tcp', got {v:?}");
                std::process::exit(2);
            }),
            None => {
                eprintln!("--transport requires a value: 'uds' or 'tcp'");
                std::process::exit(2);
            }
        }
    });
    let processes = args
        .iter()
        .position(|a| a == "--processes")
        .and_then(|i| args.get(i + 1))
        .map(|v| match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--processes takes a positive integer, got {v:?}");
                std::process::exit(2);
            }
        })
        .unwrap_or(2);
    match cmd {
        "fig3" => fig3(),
        "fig5" => fig5(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "table1" => table1(),
        "fig11" => fig11(),
        "fig12" => fig12(quick, mode),
        "fig13" => fig13(),
        "fig14" => fig14(quick, mode),
        "cmp-vtm" => cmp_vtm(),
        "cmp-jacobi" => cmp_jacobi(),
        "sweep-z" => sweep_z(),
        "batched" => batched(num_rhs, mode),
        "serve" => serve_cmd(quick, seed),
        "compare" => match transport {
            None => compare_cmd(quick),
            Some(t) => compare_distributed(quick, t, processes),
        },
        "bench" => bench_cmd(&args, quick),
        "lint" => {
            // Project lint (see crates/lint): panic-free libraries,
            // never-FMA sparse kernels, simnet determinism, SAFETY
            // comments, alloc-free hot paths. Gates CI.
            if let Err(e) = dtm_lint::run_cli(&args[1..]) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        "all" => {
            fig3();
            fig5();
            fig7();
            fig8();
            fig9();
            table1();
            fig11();
            fig12(quick, mode);
            fig13();
            fig14(quick, mode);
            cmp_vtm();
            cmp_jacobi();
            sweep_z();
            batched(num_rhs, mode);
            serve_cmd(quick, seed);
            compare_cmd(quick);
        }
        _ => {
            eprintln!(
                "usage: repro <fig3|fig5|fig7|fig8|fig9|table1|fig11|fig12|fig13|fig14|\
                 cmp-vtm|cmp-jacobi|sweep-z|batched|serve|compare|bench|lint|all> [--quick] \
                 [--num-rhs K] [--seed N] [--termination residual|oracle]\n\
                 compare flags: [--transport uds|tcp [--processes N]] (distributed \
                 socket backend vs the in-process reference, asserted bit-for-bit)\n\
                 bench flags: [--matrix FILE.mtx [--rhs FILE]] [--out FILE] \
                 [--check BASELINE]... [--partitioner strips|greedy|nd|ml] [--headline]"
            );
            std::process::exit(2);
        }
    }
}

/// Fig. 3 — the electric graph of system (3.2).
fn fig3() {
    banner("Fig. 3: electric graph of the example system (3.2)");
    let (a, b) = generators::paper_example_system();
    let g = dtm_graph::ElectricGraph::from_system(a, b).expect("symmetric");
    println!(
        "{:>6} {:>8} {:>8}   edges (neighbour: weight)",
        "vertex", "weight", "source"
    );
    for v in 0..g.n() {
        let edges: Vec<String> = g
            .neighbors(v)
            .map(|(u, w)| format!("V{}: {w}", u + 1))
            .collect();
        println!(
            "{:>6} {:>8} {:>8}   {}",
            format!("V{}", v + 1),
            g.vertex_weight(v),
            g.source(v),
            edges.join(", ")
        );
    }
    println!();
}

/// Fig. 5 / Example 4.1 — EVS split into subsystems (4.1) and (4.2).
fn fig5() {
    banner("Fig. 5 / Example 4.1: EVS at boundary {V2, V3} -> subsystems (4.1), (4.2)");
    let ss = example_5_1_split();
    for sd in &ss.subdomains {
        println!("subgraph {} (local order: copies first):", sd.part + 1);
        let names: Vec<String> = sd
            .global_of_local
            .iter()
            .enumerate()
            .map(|(l, &g)| {
                if l < sd.n_copies {
                    format!("x{}{}", g + 1, (b'a' + sd.part as u8) as char)
                } else {
                    format!("x{}", g + 1)
                }
            })
            .collect();
        println!("  unknowns: {}", names.join(", "));
        for r in 0..sd.n_local() {
            let row: Vec<String> = (0..sd.n_local())
                .map(|c| format!("{:>6.2}", sd.matrix.get(r, c)))
                .collect();
            println!("  [{}] | rhs {:>5.2}", row.join(" "), sd.rhs[r]);
        }
    }
    println!(
        "ports: {} DTLPs between twin pairs {:?}\n",
        ss.dtlps.len(),
        ss.dtlps
            .iter()
            .map(|d| format!("V{}", d.vertex + 1))
            .collect::<Vec<_>>()
    );
}

/// Fig. 7 — the delay mapping of Example 5.1.
fn fig7() {
    banner("Fig. 7: algorithm-architecture delay mapping (Example 5.1)");
    let topo = example_5_1_topology();
    println!("machine: 2 processors");
    for l in topo.links() {
        println!(
            "  link P{} -> P{}: {:.1} us  (= DTL propagation delay in that direction)",
            l.src + 1,
            l.dst + 1,
            l.delay.as_micros_f64()
        );
    }
    println!("DTLP impedances: Z2 = 0.2 (V2a-V2b), Z3 = 0.1 (V3a-V3b)\n");
}

/// Fig. 8 — DTM trajectories x(t) for Example 5.1.
fn fig8() {
    banner("Fig. 8: computing result of DTM on Example 5.1 (staircase x(t))");
    let ss = example_5_1_split();
    let topo = example_5_1_topology();
    let config = DtmConfig {
        common: CommonConfig {
            impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
            termination: Termination::OracleRms { tol: 0.0 },
            ..Default::default()
        },
        compute: ComputeModel::Zero,
        horizon: SimDuration::from_micros_f64(120.0),
        ..Default::default()
    };
    let nodes = solver::build_nodes(&ss, &topo, &config).expect("paper setup builds");
    let mut engine = Engine::new(topo, nodes);
    // Column order mirrors the paper: x1, x2a, x2b, x3a, x3b, x4.
    println!(
        "{:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "t [us]", "x1", "x2a", "x2b", "x3a", "x3b", "x4"
    );
    let mut state = [[0.0f64; 3]; 2];
    engine.run(
        SimTime::ZERO + SimDuration::from_micros_f64(120.0),
        |t, part, node| {
            state[part].copy_from_slice(node.local().solution());
            let (p0, p1) = (state[0], state[1]);
            println!(
                "{:>9.2} {:>9.5} {:>9.5} {:>9.5} {:>9.5} {:>9.5} {:>9.5}",
                t.as_micros_f64(),
                p0[2],
                p0[0],
                p1[0],
                p0[1],
                p1[1],
                p1[2]
            );
            true
        },
    );
    let (a, b) = generators::paper_example_system();
    let exact = dtm_sparse::DenseCholesky::factor_csr(&a)
        .expect("SPD")
        .solve(&b);
    println!(
        "exact:    {:>9.5} {:>9.5} {:>9.5} {:>9.5} {:>9.5} {:>9.5}",
        exact[0], exact[1], exact[1], exact[2], exact[2], exact[3]
    );
    println!();
}

/// Fig. 9 — RMS error at t = 100 µs as a function of (Z2, Z3).
fn fig9() {
    banner("Fig. 9: RMS error of DTM at t = 100 us vs characteristic impedances");
    let ss = example_5_1_split();
    let zs = [0.025, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6];
    println!("rows: Z2, cols: Z3; entries: RMS error at t = 100 us");
    print!("{:>8}", "Z2\\Z3");
    for z3 in zs {
        print!(" {z3:>9.3}");
    }
    println!();
    let mut best = (f64::INFINITY, 0.0, 0.0);
    for z2 in zs {
        print!("{z2:>8.3}");
        for z3 in zs {
            let config = DtmConfig {
                common: CommonConfig {
                    impedance: ImpedancePolicy::PerDtlp(vec![z2, z3]),
                    termination: Termination::OracleRms { tol: 0.0 },
                    ..Default::default()
                },
                compute: ComputeModel::Zero,
                horizon: SimDuration::from_micros_f64(100.0),
                ..Default::default()
            };
            let r = solver::solve(&ss, example_5_1_topology(), None, &config)
                .expect("paper setup solves");
            print!(" {:>9.2e}", r.final_rms);
            if r.final_rms < best.0 {
                best = (r.final_rms, z2, z3);
            }
        }
        println!();
    }
    println!(
        "interior optimum near Z2 = {}, Z3 = {} (rms {:.2e}) — the impedance \
         choice controls convergence speed (paper §5)\n",
        best.1, best.2, best.0
    );
}

/// Table 1 — the traced algorithm: N2N messages only, no synchronization.
fn table1() {
    banner("Table 1: traced DTM run (no barrier, no broadcast, N2N only)");
    let ss = example_5_1_split();
    let topo = example_5_1_topology();
    let config = DtmConfig {
        common: CommonConfig {
            impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
            termination: Termination::LocalDelta {
                tol: 1e-10,
                patience: 2,
            },
            ..Default::default()
        },
        compute: ComputeModel::Zero,
        horizon: SimDuration::from_millis_f64(5.0),
        ..Default::default()
    };
    let nodes = solver::build_nodes(&ss, &topo, &config).expect("builds");
    let mut engine = Engine::new(topo, nodes);
    engine.enable_trace(24);
    let outcome = engine.run_until(SimTime::ZERO + SimDuration::from_millis_f64(5.0));
    for r in engine.trace().expect("enabled").records() {
        let what = match r.kind {
            dtm_simnet::trace::TraceKind::Start { sent } => {
                format!("initial local solve, sent {sent} N2N message(s)")
            }
            dtm_simnet::trace::TraceKind::Receive { batch, sent } => {
                format!("received {batch} boundary update(s), re-solved, sent {sent}")
            }
            dtm_simnet::trace::TraceKind::Halt => "locally convergent -> break".into(),
        };
        println!(
            "  t={:>9.2} us  P{}  {}",
            r.time.as_micros_f64(),
            r.node + 1,
            what
        );
    }
    let stats = engine.stats();
    println!(
        "totals: {} messages over {} directed links, {} activations, 0 broadcasts \
         (the engine has no broadcast primitive), stop: {:?}\n",
        stats.messages_sent,
        stats.sent_per_link.len(),
        stats.activations.iter().sum::<u64>(),
        outcome.reason
    );
}

/// Fig. 11 — the 16-processor heterogeneous mesh.
fn fig11() {
    banner("Fig. 11: 16 processors, 4x4 mesh, asymmetric N2N delays (ms)");
    let topo = fig11_topology();
    println!("directed link delays (ms):");
    for l in topo.links() {
        if l.src < l.dst {
            let back = topo
                .try_delay(l.dst, l.src)
                .map_or(0.0, |d| d.as_millis_f64());
            println!(
                "  P{:<2} -> P{:<2}: {:>5.1}   P{:<2} -> P{:<2}: {:>5.1}",
                l.src + 1,
                l.dst + 1,
                l.delay.as_millis_f64(),
                l.dst + 1,
                l.src + 1,
                back
            );
        }
    }
    let (lo, hi) = topo.delay_range();
    println!(
        "min {:.0} ms, max {:.0} ms (ratio {:.1}x), asymmetry index {:.2}",
        lo.as_millis_f64(),
        hi.as_millis_f64(),
        hi.as_millis_f64() / lo.as_millis_f64(),
        topo.asymmetry()
    );
    println!("\ndelay histogram (Fig. 11B):");
    let rows: Vec<(String, f64)> = topo
        .delay_histogram(8)
        .into_iter()
        .map(|(lo, c)| (format!("{:.0} ms", lo.as_millis_f64()), c as f64))
        .collect();
    print!("{}", ascii_bars(&rows, 40));
    println!();
}

/// Fig. 12 — DTM convergence on the 16-processor mesh.
fn fig12(quick: bool, mode: TerminationMode) {
    banner("Fig. 12: DTM on 16 processors (4x4 mesh), random sparse SPD systems");
    let sizes: &[usize] = if quick { &[17] } else { &[17, 33] };
    for &side in sizes {
        let topo = fig11_topology();
        let ss = paper_split(side, 4, 4, &topo);
        let config = mesh_config_mode(1e-6, 120_000.0, mode);
        let report = solver::solve(&ss, topo, None, &config).expect("mesh run");
        println!(
            "n = {} ({}x{} grid, level-1+2 mixed EVS): converged={} {}={} \
             t={:.0} ms, {} solves, {} messages",
            side * side,
            side,
            side,
            report.converged,
            metric_name(mode),
            fmt_mode_metric(mode, &report),
            report.final_time_ms,
            report.total_solves,
            report.total_messages
        );
        print_series(
            &format!("Fig. 12 series, n = {}", side * side),
            "ms",
            &decimate(&report.series, 24),
        );
    }
}

/// Fig. 13 — the 64-processor mesh delays.
fn fig13() {
    banner("Fig. 13: 64 processors, 8x8 mesh, delays uniform in [10, 100] ms");
    let topo = fig13_topology();
    let (lo, hi) = topo.delay_range();
    println!(
        "{} directed links; min {:.1} ms, max {:.1} ms, asymmetry index {:.2}",
        topo.links().len(),
        lo.as_millis_f64(),
        hi.as_millis_f64(),
        topo.asymmetry()
    );
    println!("\ndelay histogram (Fig. 13B):");
    let rows: Vec<(String, f64)> = topo
        .delay_histogram(9)
        .into_iter()
        .map(|(lo, c)| (format!("{:.0} ms", lo.as_millis_f64()), c as f64))
        .collect();
    print!("{}", ascii_bars(&rows, 40));
    println!();
}

/// Fig. 14 — DTM convergence on the 64-processor mesh.
fn fig14(quick: bool, mode: TerminationMode) {
    banner("Fig. 14: DTM on 64 processors (8x8 mesh), n = 1089 and 4225");
    let sizes: &[usize] = if quick { &[33] } else { &[33, 65] };
    for &side in sizes {
        let topo = fig13_topology();
        let ss = paper_split(side, 8, 8, &topo);
        let config = mesh_config_mode(1e-6, 240_000.0, mode);
        let report = solver::solve(&ss, topo, None, &config).expect("mesh run");
        println!(
            "n = {}: converged={} {}={} t={:.0} ms, {} solves, {} messages, \
             {} coalesced batches",
            side * side,
            report.converged,
            metric_name(mode),
            fmt_mode_metric(mode, &report),
            report.final_time_ms,
            report.total_solves,
            report.total_messages,
            report.coalesced_batches
        );
        print_series(
            &format!("Fig. 14 series, n = {}", side * side),
            "ms",
            &decimate(&report.series, 24),
        );
    }
}

/// §8 — DTM vs VTM: VTM needs fewer exchanges, DTM needs no synchronization.
fn cmp_vtm() {
    banner("Conclusion (§8): DTM vs VTM on the 16-processor mesh, n = 1089");
    let topo = fig11_topology();
    let ss = paper_split(33, 4, 4, &topo);
    let tol = 1e-6;

    let dtm =
        solver::solve(&ss, topo.clone(), None, &mesh_config(tol, 240_000.0)).expect("dtm run");
    let vtm_report = vtm::solve(
        &ss,
        None,
        &vtm::VtmConfig {
            tol,
            ..Default::default()
        },
    )
    .expect("vtm run");
    // A synchronous VTM round on this machine costs max-delay + barrier
    // (another max-delay) + compute.
    let (_, hi) = topo.delay_range();
    let round_ms = 2.0 * hi.as_millis_f64() + 1.0;
    let vtm_time = vtm_report.rounds as f64 * round_ms;
    println!(
        "{:>28} {:>12} {:>14} {:>12}",
        "method", "exchanges", "sim time [ms]", "rms"
    );
    println!(
        "{:>28} {:>12} {:>14.0} {:>12.2e}",
        "DTM (asynchronous)", dtm.total_messages, dtm.final_time_ms, dtm.final_rms
    );
    println!(
        "{:>28} {:>12} {:>14.0} {:>12.2e}",
        "VTM (synchronous rounds)",
        vtm_report.rounds * ss.dtlps.len() * 2,
        vtm_time,
        vtm_report.final_rms
    );
    println!(
        "shape check: VTM uses fewer exchanges per accuracy (it always sees \
         fresh data), but every round is barrier-priced at 2x the worst link \
         ({:.0} ms); DTM proceeds at per-link speed with no barrier.\n",
        2.0 * hi.as_millis_f64()
    );
}

/// §1 — DTM vs the classical baselines on the same machine and partition.
fn cmp_jacobi() {
    banner("Intro (§1): DTM vs async/sync block-Jacobi, 16 processors, n = 1089");
    let topo = fig11_topology();
    let side = 33;
    let tol = 1e-6;
    let ss = paper_split(side, 4, 4, &topo);
    let (a, b) = paper_system(side);
    let asg = dtm_graph::partition::grid_blocks(side, side, 4, 4);

    let dtm =
        solver::solve(&ss, topo.clone(), None, &mesh_config(tol, 240_000.0)).expect("dtm run");
    let bj_config = BlockJacobiConfig {
        compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
        termination: Termination::OracleRms { tol },
        horizon: SimDuration::from_millis_f64(240_000.0),
        sample_interval: SimDuration::from_millis_f64(5.0),
        ..Default::default()
    };
    let abj =
        baselines::solve_async(&a, &b, &asg, topo.clone(), None, &bj_config).expect("async bj run");
    let sbj = baselines::solve_sync(&a, &b, &asg, &topo, None, &bj_config).expect("sync bj");

    println!(
        "{:>28} {:>10} {:>14} {:>12} {:>10}",
        "method", "converged", "sim time [ms]", "rms", "messages"
    );
    for (name, r) in [
        ("DTM (asynchronous)", &dtm),
        ("async block-Jacobi", &abj),
        ("sync block-Jacobi", &sbj),
    ] {
        println!(
            "{:>28} {:>10} {:>14.0} {:>12.2e} {:>10}",
            name, r.converged, r.final_time_ms, r.final_rms, r.total_messages
        );
    }
    println!();
}

/// §6 / Fig. 9 — spectral radius of the iteration operator vs impedance
/// scale: the analytic form of the impedance bowl, and the ρ < 1 claim of
/// Theorem 6.1.
fn sweep_z() {
    banner("Theorem 6.1 / Fig. 9: iteration-operator spectral radius vs impedance scale");
    let topo = fig11_topology();
    let ss = paper_split(17, 4, 4, &topo);
    let scales = [0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0];
    let sweep =
        analysis::impedance_sweep(&ss, &scales, LocalSolverKind::Auto).expect("sweep builds");
    println!("{:>12} {:>16}", "z scale", "spectral radius");
    for (s, rho) in &sweep {
        println!("{s:>12.2} {rho:>16.6}");
    }
    let all_contractive = sweep.iter().all(|&(_, r)| r < 1.0);
    println!("all contractive (Theorem 6.1, arbitrary positive impedance): {all_contractive}\n");
}

/// §5 factor-once, turned into a serving number: per-RHS amortized wall
/// time of a streaming batch at K right-hand sides over one factorization.
/// With `--termination residual` the session also skips the per-batch
/// oracle substitutions (and the reference factorization at setup) — the
/// measured difference between the two modes is the price of the oracle.
fn batched(num_rhs: Option<usize>, mode: TerminationMode) {
    banner("Batched multi-RHS: per-RHS amortized solve time over one factorization");
    let ks: Vec<usize> = match num_rhs {
        Some(k) => vec![k],
        None => vec![1, 4, 16, 64],
    };
    println!(
        "{:>10} {:>6} {:>14} {:>14} {:>14} {:>10} {:>12}",
        "mode", "K", "batch [ms]", "per-RHS [ms]", "sim/RHS [ms]", "solves", "worst metric"
    );
    let modes: Vec<TerminationMode> = match num_rhs {
        // A pinned K still honours --termination; the default sweep prints
        // both modes so the oracle tax is visible side by side.
        Some(_) => vec![mode],
        None => vec![TerminationMode::Oracle, TerminationMode::Residual],
    };
    let mut per_rhs_ms: Vec<(TerminationMode, usize, f64)> = Vec::new();
    for &m in &modes {
        for &k in &ks {
            let (batch_ms, report) = batched_run(k, m);
            per_rhs_ms.push((m, k, batch_ms / k as f64));
            println!(
                "{:>10} {:>6} {:>14.3} {:>14.3} {:>14.3} {:>10} {:>12}",
                metric_name(m),
                k,
                batch_ms,
                batch_ms / k as f64,
                report.time_per_rhs_ms(),
                report.total_solves,
                fmt_mode_metric(m, &report)
            );
        }
    }
    if num_rhs.is_none() {
        let per = |m: TerminationMode, k: usize| {
            per_rhs_ms
                .iter()
                .find(|&&(mm, kk, _)| mm == m && kk == k)
                .expect("swept")
                .2
        };
        let (k1, k16) = (
            per(TerminationMode::Oracle, 1),
            per(TerminationMode::Oracle, 16),
        );
        println!(
            "amortization: K=16 per-RHS {:.3} ms vs K=1 {:.3} ms ({:.1}x cheaper) — \
             additional right-hand sides ride the factor-once design nearly free",
            k16,
            k1,
            k1 / k16
        );
        let (r1, r16) = (
            per(TerminationMode::Residual, 1),
            per(TerminationMode::Residual, 16),
        );
        println!(
            "oracle tax: reference-free per-RHS {:.3} ms (K=1) / {:.3} ms (K=16) vs \
             oracle {:.3} / {:.3} — residual termination drops the K direct \
             substitutions a batch otherwise pays for RMS reporting\n",
            r1, r16, k1, k16
        );
    } else {
        println!();
    }
}

/// One warmed-up measured batch of `k` right-hand sides under `mode`.
fn batched_run(k: usize, mode: TerminationMode) -> (f64, dtm_core::SolveReport) {
    let side = 9; // n = 81: small enough that a batch is interactive
    let a = dtm_sparse::generators::grid2d_laplacian(side, side);
    let b = generators::random_rhs(side * side, 4_001);
    let problem = dtm_core::DtmBuilder::new(a, b)
        .grid_blocks(side, side, 2, 2)
        .termination(mode.termination(1e-8))
        .compute(ComputeModel::Fixed(SimDuration::from_micros_f64(100.0)))
        .build()
        .expect("valid problem");
    let mut session = problem.session().expect("factors once");
    let cols: Vec<Vec<f64>> = (0..k)
        .map(|c| generators::random_rhs(side * side, 5_000 + c as u64))
        .collect();
    // One warm-up batch, then the measured batch (steady-state streaming:
    // the factors and routes are already hot).
    for col in &cols {
        session.push_rhs(col).expect("dimension ok");
    }
    session.solve_batch().expect("warm-up converges");
    for col in &cols {
        session.push_rhs(col).expect("dimension ok");
    }
    let t = std::time::Instant::now();
    let report = session.solve_batch().expect("batch converges");
    let batch_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(report.converged, "K = {k} must converge");
    (batch_ms, report)
}

/// Rolling admission vs the batch barrier, as a serving-latency number:
/// the same Poisson arrival stream of mixed-tolerance right-hand sides is
/// served (a) by a rolling session — each ticket admitted into the live
/// 9×9 grid-Laplacian wave exchange as a column slot frees up, retiring at
/// its own tolerance — and (b) by the batch-barrier `SolveSession`, where
/// arrivals wait out the running batch and every column pays the
/// strictest member's tolerance. Asserts that every ticket completes and
/// that rolling wins on mean per-RHS completion latency (the CI smoke
/// contract).
fn serve_cmd(quick: bool, seed: u64) {
    banner("Serve: rolling mixed-tolerance admission vs batch-barrier baseline");
    // Workload shape lives in dtm_bench::serve (shared with the
    // reproducibility test); the seed is the `--seed N` knob — the same
    // seed reproduces the identical ticket trace.
    let (count, mean_gap_ms, slots) = serve::serve_workload(quick);
    let problem = serve::serve_problem();
    let trace = serve::serve_trace(quick, seed);
    println!(
        "workload: {count} Poisson arrivals (mean gap {mean_gap_ms} ms sim, seed {seed}), \
         mixed tolerances [resid {:.0e} | resid 1e-3 | oracle-rms 1e-7], {slots} rolling slots",
        serve::SERVE_TIGHT_TOL
    );

    let rolling = serve::serve_rolling(&problem, &trace, slots);
    let batch = serve::serve_batch(&problem, &trace);
    let (rm, rp50, rmax) = serve::latency_stats(&rolling);
    let (bm, bp50, bmax) = serve::latency_stats(&batch);
    println!(
        "{:>24} {:>12} {:>12} {:>12}",
        "policy", "mean [ms]", "p50 [ms]", "max [ms]"
    );
    println!(
        "{:>24} {:>12.2} {:>12.2} {:>12.2}",
        "rolling (per-ticket)", rm, rp50, rmax
    );
    println!(
        "{:>24} {:>12.2} {:>12.2} {:>12.2}",
        "batch barrier", bm, bp50, bmax
    );
    println!(
        "per-RHS completion latency: rolling {:.2} ms vs barrier {:.2} ms \
         ({:.1}x lower) — loose tickets retire the moment their own residual \
         crosses instead of waiting for the tightest column of their batch",
        rm,
        bm,
        bm / rm
    );
    assert_eq!(rolling.len(), trace.len(), "all rolling tickets complete");
    assert!(
        rm < bm,
        "rolling mean latency ({rm:.2} ms) must beat the batch barrier ({bm:.2} ms)"
    );
    println!();
}

/// DTM vs randomized asynchronous Richardson vs D-iteration, message for
/// message on the identical machine: same 9×9 grid Laplacian, same 2×2
/// block partition, same seeded asymmetric-delay mesh, same 1 ms compute
/// model, same reference-free residual stopping rule. Prints the uniform
/// counter table and tagged activation-trace samples; asserts all three
/// converge with populated counters (the CI smoke contract).
fn compare_cmd(quick: bool) {
    banner("Compare: DTM vs randomized-asynchrony baselines, message for message");
    let tol = if quick { 1e-6 } else { 1e-8 };
    let setup = compare::grid_setup(9, 2, 2, tol);
    println!(
        "machine: 4 processors (2x2 mesh, asymmetric delays 10-99 ms, seed {}), \
         n = 81 grid Laplacian torn 2x2, termination: residual <= {tol:.0e} \
         (reference-free for every algorithm)",
        compare::COMPARE_DELAY_SEED
    );
    let reports = compare::all_reports(&setup);
    println!(
        "{:>24} {:>10} {:>13} {:>12} {:>10} {:>12} {:>9} {:>11}",
        "algorithm",
        "converged",
        "sim time [ms]",
        "activations",
        "messages",
        "flops",
        "msg/act",
        "residual"
    );
    for r in &reports {
        println!(
            "{:>24} {:>10} {:>13.0} {:>12} {:>10} {:>12} {:>9.2} {:>11.2e}",
            r.algorithm.name(),
            r.converged,
            r.final_time_ms,
            r.total_solves,
            r.total_messages,
            r.total_flops,
            r.messages_per_solve(),
            r.final_residual
        );
    }
    let dtm = &reports[0];
    for r in &reports {
        assert!(
            r.converged,
            "{} must converge on the grid Laplacian (residual {})",
            r.algorithm.name(),
            r.final_residual
        );
        assert!(
            r.total_solves > 0,
            "{}: empty activation counter",
            r.algorithm.name()
        );
        assert!(
            r.total_messages > 0,
            "{}: empty message counter",
            r.algorithm.name()
        );
        assert!(
            r.total_flops > 0,
            "{}: empty flop counter",
            r.algorithm.name()
        );
        assert!(
            r.final_residual <= tol,
            "{}: residual above tol",
            r.algorithm.name()
        );
    }
    println!(
        "\nshape check: all three asynchronous algorithms reach the same residual on \
         the same machine; DTM's factor-once waves carry more arithmetic per message \
         ({:.0} flops/msg vs {:.0} Richardson / {:.0} D-iteration), trading messages \
         for local solves ({:.0} ms vs {:.0} / {:.0} ms simulated).",
        dtm.flops_per_message(),
        reports[1].flops_per_message(),
        reports[2].flops_per_message(),
        dtm.final_time_ms,
        reports[1].final_time_ms,
        reports[2].final_time_ms
    );

    // Tagged activation-trace samples: the same engine, three algorithms,
    // each trace labelled by its per-algorithm tag.
    println!("\ntagged activation-trace samples (first 4 records each):");
    let mut traces = vec![compare::dtm_trace_sample(&setup, 4)];
    for algo in [
        dtm_core::BaselineAlgo::RandomizedRichardson(Default::default()),
        dtm_core::BaselineAlgo::DIteration(Default::default()),
    ] {
        traces.push(compare::baseline_trace_sample(&setup, &algo, 4));
    }
    for trace in &traces {
        for r in trace.records() {
            let what = match r.kind {
                dtm_simnet::trace::TraceKind::Start { sent } => {
                    format!("initial activation, sent {sent}")
                }
                dtm_simnet::trace::TraceKind::Receive { batch, sent } => {
                    format!("received {batch}, sent {sent}")
                }
                dtm_simnet::trace::TraceKind::Halt => "halt".into(),
            };
            println!(
                "  [{:>22}] t={:>8.2} ms  P{}  {}",
                trace.tag(),
                r.time.as_millis_f64(),
                r.node + 1,
                what
            );
        }
    }
    println!();
}

/// `repro compare --transport uds|tcp [--processes N]`: the distributed
/// socket backend against the in-process reference on the comparison
/// workload — same split, same reference-free residual rule — asserted
/// **bit for bit** equal (solution bits, residual bits, work counters).
fn compare_distributed(quick: bool, transport: dtm_net::TransportKind, processes: usize) {
    banner("Compare: distributed socket backend vs in-process reference, bit for bit");
    let tol = if quick { 1e-6 } else { 1e-8 };
    let setup = compare::grid_setup(9, 2, 2, tol);
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("cannot locate the repro executable to respawn as children: {e}");
        std::process::exit(1);
    });
    let child = dtm_net::ChildCommand {
        exe,
        prefix_args: vec!["net-child".to_string()],
    };
    println!(
        "workload: n = 81 grid Laplacian torn 2x2 (4 parts), termination: \
         residual <= {tol:.0e}; transport: {}, {processes} processes",
        transport.name()
    );
    let (in_process, multi_process) =
        match compare::distributed_pair(&setup, transport, processes, child) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("distributed comparison failed: {e}");
                std::process::exit(1);
            }
        };
    println!(
        "{:>22} {:>10} {:>13} {:>12} {:>10} {:>12} {:>11}",
        "mode", "converged", "wall [ms]", "activations", "messages", "flops", "residual"
    );
    for (name, r) in [
        ("in-process (1 group)", &in_process),
        ("socket processes", &multi_process),
    ] {
        println!(
            "{:>22} {:>10} {:>13.1} {:>12} {:>10} {:>12} {:>11.2e}",
            name,
            r.converged,
            r.final_time_ms,
            r.total_solves,
            r.total_messages,
            r.total_flops,
            r.final_residual
        );
    }
    compare::assert_distributed_bitwise(&in_process, &multi_process);
    assert!(
        in_process.converged,
        "distributed comparison must converge (residual {})",
        in_process.final_residual
    );
    println!(
        "\nbit-for-bit: {} solution values, residual {:.2e} and all work counters \
         identical between 1 in-process group and {processes} OS processes over {} — \
         the round-structured executor makes the result independent of process count.",
        in_process.solution.len(),
        in_process.final_residual,
        transport.name()
    );
    println!();
}

/// `repro bench`: the fixed perf suite (seed case, 3-D Laplacians under
/// the size-default partitioner — multilevel ≥ 32³, nested dissection
/// below — with per-phase setup timings, the 10⁶-unknown headline
/// partition A/B (its wall-clock solves behind `--headline`),
/// substitution kernels, Matrix Market), written as machine-readable JSON
/// with optional regression gates (`--check` repeats).
fn bench_cmd(args: &[String], quick: bool) {
    banner("Bench: scaling suite (BENCH_8.json)");
    let path_flag = |name: &str| -> Option<std::path::PathBuf> {
        args.iter()
            .position(|a| a == name)
            .map(|i| match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => std::path::PathBuf::from(v),
                _ => {
                    eprintln!("{name} requires a file path");
                    std::process::exit(2);
                }
            })
    };
    let partitioner = args.iter().position(|a| a == "--partitioner").map(|i| {
        match args.get(i + 1).and_then(|v| Partitioner::parse(v)) {
            Some(p) => p,
            None => {
                eprintln!("--partitioner takes one of: strips, greedy, nd, ml");
                std::process::exit(2);
            }
        }
    });
    // `--check` repeats: one bench run can gate against several baselines
    // (CI checks the quick run against BENCH_7.json and BENCH_8.json).
    let checks: Vec<std::path::PathBuf> = args
        .iter()
        .enumerate()
        .filter(|&(_, a)| a == "--check")
        .map(|(i, _)| match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => std::path::PathBuf::from(v),
            _ => {
                eprintln!("--check requires a file path");
                std::process::exit(2);
            }
        })
        .collect();
    let opts = perf::BenchOptions {
        quick,
        headline: args.iter().any(|a| a == "--headline"),
        matrix: path_flag("--matrix"),
        rhs: path_flag("--rhs"),
        out: path_flag("--out").unwrap_or_else(|| std::path::PathBuf::from("BENCH_8.json")),
        checks,
        partitioner,
    };
    if opts.rhs.is_some() && opts.matrix.is_none() {
        eprintln!("--rhs requires --matrix");
        std::process::exit(2);
    }
    if let Err(e) = perf::run(&opts) {
        eprintln!("bench failed: {e}");
        std::process::exit(1);
    }
}

fn metric_name(mode: TerminationMode) -> &'static str {
    match mode {
        TerminationMode::Oracle => "rms",
        TerminationMode::Residual => "resid",
    }
}

/// The mode's stopping metric as a table cell — `-` instead of `NaN` when
/// the report carries no oracle RMS (reference-free runs).
fn fmt_mode_metric(mode: TerminationMode, report: &dtm_core::SolveReport) -> String {
    match mode {
        TerminationMode::Oracle => fmt_metric(report.final_rms_opt()),
        TerminationMode::Residual => fmt_metric(Some(report.final_residual)),
    }
}

fn banner(s: &str) {
    println!("================================================================");
    println!("{s}");
    println!("================================================================");
}

//! A counting global allocator, so "the hot loop is allocation-free" is a
//! measured number instead of a comment.
//!
//! Register [`CountingAllocator`] as the `#[global_allocator]` of a test
//! binary, [`arm`] it around the region under measurement, and [`disarm`]
//! to read how many allocations (and bytes) happened inside. Counting is a
//! pair of relaxed atomic increments on the allocation path — cheap enough
//! to leave in a measurement build, and disabled entirely while unarmed.
//!
//! The harness lives behind the `alloc-count` cargo feature so ordinary
//! builds keep the system allocator untouched:
//!
//! ```text
//! cargo test -p dtm-bench --features alloc-count --test alloc_free
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// What happened between [`arm`] and [`disarm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// `alloc`/`alloc_zeroed` calls.
    pub allocs: u64,
    /// `realloc` calls (growths count here, not in `allocs`).
    pub reallocs: u64,
    /// Total bytes requested by the counted calls.
    pub bytes: u64,
}

impl AllocStats {
    /// Total heap acquisitions of any kind.
    pub fn total(&self) -> u64 {
        self.allocs + self.reallocs
    }
}

/// Reset the counters and start counting.
pub fn arm() {
    ALLOCS.store(0, Ordering::Relaxed);
    REALLOCS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
    ARMED.store(true, Ordering::SeqCst);
}

/// Stop counting and return what was observed while armed.
pub fn disarm() -> AllocStats {
    ARMED.store(false, Ordering::SeqCst);
    AllocStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        reallocs: REALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// A [`System`]-backed allocator that counts while [`arm`]ed.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        // SAFETY: same layout, same contract — forwarded verbatim to
        // the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        // SAFETY: same layout, same contract — forwarded verbatim to
        // the system allocator.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        // SAFETY: `ptr`/`layout` were produced by this allocator's
        // `alloc`, which delegates to `System`; the caller upholds the
        // `realloc` contract and we add nothing to it.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `System` via our `alloc`/`realloc`
        // with this same `layout`; deallocation is forwarded verbatim.
        unsafe { System.dealloc(ptr, layout) }
    }
}

//! The `repro bench` measurement suite: a fixed set of solves and kernel
//! timings emitting a machine-readable `BENCH_8.json`, plus a regression
//! checker over its **tracked** metrics.
//!
//! The suite spans the scales the repository claims to cover:
//!
//! * **seed case** — the 9×9 grid Laplacian every earlier PR measured on,
//!   as an 8-column reference-free block solve on the simulated machine
//!   (deterministic: msgs/solves/flops/simulated time are tracked).
//! * **3-D Laplacians** — `grid3d_laplacian` under a selectable
//!   [`Partitioner`] (`--partitioner {strips,greedy,nd,ml}`; without the
//!   flag each case uses [`Partitioner::default_for`] — multilevel from
//!   32³ unknowns up, nested dissection below), solved reference-free
//!   (`Termination::Residual`) on the threaded and
//!   work-stealing backends. Setup is instrumented **per phase** —
//!   `partition_ms` (the selected partitioner), `split_ms` (EVS
//!   tearing via `DtmBuilder::build`), `factor_ms` (concurrent
//!   factorization of every subdomain into reusable templates) — and each
//!   backend then solves over the *same* templates
//!   (`threaded::solve_prepared` / `rayon_backend::solve_prepared`), the
//!   paper's factor-once serving design, so backend wall-clock is pure
//!   exchange. A 16³ case runs always under nested dissection and again
//!   under multilevel (CI-sized; convergence bits, setup-phase medians,
//!   and cut metrics are tracked); without `--quick` the suite adds the
//!   48³ ≈ 110k-unknown case and an anisotropic 32³ case
//!   (`grid3d_laplacian_aniso`, ε = 0.05), multilevel-partitioned by the
//!   size default with the nested-dissection cut recorded alongside for
//!   the A/B delta. The 100³ = 10⁶-unknown headline case records its
//!   partition A/B (multilevel vs nested-dissection cut — deterministic
//!   and affordable) in every full run; its wall-clock solves take hours
//!   on a small box and only run under `--headline`. Every case reports
//!   `partition/cut_edges`, `partition/boundary` and the partitioner id.
//! * **substitution kernels** — per-RHS latency of the seed column-major
//!   kernel vs the cache-blocked interleaved kernel at K ∈ {1, 8, 16}
//!   over an RCM sparse factor. Reps of the two kernels are
//!   **interleaved** (colmajor/blocked alternating) so clock drift and
//!   cache warm-up hit both equally; medians are reported. K = 1 is
//!   asserted to dispatch to the scalar path: its blocked/colmajor ratio
//!   must stay within measurement noise of 1.
//! * **Matrix Market** — `sparse::mm` wired end to end: load a committed
//!   `.mtx` fixture (or `--matrix <path.mtx> [--rhs <path>]`), partition
//!   by nested dissection, solve reference-free on real threads.
//!
//! JSON schema (`dtm-bench-8`): a flat `"metrics"` object mapping
//! `case/section/metric` keys to numbers, plus a `"tracked"` array naming
//! the keys the regression gate guards. The report is re-written to
//! `--out` after every case, so a multi-hour run interrupted mid-suite
//! still leaves the completed cases on disk. `--check BASELINE.json`
//! (repeatable: one run can gate against several baselines) compares
//! every tracked metric present in both files and fails (exit ≠ 0) on
//! any regression over 20% — lower is worse for counters, and any
//! `*/converged` metric must not drop. Wall-clock metrics are generally
//! recorded untracked (CI boxes are noisy; counters and cuts are
//! deterministic) — the exception is the CI-sized case's setup-phase
//! medians (`*_ms` keys), which the gate compares with an extra 5 ms
//! absolute slack on top of the 20% band so the parallel-setup win can't
//! silently rot.

use dtm_core::builder::DtmBuilder;
use dtm_core::rayon_backend::{self, RayonConfig};
use dtm_core::runtime::{build_nodes_parallel, CommonConfig, Termination};
use dtm_core::threaded::{self, ThreadedConfig};
use dtm_core::SolveReport;
use dtm_graph::partition::{self, PartitionConfig, Partitioner};
use dtm_sparse::{generators, mm, Csr, SparseCholesky};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Options for [`run`], parsed from `repro bench` flags.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// CI-sized suite: skip the 110k-unknown case, fewer kernel reps.
    pub quick: bool,
    /// Also run the 100³ = 10⁶-unknown wall-clock solves (hours on a
    /// small box). Without it, full runs still record the headline case's
    /// partition A/B metrics, which are deterministic and cheap.
    pub headline: bool,
    /// Matrix Market system to solve instead of the committed fixture.
    pub matrix: Option<PathBuf>,
    /// Right-hand side for `--matrix` (whitespace-separated numbers).
    pub rhs: Option<PathBuf>,
    /// Where to write the JSON report.
    pub out: PathBuf,
    /// Baseline JSONs to regression-check tracked metrics against — one
    /// run can gate against several baselines (`--check` repeats).
    pub checks: Vec<PathBuf>,
    /// Override the per-case default partitioner for every grid case
    /// (`--partitioner {strips,greedy,nd,ml}`).
    pub partitioner: Option<Partitioner>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            quick: false,
            headline: false,
            matrix: None,
            rhs: None,
            out: PathBuf::from("BENCH_8.json"),
            checks: Vec::new(),
            partitioner: None,
        }
    }
}

/// The committed Matrix Market fixture (an 8×8 grid Laplacian).
pub fn fixture_matrix() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/grid2d_8x8.mtx")
}

/// The committed right-hand side paired with [`fixture_matrix`].
pub fn fixture_rhs() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/grid2d_8x8_rhs.txt")
}

/// An accumulating benchmark report: flat metric map plus the tracked set.
#[derive(Debug, Default)]
pub struct BenchReport {
    metrics: BTreeMap<String, f64>,
    tracked: BTreeSet<String>,
}

impl BenchReport {
    /// Record an untracked (informational) metric.
    pub fn record(&mut self, key: &str, value: f64) {
        self.metrics.insert(key.to_string(), value);
    }

    /// Record a tracked metric — guarded by the `--check` regression gate.
    pub fn track(&mut self, key: &str, value: f64) {
        self.metrics.insert(key.to_string(), value);
        self.tracked.insert(key.to_string());
    }

    /// All recorded metrics.
    pub fn metrics(&self) -> &BTreeMap<String, f64> {
        &self.metrics
    }

    /// The tracked key set.
    pub fn tracked(&self) -> &BTreeSet<String> {
        &self.tracked
    }

    /// Serialize to the `dtm-bench-8` JSON schema (hand-rolled: the
    /// vendored serde derives are inert, and the format is a flat map).
    pub fn to_json(&self, quick: bool) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"dtm-bench-8\",\n");
        s.push_str(&format!("  \"quick\": {quick},\n"));
        s.push_str("  \"metrics\": {\n");
        let last = self.metrics.len();
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == last { "" } else { "," };
            s.push_str(&format!("    \"{k}\": {}{comma}\n", fmt_num(*v)));
        }
        s.push_str("  },\n");
        s.push_str("  \"tracked\": [\n");
        let last = self.tracked.len();
        for (i, k) in self.tracked.iter().enumerate() {
            let comma = if i + 1 == last { "" } else { "," };
            s.push_str(&format!("    \"{k}\"{comma}\n"));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6e}")
    }
}

/// Parse a `dtm-bench-*` JSON file back into (metrics, tracked).
///
/// A minimal scanner for the format [`BenchReport::to_json`] writes (and
/// hand-edited variants of it): string keys, numeric values, a string
/// array. Not a general JSON parser.
///
/// # Errors
/// [`dtm_sparse::Error::Parse`] when the expected sections are missing or
/// malformed.
pub fn parse_bench_json(
    text: &str,
) -> dtm_sparse::Result<(BTreeMap<String, f64>, BTreeSet<String>)> {
    let metrics_block = extract_block(text, "\"metrics\"", '{', '}')
        .ok_or_else(|| dtm_sparse::Error::Parse("bench json: no \"metrics\" object".into()))?;
    let mut metrics = BTreeMap::new();
    for (key, rest) in string_literals(metrics_block) {
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix(':') else {
            continue; // a value that happens to be a string, not a key
        };
        let num: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
            .collect();
        let value = num
            .parse::<f64>()
            .map_err(|_| dtm_sparse::Error::Parse(format!("bench json: bad number for {key}")))?;
        metrics.insert(key, value);
    }
    let tracked_block = extract_block(text, "\"tracked\"", '[', ']')
        .ok_or_else(|| dtm_sparse::Error::Parse("bench json: no \"tracked\" array".into()))?;
    let tracked: BTreeSet<String> = string_literals(tracked_block).map(|(k, _)| k).collect();
    Ok((metrics, tracked))
}

/// The text between the `open`/`close` pair following `label`.
fn extract_block<'a>(text: &'a str, label: &str, open: char, close: char) -> Option<&'a str> {
    let at = text.find(label)?;
    let rest = &text[at + label.len()..];
    let start = rest.find(open)? + 1;
    let mut depth = 1usize;
    for (i, c) in rest[start..].char_indices() {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return Some(&rest[start..start + i]);
            }
        }
    }
    None
}

/// Iterate `("literal", text-after-closing-quote)` pairs.
fn string_literals(block: &str) -> impl Iterator<Item = (String, &str)> {
    let mut rest = block;
    std::iter::from_fn(move || {
        let open = rest.find('"')?;
        let after = &rest[open + 1..];
        let close = after.find('"')?;
        let lit = after[..close].to_string();
        rest = &after[close + 1..];
        Some((lit, rest))
    })
}

/// A parsed report: the flat metric map plus the tracked key set —
/// what [`parse_bench_json`] yields and the regression gates consume.
pub type TrackedMetrics = (BTreeMap<String, f64>, BTreeSet<String>);

/// Compare `new` against `baseline`: every tracked metric present in both
/// must not regress by more than 20%. Counters regress upward;
/// `*/converged` metrics regress downward; tracked wall-clock phases
/// (`*_ms` keys) get an extra 5 ms absolute slack on top of the 20% band
/// so timer noise on sub-hundred-millisecond medians can't flake the
/// gate. Returns the offending keys.
///
/// Wall-clock gates assume the machine resembles the one that measured
/// the committed baseline; [`regressions_with_cores`] drops them
/// entirely on single-core boxes, where concurrent phases (`factor_ms`)
/// run serialized and the 20% band is meaningless.
pub fn regressions(new: &TrackedMetrics, baseline: &TrackedMetrics) -> Vec<String> {
    regressions_with_cores(new, baseline, detected_cores())
}

/// Parallelism the wall-clock gates calibrate against.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// [`regressions`] with the core count made explicit: with fewer than
/// two cores every `*_ms` gate is skipped (counters and convergence
/// still gate — they are machine-independent).
pub fn regressions_with_cores(
    new: &TrackedMetrics,
    baseline: &TrackedMetrics,
    cores: usize,
) -> Vec<String> {
    let mut bad = Vec::new();
    for key in new.1.intersection(&baseline.1) {
        let (Some(&n), Some(&b)) = (new.0.get(key), baseline.0.get(key)) else {
            continue;
        };
        let regressed = if key.ends_with("/converged") {
            n < b
        } else if key.ends_with("_ms") {
            cores >= 2 && n > b * 1.2 + 5.0
        } else {
            n > b * 1.2 + 1e-9
        };
        if regressed {
            bad.push(format!("{key}: {} vs baseline {}", fmt_num(n), fmt_num(b)));
        }
    }
    bad
}

/// Gate verdict for one `--check`ed baseline.
#[derive(Debug)]
pub struct BaselineResult {
    /// Where the baseline came from (path, for the report lines).
    pub label: String,
    /// Tracked metrics present in both the run and this baseline.
    pub shared: usize,
    /// Regressed metrics, formatted `key: new vs baseline old`.
    pub regressed: Vec<String>,
}

/// Outcome of gating a run against all `--check`ed baselines.
#[derive(Debug)]
pub struct BaselineCheck {
    /// The 1-core `*_ms` downgrade was in effect. It is a property of
    /// the *machine*, not of any one baseline, so it applies uniformly
    /// to every checked file and the caller announces it once per run.
    pub ms_gates_skipped: bool,
    /// One verdict per baseline, in `--check` order.
    pub per_baseline: Vec<BaselineResult>,
}

/// Gate `new` against every parsed baseline with one shared core count,
/// so a repeated `--check a.json --check b.json` invocation applies the
/// single-core wall-clock downgrade consistently across all of them
/// instead of depending on per-file state.
pub fn check_against_baselines(
    new: &TrackedMetrics,
    baselines: &[(String, TrackedMetrics)],
    cores: usize,
) -> BaselineCheck {
    BaselineCheck {
        ms_gates_skipped: cores < 2 && !baselines.is_empty(),
        per_baseline: baselines
            .iter()
            .map(|(label, baseline)| BaselineResult {
                label: label.clone(),
                shared: new.1.intersection(&baseline.1).count(),
                regressed: regressions_with_cores(new, baseline, cores),
            })
            .collect(),
    }
}

/// Run the full suite, write the JSON, optionally check a baseline.
///
/// # Errors
/// Propagates solver/IO failures; a failed `--check` comes back as
/// `Error::Parse` listing the regressed metrics.
pub fn run(opts: &BenchOptions) -> dtm_sparse::Result<()> {
    let mut report = BenchReport::default();
    // Flush the partial report after every case: a multi-hour full run
    // killed mid-suite keeps everything already measured.
    let flush = |report: &BenchReport| -> dtm_sparse::Result<()> {
        std::fs::write(&opts.out, report.to_json(opts.quick))
            .map_err(|e| dtm_sparse::Error::Parse(format!("write {}: {e}", opts.out.display())))
    };

    seed_case(&mut report)?;
    flush(&report)?;

    // CI-sized 3-D case: always present so quick runs and the committed
    // full baseline share keys for the regression gate. Its setup-phase
    // medians (5 reps) are tracked — the parallel-setup win is guarded.
    // Each case's default partitioner is the size-based
    // `Partitioner::default_for` (multilevel kicks in at ≥ 32³, where
    // separator quality pays for the coarsening work — so 16³ gets nested
    // dissection, the big cases multilevel).
    grid3d_case(
        &mut report,
        &generators::grid3d_laplacian(16, 16, 16),
        &GridCase {
            case: "grid3d16p8",
            parts: 8,
            tol: 1e-6,
            budget: Duration::from_secs(60),
            setup_reps: 5,
            track_setup: true,
            solve: true,
            partitioner: opts
                .partitioner
                .unwrap_or_else(|| Partitioner::default_for(16 * 16 * 16)),
        },
    )?;
    flush(&report)?;
    // The multilevel slice, also always on (and pinned to `ml` even under
    // `--partitioner`): quick runs and the committed full baseline share
    // its tracked cut/convergence keys, giving CI a multilevel gate.
    grid3d_case(
        &mut report,
        &generators::grid3d_laplacian(16, 16, 16),
        &GridCase {
            case: "grid3d16p8ml",
            parts: 8,
            tol: 1e-6,
            budget: Duration::from_secs(60),
            setup_reps: 3,
            track_setup: false,
            solve: true,
            partitioner: Partitioner::Multilevel,
        },
    )?;
    flush(&report)?;
    if !opts.quick {
        let big = |n: usize| {
            opts.partitioner
                .unwrap_or_else(|| Partitioner::default_for(n))
        };
        grid3d_case(
            &mut report,
            &generators::grid3d_laplacian(48, 48, 48),
            &GridCase {
                case: "grid3d48p32",
                parts: 32,
                tol: 1e-6,
                budget: Duration::from_secs(600),
                setup_reps: 3,
                track_setup: false,
                solve: true,
                partitioner: big(48 * 48 * 48),
            },
        )?;
        flush(&report)?;
        grid3d_case(
            &mut report,
            &generators::grid3d_laplacian_aniso(32, 32, 32, 0.05),
            &GridCase {
                case: "grid3d_aniso32p16",
                parts: 16,
                tol: 1e-6,
                budget: Duration::from_secs(600),
                setup_reps: 3,
                track_setup: false,
                solve: true,
                partitioner: big(32 * 32 * 32),
            },
        )?;
        flush(&report)?;
        // The headline: 100³ = 10⁶ unknowns, reference-free, factor-once.
        // Partition A/B always; the wall-clock solves (hours of single-box
        // time, see BENCH_7.json's nested-dissection numbers) only under
        // `--headline`.
        grid3d_case(
            &mut report,
            &generators::grid3d_laplacian(100, 100, 100),
            &GridCase {
                case: "grid3d100p64",
                parts: 64,
                tol: 1e-6,
                budget: Duration::from_secs(3600),
                setup_reps: 1,
                track_setup: false,
                solve: opts.headline,
                partitioner: big(100 * 100 * 100),
            },
        )?;
        flush(&report)?;
    }

    kernel_case(&mut report, if opts.quick { 7 } else { 15 })?;
    flush(&report)?;

    let matrix = opts.matrix.clone().unwrap_or_else(fixture_matrix);
    let rhs = match &opts.matrix {
        Some(_) => opts.rhs.clone(),
        None => Some(fixture_rhs()),
    };
    mm_case(&mut report, &matrix, rhs.as_deref())?;

    flush(&report)?;
    println!(
        "\nwrote {} ({} metrics, {} tracked)",
        opts.out.display(),
        report.metrics.len(),
        report.tracked.len()
    );

    let mut baselines = Vec::new();
    for baseline_path in &opts.checks {
        let text = std::fs::read_to_string(baseline_path).map_err(|e| {
            dtm_sparse::Error::Parse(format!("read {}: {e}", baseline_path.display()))
        })?;
        baselines.push((
            baseline_path.display().to_string(),
            parse_bench_json(&text)?,
        ));
    }
    let new = (report.metrics.clone(), report.tracked.clone());
    let check = check_against_baselines(&new, &baselines, detected_cores());
    if check.ms_gates_skipped {
        // The committed baselines were measured multi-core; concurrent
        // phases (factor_ms) serialize on one core and would false-flag
        // (the BENCH_7 grid3d16p8/factor_ms incident). One machine, one
        // notice — however many baselines are checked.
        println!("single-core machine detected: skipping *_ms wall-clock gates");
    }
    let mut bad = Vec::new();
    for result in &check.per_baseline {
        println!(
            "checked {} tracked metrics against {}: {}",
            result.shared,
            result.label,
            if result.regressed.is_empty() {
                "no regressions > 20%".to_string()
            } else {
                format!("{} regression(s)", result.regressed.len())
            }
        );
        bad.extend(
            result
                .regressed
                .iter()
                .map(|r| format!("[vs {}] {r}", result.label)),
        );
    }
    if !bad.is_empty() {
        return Err(dtm_sparse::Error::Parse(format!(
            "{} tracked metric(s) regressed > 20%:\n  {}",
            bad.len(),
            bad.join("\n  ")
        )));
    }
    Ok(())
}

/// One 3-D case of the suite: geometry comes in as the assembled matrix so
/// isotropic and anisotropic stencils share the measurement path.
struct GridCase<'a> {
    case: &'a str,
    parts: usize,
    tol: f64,
    budget: Duration,
    /// Setup phases are measured this many times; medians are reported.
    setup_reps: usize,
    /// Track the phase medians (the CI-sized case only: its timings are
    /// small and stable enough for the regression gate).
    track_setup: bool,
    /// Run the split/factor/solve phases. `false` records the partition
    /// A/B metrics only — the headline case without `--headline`.
    solve: bool,
    /// The partitioner under measurement.
    partitioner: Partitioner,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn record_solve(
    report: &mut BenchReport,
    prefix: &str,
    r: &SolveReport,
    wall: Duration,
    track_counters: bool,
) {
    let rec = |report: &mut BenchReport, key: String, v: f64, tracked: bool| {
        if tracked {
            report.track(&key, v);
        } else {
            report.record(&key, v);
        }
    };
    rec(
        report,
        format!("{prefix}/msgs"),
        r.total_messages as f64,
        track_counters,
    );
    rec(
        report,
        format!("{prefix}/solves"),
        r.total_solves as f64,
        track_counters,
    );
    rec(
        report,
        format!("{prefix}/flops"),
        r.total_flops as f64,
        track_counters,
    );
    report.record(&format!("{prefix}/wall_ms"), wall.as_secs_f64() * 1e3);
    report.record(&format!("{prefix}/residual"), r.final_residual);
    report.track(
        &format!("{prefix}/converged"),
        f64::from(u8::from(r.converged)),
    );
}

/// The 9×9 seed case: an 8-column reference-free block solve on the
/// deterministic simulated machine.
fn seed_case(report: &mut BenchReport) -> dtm_sparse::Result<()> {
    println!("— seed 9×9, simnet, K = 8 —");
    let a = generators::grid2d_laplacian(9, 9);
    let n = a.n_rows();
    let b = generators::random_rhs(n, crate::seeds::RHS);
    let cols: Vec<Vec<f64>> = (0..8)
        .map(|c| generators::random_rhs(n, crate::seeds::RHS + 1 + c))
        .collect();
    let problem = DtmBuilder::new(a, b)
        .grid_strips(9, 9, 3)
        .termination(Termination::Residual { tol: 1e-8 })
        .build()?;
    let t = Instant::now();
    let r = problem.solve_block(&cols)?;
    let wall = t.elapsed();
    report.track("seed9x9/simnet_k8/sim_ms", r.final_time_ms);
    record_solve(report, "seed9x9/simnet_k8", &r, wall, true);
    println!(
        "  converged={} msgs={} flops={} sim_ms={:.3} wall_ms={:.1}",
        r.converged,
        r.total_messages,
        r.total_flops,
        r.final_time_ms,
        wall.as_secs_f64() * 1e3
    );
    Ok(())
}

/// A 3-D system under the case's partitioner: per-phase setup timings
/// (partition → split → factor), then both wall-clock backends solving
/// over the same factored templates (the factor-once serving path — no
/// backend ever re-factors).
fn grid3d_case(report: &mut BenchReport, a: &Csr, spec: &GridCase) -> dtm_sparse::Result<()> {
    let case = spec.case;
    let n = a.n_rows();
    let pname = spec.partitioner.name();
    println!(
        "— {case}: {n} unknowns, {} parts, partitioner={pname} —",
        spec.parts
    );
    let b = generators::random_rhs(n, crate::seeds::RHS);
    let rec_setup = |report: &mut BenchReport, key: String, v: f64| {
        if spec.track_setup {
            report.track(&key, v);
        } else {
            report.record(&key, v);
        }
    };

    // Phase 1: partition. Deterministic output (multilevel included: the
    // seed is pinned in `PartitionConfig`), so reps only re-time it.
    let cfg = PartitionConfig::default();
    let mut asg = Vec::new();
    let mut samples: Vec<f64> = (0..spec.setup_reps)
        .map(|_| {
            let t = Instant::now();
            asg = spec.partitioner.assign(a, spec.parts, &cfg);
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let partition_ms = median(&mut samples);
    let m = partition::metrics(a, &asg);
    report.record(&format!("{case}/n"), n as f64);
    rec_setup(report, format!("{case}/partition_ms"), partition_ms);
    report.track(&format!("{case}/partition/cut_edges"), m.cut_edges as f64);
    report.track(
        &format!("{case}/partition/boundary"),
        m.boundary_vertices as f64,
    );
    report.record(&format!("{case}/partition/imbalance"), m.imbalance);
    report.record(
        &format!("{case}/partition/partitioner_id"),
        spec.partitioner.id() as f64,
    );
    println!(
        "  partition[{pname}]: cut={} boundary={} imbalance={:.3} ({partition_ms:.0} ms)",
        m.cut_edges, m.boundary_vertices, m.imbalance
    );
    match spec.partitioner {
        Partitioner::NestedDissection => {
            // Legacy key aliases the BENCH_7 gate still compares.
            report.track(&format!("{case}/partition/nd_cut"), m.cut_edges as f64);
            report.track(
                &format!("{case}/partition/nd_boundary"),
                m.boundary_vertices as f64,
            );
            report.record(&format!("{case}/partition/nd_imbalance"), m.imbalance);
            // The greedy-grow comparison column is informative, not part of
            // the pipeline — skip it where it would dominate setup.
            if n <= 500_000 {
                let ggm = partition::metrics(a, &partition::greedy_grow(a, spec.parts, 42));
                report.track(
                    &format!("{case}/partition/greedy_cut"),
                    ggm.cut_edges as f64,
                );
            }
        }
        _ => {
            // Record the nested-dissection cut alongside (partition only,
            // no solve) so the A/B cut delta is machine-readable per case.
            let ndm = partition::metrics(a, &partition::nested_dissection(a, spec.parts));
            report.track(&format!("{case}/partition/nd_cut"), ndm.cut_edges as f64);
            report.record(
                &format!("{case}/partition/nd_boundary"),
                ndm.boundary_vertices as f64,
            );
            println!(
                "  partition[nd reference]: cut={} ({}% of nd)",
                ndm.cut_edges,
                m.cut_edges * 100 / ndm.cut_edges.max(1)
            );
        }
    }
    if !spec.solve {
        println!("  (partition-only case: split/factor/solve skipped — pass --headline)");
        return Ok(());
    }

    // Phase 2: tearing — `DtmBuilder::build` is graph assembly, plan
    // derivation and the (pool-fanned) EVS split; reference-free, so no
    // factorization of the original system hides in here.
    let mut problem = None;
    let mut samples: Vec<f64> = (0..spec.setup_reps)
        .map(|_| {
            let t = Instant::now();
            problem = Some(
                DtmBuilder::new(a.clone(), b.clone())
                    .assignment(asg.clone())
                    .termination(Termination::Residual { tol: spec.tol })
                    .build(),
            );
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let split_ms = median(&mut samples);
    let problem = problem.expect("setup_reps >= 1")?;
    rec_setup(report, format!("{case}/split_ms"), split_ms);

    // Phase 3: factor every subdomain concurrently into reusable
    // templates (factors are Arc-shared; backends clone the templates).
    let pool = rayon::ThreadPoolBuilder::new()
        .build()
        .map_err(|e| dtm_sparse::Error::Parse(format!("bench pool: {e}")))?;
    let common = CommonConfig {
        termination: Termination::Residual { tol: spec.tol },
        ..Default::default()
    };
    let mut templates = None;
    let mut samples: Vec<f64> = (0..spec.setup_reps)
        .map(|_| {
            let t = Instant::now();
            templates = Some(build_nodes_parallel(&problem.split, &common, &pool));
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    let factor_ms = median(&mut samples);
    let templates = templates.expect("setup_reps >= 1")?;
    rec_setup(report, format!("{case}/factor_ms"), factor_ms);
    let setup_ms = partition_ms + split_ms + factor_ms;
    report.record(&format!("{case}/setup_total_ms"), setup_ms);
    println!(
        "  setup: partition {partition_ms:.0} ms + split {split_ms:.0} ms + factor \
         {factor_ms:.0} ms = {setup_ms:.0} ms"
    );

    let tconfig = ThreadedConfig {
        common: common.clone(),
        budget: spec.budget,
        ..Default::default()
    };
    let t = Instant::now();
    let r = threaded::solve_prepared(&problem.split, templates.clone(), None, &tconfig)?;
    let wall = t.elapsed();
    println!(
        "  threaded: converged={} residual={:.2e} msgs={} flops={} wall={:.1}s",
        r.converged,
        r.final_residual,
        r.total_messages,
        r.total_flops,
        wall.as_secs_f64()
    );
    record_solve(report, &format!("{case}/threaded"), &r, wall, false);

    let rconfig = RayonConfig {
        common,
        budget: spec.budget,
        ..Default::default()
    };
    let t = Instant::now();
    let r = rayon_backend::solve_prepared(&problem.split, templates, None, &rconfig)?;
    let wall = t.elapsed();
    println!(
        "  rayon:    converged={} residual={:.2e} msgs={} flops={} wall={:.1}s",
        r.converged,
        r.final_residual,
        r.total_messages,
        r.total_flops,
        wall.as_secs_f64()
    );
    record_solve(report, &format!("{case}/rayon"), &r, wall, false);
    Ok(())
}

/// Median per-RHS substitution latency: seed column-major kernel vs the
/// cache-blocked interleaved kernel, K ∈ {1, 8, 16}, RCM sparse factor of
/// a 20³ Laplacian. Reps alternate colmajor/blocked so clock drift,
/// frequency scaling and cache state hit both kernels equally — measuring
/// one kernel's reps back to back systematically flattered whichever ran
/// second.
fn kernel_case(report: &mut BenchReport, reps: usize) -> dtm_sparse::Result<()> {
    let s = 20usize;
    println!("— substitution kernels: grid3d {s}³ RCM factor, {reps} interleaved reps —");
    let a = generators::grid3d_laplacian(s, s, s);
    let n = a.n_rows();
    let f = SparseCholesky::factor_rcm(&a)?;
    report.record("kernels/grid3d20_rcm/nnz_l", f.nnz_l() as f64);
    for k in [1usize, 8, 16] {
        let template: Vec<f64> = (0..n * k)
            .map(|i| ((i % 101) as f64 - 50.0) * 0.013)
            .collect();
        let mut xs = template.clone();
        let mut scratch = Vec::new();
        // Warm up both paths (fills scratch, faults pages).
        f.solve_block_colmajor(&mut xs, k);
        xs.copy_from_slice(&template);
        f.solve_block_with_scratch(&mut xs, k, &mut scratch);
        let mut col_samples = Vec::with_capacity(reps);
        let mut blk_samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            xs.copy_from_slice(&template);
            let t = Instant::now();
            f.solve_block_colmajor(&mut xs, k);
            col_samples.push(t.elapsed().as_secs_f64() * 1e9);
            xs.copy_from_slice(&template);
            let t = Instant::now();
            f.solve_block_with_scratch(&mut xs, k, &mut scratch);
            blk_samples.push(t.elapsed().as_secs_f64() * 1e9);
        }
        let colmajor = median(&mut col_samples);
        let blocked = median(&mut blk_samples);
        let (col_rhs, blk_rhs) = (colmajor / k as f64, blocked / k as f64);
        let speedup = col_rhs / blk_rhs;
        report.record(
            &format!("kernels/grid3d20_rcm/k{k}/colmajor_ns_per_rhs"),
            col_rhs,
        );
        report.record(
            &format!("kernels/grid3d20_rcm/k{k}/blocked_ns_per_rhs"),
            blk_rhs,
        );
        report.record(&format!("kernels/grid3d20_rcm/k{k}/speedup"), speedup);
        println!(
            "  K={k:>2}: colmajor {col_rhs:>9.0} ns/rhs, blocked {blk_rhs:>9.0} ns/rhs, \
             speedup {speedup:.2}×"
        );
        // K = 1 dispatches to the scalar column-major kernel — the blocked
        // entry point must cost the same within measurement noise. A real
        // divergence here means the dispatch regressed.
        if k == 1 && !(0.7..=1.4).contains(&speedup) {
            return Err(dtm_sparse::Error::Parse(format!(
                "K=1 blocked kernel no longer matches the scalar path: \
                 {blk_rhs:.0} ns/rhs vs colmajor {col_rhs:.0} ns/rhs \
                 (ratio {speedup:.2}, expected within [0.7, 1.4])"
            )));
        }
    }
    Ok(())
}

/// Load, partition and solve a Matrix Market system reference-free.
fn mm_case(report: &mut BenchReport, matrix: &Path, rhs: Option<&Path>) -> dtm_sparse::Result<()> {
    let stem = matrix
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "matrix".into());
    println!("— matrix market: {} —", matrix.display());
    let file = std::fs::File::open(matrix)
        .map_err(|e| dtm_sparse::Error::Parse(format!("open {}: {e}", matrix.display())))?;
    let a = mm::read_matrix(std::io::BufReader::new(file))?;
    let n = a.n_rows();
    let b = match rhs {
        Some(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| dtm_sparse::Error::Parse(format!("open {}: {e}", path.display())))?;
            let v = mm::read_vector(std::io::BufReader::new(file))?;
            if v.len() != n {
                return Err(dtm_sparse::Error::DimensionMismatch {
                    context: "bench --rhs length",
                    expected: n,
                    actual: v.len(),
                });
            }
            v
        }
        None => generators::manufactured_rhs(&a, crate::seeds::RHS).0,
    };
    let parts = 4.min(n);
    let partitioner = Partitioner::NestedDissection;
    let asg = partitioner.assign(&a, parts, &PartitionConfig::default());
    let cut = partition::metrics(&a, &asg).cut_edges;
    let problem = DtmBuilder::new(a, b)
        .assignment(asg)
        .termination(Termination::Residual { tol: 1e-8 })
        .build()?;
    let config = ThreadedConfig {
        common: CommonConfig {
            termination: Termination::Residual { tol: 1e-8 },
            ..Default::default()
        },
        budget: Duration::from_secs(60),
        ..Default::default()
    };
    let t = Instant::now();
    let r = problem.solve_threaded(&config)?;
    let wall = t.elapsed();
    let prefix = format!("mm/{stem}");
    report.track(&format!("{prefix}/n"), n as f64);
    report.track(&format!("{prefix}/parts"), parts as f64);
    report.track(&format!("{prefix}/nd_cut"), cut as f64);
    report.track(&format!("{prefix}/partition/cut_edges"), cut as f64);
    report.record(
        &format!("{prefix}/partition/partitioner_id"),
        partitioner.id() as f64,
    );
    record_solve(report, &prefix, &r, wall, false);
    println!(
        "  n={n} parts={parts} partitioner={} cut={cut} converged={} residual={:.2e} wall_ms={:.1}",
        partitioner.name(),
        r.converged,
        r.final_residual,
        wall.as_secs_f64() * 1e3
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let mut r = BenchReport::default();
        r.track("a/msgs", 420.0);
        r.record("a/wall_ms", 13.25);
        r.track("b/converged", 1.0);
        let text = r.to_json(true);
        let (metrics, tracked) = parse_bench_json(&text).unwrap();
        assert_eq!(metrics.len(), 3);
        assert_eq!(metrics["a/msgs"], 420.0);
        assert!((metrics["a/wall_ms"] - 13.25).abs() < 1e-9);
        assert_eq!(tracked.len(), 2);
        assert!(tracked.contains("b/converged"));
    }

    #[test]
    fn regression_gate_flags_worse_counters_and_lost_convergence() {
        let base: (BTreeMap<String, f64>, BTreeSet<String>) = (
            [
                ("x/msgs".to_string(), 100.0),
                ("x/converged".to_string(), 1.0),
                ("x/wall_ms".to_string(), 5.0),
            ]
            .into(),
            ["x/msgs".to_string(), "x/converged".to_string()].into(),
        );
        // Within 20%: fine.
        let mut new = base.clone();
        new.0.insert("x/msgs".into(), 115.0);
        assert!(regressions(&new, &base).is_empty());
        // 25% worse: flagged.
        new.0.insert("x/msgs".into(), 125.0);
        assert_eq!(regressions(&new, &base).len(), 1);
        // Untracked metrics never flag.
        new.0.insert("x/msgs".into(), 100.0);
        new.0.insert("x/wall_ms".into(), 50_000.0);
        assert!(regressions(&new, &base).is_empty());
        // Convergence may not drop, and improvements never flag.
        new.0.insert("x/converged".into(), 0.0);
        assert_eq!(regressions(&new, &base).len(), 1);
        new.0.insert("x/converged".into(), 1.0);
        new.0.insert("x/msgs".into(), 10.0);
        assert!(regressions(&new, &base).is_empty());
    }

    #[test]
    fn tracked_wall_clock_gets_absolute_slack() {
        // A tracked `_ms` phase gets 5 ms absolute slack on top of the
        // 20% band: a 2 ms → 6 ms jitter on a tiny median must not flag,
        // while a genuine blow-up must.
        let base: (BTreeMap<String, f64>, BTreeSet<String>) = (
            [("c/split_ms".to_string(), 2.0)].into(),
            ["c/split_ms".to_string()].into(),
        );
        let mut new = base.clone();
        new.0.insert("c/split_ms".into(), 6.0);
        assert!(regressions(&new, &base).is_empty());
        new.0.insert("c/split_ms".into(), 8.0);
        assert_eq!(regressions_with_cores(&new, &base, 2).len(), 1);
    }

    #[test]
    fn single_core_skips_wall_clock_gates_only() {
        // On a 1-core box the concurrent phases serialize, so a tracked
        // `_ms` blow-up must not flag — but counters and convergence
        // are machine-independent and still gate.
        let base: (BTreeMap<String, f64>, BTreeSet<String>) = (
            [
                ("g/factor_ms".to_string(), 40.0),
                ("g/msgs".to_string(), 100.0),
                ("g/converged".to_string(), 1.0),
            ]
            .into(),
            [
                "g/factor_ms".to_string(),
                "g/msgs".to_string(),
                "g/converged".to_string(),
            ]
            .into(),
        );
        let mut new = base.clone();
        new.0.insert("g/factor_ms".into(), 400.0);
        assert!(regressions_with_cores(&new, &base, 1).is_empty());
        assert_eq!(regressions_with_cores(&new, &base, 2).len(), 1);
        new.0.insert("g/msgs".into(), 130.0);
        new.0.insert("g/converged".into(), 0.0);
        assert_eq!(regressions_with_cores(&new, &base, 1).len(), 2);
    }

    #[test]
    fn one_core_downgrade_applies_to_every_checked_baseline() {
        // Two baselines, each of which would flag a tracked `_ms`
        // blow-up on a multi-core box, one of which also has a genuine
        // counter regression. On cores = 1 the wall-clock downgrade must
        // apply to BOTH files (not just the first), the machine-level
        // notice must be raised exactly once per run, and the
        // machine-independent counter must still gate.
        let tracked = || {
            [
                "g/factor_ms".to_string(),
                "g/msgs".to_string(),
                "g/converged".to_string(),
            ]
            .into()
        };
        let values = |factor_ms: f64, msgs: f64| -> BTreeMap<String, f64> {
            [
                ("g/factor_ms".to_string(), factor_ms),
                ("g/msgs".to_string(), msgs),
                ("g/converged".to_string(), 1.0),
            ]
            .into()
        };
        let new = (values(400.0, 130.0), tracked());
        let baselines = vec![
            ("BENCH_7.json".to_string(), (values(40.0, 100.0), tracked())),
            ("BENCH_8.json".to_string(), (values(45.0, 130.0), tracked())),
        ];

        let one_core = check_against_baselines(&new, &baselines, 1);
        assert!(one_core.ms_gates_skipped, "downgrade notice raised once");
        assert_eq!(one_core.per_baseline.len(), 2);
        let [first, second] = &one_core.per_baseline[..] else {
            panic!("one verdict per baseline");
        };
        assert_eq!(first.label, "BENCH_7.json");
        assert_eq!(first.shared, 3);
        // The 10× factor_ms is forgiven on both baselines; the 30% msgs
        // regression against BENCH_7 is not.
        assert_eq!(first.regressed.len(), 1, "counter gates: {first:?}");
        assert!(first.regressed[0].starts_with("g/msgs"));
        assert!(second.regressed.is_empty(), "fully forgiven: {second:?}");

        // The same check on a multi-core box flags factor_ms in both.
        let multi_core = check_against_baselines(&new, &baselines, 8);
        assert!(!multi_core.ms_gates_skipped);
        assert_eq!(multi_core.per_baseline[0].regressed.len(), 2);
        assert_eq!(multi_core.per_baseline[1].regressed.len(), 1);

        // No baselines checked → nothing to announce even on 1 core.
        assert!(!check_against_baselines(&new, &[], 1).ms_gates_skipped);
    }

    #[test]
    fn fixture_files_exist_and_roundtrip() {
        // The committed fixture must parse, re-serialize, and re-parse to
        // the identical matrix (read → write → read equality), and the
        // paired RHS must match its dimension.
        let file = std::fs::File::open(fixture_matrix()).expect("committed fixture");
        let a = mm::read_matrix(std::io::BufReader::new(file)).expect("parses");
        let mut buf = Vec::new();
        mm::write_matrix(&mut buf, &a, true).expect("writes");
        let b = mm::read_matrix(std::io::Cursor::new(buf)).expect("reparses");
        assert_eq!(a, b, "mm read → write → read must be the identity");
        let rhs = mm::read_vector(std::io::BufReader::new(
            std::fs::File::open(fixture_rhs()).expect("committed rhs"),
        ))
        .expect("rhs parses");
        assert_eq!(rhs.len(), a.n_rows());
    }
}

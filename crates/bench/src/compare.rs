//! Message-for-message comparison plumbing shared by `repro compare` and
//! `benches/baseline_compare.rs`: DTM vs randomized asynchronous
//! Richardson vs D-iteration on **identical machines** — same grid
//! Laplacian, same `px × py` block partition, same seeded heterogeneous
//! delay topology, same per-activation compute model, and the same
//! [`Termination::Residual`] stopping rule, so no oracle and no setup
//! asymmetry taints the counters.

use dtm_core::async_baselines::{
    self, BaselineAlgo, BaselineConfig, DIterationParams, RichardsonParams,
};
use dtm_core::runtime::CommonConfig;
use dtm_core::runtime::ExecutorBackend;
use dtm_core::solver::{self, ComputeModel, DtmConfig, Termination};
use dtm_core::SolveReport;
use dtm_graph::evs::{split as evs_split, EvsOptions, SplitSystem, TwinTopology};
use dtm_graph::{partition, ElectricGraph, PartitionPlan};
use dtm_net::{ChildCommand, DistributedBackend, DistributedConfig, RunMode, TransportKind};
use dtm_simnet::trace::Trace;
use dtm_simnet::{DelayModel, Engine, SimDuration, SimTime, Topology};
use dtm_sparse::{generators, Csr};
use std::collections::BTreeSet;
use std::time::Duration;

/// Delay seed of the comparison machine (fixed, like the figure seeds).
pub const COMPARE_DELAY_SEED: u64 = 4_411;
/// Right-hand-side seed of the comparison workload.
pub const COMPARE_RHS_SEED: u64 = 4_412;

/// One comparison workload: the system, both partition views (raw row
/// assignment for the point baselines, machine-aligned EVS split for
/// DTM), and the shared machine.
pub struct CompareSetup {
    /// The system matrix (`side × side` grid Laplacian).
    pub a: Csr,
    /// The right-hand side.
    pub b: Vec<f64>,
    /// Raw row partition (`grid_blocks`), used by the baselines.
    pub assignment: Vec<usize>,
    /// The machine-aligned EVS split of the same partition, used by DTM.
    pub split: SplitSystem,
    /// The shared heterogeneous machine (mesh, asymmetric 10–99 ms
    /// delays).
    pub topology: Topology,
    /// The shared relative-residual tolerance.
    pub tol: f64,
}

/// Build the `side × side` grid-Laplacian comparison workload torn into
/// `px × py` blocks on a `px × py` mesh machine.
pub fn grid_setup(side: usize, px: usize, py: usize, tol: f64) -> CompareSetup {
    let a = generators::grid2d_laplacian(side, side);
    let b = generators::random_rhs(side * side, COMPARE_RHS_SEED);
    let topology =
        Topology::mesh(px, py).with_delays(&DelayModel::uniform_ms(10.0, 99.0, COMPARE_DELAY_SEED));
    let assignment = partition::grid_blocks(side, side, px, py);
    let g = ElectricGraph::from_system(a.clone(), b.clone()).expect("grid system is symmetric");
    let plan = PartitionPlan::from_assignment(&g, &assignment).expect("regular plan");
    let pairs: BTreeSet<(usize, usize)> = topology
        .links()
        .iter()
        .map(|l| (l.src.min(l.dst), l.src.max(l.dst)))
        .collect();
    let split = evs_split(
        &g,
        &plan,
        &EvsOptions {
            twin_topology: TwinTopology::TreeWithin(pairs),
            ..Default::default()
        },
    )
    .expect("machine-aligned split is valid");
    CompareSetup {
        a,
        b,
        assignment,
        split,
        topology,
        tol,
    }
}

/// The shared per-activation compute model: 1 ms per local solve, for
/// every algorithm — the same bound a real CPU imposes.
fn compute_model() -> ComputeModel {
    ComputeModel::Fixed(SimDuration::from_millis_f64(1.0))
}

const HORIZON_MS: f64 = 1_200_000.0;

/// The baselines' run configuration on the comparison machine.
pub fn baseline_config(tol: f64) -> BaselineConfig {
    BaselineConfig {
        termination: Termination::Residual { tol },
        compute: compute_model(),
        horizon: SimDuration::from_millis_f64(HORIZON_MS),
        sample_interval: SimDuration::from_millis_f64(5.0),
        ..Default::default()
    }
}

/// DTM on the comparison machine, reference-free.
pub fn dtm_report(s: &CompareSetup) -> SolveReport {
    solver::solve(
        &s.split,
        s.topology.clone(),
        None,
        &DtmConfig {
            common: CommonConfig {
                termination: Termination::Residual { tol: s.tol },
                ..Default::default()
            },
            compute: compute_model(),
            horizon: SimDuration::from_millis_f64(HORIZON_MS),
            sample_interval: SimDuration::from_millis_f64(5.0),
            ..Default::default()
        },
    )
    .expect("DTM comparison run")
}

/// Randomized Richardson on the comparison machine.
pub fn richardson_report(s: &CompareSetup) -> SolveReport {
    async_baselines::solve_sim(
        &BaselineAlgo::RandomizedRichardson(RichardsonParams::default()),
        &s.a,
        &s.b,
        &s.assignment,
        s.topology.clone(),
        None,
        &baseline_config(s.tol),
    )
    .expect("Richardson comparison run")
}

/// D-iteration on the comparison machine.
pub fn diteration_report(s: &CompareSetup) -> SolveReport {
    async_baselines::solve_sim(
        &BaselineAlgo::DIteration(DIterationParams::default()),
        &s.a,
        &s.b,
        &s.assignment,
        s.topology.clone(),
        None,
        &baseline_config(s.tol),
    )
    .expect("D-iteration comparison run")
}

/// All three algorithms on the identical machine, in table order.
pub fn all_reports(s: &CompareSetup) -> Vec<SolveReport> {
    vec![dtm_report(s), richardson_report(s), diteration_report(s)]
}

/// Distributed-backend configuration on the comparison workload: the
/// shared reference-free residual rule, with every wave route validated
/// against the comparison machine's link table before anything spawns.
pub fn distributed_config(s: &CompareSetup, processes: usize, mode: RunMode) -> DistributedConfig {
    DistributedConfig {
        common: CommonConfig {
            termination: Termination::Residual { tol: s.tol },
            ..Default::default()
        },
        mode,
        processes,
        topology: Some(s.topology.clone()),
        budget: Duration::from_secs(600),
    }
}

/// Run DTM on the comparison workload twice — once fully in-process (one
/// group, one thread) and once torn into `processes` OS processes over
/// `transport` sockets — and return both reports. The round-structured
/// executor makes the pair bitwise-identical; see
/// [`assert_distributed_bitwise`].
///
/// # Errors
/// Propagates backend failures (spawn, handshake, wire, solve).
pub fn distributed_pair(
    s: &CompareSetup,
    transport: TransportKind,
    processes: usize,
    child: ChildCommand,
) -> dtm_sparse::Result<(SolveReport, SolveReport)> {
    let backend = DistributedBackend;
    let in_process = backend.solve(
        &s.split,
        None,
        &distributed_config(s, 1, RunMode::InProcess),
    )?;
    let multi_process = backend.solve(
        &s.split,
        None,
        &distributed_config(
            s,
            processes,
            RunMode::Processes {
                transport,
                child,
                fail: None,
            },
        ),
    )?;
    Ok((in_process, multi_process))
}

/// Assert the distributed run reproduced the in-process run **bit for
/// bit**: identical solution bits, identical residual bits, identical
/// deterministic work counters.
///
/// # Panics
/// Panics (with the first differing index) when any bit differs — this
/// is the `repro compare --transport …` gate, so divergence must fail
/// loudly.
pub fn assert_distributed_bitwise(in_process: &SolveReport, multi_process: &SolveReport) {
    assert_eq!(
        in_process.solution.len(),
        multi_process.solution.len(),
        "distributed: solution lengths differ"
    );
    for (i, (a, b)) in in_process
        .solution
        .iter()
        .zip(&multi_process.solution)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "distributed: solution bit mismatch at vertex {i}: {a:?} vs {b:?}"
        );
    }
    assert_eq!(
        in_process.final_residual.to_bits(),
        multi_process.final_residual.to_bits(),
        "distributed: final residual bits differ"
    );
    assert_eq!(
        in_process.total_solves, multi_process.total_solves,
        "distributed: solve counters differ"
    );
    assert_eq!(
        in_process.total_messages, multi_process.total_messages,
        "distributed: message counters differ"
    );
    assert_eq!(
        in_process.total_flops, multi_process.total_flops,
        "distributed: flop counters differ"
    );
    assert_eq!(
        in_process.converged, multi_process.converged,
        "distributed: convergence flags differ"
    );
}

/// A short tagged activation-trace sample of a baseline on the comparison
/// machine (the per-algorithm trace tagging of `dtm-simnet`).
pub fn baseline_trace_sample(s: &CompareSetup, algo: &BaselineAlgo, capacity: usize) -> Trace {
    let config = baseline_config(s.tol);
    let nodes =
        async_baselines::build_sim_nodes(algo, &s.a, &s.b, &s.assignment, &s.topology, &config)
            .expect("baseline nodes build");
    let mut engine = Engine::new(s.topology.clone(), nodes);
    engine.enable_trace_tagged(capacity, algo.kind().name());
    engine.run_until(SimTime::ZERO + SimDuration::from_millis_f64(400.0));
    engine.trace().expect("trace enabled").clone()
}

/// A short tagged activation-trace sample of DTM on the same machine.
pub fn dtm_trace_sample(s: &CompareSetup, capacity: usize) -> Trace {
    let config = DtmConfig {
        common: CommonConfig {
            termination: Termination::Residual { tol: s.tol },
            ..Default::default()
        },
        compute: compute_model(),
        horizon: SimDuration::from_millis_f64(HORIZON_MS),
        ..Default::default()
    };
    let nodes = solver::build_nodes(&s.split, &s.topology, &config).expect("DTM nodes build");
    let mut engine = Engine::new(s.topology.clone(), nodes);
    engine.enable_trace_tagged(capacity, dtm_core::AlgorithmKind::Dtm.name());
    engine.run_until(SimTime::ZERO + SimDuration::from_millis_f64(400.0));
    engine.trace().expect("trace enabled").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_partitions_agree_on_part_count() {
        let s = grid_setup(9, 2, 2, 1e-6);
        let k = s.assignment.iter().copied().max().unwrap() + 1;
        assert_eq!(k, 4);
        assert_eq!(s.split.n_parts(), 4);
        assert_eq!(s.topology.n_nodes(), 4);
        assert_eq!(s.a.n_rows(), 81);
    }

    #[test]
    fn trace_samples_are_tagged_per_algorithm() {
        let s = grid_setup(9, 2, 2, 1e-4);
        let t = baseline_trace_sample(
            &s,
            &BaselineAlgo::DIteration(DIterationParams::default()),
            8,
        );
        assert_eq!(t.tag(), "d-iteration");
        assert!(!t.records().is_empty());
        let td = dtm_trace_sample(&s, 8);
        assert_eq!(td.tag(), "dtm");
        assert!(!td.records().is_empty());
    }
}

//! The zero-allocation claim, counted: in steady state the DTM solve loop
//! (solve → scatter through pooled payload buffers → absorb-and-recycle →
//! monitor update) performs **zero heap allocations per wave** for block
//! widths K ≤ `SMALL_BLOCK_INLINE`.
//!
//! Run with:
//!
//! ```text
//! cargo test -p dtm-bench --features alloc-count --test alloc_free
//! ```
//!
//! The exchange is driven single-threaded through `BufferedTransport` and
//! per-part inboxes — exactly the runtime's hot path, with no channel or
//! scheduler internals in the way — after a warm-up phase that fills the
//! freelists and grows every reusable buffer to its steady-state capacity.
#![cfg(feature = "alloc-count")]

use dtm_bench::alloc_count::{arm, disarm, CountingAllocator};
use dtm_core::monitor::Monitor;
use dtm_core::runtime::{
    build_nodes, build_nodes_block, BufferedTransport, CommonConfig, DtmMsg, NodeRuntime,
    Termination,
};
use dtm_graph::evs::{split as evs_split, EvsOptions, SplitSystem};
use dtm_graph::{partition, ElectricGraph, PartitionPlan};
use dtm_simnet::{SimDuration, SimTime};
use dtm_sparse::generators;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn grid_split(side: usize, n_parts: usize) -> SplitSystem {
    let a = generators::grid2d_laplacian(side, side);
    let b = generators::random_rhs(side * side, 4_242);
    let g = ElectricGraph::from_system(a, b).expect("symmetric");
    let asg = partition::grid_strips(side, side, n_parts);
    let plan = PartitionPlan::from_assignment(&g, &asg).expect("valid");
    evs_split(&g, &plan, &EvsOptions::default()).expect("splits")
}

/// Run `iters` full exchange rounds (every node absorbs its pending waves,
/// re-solves, scatters) over reusable inboxes, feeding the reference-free
/// residual monitor each step.
fn exchange_rounds(
    nodes: &mut [NodeRuntime],
    transport: &mut BufferedTransport,
    inboxes: &mut [Vec<DtmMsg>],
    monitor: &mut Monitor,
    iters: usize,
) {
    for _ in 0..iters {
        for (dst, msg) in transport.outbox.drain(..) {
            inboxes[dst].push(msg);
        }
        for (p, node) in nodes.iter_mut().enumerate() {
            if inboxes[p].is_empty() {
                continue;
            }
            for msg in inboxes[p].drain(..) {
                node.absorb_owned(msg);
            }
            node.step(transport);
            monitor.update_part(p, SimTime::from_nanos(0), node.local().solution());
        }
    }
}

/// Steady-state allocation count of the full hot loop at block width `k`
/// (`k = 0` = the scalar pipeline via `build_nodes`).
fn steady_state_allocs(k: usize) -> u64 {
    let ss = grid_split(6, 3);
    let common = CommonConfig {
        termination: Termination::Residual { tol: 0.0 }, // never stop early
        ..Default::default()
    };
    let (mut nodes, rhs_cols);
    if k == 0 {
        nodes = build_nodes(&ss, &common).expect("builds");
        rhs_cols = None;
    } else {
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|c| generators::random_rhs(36, 9_000 + c as u64))
            .collect();
        nodes = build_nodes_block(&ss, &common, &cols).expect("builds");
        rhs_cols = Some(cols);
    }
    // Huge sample interval + constant timestamps: the monitor records one
    // series point on the first update and never grows the series again.
    let mut monitor = Monitor::new_residual(
        &ss,
        rhs_cols.as_deref(),
        SimDuration::from_nanos(u64::MAX / 2),
    );
    let mut transport = BufferedTransport::default();
    let mut inboxes: Vec<Vec<DtmMsg>> = (0..ss.n_parts()).map(|_| Vec::new()).collect();

    // Initial solves (eq. 5.6), then warm up: freelists fill, every
    // reusable buffer reaches its steady-state capacity.
    for (p, node) in nodes.iter_mut().enumerate() {
        node.step(&mut transport);
        monitor.update_part(p, SimTime::from_nanos(0), node.local().solution());
    }
    exchange_rounds(&mut nodes, &mut transport, &mut inboxes, &mut monitor, 64);
    // (A node's freelist oscillates: each absorbed wave funds the next
    // outgoing one, so `pooled_buffers` may legitimately read 0 between
    // rounds — the zero-allocation count below is the real check.)

    // The measured region: 256 further rounds of the identical loop.
    arm();
    exchange_rounds(&mut nodes, &mut transport, &mut inboxes, &mut monitor, 256);
    let stats = disarm();
    stats.total()
}

#[test]
fn steady_state_wave_loop_is_allocation_free_for_inline_widths() {
    for k in [0usize, 1, 2, 4] {
        let allocs = steady_state_allocs(k);
        assert_eq!(
            allocs, 0,
            "K = {k}: steady-state solve loop must not allocate (counted {allocs})"
        );
    }
}

#[test]
fn wide_blocks_reuse_spilled_payloads_once_warm() {
    // K > SMALL_BLOCK_INLINE spills to heap vectors — but those vectors are
    // recycled with the payload buffers, so the warm loop stays
    // allocation-free too.
    let allocs = steady_state_allocs(6);
    assert_eq!(allocs, 0, "K = 6: warm spill buffers must be reused");
}

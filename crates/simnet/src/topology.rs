//! Directed processor topologies with per-link delays.
//!
//! A topology is a set of **directed** links: the delay from processor A to
//! B may differ from B to A — the asymmetry the Directed Transmission Line
//! exists to model (paper §2: "the communication from one processor to
//! another is directed").

use crate::delays::DelayModel;
use crate::time::SimDuration;
use std::collections::BTreeMap;

/// A directed link required by a delay lookup is absent from the topology —
/// the machine cannot realise the algorithm's delay mapping.
///
/// Returned by [`Topology::try_delay`] so malformed topologies surface as a
/// typed error through the builder/executor layers instead of a panic in
/// the middle of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissingLink {
    /// Source processor of the missing link.
    pub src: usize,
    /// Destination processor of the missing link.
    pub dst: usize,
}

impl std::fmt::Display for MissingLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no link {} → {}: the machine has no directed connection to \
             realise this transmission delay",
            self.src, self.dst
        )
    }
}

impl std::error::Error for MissingLink {}

/// A directed communication link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Source processor.
    pub src: usize,
    /// Destination processor.
    pub dst: usize,
    /// Propagation delay of this direction.
    pub delay: SimDuration,
}

/// A directed multigraph-free processor network.
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    links: Vec<Link>,
    out: Vec<Vec<usize>>,
    index: BTreeMap<(usize, usize), usize>,
}

impl Topology {
    /// Build from explicit links.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, or duplicate `(src,
    /// dst)` pairs.
    pub fn from_links(n: usize, links: Vec<Link>) -> Self {
        let mut out = vec![Vec::new(); n];
        let mut index = BTreeMap::new();
        for (i, l) in links.iter().enumerate() {
            assert!(l.src < n && l.dst < n, "link endpoint out of range");
            assert_ne!(l.src, l.dst, "self-loop link");
            let prev = index.insert((l.src, l.dst), i);
            assert!(prev.is_none(), "duplicate link {} → {}", l.src, l.dst);
            out[l.src].push(i);
        }
        Self {
            n,
            links,
            out,
            index,
        }
    }

    /// Bidirectional `rows × cols` mesh (the paper's 4×4 and 8×8 machines);
    /// both directions of every mesh edge are created with delay zero —
    /// apply a [`DelayModel`] with [`Topology::with_delays`].
    pub fn mesh(rows: usize, cols: usize) -> Self {
        let n = rows * cols;
        let idx = |r: usize, c: usize| r * cols + c;
        let mut links = Vec::new();
        let mut push_pair = |a: usize, b: usize| {
            links.push(Link {
                src: a,
                dst: b,
                delay: SimDuration::ZERO,
            });
            links.push(Link {
                src: b,
                dst: a,
                delay: SimDuration::ZERO,
            });
        };
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    push_pair(idx(r, c), idx(r, c + 1));
                }
                if r + 1 < rows {
                    push_pair(idx(r, c), idx(r + 1, c));
                }
            }
        }
        Self::from_links(n, links)
    }

    /// Torus: mesh plus wraparound links.
    pub fn torus(rows: usize, cols: usize) -> Self {
        let n = rows * cols;
        let idx = |r: usize, c: usize| (r % rows) * cols + (c % cols);
        let mut seen = std::collections::HashSet::new();
        let mut links = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                for (nr, nc) in [(r, c + 1), (r + 1, c)] {
                    let (a, b) = (idx(r, c), idx(nr, nc));
                    if a == b || !seen.insert((a.min(b), a.max(b))) {
                        continue;
                    }
                    links.push(Link {
                        src: a,
                        dst: b,
                        delay: SimDuration::ZERO,
                    });
                    links.push(Link {
                        src: b,
                        dst: a,
                        delay: SimDuration::ZERO,
                    });
                }
            }
        }
        Self::from_links(n, links)
    }

    /// Bidirectional ring of `n` processors (a line plus a closing pair;
    /// `n = 2` degenerates to a single bidirectional link).
    pub fn ring(n: usize) -> Self {
        assert!(n >= 2, "ring needs ≥ 2 processors");
        let mut seen = std::collections::HashSet::new();
        let mut links = Vec::new();
        for i in 0..n {
            let j = (i + 1) % n;
            if j == i || !seen.insert((i.min(j), i.max(j))) {
                continue;
            }
            links.push(Link {
                src: i,
                dst: j,
                delay: SimDuration::ZERO,
            });
            links.push(Link {
                src: j,
                dst: i,
                delay: SimDuration::ZERO,
            });
        }
        Self::from_links(n, links)
    }

    /// Star: processor 0 linked to all others.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "star needs ≥ 2 processors");
        let mut links = Vec::new();
        for i in 1..n {
            links.push(Link {
                src: 0,
                dst: i,
                delay: SimDuration::ZERO,
            });
            links.push(Link {
                src: i,
                dst: 0,
                delay: SimDuration::ZERO,
            });
        }
        Self::from_links(n, links)
    }

    /// Fully connected digraph.
    pub fn complete(n: usize) -> Self {
        let mut links = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    links.push(Link {
                        src: i,
                        dst: j,
                        delay: SimDuration::ZERO,
                    });
                }
            }
        }
        Self::from_links(n, links)
    }

    /// Apply a delay model to every directed link (directions are sampled
    /// independently — asymmetric by default for random models).
    pub fn with_delays(mut self, model: &DelayModel) -> Self {
        let mut sampler = model.sampler();
        for l in &mut self.links {
            l.delay = sampler.delay(l.src, l.dst);
        }
        self
    }

    /// Number of processors.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Link ids leaving `src`.
    pub fn out_links(&self, src: usize) -> impl Iterator<Item = &Link> + '_ {
        self.out[src].iter().map(move |&i| &self.links[i])
    }

    /// The directed link `src → dst`, if present.
    pub fn link(&self, src: usize, dst: usize) -> Option<&Link> {
        self.index.get(&(src, dst)).map(|&i| &self.links[i])
    }

    /// Index of the directed link `src → dst` within [`Self::links`].
    pub fn link_id(&self, src: usize, dst: usize) -> Option<usize> {
        self.index.get(&(src, dst)).copied()
    }

    /// Delay of `src → dst`, as a typed error when the link is absent.
    ///
    /// # Errors
    /// Returns [`MissingLink`] when the topology carries no directed link
    /// `src → dst` — callers that validate machines up front (e.g. the
    /// builder's mapping check) surface this instead of panicking mid-run.
    pub fn try_delay(&self, src: usize, dst: usize) -> Result<SimDuration, MissingLink> {
        self.link(src, dst)
            .map(|l| l.delay)
            .ok_or(MissingLink { src, dst })
    }

    /// Smallest and largest link delay (0, 0) for an empty topology.
    pub fn delay_range(&self) -> (SimDuration, SimDuration) {
        let mut lo = SimDuration::from_nanos(u64::MAX);
        let mut hi = SimDuration::ZERO;
        if self.links.is_empty() {
            return (SimDuration::ZERO, SimDuration::ZERO);
        }
        for l in &self.links {
            lo = lo.min(l.delay);
            hi = hi.max(l.delay);
        }
        (lo, hi)
    }

    /// Measure of delay asymmetry: mean over link pairs of
    /// `|d(a→b) − d(b→a)| / max(d(a→b), d(b→a))`, in `[0, 1]`.
    pub fn asymmetry(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for l in &self.links {
            if l.src < l.dst {
                if let Some(back) = self.link(l.dst, l.src) {
                    let (a, b) = (l.delay.as_nanos() as f64, back.delay.as_nanos() as f64);
                    let m = a.max(b);
                    if m > 0.0 {
                        total += (a - b).abs() / m;
                    }
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Histogram of link delays in `bins` equal-width buckets over the
    /// delay range; used to print the paper's Fig. 11B / 13B bar charts.
    pub fn delay_histogram(&self, bins: usize) -> Vec<(SimDuration, usize)> {
        assert!(bins > 0, "need ≥ 1 bin");
        let (lo, hi) = self.delay_range();
        let span = (hi.as_nanos() - lo.as_nanos()).max(1);
        let mut counts = vec![0usize; bins];
        for l in &self.links {
            let off = l.delay.as_nanos() - lo.as_nanos();
            let b = ((off as u128 * bins as u128) / (span as u128 + 1)) as usize;
            counts[b.min(bins - 1)] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                (
                    SimDuration::from_nanos(lo.as_nanos() + span * i as u64 / bins as u64),
                    c,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delays::DelayModel;

    #[test]
    fn mesh_4x4_shape() {
        // The paper's 16-processor machine: 4×4 mesh, 24 undirected edges,
        // 48 directed links.
        let t = Topology::mesh(4, 4);
        assert_eq!(t.n_nodes(), 16);
        assert_eq!(t.links().len(), 48);
        // Corner has 2 out-links, centre has 4.
        assert_eq!(t.out_links(0).count(), 2);
        assert_eq!(t.out_links(5).count(), 4);
        assert!(t.link(0, 1).is_some());
        assert!(t.link(0, 5).is_none(), "no diagonal links in a mesh");
    }

    #[test]
    fn mesh_8x8_shape() {
        // The paper's 64-processor machine.
        let t = Topology::mesh(8, 8);
        assert_eq!(t.n_nodes(), 64);
        assert_eq!(t.links().len(), 2 * (2 * 8 * 7));
    }

    #[test]
    fn uniform_delays_in_range_and_asymmetric() {
        let t = Topology::mesh(4, 4).with_delays(&DelayModel::uniform_ms(10.0, 99.0, 7));
        let (lo, hi) = t.delay_range();
        assert!(lo >= SimDuration::from_millis_f64(10.0));
        assert!(hi <= SimDuration::from_millis_f64(99.0));
        assert!(
            t.asymmetry() > 0.1,
            "independent sampling should be clearly asymmetric: {}",
            t.asymmetry()
        );
    }

    #[test]
    fn fixed_delays_symmetric() {
        let t = Topology::ring(5).with_delays(&DelayModel::fixed_ms(3.0));
        assert_eq!(t.asymmetry(), 0.0);
        assert_eq!(t.try_delay(0, 1), Ok(SimDuration::from_millis_f64(3.0)));
    }

    #[test]
    fn torus_has_wraparound() {
        let t = Topology::torus(3, 3);
        assert!(t.link(0, 2).is_some(), "row wraparound");
        assert!(t.link(0, 6).is_some(), "column wraparound");
    }

    #[test]
    fn ring_star_complete_shapes() {
        assert_eq!(Topology::ring(6).links().len(), 12);
        assert_eq!(Topology::star(5).links().len(), 8);
        assert_eq!(Topology::complete(4).links().len(), 12);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Topology::mesh(4, 4).with_delays(&DelayModel::uniform_ms(10.0, 99.0, 1));
        let b = Topology::mesh(4, 4).with_delays(&DelayModel::uniform_ms(10.0, 99.0, 1));
        let c = Topology::mesh(4, 4).with_delays(&DelayModel::uniform_ms(10.0, 99.0, 2));
        for (la, lb) in a.links().iter().zip(b.links()) {
            assert_eq!(la.delay, lb.delay);
        }
        assert!(a
            .links()
            .iter()
            .zip(c.links())
            .any(|(la, lc)| la.delay != lc.delay));
    }

    #[test]
    fn histogram_counts_all_links() {
        let t = Topology::mesh(4, 4).with_delays(&DelayModel::uniform_ms(10.0, 99.0, 3));
        let h = t.delay_histogram(8);
        assert_eq!(h.iter().map(|&(_, c)| c).sum::<usize>(), 48);
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_rejected() {
        let l = Link {
            src: 0,
            dst: 1,
            delay: SimDuration::ZERO,
        };
        let _ = Topology::from_links(2, vec![l, l]);
    }

    #[test]
    fn try_delay_returns_typed_error_for_missing_link() {
        let t = Topology::mesh(2, 2).with_delays(&DelayModel::fixed_ms(2.0));
        assert_eq!(
            t.try_delay(0, 1),
            Ok(SimDuration::from_millis_f64(2.0)),
            "present link resolves"
        );
        let err = t.try_delay(0, 3).unwrap_err();
        assert_eq!(err, MissingLink { src: 0, dst: 3 });
        assert!(err.to_string().contains("no link 0 → 3"));
    }
}

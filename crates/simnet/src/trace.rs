//! Bounded activation traces.
//!
//! Used by the Table 1 reproduction to *show* a run contains only
//! neighbor-to-neighbor receives and sends — no barrier, no broadcast
//! primitive even exists in the engine API.

use crate::time::SimTime;

/// What happened during one node activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Initial activation (Table 1 steps 1–2): `sent` messages issued.
    Start {
        /// Messages sent.
        sent: usize,
    },
    /// A receive activation (Table 1 step 3): batch solved, messages sent.
    Receive {
        /// Coalesced batch size.
        batch: usize,
        /// Messages sent.
        sent: usize,
    },
    /// The node declared local convergence and broke (step 3.3).
    Halt,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Activation time.
    pub time: SimTime,
    /// Node id.
    pub node: usize,
    /// Event kind.
    pub kind: TraceKind,
}

/// Fixed-capacity trace; once full, further records are counted but
/// dropped. A trace can carry a **tag** naming what produced it (e.g. the
/// algorithm of a comparison run), so interleaved traces from different
/// runs stay attributable when printed side by side.
#[derive(Debug, Clone)]
pub struct Trace {
    capacity: usize,
    records: Vec<TraceRecord>,
    dropped: u64,
    tag: String,
}

impl Trace {
    /// New trace holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self::with_tag(capacity, "")
    }

    /// New tagged trace: `tag` labels the run (per-algorithm tagging for
    /// comparison harnesses).
    pub fn with_tag(capacity: usize, tag: impl Into<String>) -> Self {
        Self {
            capacity,
            records: Vec::with_capacity(capacity.min(4096)),
            dropped: 0,
            tag: tag.into(),
        }
    }

    /// The run label this trace carries (empty when untagged).
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// Append a record (drops when full).
    pub fn push(&mut self, r: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(r);
        } else {
            self.dropped += 1;
        }
    }

    /// Captured records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records that did not fit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_enforced() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            t.push(TraceRecord {
                time: SimTime::from_nanos(i),
                node: 0,
                kind: TraceKind::Start { sent: 0 },
            });
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn tags_label_runs() {
        assert_eq!(Trace::new(4).tag(), "");
        let t = Trace::with_tag(4, "randomized-richardson");
        assert_eq!(t.tag(), "randomized-richardson");
    }
}

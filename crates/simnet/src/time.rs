//! Simulation time as integer nanoseconds.
//!
//! DTM is a *continuous-time* algorithm; the paper's delays are real-valued
//! (6.7 µs, 2.9 µs, 10–99 ms). Integer nanoseconds give 9 significant
//! sub-second digits — far below any delay granularity the paper uses —
//! while keeping a total order with no floating-point accumulation error,
//! which the deterministic event queue requires.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As floating-point microseconds (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// As floating-point milliseconds (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As floating-point seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From microseconds (f64; rounds to nearest nanosecond).
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "bad duration: {us} µs");
        SimDuration((us * 1e3).round() as u64)
    }

    /// From milliseconds (f64; rounds to nearest nanosecond).
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "bad duration: {ms} ms");
        SimDuration((ms * 1e6).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As floating-point microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// As floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating scalar multiply (e.g. `3 × link delay`).
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let d = SimDuration::from_micros_f64(6.7);
        assert_eq!(d.as_nanos(), 6700);
        assert!((d.as_micros_f64() - 6.7).abs() < 1e-12);
        let d = SimDuration::from_millis_f64(99.0);
        assert_eq!(d.as_nanos(), 99_000_000);
        assert!((d.as_millis_f64() - 99.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_nanos(5) + SimDuration::from_nanos(7);
        assert_eq!(t.as_nanos(), 12);
        assert_eq!(t.since(SimTime::from_nanos(4)).as_nanos(), 8);
        assert_eq!(t.since(SimTime::from_nanos(100)).as_nanos(), 0);
        assert_eq!(SimDuration::from_nanos(3).saturating_mul(4).as_nanos(), 12);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert!(SimTime::MAX > b);
    }

    #[test]
    #[should_panic(expected = "bad duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_millis_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_millis_f64(10.0).to_string(), "10.000 ms");
    }

    #[test]
    fn saturating_add_at_max() {
        let t = SimTime::MAX + SimDuration::from_nanos(10);
        assert_eq!(t, SimTime::MAX);
    }
}

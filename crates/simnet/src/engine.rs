//! The deterministic discrete-event engine.
//!
//! Nodes are activated with **batches** of messages: anything that arrives
//! while a node is busy computing coalesces into its next activation. That
//! is exactly Table 1's step 3 — "*wait until receiving part of the remote
//! boundary conditions from one or more of the adjacent subgraphs*" — and
//! it also makes equal-delay runs reproduce VTM's synchronous rounds without
//! any special-casing (all same-instant deliveries commit before any
//! activation fires).
//!
//! Determinism: the event queue orders by `(time, kind, sequence)` with
//! deliveries ranked before wakeups; sequence numbers make the order total.

use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::{Trace, TraceKind, TraceRecord};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A delivered message with its transport metadata.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sending processor.
    pub src: usize,
    /// Receiving processor.
    pub dst: usize,
    /// Departure instant (end of the sender's compute).
    pub sent_at: SimTime,
    /// Arrival instant (`sent_at` + link delay).
    pub delivered_at: SimTime,
    /// Payload.
    pub payload: M,
}

/// Behaviour of a simulated processor.
pub trait Node {
    /// Message payload type.
    type Msg;

    /// Called once at `t = 0`; typically performs the initial local solve
    /// and sends the first boundary conditions.
    fn start(&mut self, ctx: &mut Ctx<Self::Msg>);

    /// Called whenever one or more messages are ready (coalesced batch).
    ///
    /// The batch is handed over as a mutable vector so the node can
    /// `drain(..)` the envelopes (taking ownership of the payloads, e.g. to
    /// recycle their buffers); the engine reclaims the emptied vector as the
    /// node's next inbox buffer, so steady-state delivery performs no heap
    /// allocation.
    fn receive(&mut self, ctx: &mut Ctx<Self::Msg>, batch: &mut Vec<Envelope<Self::Msg>>);
}

/// Per-activation context handed to a [`Node`].
#[derive(Debug)]
pub struct Ctx<'t, M> {
    now: SimTime,
    node: usize,
    topology: &'t Topology,
    outbox: Vec<(usize, M)>,
    compute: SimDuration,
    halt: bool,
}

impl<M> Ctx<'_, M> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn node_id(&self) -> usize {
        self.node
    }

    /// Neighbours reachable from this node (N2N communication partners).
    pub fn neighbors(&self) -> impl Iterator<Item = usize> + '_ {
        self.topology.out_links(self.node).map(|l| l.dst)
    }

    /// Queue a message to `dst`. It departs when this activation's compute
    /// time elapses and arrives one link delay later.
    ///
    /// # Panics
    /// Panics if no directed link `self → dst` exists: the engine enforces
    /// the paper's N2N model structurally (no broadcast primitive exists).
    pub fn send(&mut self, dst: usize, msg: M) {
        assert!(
            self.topology.link(self.node, dst).is_some(),
            "N2N violation: node {} has no link to {}",
            self.node,
            dst
        );
        self.outbox.push((dst, msg));
    }

    /// Declare the compute time of this activation (default: zero).
    pub fn set_compute(&mut self, d: SimDuration) {
        self.compute = d;
    }

    /// Stop participating: this node is locally converged (Table 1 step
    /// 3.3, "if convergent, then break"). Pending and future messages to it
    /// are dropped.
    pub fn halt(&mut self) {
        self.halt = true;
    }
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver(Envelope<M>),
    Wakeup(usize),
}

/// Queue entry ordered by `(time, rank, seq)`; rank puts deliveries before
/// wakeups at the same instant.
#[derive(Debug)]
struct QueuedEvent<M> {
    time: SimTime,
    rank: u8,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.rank, self.seq) == (other.time, other.rank, other.seq)
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.rank, self.seq).cmp(&(other.time, other.rank, other.seq))
    }
}

/// Aggregate run statistics (Table 1 evidence: message counts are per
/// directed link; there is no broadcast calll to count).
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Messages sent per directed link (indexed like `Topology::links`).
    pub sent_per_link: Vec<u64>,
    /// Activations (start + receive) per node.
    pub activations: Vec<u64>,
    /// Total messages sent.
    pub messages_sent: u64,
    /// Total messages delivered (dropped-at-halted excluded).
    pub messages_delivered: u64,
    /// Receive batches containing more than one message.
    pub coalesced_batches: u64,
    /// Peak event-queue length.
    pub max_queue_len: usize,
}

/// Why a run returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No events left: the system is quiescent.
    QueueEmpty,
    /// The time horizon was reached.
    TimeLimit,
    /// The observer requested a stop.
    ObserverStop,
    /// Every node halted itself.
    AllHalted,
}

/// Result of [`Engine::run`].
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Time of the last processed event.
    pub final_time: SimTime,
    /// Total events processed.
    pub events: u64,
    /// Why the run stopped.
    pub reason: StopReason,
}

/// The discrete-event engine binding a [`Topology`] to a set of [`Node`]s.
#[derive(Debug)]
pub struct Engine<N: Node> {
    topology: Topology,
    nodes: Vec<N>,
    queue: BinaryHeap<Reverse<QueuedEvent<N::Msg>>>,
    inbox: Vec<Vec<Envelope<N::Msg>>>,
    /// Recycled activation buffers: the outbox handed to each `Ctx` and the
    /// drained batch vector are reused across activations, so steady-state
    /// delivery allocates nothing.
    outbox_buf: Vec<(usize, N::Msg)>,
    batch_buf: Vec<Envelope<N::Msg>>,
    busy_until: Vec<SimTime>,
    wakeup_at: Vec<Option<SimTime>>,
    halted: Vec<bool>,
    started: bool,
    now: SimTime,
    seq: u64,
    stats: Stats,
    trace: Option<Trace>,
}

impl<N: Node> Engine<N> {
    /// Create an engine; one node per processor.
    ///
    /// # Panics
    /// Panics if `nodes.len() != topology.n_nodes()`.
    pub fn new(topology: Topology, nodes: Vec<N>) -> Self {
        assert_eq!(
            nodes.len(),
            topology.n_nodes(),
            "one node per processor required"
        );
        let n = nodes.len();
        Self {
            stats: Stats {
                sent_per_link: vec![0; topology.links().len()],
                activations: vec![0; n],
                ..Default::default()
            },
            inbox: (0..n).map(|_| Vec::new()).collect(),
            outbox_buf: Vec::new(),
            batch_buf: Vec::new(),
            busy_until: vec![SimTime::ZERO; n],
            wakeup_at: vec![None; n],
            halted: vec![false; n],
            started: false,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            trace: None,
            topology,
            nodes,
        }
    }

    /// Record activations and halts into a bounded trace.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// [`enable_trace`](Self::enable_trace) with a run label — the
    /// per-algorithm tagging comparison harnesses use so traces from
    /// different algorithms on the same machine stay attributable.
    pub fn enable_trace_tagged(&mut self, capacity: usize, tag: impl Into<String>) {
        self.trace = Some(Trace::with_tag(capacity, tag));
    }

    /// The captured trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Access the nodes (e.g. to read final state).
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Mutable access to the nodes **between** [`run`](Self::run) calls —
    /// the rolling-session hook: a paused run's event queue, in-flight
    /// envelopes and per-node busy windows all persist, so mutating node
    /// state here (e.g. swapping a retired right-hand-side column for a
    /// freshly admitted one) is an instantaneous control action at the
    /// current simulated instant, not an exchange restart.
    pub fn nodes_mut(&mut self) -> &mut [N] {
        &mut self.nodes
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind<N::Msg>) {
        let rank = match kind {
            EventKind::Deliver(_) => 0,
            EventKind::Wakeup(_) => 1,
        };
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent {
            time,
            rank,
            seq: self.seq,
            kind,
        }));
        self.stats.max_queue_len = self.stats.max_queue_len.max(self.queue.len());
    }

    fn schedule_wakeup(&mut self, node: usize, at: SimTime) {
        let earlier = match self.wakeup_at[node] {
            Some(t) => at < t,
            None => true,
        };
        if earlier {
            self.wakeup_at[node] = Some(at);
            self.push_event(at, EventKind::Wakeup(node));
        }
    }

    /// Activate `node` at `time` with `batch` (empty = `start`). The batch
    /// vector is drained by the node and left reusable for the caller.
    fn activate(
        &mut self,
        node: usize,
        time: SimTime,
        batch: &mut Vec<Envelope<N::Msg>>,
        is_start: bool,
    ) {
        let batch_size = batch.len();
        // Disjoint field borrows: the context reads the topology while the
        // node object is mutated.
        let (outbox, compute, halt) = {
            let topology = &self.topology;
            let node_obj = &mut self.nodes[node];
            let mut ctx = Ctx {
                now: time,
                node,
                topology,
                outbox: std::mem::take(&mut self.outbox_buf),
                compute: SimDuration::ZERO,
                halt: false,
            };
            if is_start {
                node_obj.start(&mut ctx);
            } else {
                node_obj.receive(&mut ctx, batch);
            }
            (ctx.outbox, ctx.compute, ctx.halt)
        };
        self.stats.activations[node] += 1;
        if batch_size > 1 {
            self.stats.coalesced_batches += 1;
        }
        let done_at = time + compute;
        self.busy_until[node] = done_at;
        let sent = outbox.len();
        let mut outbox = outbox;
        for (dst, payload) in outbox.drain(..) {
            // `Ctx::send` already rejected unlinked destinations; drop the
            // message rather than aborting if the topology mutated since.
            let Some(link_id) = self.topology.link_id(node, dst) else {
                continue;
            };
            let delay = self.topology.links()[link_id].delay;
            let env = Envelope {
                src: node,
                dst,
                sent_at: done_at,
                delivered_at: done_at + delay,
                payload,
            };
            self.stats.sent_per_link[link_id] += 1;
            self.stats.messages_sent += 1;
            self.push_event(env.delivered_at, EventKind::Deliver(env));
        }
        self.outbox_buf = outbox;
        if halt {
            self.halted[node] = true;
            self.inbox[node].clear();
        }
        if let Some(trace) = &mut self.trace {
            trace.push(TraceRecord {
                time,
                node,
                kind: if halt {
                    TraceKind::Halt
                } else if is_start {
                    TraceKind::Start { sent }
                } else {
                    TraceKind::Receive {
                        batch: batch_size,
                        sent,
                    }
                },
            });
        }
        // If messages queued up during this activation window, wake again.
        if !self.inbox[node].is_empty() && !self.halted[node] {
            self.schedule_wakeup(node, done_at);
        }
    }

    /// Run until `horizon`, invoking `observer` after every activation;
    /// return `false` from the observer to stop early.
    pub fn run<F>(&mut self, horizon: SimTime, mut observer: F) -> RunOutcome
    where
        F: FnMut(SimTime, usize, &N) -> bool,
    {
        let mut events = 0u64;
        if !self.started {
            self.started = true;
            for node in 0..self.nodes.len() {
                let mut batch = std::mem::take(&mut self.batch_buf);
                self.activate(node, SimTime::ZERO, &mut batch, true);
                self.batch_buf = batch;
                if !observer(SimTime::ZERO, node, &self.nodes[node]) {
                    return RunOutcome {
                        final_time: self.now,
                        events,
                        reason: StopReason::ObserverStop,
                    };
                }
            }
        }
        while let Some(Reverse(ev)) = self.queue.pop() {
            if ev.time > horizon {
                // Not consumed: push back for a later run() call.
                self.queue.push(Reverse(ev));
                return RunOutcome {
                    final_time: self.now,
                    events,
                    reason: StopReason::TimeLimit,
                };
            }
            self.now = ev.time;
            events += 1;
            match ev.kind {
                EventKind::Deliver(env) => {
                    let dst = env.dst;
                    if self.halted[dst] {
                        continue;
                    }
                    self.stats.messages_delivered += 1;
                    self.inbox[dst].push(env);
                    let ready_at = self.busy_until[dst].max(self.now);
                    self.schedule_wakeup(dst, ready_at);
                }
                EventKind::Wakeup(node) => {
                    if self.wakeup_at[node] == Some(ev.time) {
                        self.wakeup_at[node] = None;
                    }
                    if self.halted[node] || self.inbox[node].is_empty() {
                        continue;
                    }
                    if self.busy_until[node] > ev.time {
                        let at = self.busy_until[node];
                        self.schedule_wakeup(node, at);
                        continue;
                    }
                    // Swap the inbox for the recycled batch buffer: the node
                    // drains the batch during `activate`, leaving it empty
                    // and ready to serve as the next swap target.
                    let mut batch = std::mem::take(&mut self.inbox[node]);
                    self.inbox[node] = std::mem::take(&mut self.batch_buf);
                    self.activate(node, ev.time, &mut batch, false);
                    batch.clear();
                    self.batch_buf = batch;
                    if !observer(ev.time, node, &self.nodes[node]) {
                        return RunOutcome {
                            final_time: self.now,
                            events,
                            reason: StopReason::ObserverStop,
                        };
                    }
                    if self.halted.iter().all(|&h| h) {
                        return RunOutcome {
                            final_time: self.now,
                            events,
                            reason: StopReason::AllHalted,
                        };
                    }
                }
            }
        }
        RunOutcome {
            final_time: self.now,
            events,
            reason: if self.halted.iter().all(|&h| h) {
                StopReason::AllHalted
            } else {
                StopReason::QueueEmpty
            },
        }
    }

    /// Run with no observer.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.run(horizon, |_, _, _| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delays::DelayModel;

    /// Bounces a counter back and forth `limit` times, then halts.
    struct PingPong {
        id: usize,
        limit: u64,
        log: Vec<(SimTime, u64)>,
    }

    impl Node for PingPong {
        type Msg = u64;
        fn start(&mut self, ctx: &mut Ctx<u64>) {
            if self.id == 0 {
                ctx.send(1, 0);
            }
        }
        fn receive(&mut self, ctx: &mut Ctx<u64>, batch: &mut Vec<Envelope<u64>>) {
            for env in batch.drain(..) {
                self.log.push((ctx.now(), env.payload));
                if env.payload >= self.limit {
                    ctx.halt();
                } else {
                    let peer = 1 - self.id;
                    ctx.send(peer, env.payload + 1);
                }
            }
        }
    }

    fn two_node_topology(d01_us: f64, d10_us: f64) -> Topology {
        Topology::from_links(
            2,
            vec![
                crate::topology::Link {
                    src: 0,
                    dst: 1,
                    delay: SimDuration::from_micros_f64(d01_us),
                },
                crate::topology::Link {
                    src: 1,
                    dst: 0,
                    delay: SimDuration::from_micros_f64(d10_us),
                },
            ],
        )
    }

    #[test]
    fn asymmetric_delays_accumulate_exactly() {
        // Example 5.1's delays: 6.7 µs one way, 2.9 µs the other.
        let topo = two_node_topology(6.7, 2.9);
        let nodes = vec![
            PingPong {
                id: 0,
                limit: 4,
                log: vec![],
            },
            PingPong {
                id: 1,
                limit: 4,
                log: vec![],
            },
        ];
        let mut engine = Engine::new(topo, nodes);
        let out = engine.run_until(SimTime::from_nanos(u64::MAX - 1));
        // Token 0 arrives at node 1 after 6.7 µs; token 1 back at 9.6 µs; …
        let n1 = &engine.nodes()[1];
        assert_eq!(n1.log[0], (SimTime::from_nanos(6700), 0));
        let n0 = &engine.nodes()[0];
        assert_eq!(n0.log[0], (SimTime::from_nanos(9600), 1));
        assert_eq!(n1.log[1], (SimTime::from_nanos(16300), 2));
        assert_eq!(out.reason, StopReason::QueueEmpty);
    }

    /// Records batch sizes; used to verify coalescing.
    struct BatchCounter {
        batches: Vec<usize>,
        compute: SimDuration,
    }

    impl Node for BatchCounter {
        type Msg = ();
        fn start(&mut self, ctx: &mut Ctx<()>) {
            // Everyone sends to node 0 except node 0 itself.
            if ctx.node_id() != 0 {
                ctx.send(0, ());
            }
        }
        fn receive(&mut self, ctx: &mut Ctx<()>, batch: &mut Vec<Envelope<()>>) {
            self.batches.push(batch.len());
            ctx.set_compute(self.compute);
        }
    }

    #[test]
    fn equal_delay_messages_coalesce_into_one_batch() {
        // Star with fixed delays: all spokes' messages reach the hub at the
        // same instant and must form ONE batch (the VTM-equivalence
        // property).
        let topo = Topology::star(5).with_delays(&DelayModel::fixed_ms(1.0));
        let nodes = (0..5)
            .map(|_| BatchCounter {
                batches: vec![],
                compute: SimDuration::ZERO,
            })
            .collect();
        let mut engine = Engine::new(topo, nodes);
        engine.run_until(SimTime::from_nanos(u64::MAX - 1));
        assert_eq!(engine.nodes()[0].batches, vec![4]);
        assert_eq!(engine.stats().coalesced_batches, 1);
    }

    #[test]
    fn busy_node_defers_and_coalesces() {
        // Hub is busy 10 ms per activation; spokes' staggered messages
        // arriving during the busy window coalesce.
        let topo = Topology::star(4).with_delays(&DelayModel::table_ms(
            &[(1, 0, 1.0), (2, 0, 2.0), (3, 0, 8.0)],
            1.0,
        ));
        let nodes = (0..4)
            .map(|_| BatchCounter {
                batches: vec![],
                compute: SimDuration::from_millis_f64(10.0),
            })
            .collect();
        let mut engine = Engine::new(topo, nodes);
        engine.run_until(SimTime::from_nanos(u64::MAX - 1));
        // First activation at 1 ms with batch [1]; then busy until 11 ms;
        // messages at 2 ms and 8 ms coalesce into batch [2].
        assert_eq!(engine.nodes()[0].batches, vec![1, 2]);
    }

    #[test]
    fn halt_drops_pending_and_future_messages() {
        struct HaltOnFirst;
        impl Node for HaltOnFirst {
            type Msg = ();
            fn start(&mut self, ctx: &mut Ctx<()>) {
                if ctx.node_id() == 1 {
                    ctx.send(0, ());
                    ctx.send(0, ());
                }
            }
            fn receive(&mut self, ctx: &mut Ctx<()>, _batch: &mut Vec<Envelope<()>>) {
                ctx.halt();
            }
        }
        let topo = two_node_topology(1.0, 1.0);
        let mut engine = Engine::new(topo, vec![HaltOnFirst, HaltOnFirst]);
        let out = engine.run_until(SimTime::from_nanos(u64::MAX - 1));
        assert_eq!(engine.stats().activations[0], 2); // start + one receive
        assert_eq!(out.reason, StopReason::QueueEmpty);
    }

    #[test]
    fn time_limit_pauses_and_resumes() {
        let topo = two_node_topology(10.0, 10.0);
        let nodes = vec![
            PingPong {
                id: 0,
                limit: 100,
                log: vec![],
            },
            PingPong {
                id: 1,
                limit: 100,
                log: vec![],
            },
        ];
        let mut engine = Engine::new(topo, nodes);
        let out = engine.run_until(SimTime::from_nanos(35_000));
        assert_eq!(out.reason, StopReason::TimeLimit);
        let mid_count: usize = engine.nodes().iter().map(|n| n.log.len()).sum();
        let _ = engine.run_until(SimTime::from_nanos(100_000));
        let final_count: usize = engine.nodes().iter().map(|n| n.log.len()).sum();
        assert!(final_count > mid_count, "resume continues the run");
    }

    #[test]
    fn observer_can_stop_early() {
        let topo = two_node_topology(1.0, 1.0);
        let nodes = vec![
            PingPong {
                id: 0,
                limit: 1_000_000,
                log: vec![],
            },
            PingPong {
                id: 1,
                limit: 1_000_000,
                log: vec![],
            },
        ];
        let mut engine = Engine::new(topo, nodes);
        let mut count = 0;
        let out = engine.run(SimTime::from_nanos(u64::MAX - 1), |_, _, _| {
            count += 1;
            count < 10
        });
        assert_eq!(out.reason, StopReason::ObserverStop);
    }

    #[test]
    #[should_panic(expected = "N2N violation")]
    fn sending_without_link_panics() {
        struct Rogue;
        impl Node for Rogue {
            type Msg = ();
            fn start(&mut self, ctx: &mut Ctx<()>) {
                if ctx.node_id() == 0 {
                    ctx.send(3, ()); // 0 → 3 is not a mesh link
                }
            }
            fn receive(&mut self, _: &mut Ctx<()>, _: &mut Vec<Envelope<()>>) {}
        }
        let topo = Topology::mesh(2, 2).with_delays(&DelayModel::fixed_ms(1.0));
        let mut engine = Engine::new(topo, vec![Rogue, Rogue, Rogue, Rogue]);
        engine.run_until(SimTime::from_nanos(1000));
    }

    #[test]
    fn stats_count_messages_per_link() {
        let topo = two_node_topology(1.0, 1.0);
        let nodes = vec![
            PingPong {
                id: 0,
                limit: 5,
                log: vec![],
            },
            PingPong {
                id: 1,
                limit: 5,
                log: vec![],
            },
        ];
        let mut engine = Engine::new(topo, nodes);
        engine.run_until(SimTime::from_nanos(u64::MAX - 1));
        let s = engine.stats();
        assert_eq!(s.messages_sent, s.messages_delivered);
        assert_eq!(s.sent_per_link.iter().sum::<u64>(), s.messages_sent);
        assert!(s.messages_sent >= 6);
    }

    #[test]
    fn tagged_trace_carries_its_label() {
        let topo = two_node_topology(1.0, 1.0);
        let nodes = vec![
            PingPong {
                id: 0,
                limit: 2,
                log: vec![],
            },
            PingPong {
                id: 1,
                limit: 2,
                log: vec![],
            },
        ];
        let mut engine = Engine::new(topo, nodes);
        engine.enable_trace_tagged(100, "d-iteration");
        engine.run_until(SimTime::from_nanos(u64::MAX - 1));
        let trace = engine.trace().unwrap();
        assert_eq!(trace.tag(), "d-iteration");
        assert!(!trace.records().is_empty());
    }

    #[test]
    fn trace_records_activations() {
        let topo = two_node_topology(1.0, 1.0);
        let nodes = vec![
            PingPong {
                id: 0,
                limit: 2,
                log: vec![],
            },
            PingPong {
                id: 1,
                limit: 2,
                log: vec![],
            },
        ];
        let mut engine = Engine::new(topo, nodes);
        engine.enable_trace(100);
        engine.run_until(SimTime::from_nanos(u64::MAX - 1));
        let trace = engine.trace().unwrap();
        assert!(trace.records().len() >= 4);
        assert!(matches!(trace.records()[0].kind, TraceKind::Start { .. }));
        // No record is a broadcast; every receive lists a bounded batch.
        assert!(trace.records().iter().all(|r| match r.kind {
            TraceKind::Receive { batch, .. } => batch >= 1,
            _ => true,
        }));
    }
}

//! # dtm-simnet — deterministic simulator of heterogeneous parallel machines
//!
//! The paper evaluates DTM inside a MATLAB/SIMULINK "DTM toolbox" that
//! simulates processors joined by directed links with *asymmetric*
//! communication delays (Fig. 11: a 4×4 mesh whose delays range from 10 ms
//! to 99 ms and differ per direction). This crate is that toolbox rebuilt as
//! a deterministic discrete-event engine:
//!
//! * [`time`] — integer-nanosecond simulation time (total order, no FP
//!   drift);
//! * [`topology`] — directed processor graphs (mesh, torus, ring, star,
//!   complete, custom) with per-directed-link delays;
//! * [`delays`] — delay models: fixed, per-link tables, seeded uniform and
//!   log-normal distributions, asymmetry injection;
//! * [`engine`] — the event engine: nodes implement [`engine::Node`], are
//!   activated with *batches* of messages (messages arriving while a node is
//!   busy coalesce into its next activation — the paper's "wait until
//!   receiving … from one or more of the adjacent subgraphs", Table 1), and
//!   declare a per-activation compute time;
//! * [`trace`] — bounded activation/message traces proving runs are
//!   broadcast- and barrier-free (Table 1's N2N claim).
//!
//! Determinism: events are ordered by `(time, kind, sequence)`; equal-time
//! deliveries commit before any activation fires, so a run is a pure
//! function of topology + node behaviour, reproducible bit-for-bit.

pub mod delays;
pub mod engine;
pub mod time;
pub mod topology;
pub mod trace;

pub use delays::DelayModel;
pub use engine::{Ctx, Engine, Envelope, Node, RunOutcome, Stats, StopReason};
pub use time::{SimDuration, SimTime};
pub use topology::{Link, MissingLink, Topology};

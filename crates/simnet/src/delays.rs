//! Link-delay models.
//!
//! The paper's two evaluation machines:
//! * Fig. 11 — 16 processors, delays between 10 ms and 99 ms, "very
//!   unsymmetrical": the delay from Pk to Pj differs from Pj to Pk;
//! * Fig. 13 — 64 processors, delays "uniformly distributed between 10 ms
//!   and 100 ms".
//!
//! Both are seeded samplers here; each *directed* link samples
//! independently, so asymmetry arises naturally. Explicit per-link tables
//! support hand-built cases such as Example 5.1's 6.7 µs / 2.9 µs pair.

use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A reusable description of how to assign delays to directed links.
#[derive(Debug, Clone)]
pub enum DelayModel {
    /// Every link gets the same delay.
    Fixed(SimDuration),
    /// Independent uniform sample in `[lo, hi]` per directed link.
    Uniform {
        /// Lower bound.
        lo: SimDuration,
        /// Upper bound (inclusive).
        hi: SimDuration,
        /// RNG seed.
        seed: u64,
    },
    /// Log-normal-ish sample: `exp(N(mu_ln, sigma_ln))` nanoseconds,
    /// clamped to `[lo, hi]`. Models long-tailed WAN links.
    LogNormal {
        /// Median delay.
        median: SimDuration,
        /// Multiplicative spread (σ of ln-delay).
        sigma: f64,
        /// Clamp bounds.
        lo: SimDuration,
        /// Clamp bounds.
        hi: SimDuration,
        /// RNG seed.
        seed: u64,
    },
    /// Explicit per-directed-link delays; missing pairs fall back to
    /// `default`.
    Table {
        /// `(src, dst) → delay` entries.
        entries: BTreeMap<(usize, usize), SimDuration>,
        /// Fallback delay.
        default: SimDuration,
    },
}

impl DelayModel {
    /// Fixed delay in milliseconds.
    pub fn fixed_ms(ms: f64) -> Self {
        DelayModel::Fixed(SimDuration::from_millis_f64(ms))
    }

    /// Fixed delay in microseconds.
    pub fn fixed_us(us: f64) -> Self {
        DelayModel::Fixed(SimDuration::from_micros_f64(us))
    }

    /// Seeded uniform delay in `[lo_ms, hi_ms]` milliseconds — the paper's
    /// Fig. 13 model (and, with 10–99, the Fig. 11 spread).
    pub fn uniform_ms(lo_ms: f64, hi_ms: f64, seed: u64) -> Self {
        assert!(lo_ms <= hi_ms, "uniform delay bounds inverted");
        DelayModel::Uniform {
            lo: SimDuration::from_millis_f64(lo_ms),
            hi: SimDuration::from_millis_f64(hi_ms),
            seed,
        }
    }

    /// Explicit table with a default, built from `(src, dst, ms)` triples.
    pub fn table_ms(entries: &[(usize, usize, f64)], default_ms: f64) -> Self {
        DelayModel::Table {
            entries: entries
                .iter()
                .map(|&(s, d, ms)| ((s, d), SimDuration::from_millis_f64(ms)))
                .collect(),
            default: SimDuration::from_millis_f64(default_ms),
        }
    }

    /// Create a sampler; sampling order is the topology's link order, so a
    /// given `(model, topology)` pair is deterministic.
    pub fn sampler(&self) -> DelaySampler<'_> {
        // Fixed/Table never draw from the rng, so any seed works there.
        let seed = match self {
            DelayModel::Uniform { seed, .. } | DelayModel::LogNormal { seed, .. } => *seed,
            _ => 0,
        };
        DelaySampler {
            model: self,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

/// Stateful sampler over a [`DelayModel`].
#[derive(Debug)]
pub struct DelaySampler<'m> {
    model: &'m DelayModel,
    rng: StdRng,
}

impl DelaySampler<'_> {
    /// Delay for the directed link `src → dst`.
    pub fn delay(&mut self, src: usize, dst: usize) -> SimDuration {
        match self.model {
            DelayModel::Fixed(d) => *d,
            DelayModel::Uniform { lo, hi, .. } => {
                if lo == hi {
                    return *lo;
                }
                SimDuration::from_nanos(self.rng.gen_range(lo.as_nanos()..=hi.as_nanos()))
            }
            DelayModel::LogNormal {
                median,
                sigma,
                lo,
                hi,
                ..
            } => {
                // Box–Muller normal from two uniforms.
                let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = self.rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let ns = (median.as_nanos() as f64) * (sigma * z).exp();
                let ns = ns.clamp(lo.as_nanos() as f64, hi.as_nanos() as f64);
                SimDuration::from_nanos(ns.round() as u64)
            }
            DelayModel::Table { entries, default } => {
                entries.get(&(src, dst)).copied().unwrap_or(*default)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let m = DelayModel::fixed_us(6.7);
        let mut s = m.sampler();
        assert_eq!(s.delay(0, 1).as_nanos(), 6700);
        assert_eq!(s.delay(5, 9).as_nanos(), 6700);
    }

    #[test]
    fn uniform_within_bounds_and_seeded() {
        let m = DelayModel::uniform_ms(10.0, 99.0, 42);
        let mut s1 = m.sampler();
        let mut s2 = m.sampler();
        for i in 0..100 {
            let d1 = s1.delay(i, i + 1);
            let d2 = s2.delay(i, i + 1);
            assert_eq!(d1, d2, "same seed, same sequence");
            assert!(d1 >= SimDuration::from_millis_f64(10.0));
            assert!(d1 <= SimDuration::from_millis_f64(99.0));
        }
    }

    #[test]
    fn uniform_spread_is_wide() {
        // The paper's point: max/min ≈ 9.9. Check our sampler spans most of
        // the range over many draws.
        let m = DelayModel::uniform_ms(10.0, 99.0, 3);
        let mut s = m.sampler();
        let draws: Vec<u64> = (0..500).map(|i| s.delay(i, 0).as_nanos()).collect();
        let lo = *draws.iter().min().unwrap() as f64 / 1e6;
        let hi = *draws.iter().max().unwrap() as f64 / 1e6;
        assert!(hi / lo > 5.0, "spread {lo}..{hi} too narrow");
    }

    #[test]
    fn table_lookup_and_default() {
        // Example 5.1: A→B is 6.7 µs, B→A is 2.9 µs.
        let m = DelayModel::table_ms(&[(0, 1, 0.0067), (1, 0, 0.0029)], 1.0);
        let mut s = m.sampler();
        assert_eq!(s.delay(0, 1).as_nanos(), 6700);
        assert_eq!(s.delay(1, 0).as_nanos(), 2900);
        assert_eq!(s.delay(7, 8), SimDuration::from_millis_f64(1.0));
    }

    #[test]
    fn lognormal_clamped() {
        let m = DelayModel::LogNormal {
            median: SimDuration::from_millis_f64(20.0),
            sigma: 1.0,
            lo: SimDuration::from_millis_f64(10.0),
            hi: SimDuration::from_millis_f64(100.0),
            seed: 5,
        };
        let mut s = m.sampler();
        for i in 0..200 {
            let d = s.delay(i, 0);
            assert!(d >= SimDuration::from_millis_f64(10.0));
            assert!(d <= SimDuration::from_millis_f64(100.0));
        }
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_bounds_rejected() {
        let _ = DelayModel::uniform_ms(5.0, 1.0, 0);
    }
}

//! Dense Cholesky (LLᵀ) and LDLᵀ factorizations.
//!
//! The paper's key performance observation (§5) is that the DTM local
//! coefficient matrix is *constant*: it is factored **once** and every
//! subsequent boundary-condition update costs only a forward/backward
//! substitution. [`DenseCholesky`] is that factor-once object for small
//! local systems; [`DenseLdlt`] additionally handles semi-definite matrices
//! and is used to *verify* the SNND hypothesis of convergence Theorem 6.1.

use crate::csr::Csr;
use crate::dense::Dense;
use crate::error::{Error, Result};

/// Dense LLᵀ Cholesky factor of an SPD matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseCholesky {
    /// Lower factor, stored densely (upper part is garbage).
    l: Dense,
}

impl DenseCholesky {
    /// Factor a dense SPD matrix.
    ///
    /// # Errors
    /// [`Error::NotPositiveDefinite`] on a non-positive pivot.
    pub fn factor(a: &Dense) -> Result<Self> {
        let n = a.n_rows();
        if a.n_cols() != n {
            return Err(Error::DimensionMismatch {
                context: "DenseCholesky::factor",
                expected: n,
                actual: a.n_cols(),
            });
        }
        let mut l = a.clone();
        for j in 0..n {
            // d = a_jj − Σ_{k<j} l_jk²
            let mut d = l.get(j, j);
            for k in 0..j {
                let ljk = l.get(j, k);
                d -= ljk * ljk;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(Error::NotPositiveDefinite {
                    column: j,
                    pivot: d,
                });
            }
            let dj = d.sqrt();
            *l.get_mut(j, j) = dj;
            for i in (j + 1)..n {
                let mut s = l.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                *l.get_mut(i, j) = s / dj;
            }
        }
        Ok(Self { l })
    }

    /// Factor a sparse SPD matrix by densifying (for small local systems).
    pub fn factor_csr(a: &Csr) -> Result<Self> {
        Self::factor(&a.to_dense())
    }

    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.l.n_rows()
    }

    /// Solve `A x = b` in place: forward then backward substitution.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        self.solve_block_in_place(x, 1);
    }

    /// Solve `A X = B` in place for a column-major block of `k` right-hand
    /// sides (`xs.len() == n·k`, column `c` at `xs[c·n .. (c+1)·n]`).
    ///
    /// The factor is traversed **once** per sweep: every `L(i, j)` entry is
    /// loaded one time and applied to all `k` columns, so the per-column
    /// cost falls with `k` (the §5 factor-once design amortized a second
    /// way). For `k ≥ 2` the block is transposed into an interleaved
    /// scratch so the `k`-wide inner loops are unit-stride — see
    /// [`solve_block_with_scratch`](Self::solve_block_with_scratch), which
    /// this delegates to with a transient buffer. Each column undergoes
    /// exactly the arithmetic of the scalar
    /// [`solve_in_place`](Self::solve_in_place), in the same order, so a
    /// block solve is bitwise identical to `k` scalar solves.
    pub fn solve_block_in_place(&self, xs: &mut [f64], k: usize) {
        let mut scratch = Vec::new();
        self.solve_block_with_scratch(xs, k, &mut scratch);
    }

    /// [`solve_block_in_place`](Self::solve_block_in_place) with a
    /// caller-owned scratch buffer: once `scratch` has grown to `n·k`,
    /// repeated solves perform zero heap allocations.
    pub fn solve_block_with_scratch(&self, xs: &mut [f64], k: usize, scratch: &mut Vec<f64>) {
        let n = self.n();
        assert_eq!(xs.len(), n * k, "DenseCholesky::solve_block length");
        if k == 1 {
            self.solve_block_colmajor(xs, 1);
            return;
        }
        scratch.resize(n * k, 0.0);
        for i in 0..n {
            for c in 0..k {
                scratch[i * k + c] = xs[c * n + i];
            }
        }
        self.solve_interleaved(scratch, k);
        for i in 0..n {
            for c in 0..k {
                xs[c * n + i] = scratch[i * k + c];
            }
        }
    }

    /// The seed (pre-blocking) kernel: column-major layout with a strided
    /// inner loop over the `k` right-hand sides. Retained as the reference
    /// for equivalence tests and before/after benchmarks; bitwise
    /// identical to [`solve_block_in_place`](Self::solve_block_in_place).
    // Triangular substitutions update x[i] for i > j while reading
    // L(i, j): the index form mirrors the math; iterator forms obscure the
    // column-sweep access pattern.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_block_colmajor(&self, xs: &mut [f64], k: usize) {
        let n = self.n();
        assert_eq!(xs.len(), n * k, "DenseCholesky::solve_block length");
        // L Y = B
        for j in 0..n {
            let ljj = self.l.get(j, j);
            for c in 0..k {
                xs[c * n + j] /= ljj;
            }
            for i in (j + 1)..n {
                let lij = self.l.get(i, j);
                for c in 0..k {
                    xs[c * n + i] -= lij * xs[c * n + j];
                }
            }
        }
        // Lᵀ X = Y
        for j in (0..n).rev() {
            for i in (j + 1)..n {
                let lij = self.l.get(i, j);
                for c in 0..k {
                    xs[c * n + j] -= lij * xs[c * n + i];
                }
            }
            let ljj = self.l.get(j, j);
            for c in 0..k {
                xs[c * n + j] /= ljj;
            }
        }
    }

    /// Blocked substitution over the interleaved layout (`ys[i·k + c]` =
    /// row `i`, column `c`): unit-stride inner loops over the block.
    /// Applies every `L(i, j)` as an individual fused update per column
    /// with the same per-component order as the scalar sweeps, so the
    /// result is bitwise identical to the column-major kernel.
    fn solve_interleaved(&self, ys: &mut [f64], k: usize) {
        let n = self.n();
        // L Y = B
        for j in 0..n {
            let ljj = self.l.get(j, j);
            for c in 0..k {
                ys[j * k + c] /= ljj;
            }
            for i in (j + 1)..n {
                let lij = self.l.get(i, j);
                let (lo, hi) = ys.split_at_mut(i * k);
                let yj = &lo[j * k..j * k + k];
                let yi = &mut hi[..k];
                for c in 0..k {
                    yi[c] -= lij * yj[c];
                }
            }
        }
        // Lᵀ X = Y
        for j in (0..n).rev() {
            let (lo, hi) = ys.split_at_mut((j + 1) * k);
            let yj = &mut lo[j * k..];
            for i in (j + 1)..n {
                let lij = self.l.get(i, j);
                let yi = &hi[(i - j - 1) * k..(i - j) * k];
                for c in 0..k {
                    yj[c] -= lij * yi[c];
                }
            }
            let ljj = self.l.get(j, j);
            for y in yj.iter_mut().take(k) {
                *y /= ljj;
            }
        }
    }

    /// Solve into a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// The lower-triangular factor (entries above the diagonal are not
    /// meaningful).
    pub fn l(&self) -> &Dense {
        &self.l
    }

    /// log₂ of the determinant of `A` (= 2 Σ log₂ l_jj); cheap SPD diagnostic.
    pub fn log2_det(&self) -> f64 {
        (0..self.n()).map(|j| self.l.get(j, j).log2()).sum::<f64>() * 2.0
    }
}

/// Dense LDLᵀ factorization with a semi-definite tolerance.
///
/// For a symmetric matrix this computes `A = L D Lᵀ` with unit lower
/// triangular `L`. Pivots in `(-tol, tol)` are treated as zero, which is
/// only legal when the remaining column is also (near) zero — exactly the
/// structure of an SNND matrix. Pivots `< -tol` mean the matrix is
/// indefinite.
#[derive(Debug, Clone)]
pub struct DenseLdlt {
    l: Dense,
    d: Vec<f64>,
    /// Count of pivots treated as exactly zero.
    zero_pivots: usize,
}

/// Classification of a symmetric matrix by [`DenseLdlt::classify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Definiteness {
    /// All pivots strictly positive: symmetric positive definite.
    PositiveDefinite,
    /// Non-negative pivots with at least one (near) zero: SNND but singular.
    PositiveSemiDefinite,
    /// A negative pivot or an inconsistent zero pivot was found.
    Indefinite,
}

impl DenseLdlt {
    /// The unit lower-triangular factor `L`.
    pub fn l(&self) -> &Dense {
        &self.l
    }

    /// Factor with tolerance `tol` (absolute, relative to the largest
    /// diagonal magnitude).
    ///
    /// # Errors
    /// [`Error::NotPositiveDefinite`] if a pivot is `< -tol`, or if a zero
    /// pivot has a structurally nonzero column below it (indefinite or
    /// rank-revealing failure).
    // The LDLT inner products read l(·, k)·d[k] across k: index form keeps
    // the three-factor recurrence legible.
    #[allow(clippy::needless_range_loop)]
    pub fn factor(a: &Dense, tol: f64) -> Result<Self> {
        let n = a.n_rows();
        if a.n_cols() != n {
            return Err(Error::DimensionMismatch {
                context: "DenseLdlt::factor",
                expected: n,
                actual: a.n_cols(),
            });
        }
        let scale = (0..n).fold(1.0_f64, |m, i| m.max(a.get(i, i).abs()));
        let eff_tol = tol * scale;
        let mut l = Dense::identity(n);
        let mut d = vec![0.0; n];
        let mut zero_pivots = 0usize;
        for j in 0..n {
            let mut dj = a.get(j, j);
            for k in 0..j {
                dj -= l.get(j, k) * l.get(j, k) * d[k];
            }
            if dj < -eff_tol || !dj.is_finite() {
                return Err(Error::NotPositiveDefinite {
                    column: j,
                    pivot: dj,
                });
            }
            if dj.abs() <= eff_tol {
                // Semi-definite direction: column below must vanish too.
                d[j] = 0.0;
                zero_pivots += 1;
                for i in (j + 1)..n {
                    let mut s = a.get(i, j);
                    for k in 0..j {
                        s -= l.get(i, k) * l.get(j, k) * d[k];
                    }
                    if s.abs() > eff_tol.max(1e-10 * scale) {
                        return Err(Error::NotPositiveDefinite {
                            column: j,
                            pivot: dj,
                        });
                    }
                    *l.get_mut(i, j) = 0.0;
                }
                continue;
            }
            d[j] = dj;
            for i in (j + 1)..n {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k) * d[k];
                }
                *l.get_mut(i, j) = s / dj;
            }
        }
        Ok(Self { l, d, zero_pivots })
    }

    /// The diagonal of `D`.
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// Number of pivots treated as zero.
    pub fn zero_pivots(&self) -> usize {
        self.zero_pivots
    }

    /// Classify a symmetric matrix as SPD / SNND / indefinite.
    ///
    /// This is the numerical check behind Theorem 6.1's hypothesis
    /// ("at least one SPD subgraph, the others SNND").
    pub fn classify(a: &Dense, tol: f64) -> Definiteness {
        match Self::factor(a, tol) {
            Err(_) => Definiteness::Indefinite,
            Ok(f) if f.zero_pivots == 0 => Definiteness::PositiveDefinite,
            Ok(_) => Definiteness::PositiveSemiDefinite,
        }
    }

    /// Classify a sparse symmetric matrix (densifies; local blocks only).
    pub fn classify_csr(a: &Csr, tol: f64) -> Definiteness {
        Self::classify(&a.to_dense(), tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn spd3() -> Dense {
        Dense::from_rows(&[&[4.0, -1.0, 0.0], &[-1.0, 4.0, -1.0], &[0.0, -1.0, 4.0]]).unwrap()
    }

    #[test]
    fn cholesky_solves() {
        let a = spd3();
        let f = DenseCholesky::factor(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = f.solve(&b);
        let ax = a.matvec(&x);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let f = DenseCholesky::factor(&a).unwrap();
        let n = 3;
        // L Lᵀ == A
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..=i.min(j) {
                    s += f.l().get(i, k) * f.l().get(j, k);
                }
                assert!((s - a.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn indefinite_rejected() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigs 3, −1
        assert!(matches!(
            DenseCholesky::factor(&a),
            Err(Error::NotPositiveDefinite { .. })
        ));
        assert_eq!(DenseLdlt::classify(&a, 1e-12), Definiteness::Indefinite);
    }

    #[test]
    fn zero_matrix_is_snnd() {
        let a = Dense::zeros(3, 3);
        assert_eq!(
            DenseLdlt::classify(&a, 1e-12),
            Definiteness::PositiveSemiDefinite
        );
    }

    #[test]
    fn semidefinite_laplacian_classified() {
        // Graph Laplacian of a path (singular, SNND).
        let a =
            Dense::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]).unwrap();
        assert_eq!(
            DenseLdlt::classify(&a, 1e-10),
            Definiteness::PositiveSemiDefinite
        );
    }

    #[test]
    fn spd_classified() {
        assert_eq!(
            DenseLdlt::classify(&spd3(), 1e-12),
            Definiteness::PositiveDefinite
        );
    }

    #[test]
    fn factor_csr_matches_dense() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 4.0).unwrap();
        coo.push(1, 1, 4.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.push_sym(1, 2, -1.0).unwrap();
        let a = coo.to_csr();
        let f1 = DenseCholesky::factor_csr(&a).unwrap();
        let f2 = DenseCholesky::factor(&spd3()).unwrap();
        assert!(f1.l().max_abs_diff(f2.l()) < 1e-14);
    }

    #[test]
    fn solve_in_place_identity() {
        let f = DenseCholesky::factor(&Dense::identity(4)).unwrap();
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        f.solve_in_place(&mut x);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.log2_det(), 0.0);
    }

    #[test]
    fn block_solve_is_bitwise_k_scalar_solves() {
        let a = crate::generators::grid2d_random(5, 4, 1.0, 11);
        let f = DenseCholesky::factor_csr(&a).unwrap();
        let n = a.n_rows();
        let k = 3;
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|c| {
                (0..n)
                    .map(|i| ((i * (c + 1)) as f64 * 0.31).sin())
                    .collect()
            })
            .collect();
        let mut block: Vec<f64> = cols.iter().flatten().copied().collect();
        f.solve_block_in_place(&mut block, k);
        for (c, col) in cols.iter().enumerate() {
            let mut x = col.clone();
            f.solve_in_place(&mut x);
            assert_eq!(&block[c * n..(c + 1) * n], &x[..], "column {c}");
        }
    }

    #[test]
    fn log2_det_of_diagonal() {
        let a = Dense::from_rows(&[&[4.0, 0.0], &[0.0, 2.0]]).unwrap();
        let f = DenseCholesky::factor(&a).unwrap();
        assert!((f.log2_det() - 3.0).abs() < 1e-12); // log2(8) = 3
    }
}

//! Permutations and the reverse Cuthill–McKee (RCM) fill-reducing ordering.
//!
//! RCM narrows the bandwidth of symmetric sparse matrices, which directly
//! reduces fill-in of the sparse Cholesky used for DTM local systems.

use crate::csr::Csr;
use crate::error::{Error, Result};

/// A permutation of `0..n`, stored as `new_to_old`: position `i` of the
/// permuted ordering corresponds to original index `new_to_old[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_to_old: Vec<usize>,
}

impl Permutation {
    /// Identity permutation of size `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            new_to_old: (0..n).collect(),
        }
    }

    /// Build from a `new_to_old` vector, validating it is a permutation.
    ///
    /// # Errors
    /// [`Error::Parse`] if the vector is not a bijection on `0..n`.
    pub fn from_new_to_old(new_to_old: Vec<usize>) -> Result<Self> {
        let n = new_to_old.len();
        let mut seen = vec![false; n];
        for &v in &new_to_old {
            if v >= n || seen[v] {
                return Err(Error::Parse(format!(
                    "not a permutation: value {v} duplicated or out of range"
                )));
            }
            seen[v] = true;
        }
        Ok(Self { new_to_old })
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Is this the empty permutation?
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// The `new_to_old` map.
    pub fn new_to_old(&self) -> &[usize] {
        &self.new_to_old
    }

    /// Inverse permutation (`old_to_new` as a `Permutation`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.new_to_old.len()];
        for (new, &old) in self.new_to_old.iter().enumerate() {
            inv[old] = new;
        }
        Permutation { new_to_old: inv }
    }

    /// Apply to a vector: `out[i] = x[new_to_old[i]]` (gather).
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.new_to_old.len(), "permutation apply length");
        self.new_to_old.iter().map(|&o| x[o]).collect()
    }

    /// Inverse application: `out[new_to_old[i]] = x[i]` (scatter).
    pub fn apply_inverse(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.new_to_old.len(), "permutation apply length");
        let mut out = vec![0.0; x.len()];
        for (new, &old) in self.new_to_old.iter().enumerate() {
            out[old] = x[new];
        }
        out
    }
}

/// Reverse Cuthill–McKee ordering of a symmetric sparse matrix.
///
/// Performs a BFS from a pseudo-peripheral vertex of every connected
/// component, visiting neighbours by increasing degree, then reverses the
/// whole order. Isolated vertices are appended last.
pub fn reverse_cuthill_mckee(a: &Csr) -> Permutation {
    let n = a.n_rows();
    let degree: Vec<usize> = (0..n)
        .map(|r| a.row(r).filter(|&(c, _)| c != r).count())
        .collect();

    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut nbrs: Vec<usize> = Vec::new();

    // Process components in order of their minimum-degree unvisited vertex.
    while let Some(start) = (0..n)
        .filter(|&v| !visited[v])
        .min_by_key(|&v| (degree[v], v))
    {
        let root = pseudo_peripheral_in(a, start, |_| true);
        visited[root] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            nbrs.clear();
            nbrs.extend(a.row(v).map(|(c, _)| c).filter(|&c| c != v && !visited[c]));
            nbrs.sort_unstable_by_key(|&c| (degree[c], c));
            for &c in nbrs.iter() {
                visited[c] = true;
                queue.push_back(c);
            }
        }
    }

    order.reverse();
    Permutation { new_to_old: order }
}

/// Find a pseudo-peripheral vertex of the subgraph induced by `active`,
/// starting from `start` (which must satisfy `active`): repeat BFS from
/// the farthest minimum-degree vertex of the last level until the
/// eccentricity stops growing.
///
/// This is the BFS machinery behind [`reverse_cuthill_mckee`] (which uses
/// it with every vertex active); it is public so graph partitioners can
/// seed bisections of vertex subsets from the same notion of "far corner".
pub fn pseudo_peripheral_in(a: &Csr, start: usize, active: impl Fn(usize) -> bool) -> usize {
    let n = a.n_rows();
    // Degree within the active subgraph, for the last-level tie-break.
    let deg = |v: usize| a.row(v).filter(|&(c, _)| c != v && active(c)).count();
    let mut root = start;
    let mut last_ecc = 0usize;
    let mut level = vec![usize::MAX; n];
    loop {
        level.iter_mut().for_each(|l| *l = usize::MAX);
        level[root] = 0;
        let mut frontier = vec![root];
        let mut ecc = 0usize;
        let mut last_level: Vec<usize> = vec![root];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for (c, _) in a.row(v) {
                    if c != v && active(c) && level[c] == usize::MAX {
                        level[c] = level[v] + 1;
                        ecc = ecc.max(level[c]);
                        next.push(c);
                    }
                }
            }
            if !next.is_empty() {
                last_level = next.clone();
            }
            frontier = next;
        }
        if ecc <= last_ecc {
            return root;
        }
        last_ecc = ecc;
        // `last_level` only ever holds a non-empty BFS level; keep the
        // current root if that invariant were ever violated.
        root = last_level
            .iter()
            .copied()
            .min_by_key(|&v| (deg(v), v))
            .unwrap_or(root);
    }
}

/// Bandwidth of a symmetric matrix: `max |i − j|` over stored entries.
pub fn bandwidth(a: &Csr) -> usize {
    let mut bw = 0usize;
    for r in 0..a.n_rows() {
        for (c, _) in a.row(r) {
            bw = bw.max(r.abs_diff(c));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn path_graph(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
        }
        for i in 0..n - 1 {
            coo.push_sym(i, i + 1, -1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn permutation_roundtrip() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        let x = vec![10.0, 20.0, 30.0];
        let y = p.apply(&x);
        assert_eq!(y, vec![30.0, 10.0, 20.0]);
        assert_eq!(p.apply_inverse(&y), x);
        let id = Permutation::identity(3);
        assert_eq!(id.apply(&x), x);
    }

    #[test]
    fn invalid_permutation_rejected() {
        assert!(Permutation::from_new_to_old(vec![0, 0]).is_err());
        assert!(Permutation::from_new_to_old(vec![0, 5]).is_err());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_new_to_old(vec![3, 1, 0, 2]).unwrap();
        let inv = p.inverse();
        let composed: Vec<usize> = (0..4)
            .map(|i| p.new_to_old()[inv.new_to_old()[i]])
            .collect();
        assert_eq!(composed, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rcm_on_path_keeps_bandwidth_one() {
        let a = path_graph(10);
        let p = reverse_cuthill_mckee(&a);
        let b = a.permute_sym(&p);
        assert_eq!(bandwidth(&b), 1);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_path() {
        // A path graph relabelled adversarially has large bandwidth; RCM
        // restores bandwidth 1.
        let n = 50;
        let mut coo = Coo::new(n, n);
        // Relabel vertex i -> (i * 17) % n (17 coprime with 50).
        let relabel = |i: usize| (i * 17) % n;
        for i in 0..n {
            coo.push(relabel(i), relabel(i), 2.0).unwrap();
        }
        for i in 0..n - 1 {
            coo.push_sym(relabel(i), relabel(i + 1), -1.0).unwrap();
        }
        let a = coo.to_csr();
        assert!(bandwidth(&a) > 1);
        let p = reverse_cuthill_mckee(&a);
        let b = a.permute_sym(&p);
        assert_eq!(bandwidth(&b), 1, "RCM must recover the path ordering");
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        let mut coo = Coo::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 1.0).unwrap();
        }
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.push_sym(3, 4, -1.0).unwrap();
        let a = coo.to_csr();
        let p = reverse_cuthill_mckee(&a);
        // Must be a valid permutation covering all 6 vertices.
        let mut sorted = p.new_to_old().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn rcm_permuted_matrix_is_same_system() {
        let a = path_graph(7);
        let p = reverse_cuthill_mckee(&a);
        let b = a.permute_sym(&p);
        // Solve both against consistent vectors: B y = P b where y = P x.
        let x: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let ax = a.matvec(&x);
        let px = p.apply(&x);
        let bpx = b.matvec(&px);
        let pax = p.apply(&ax);
        for (u, v) in bpx.iter().zip(&pax) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}

//! Error type shared across the substrate.

use std::fmt;

/// Errors produced by the sparse substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Matrix dimensions are inconsistent with the requested operation.
    DimensionMismatch {
        /// What was being attempted.
        context: &'static str,
        /// Expected extent.
        expected: usize,
        /// Actual extent.
        actual: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// What was being attempted.
        context: &'static str,
        /// The offending index.
        index: usize,
        /// The valid bound (exclusive).
        bound: usize,
    },
    /// Cholesky factorization hit a non-positive pivot: the matrix is not
    /// positive definite (within the solver's tolerance).
    NotPositiveDefinite {
        /// Pivot column at which the factorization broke down.
        column: usize,
        /// The offending pivot value.
        pivot: f64,
    },
    /// The matrix is structurally or numerically non-symmetric.
    NotSymmetric {
        /// Row of the first offending entry.
        row: usize,
        /// Column of the first offending entry.
        col: usize,
    },
    /// Parsing external data (e.g. Matrix Market) failed.
    Parse(String),
    /// An iterative solver failed to converge within its budget.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            Error::IndexOutOfBounds {
                context,
                index,
                bound,
            } => write!(f, "index {index} out of bounds (< {bound}) in {context}"),
            Error::NotPositiveDefinite { column, pivot } => write!(
                f,
                "matrix is not positive definite: pivot {pivot:.3e} at column {column}"
            ),
            Error::NotSymmetric { row, col } => {
                write!(f, "matrix is not symmetric at entry ({row}, {col})")
            }
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::NotPositiveDefinite {
            column: 3,
            pivot: -1.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("positive definite"));
        assert!(msg.contains("column 3"));

        let e = Error::DimensionMismatch {
            context: "matvec",
            expected: 4,
            actual: 5,
        };
        assert!(e.to_string().contains("matvec"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&Error::Parse("x".into()));
    }
}

//! Up-looking sparse Cholesky with elimination-tree symbolic analysis.
//!
//! Implements the classic three-stage pipeline for symmetric positive
//! definite matrices (following the structure of Davis, *Direct Methods for
//! Sparse Linear Systems*):
//!
//! 1. **elimination tree** of `A`,
//! 2. **symbolic factorization** — per-row reach sets give the exact nonzero
//!    count of every column of `L`,
//! 3. **numeric up-looking factorization** — row `k` of `L` is obtained from
//!    a sparse triangular solve over the reach of row `k`.
//!
//! The factor is stored in CSC so that forward/backward substitution are
//! column-oriented sweeps. An optional reverse Cuthill–McKee pre-ordering
//! ([`SparseCholesky::factor_rcm`]) reduces fill.
//!
//! This is the "Sparse Cholesky" the paper names as the local solver of DTM
//! (§5: "(5.9) could be solved by Sparse or Dense Cholesky, CG, MG, etc.").

use crate::csr::Csr;
use crate::error::{Error, Result};
use crate::ordering::{reverse_cuthill_mckee, Permutation};

/// Widest supernode panel the blocked substitution sweeps at once. Bounds
/// the dense triangular diagonal block so a panel's working set (panel
/// columns × block width) stays register/L1-resident.
const MAX_SUPERNODE: usize = 32;

/// Sparse Cholesky factor `A = L Lᵀ` (CSC lower-triangular `L`).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseCholesky {
    n: usize,
    /// Column pointers of `L` (CSC).
    col_ptr: Vec<usize>,
    /// Row indices of `L`; the first entry of each column is the diagonal.
    row_idx: Vec<usize>,
    /// Values of `L`.
    values: Vec<f64>,
    /// Optional fill-reducing permutation (`None` = natural order).
    perm: Option<Permutation>,
    /// Supernode boundaries over the columns of `L`: panel `s` spans
    /// columns `sn_ptr[s]..sn_ptr[s+1]`. Within a panel every column's
    /// pattern is the panel's dense triangular diagonal block plus one
    /// shared set of below-panel rows, so the blocked substitution decodes
    /// those row indices once per panel instead of once per column.
    sn_ptr: Vec<usize>,
}

impl SparseCholesky {
    /// Factor a symmetric positive definite CSR matrix in natural order.
    ///
    /// Only the lower triangle of `A` is read through the row/column duality
    /// of symmetric CSR. Symmetry is the caller's responsibility (checked in
    /// debug builds).
    ///
    /// # Errors
    /// [`Error::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn factor(a: &Csr) -> Result<Self> {
        debug_assert!(a.is_symmetric(1e-10), "SparseCholesky expects symmetry");
        if a.n_rows() != a.n_cols() {
            return Err(Error::DimensionMismatch {
                context: "SparseCholesky::factor",
                expected: a.n_rows(),
                actual: a.n_cols(),
            });
        }
        let n = a.n_rows();
        let parent = elimination_tree(a);

        // --- Symbolic: column counts of L via row reaches. ---
        let mut col_count = vec![1usize; n]; // diagonal of each column
        {
            let mut mark = vec![usize::MAX; n];
            let mut stack = Vec::with_capacity(n);
            for k in 0..n {
                mark[k] = k;
                for (j0, _) in a.row(k).filter(|&(c, _)| c < k) {
                    let mut j = j0;
                    stack.clear();
                    while mark[j] != k {
                        stack.push(j);
                        mark[j] = k;
                        j = match parent[j] {
                            Some(p) => p,
                            None => break,
                        };
                    }
                    for &c in &stack {
                        col_count[c] += 1;
                    }
                }
            }
        }

        let mut col_ptr = vec![0usize; n + 1];
        for j in 0..n {
            col_ptr[j + 1] = col_ptr[j] + col_count[j];
        }
        let nnz = col_ptr[n];
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![0f64; nnz];
        // Next free slot per column; slot 0 of each column is the diagonal,
        // filled at the end of step k == j.
        let mut next = col_ptr[..n].iter().map(|&p| p + 1).collect::<Vec<_>>();

        // --- Numeric: up-looking. ---
        let mut x = vec![0f64; n]; // sparse accumulator (dense workspace)
        let mut pattern: Vec<usize> = Vec::with_capacity(n); // reach of row k, topological
        let mut mark = vec![usize::MAX; n];
        let mut stack = Vec::with_capacity(n);

        for k in 0..n {
            // Scatter A(0..k, k) — by symmetry, row k entries with col ≤ k.
            pattern.clear();
            mark[k] = k;
            let mut d = 0.0;
            for (c, v) in a.row(k) {
                match c.cmp(&k) {
                    std::cmp::Ordering::Less => {
                        x[c] = v;
                        // Walk the elimination tree to collect the reach.
                        let mut j = c;
                        stack.clear();
                        while mark[j] != k {
                            stack.push(j);
                            mark[j] = k;
                            j = match parent[j] {
                                Some(p) => p,
                                None => break,
                            };
                        }
                        // stack holds a root-ward path; reversing gives
                        // ascending (topological) order for this path.
                        for &c2 in stack.iter().rev() {
                            pattern.push(c2);
                        }
                    }
                    std::cmp::Ordering::Equal => d = v,
                    std::cmp::Ordering::Greater => {}
                }
            }
            // Paths pushed per-entry are each ascending but may interleave;
            // a total ascending sort is a valid topological order of the
            // reach (ancestors have larger indices in an etree).
            pattern.sort_unstable();

            for &j in &pattern {
                let ljj = values[col_ptr[j]];
                let lkj = x[j] / ljj;
                x[j] = 0.0;
                // x ← x − L(:, j) · lkj for rows < k already in column j.
                for p in (col_ptr[j] + 1)..next[j] {
                    x[row_idx[p]] -= values[p] * lkj;
                }
                d -= lkj * lkj;
                // Append L(k, j).
                let slot = next[j];
                debug_assert!(slot < col_ptr[j + 1], "symbolic undercount");
                row_idx[slot] = k;
                values[slot] = lkj;
                next[j] += 1;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(Error::NotPositiveDefinite {
                    column: k,
                    pivot: d,
                });
            }
            row_idx[col_ptr[k]] = k;
            values[col_ptr[k]] = d.sqrt();
        }

        let sn_ptr = detect_supernodes(n, &col_ptr, &row_idx);
        Ok(Self {
            n,
            col_ptr,
            row_idx,
            values,
            perm: None,
            sn_ptr,
        })
    }

    /// Factor with a reverse Cuthill–McKee pre-ordering; solves transparently
    /// permute/unpermute.
    pub fn factor_rcm(a: &Csr) -> Result<Self> {
        let perm = reverse_cuthill_mckee(a);
        let pa = a.permute_sym(&perm);
        let mut f = Self::factor(&pa)?;
        f.perm = Some(perm);
        Ok(f)
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nonzeros in `L` (a fill measure).
    pub fn nnz_l(&self) -> usize {
        self.values.len()
    }

    /// Solve `A x = b` in place.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        self.solve_block_in_place(b, 1);
    }

    /// Solve `A X = B` in place for a column-major block of `k` right-hand
    /// sides (`xs.len() == n·k`, column `c` at `xs[c·n .. (c+1)·n]`).
    ///
    /// For `k ≥ 2` the block is transposed into an interleaved scratch
    /// layout (`k` values of one row contiguous) and swept panel by panel —
    /// see [`solve_block_with_scratch`](Self::solve_block_with_scratch),
    /// which this delegates to with a transient scratch buffer. Hot-loop
    /// callers should hold a persistent scratch and call that method
    /// directly to stay allocation-free.
    ///
    /// Column `c` undergoes exactly the scalar
    /// [`solve_in_place`](Self::solve_in_place) arithmetic in the same
    /// order, so a block solve is bitwise identical to `k` scalar solves.
    pub fn solve_block_in_place(&self, xs: &mut [f64], k: usize) {
        let mut scratch = Vec::new();
        self.solve_block_with_scratch(xs, k, &mut scratch);
    }

    /// [`solve_block_in_place`](Self::solve_block_in_place) with a
    /// caller-owned scratch buffer: after warm-up (`scratch` grown to
    /// `n·k`) repeated solves perform **zero** heap allocations, including
    /// on the permuted (RCM) path — the permutation gather is fused with
    /// the layout transpose instead of materializing per-column vectors.
    // lint: hot-path
    pub fn solve_block_with_scratch(&self, xs: &mut [f64], k: usize, scratch: &mut Vec<f64>) {
        let n = self.n;
        assert_eq!(xs.len(), n * k, "SparseCholesky::solve_block length");
        if k == 1 {
            // Scalar fast path: substitute in place (via scratch only when
            // the factor is permuted).
            match &self.perm {
                None => self.solve_colmajor_natural(xs, 1),
                Some(p) => {
                    scratch.resize(n, 0.0);
                    for (i, &o) in p.new_to_old().iter().enumerate() {
                        scratch[i] = xs[o];
                    }
                    self.solve_colmajor_natural(scratch, 1);
                    for (i, &o) in p.new_to_old().iter().enumerate() {
                        xs[o] = scratch[i];
                    }
                }
            }
            return;
        }
        // Blocked path: gather into the interleaved layout
        // `scratch[i·k + c] = column c, (permuted) row i`, fusing the
        // fill-reducing permutation with the transpose.
        scratch.resize(n * k, 0.0);
        match &self.perm {
            None => {
                for i in 0..n {
                    for c in 0..k {
                        scratch[i * k + c] = xs[c * n + i];
                    }
                }
            }
            Some(p) => {
                for (i, &o) in p.new_to_old().iter().enumerate() {
                    for c in 0..k {
                        scratch[i * k + c] = xs[c * n + o];
                    }
                }
            }
        }
        self.solve_interleaved(scratch, k);
        match &self.perm {
            None => {
                for i in 0..n {
                    for c in 0..k {
                        xs[c * n + i] = scratch[i * k + c];
                    }
                }
            }
            Some(p) => {
                for (i, &o) in p.new_to_old().iter().enumerate() {
                    for c in 0..k {
                        xs[c * n + o] = scratch[i * k + c];
                    }
                }
            }
        }
    }

    /// The seed (pre-blocking) kernel: column-major sweeps with a strided
    /// inner loop over the `k` right-hand sides, permutation applied per
    /// column. Retained as the reference for the blocked path's
    /// equivalence tests and for before/after benchmarking
    /// (`benches/sparse_kernels.rs`, `repro bench`); produces bitwise the
    /// same result as [`solve_block_in_place`](Self::solve_block_in_place).
    pub fn solve_block_colmajor(&self, xs: &mut [f64], k: usize) {
        let n = self.n;
        assert_eq!(xs.len(), n * k, "SparseCholesky::solve_block length");
        match &self.perm {
            None => self.solve_colmajor_natural(xs, k),
            Some(p) => {
                // B = P A Pᵀ factored; A x = b ⇔ B (P x) = P b, per column.
                for c in 0..k {
                    let col = &mut xs[c * n..(c + 1) * n];
                    let pb = p.apply(col);
                    col.copy_from_slice(&pb);
                }
                self.solve_colmajor_natural(xs, k);
                for c in 0..k {
                    let col = &mut xs[c * n..(c + 1) * n];
                    let x = p.apply_inverse(col);
                    col.copy_from_slice(&x);
                }
            }
        }
    }

    fn solve_colmajor_natural(&self, xs: &mut [f64], k: usize) {
        let n = self.n;
        // Forward: L Y = B (column-oriented, one factor sweep for all k).
        for j in 0..n {
            let pj = self.col_ptr[j];
            let d = self.values[pj];
            for c in 0..k {
                xs[c * n + j] /= d;
            }
            for p in (pj + 1)..self.col_ptr[j + 1] {
                let (i, v) = (self.row_idx[p], self.values[p]);
                for c in 0..k {
                    xs[c * n + i] -= v * xs[c * n + j];
                }
            }
        }
        // Backward: Lᵀ X = Y.
        for j in (0..n).rev() {
            let pj = self.col_ptr[j];
            for p in (pj + 1)..self.col_ptr[j + 1] {
                let (i, v) = (self.row_idx[p], self.values[p]);
                for c in 0..k {
                    xs[c * n + j] -= v * xs[c * n + i];
                }
            }
            let d = self.values[pj];
            for c in 0..k {
                xs[c * n + j] /= d;
            }
        }
    }

    /// Blocked substitution over the interleaved layout
    /// (`ys[i·k + c]` = row `i`, column `c`): the inner `for c in 0..k`
    /// loops are unit-stride, widened by [`axpy_neg`] (vectorized mul-sub
    /// with an explicit 4-wide AVX `core::arch` fast path), and the supernode
    /// panels of [`Self::sn_ptr`] let the forward sweep decode each shared
    /// below-panel row index once per panel instead of once per column.
    ///
    /// Bitwise contract: every `L` entry is still applied as an individual
    /// `y[i] -= l·y[j]` per column (mul then sub, two correctly-rounded
    /// ops — never a single-rounded FMA), and for each vector component
    /// the updates arrive in exactly the scalar substitution's order
    /// (ascending `j` in the forward sweep, ascending row within each
    /// column of the backward sweep). Lanes (columns) are independent, so
    /// the 4-wide chunking reorders nothing: no sums are reassociated.
    fn solve_interleaved(&self, ys: &mut [f64], k: usize) {
        let n_panels = self.sn_ptr.len() - 1;
        // Forward: L Y = B, panel by panel.
        for s in 0..n_panels {
            let (j0, j1) = (self.sn_ptr[s], self.sn_ptr[s + 1]);
            // Dense triangular diagonal block: finalize the panel columns.
            for jj in j0..j1 {
                let pj = self.col_ptr[jj];
                let d = self.values[pj];
                scale_div(&mut ys[jj * k..(jj + 1) * k], d);
                for (off, i) in (jj + 1..j1).enumerate() {
                    let v = self.values[pj + 1 + off];
                    let (lo, hi) = ys.split_at_mut(i * k);
                    let yj = &lo[jj * k..jj * k + k];
                    let yi = &mut hi[..k];
                    axpy_neg(yi, yj, v);
                }
            }
            // Below-panel sweep: each shared row updated by every panel
            // column, one index decode per row. Updates to a given row
            // still run over ascending `jj` — the scalar order.
            let below0 = self.col_ptr[j1 - 1] + 1;
            let below_len = self.col_ptr[j1] - below0;
            for r in 0..below_len {
                let i = self.row_idx[below0 + r];
                let (lo, hi) = ys.split_at_mut(i * k);
                let yi = &mut hi[..k];
                for jj in j0..j1 {
                    // Column jj's below-panel run starts after its
                    // within-panel entries.
                    let v = self.values[self.col_ptr[jj] + (j1 - jj) + r];
                    let yj = &lo[jj * k..jj * k + k];
                    axpy_neg(yi, yj, v);
                }
            }
        }
        // Backward: Lᵀ X = Y. Per column `jj` the updates run in ascending
        // row order (within-panel rows, then the shared below rows) —
        // exactly the scalar backward sweep.
        for s in (0..n_panels).rev() {
            let (j0, j1) = (self.sn_ptr[s], self.sn_ptr[s + 1]);
            for jj in (j0..j1).rev() {
                let pj = self.col_ptr[jj];
                let (lo, hi) = ys.split_at_mut((jj + 1) * k);
                let yj = &mut lo[jj * k..(jj + 1) * k];
                for (off, i) in (jj + 1..j1).enumerate() {
                    let v = self.values[pj + 1 + off];
                    let yi = &hi[(i - jj - 1) * k..(i - jj - 1) * k + k];
                    axpy_neg(yj, yi, v);
                }
                for p in (pj + (j1 - jj))..self.col_ptr[jj + 1] {
                    let i = self.row_idx[p];
                    let v = self.values[p];
                    let yi = &hi[(i - jj - 1) * k..(i - jj - 1) * k + k];
                    axpy_neg(yj, yi, v);
                }
                let d = self.values[pj];
                scale_div(yj, d);
            }
        }
    }

    /// Solve into a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }
}

/// `yi[c] -= v · yj[c]` over two equal-length slices — the panel kernels'
/// only inner loop. Lanes are independent vector columns and each lane
/// performs the same mul-then-sub as the scalar loop (two
/// correctly-rounded ops), so widening reorders nothing: the result is
/// bitwise-identical to the plain `for c` form. On x86_64 builds compiled
/// with AVX enabled (`RUSTFLAGS="-C target-feature=+avx"`) the slices go
/// through explicit 4-wide 256-bit `core::arch` chunks; the portable
/// fallback is a bounds-check-free zip loop, which measures *faster*
/// than manual 4-wide unrolling here — indexed chunk bodies defeat
/// LLVM's autovectorizer on this kernel, the plain zip does not.
// lint: hot-path
#[inline(always)]
fn axpy_neg(yi: &mut [f64], yj: &[f64], v: f64) {
    debug_assert_eq!(yi.len(), yj.len());
    #[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
    {
        // SAFETY: AVX is statically enabled by the cfg gate.
        unsafe { axpy_neg_avx(yi, yj, v) }
    }
    #[cfg(not(all(target_arch = "x86_64", target_feature = "avx")))]
    {
        axpy_neg_portable(yi, yj, v)
    }
}

#[cfg(not(all(target_arch = "x86_64", target_feature = "avx")))]
#[inline(always)]
fn axpy_neg_portable(yi: &mut [f64], yj: &[f64], v: f64) {
    for (a, b) in yi.iter_mut().zip(yj) {
        *a -= v * b;
    }
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
#[inline(always)]
unsafe fn axpy_neg_avx(yi: &mut [f64], yj: &[f64], v: f64) {
    use core::arch::x86_64::*;
    let k = yi.len().min(yj.len());
    let vv = _mm256_set1_pd(v);
    let mut c = 0;
    while c + 4 <= k {
        // SAFETY: c+4 <= k bounds both slices; loadu/storeu need no
        // alignment.
        unsafe {
            let a = _mm256_loadu_pd(yi.as_ptr().add(c));
            let b = _mm256_loadu_pd(yj.as_ptr().add(c));
            // mul then sub, deliberately not fmadd: an FMA's single
            // rounding would change bits vs the scalar contract.
            _mm256_storeu_pd(
                yi.as_mut_ptr().add(c),
                _mm256_sub_pd(a, _mm256_mul_pd(vv, b)),
            );
        }
        c += 4;
    }
    while c < k {
        yi[c] -= v * yj[c];
        c += 1;
    }
}

/// `y[c] /= d` across a panel row — same widening story as [`axpy_neg`]:
/// independent lanes, one correctly-rounded divide per component.
// lint: hot-path
#[inline(always)]
fn scale_div(y: &mut [f64], d: f64) {
    #[cfg(all(target_arch = "x86_64", target_feature = "avx"))]
    {
        use core::arch::x86_64::*;
        // SAFETY: broadcast of an immediate; no memory touched, AVX
        // statically enabled by the cfg gate.
        let dd = unsafe { _mm256_set1_pd(d) };
        let mut c = 0;
        while c + 4 <= y.len() {
            // SAFETY: in-bounds unaligned load/store as above.
            unsafe {
                let a = _mm256_loadu_pd(y.as_ptr().add(c));
                _mm256_storeu_pd(y.as_mut_ptr().add(c), _mm256_div_pd(a, dd));
            }
            c += 4;
        }
        for v in &mut y[c..] {
            *v /= d;
        }
    }
    #[cfg(not(all(target_arch = "x86_64", target_feature = "avx")))]
    for v in y.iter_mut() {
        *v /= d;
    }
}

/// Partition the columns of `L` into supernode panels: maximal runs of
/// consecutive columns (capped at [`MAX_SUPERNODE`]) where each column's
/// pattern is exactly the next column's pattern plus the next column
/// itself. By induction every column of a panel then holds the panel's
/// dense triangular diagonal block plus one shared set of below-panel
/// rows — the structure [`SparseCholesky::solve_interleaved`] exploits.
fn detect_supernodes(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> Vec<usize> {
    if n == 0 {
        return vec![0];
    }
    let mut sn_ptr = vec![0usize];
    for j in 1..n {
        let prev = &row_idx[col_ptr[j - 1]..col_ptr[j]];
        let cur = &row_idx[col_ptr[j]..col_ptr[j + 1]];
        let joins = j - sn_ptr.last().copied().unwrap_or(0) < MAX_SUPERNODE
            && prev.len() == cur.len() + 1
            && prev[1] == j
            && prev[2..] == cur[1..];
        if !joins {
            sn_ptr.push(j);
        }
    }
    sn_ptr.push(n);
    sn_ptr
}

/// Elimination tree of a symmetric CSR matrix (None = root).
///
/// Uses the ancestor path-compression algorithm; `parent[j]` is the smallest
/// `k > j` such that `L(k, j) ≠ 0`.
pub fn elimination_tree(a: &Csr) -> Vec<Option<usize>> {
    let n = a.n_rows();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut ancestor: Vec<Option<usize>> = vec![None; n];
    for k in 0..n {
        for (i, _) in a.row(k).filter(|&(c, _)| c < k) {
            let mut j = i;
            loop {
                let anc = ancestor[j];
                ancestor[j] = Some(k);
                match anc {
                    None => {
                        if parent[j].is_none() && j != k {
                            parent[j] = Some(k);
                        }
                        break;
                    }
                    Some(a) if a == k => break,
                    Some(a) => j = a,
                }
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::DenseCholesky;
    use crate::coo::Coo;
    use crate::generators;

    fn tridiag(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
        }
        for i in 0..n - 1 {
            coo.push_sym(i, i + 1, -1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn tridiagonal_solve_is_exact() {
        let a = tridiag(10);
        let f = SparseCholesky::factor(&a).unwrap();
        let xe: Vec<f64> = (0..10).map(|i| (i as f64).sin() + 1.0).collect();
        let b = a.matvec(&xe);
        let x = f.solve(&b);
        for (u, v) in x.iter().zip(&xe) {
            assert!((u - v).abs() < 1e-12);
        }
        // Tridiagonal ⇒ no fill: nnz(L) = 2n − 1.
        assert_eq!(f.nnz_l(), 19);
    }

    #[test]
    fn etree_of_tridiagonal_is_a_path() {
        let a = tridiag(5);
        let parent = elimination_tree(&a);
        assert_eq!(
            parent,
            vec![Some(1), Some(2), Some(3), Some(4), None],
            "tridiagonal etree must be the path 0→1→2→3→4"
        );
    }

    #[test]
    fn matches_dense_cholesky_on_grid() {
        let a = generators::grid2d_laplacian(6, 5);
        let fs = SparseCholesky::factor(&a).unwrap();
        let fd = DenseCholesky::factor_csr(&a).unwrap();
        let b: Vec<f64> = (0..a.n_rows()).map(|i| (i % 7) as f64 - 3.0).collect();
        let xs = fs.solve(&b);
        let xd = fd.solve(&b);
        for (u, v) in xs.iter().zip(&xd) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn rcm_variant_agrees_with_natural() {
        let a = generators::grid2d_laplacian(7, 7);
        let f1 = SparseCholesky::factor(&a).unwrap();
        let f2 = SparseCholesky::factor_rcm(&a).unwrap();
        let b: Vec<f64> = (0..a.n_rows()).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let x1 = f1.solve(&b);
        let x2 = f2.solve(&b);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn rcm_reduces_fill_on_shuffled_grid() {
        // Permute a grid randomly; RCM ordering should not produce more fill
        // than the shuffled natural ordering.
        let a = generators::grid2d_laplacian(9, 9);
        let shuffled = {
            let n = a.n_rows();
            let p = Permutation::from_new_to_old((0..n).map(|i| (i * 37) % n).collect::<Vec<_>>())
                .unwrap();
            a.permute_sym(&p)
        };
        let f_nat = SparseCholesky::factor(&shuffled).unwrap();
        let f_rcm = SparseCholesky::factor_rcm(&shuffled).unwrap();
        assert!(
            f_rcm.nnz_l() <= f_nat.nnz_l(),
            "RCM fill {} should not exceed natural fill {}",
            f_rcm.nnz_l(),
            f_nat.nnz_l()
        );
    }

    #[test]
    fn block_solve_is_bitwise_k_scalar_solves() {
        // Natural and RCM factors: the block path must reproduce the scalar
        // path column for column, bit for bit.
        let a = generators::grid2d_laplacian(6, 6);
        let n = a.n_rows();
        let k = 4;
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|c| (0..n).map(|i| ((i + 7 * c) as f64 * 0.173).cos()).collect())
            .collect();
        for f in [
            SparseCholesky::factor(&a).unwrap(),
            SparseCholesky::factor_rcm(&a).unwrap(),
        ] {
            let mut block: Vec<f64> = cols.iter().flatten().copied().collect();
            f.solve_block_in_place(&mut block, k);
            for (c, col) in cols.iter().enumerate() {
                let mut x = col.clone();
                f.solve_in_place(&mut x);
                assert_eq!(&block[c * n..(c + 1) * n], &x[..], "column {c}");
            }
        }
    }

    #[test]
    fn indefinite_rejected() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        coo.push_sym(0, 1, 2.0).unwrap();
        let a = coo.to_csr();
        assert!(matches!(
            SparseCholesky::factor(&a),
            Err(Error::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn diagonal_matrix() {
        let mut coo = Coo::new(3, 3);
        for (i, d) in [2.0, 8.0, 0.5].iter().enumerate() {
            coo.push(i, i, *d).unwrap();
        }
        let a = coo.to_csr();
        let f = SparseCholesky::factor(&a).unwrap();
        let x = f.solve(&[2.0, 8.0, 0.5]);
        for v in x {
            assert!((v - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn dense_like_matrix_with_full_fill() {
        // Arrow matrix pointing the wrong way produces maximal fill in
        // natural order; result must still be correct.
        let n = 12;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, n as f64).unwrap();
        }
        for i in 1..n {
            coo.push_sym(0, i, -1.0).unwrap();
        }
        let a = coo.to_csr();
        let f = SparseCholesky::factor(&a).unwrap();
        let xe = vec![1.0; n];
        let b = a.matvec(&xe);
        let x = f.solve(&b);
        for (u, v) in x.iter().zip(&xe) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}

//! Up-looking sparse Cholesky with elimination-tree symbolic analysis.
//!
//! Implements the classic three-stage pipeline for symmetric positive
//! definite matrices (following the structure of Davis, *Direct Methods for
//! Sparse Linear Systems*):
//!
//! 1. **elimination tree** of `A`,
//! 2. **symbolic factorization** — per-row reach sets give the exact nonzero
//!    count of every column of `L`,
//! 3. **numeric up-looking factorization** — row `k` of `L` is obtained from
//!    a sparse triangular solve over the reach of row `k`.
//!
//! The factor is stored in CSC so that forward/backward substitution are
//! column-oriented sweeps. An optional reverse Cuthill–McKee pre-ordering
//! ([`SparseCholesky::factor_rcm`]) reduces fill.
//!
//! This is the "Sparse Cholesky" the paper names as the local solver of DTM
//! (§5: "(5.9) could be solved by Sparse or Dense Cholesky, CG, MG, etc.").

use crate::csr::Csr;
use crate::error::{Error, Result};
use crate::ordering::{reverse_cuthill_mckee, Permutation};

/// Sparse Cholesky factor `A = L Lᵀ` (CSC lower-triangular `L`).
#[derive(Debug, Clone)]
pub struct SparseCholesky {
    n: usize,
    /// Column pointers of `L` (CSC).
    col_ptr: Vec<usize>,
    /// Row indices of `L`; the first entry of each column is the diagonal.
    row_idx: Vec<usize>,
    /// Values of `L`.
    values: Vec<f64>,
    /// Optional fill-reducing permutation (`None` = natural order).
    perm: Option<Permutation>,
}

impl SparseCholesky {
    /// Factor a symmetric positive definite CSR matrix in natural order.
    ///
    /// Only the lower triangle of `A` is read through the row/column duality
    /// of symmetric CSR. Symmetry is the caller's responsibility (checked in
    /// debug builds).
    ///
    /// # Errors
    /// [`Error::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn factor(a: &Csr) -> Result<Self> {
        debug_assert!(a.is_symmetric(1e-10), "SparseCholesky expects symmetry");
        if a.n_rows() != a.n_cols() {
            return Err(Error::DimensionMismatch {
                context: "SparseCholesky::factor",
                expected: a.n_rows(),
                actual: a.n_cols(),
            });
        }
        let n = a.n_rows();
        let parent = elimination_tree(a);

        // --- Symbolic: column counts of L via row reaches. ---
        let mut col_count = vec![1usize; n]; // diagonal of each column
        {
            let mut mark = vec![usize::MAX; n];
            let mut stack = Vec::with_capacity(n);
            for k in 0..n {
                mark[k] = k;
                for (j0, _) in a.row(k).filter(|&(c, _)| c < k) {
                    let mut j = j0;
                    stack.clear();
                    while mark[j] != k {
                        stack.push(j);
                        mark[j] = k;
                        j = match parent[j] {
                            Some(p) => p,
                            None => break,
                        };
                    }
                    for &c in &stack {
                        col_count[c] += 1;
                    }
                }
            }
        }

        let mut col_ptr = vec![0usize; n + 1];
        for j in 0..n {
            col_ptr[j + 1] = col_ptr[j] + col_count[j];
        }
        let nnz = col_ptr[n];
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![0f64; nnz];
        // Next free slot per column; slot 0 of each column is the diagonal,
        // filled at the end of step k == j.
        let mut next = col_ptr[..n].iter().map(|&p| p + 1).collect::<Vec<_>>();

        // --- Numeric: up-looking. ---
        let mut x = vec![0f64; n]; // sparse accumulator (dense workspace)
        let mut pattern: Vec<usize> = Vec::with_capacity(n); // reach of row k, topological
        let mut mark = vec![usize::MAX; n];
        let mut stack = Vec::with_capacity(n);

        for k in 0..n {
            // Scatter A(0..k, k) — by symmetry, row k entries with col ≤ k.
            pattern.clear();
            mark[k] = k;
            let mut d = 0.0;
            for (c, v) in a.row(k) {
                match c.cmp(&k) {
                    std::cmp::Ordering::Less => {
                        x[c] = v;
                        // Walk the elimination tree to collect the reach.
                        let mut j = c;
                        stack.clear();
                        while mark[j] != k {
                            stack.push(j);
                            mark[j] = k;
                            j = match parent[j] {
                                Some(p) => p,
                                None => break,
                            };
                        }
                        // stack holds a root-ward path; reversing gives
                        // ascending (topological) order for this path.
                        for &c2 in stack.iter().rev() {
                            pattern.push(c2);
                        }
                    }
                    std::cmp::Ordering::Equal => d = v,
                    std::cmp::Ordering::Greater => {}
                }
            }
            // Paths pushed per-entry are each ascending but may interleave;
            // a total ascending sort is a valid topological order of the
            // reach (ancestors have larger indices in an etree).
            pattern.sort_unstable();

            for &j in &pattern {
                let ljj = values[col_ptr[j]];
                let lkj = x[j] / ljj;
                x[j] = 0.0;
                // x ← x − L(:, j) · lkj for rows < k already in column j.
                for p in (col_ptr[j] + 1)..next[j] {
                    x[row_idx[p]] -= values[p] * lkj;
                }
                d -= lkj * lkj;
                // Append L(k, j).
                let slot = next[j];
                debug_assert!(slot < col_ptr[j + 1], "symbolic undercount");
                row_idx[slot] = k;
                values[slot] = lkj;
                next[j] += 1;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(Error::NotPositiveDefinite {
                    column: k,
                    pivot: d,
                });
            }
            row_idx[col_ptr[k]] = k;
            values[col_ptr[k]] = d.sqrt();
        }

        Ok(Self {
            n,
            col_ptr,
            row_idx,
            values,
            perm: None,
        })
    }

    /// Factor with a reverse Cuthill–McKee pre-ordering; solves transparently
    /// permute/unpermute.
    pub fn factor_rcm(a: &Csr) -> Result<Self> {
        let perm = reverse_cuthill_mckee(a);
        let pa = a.permute_sym(&perm);
        let mut f = Self::factor(&pa)?;
        f.perm = Some(perm);
        Ok(f)
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nonzeros in `L` (a fill measure).
    pub fn nnz_l(&self) -> usize {
        self.values.len()
    }

    /// Solve `A x = b` in place.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        self.solve_block_in_place(b, 1);
    }

    /// Solve `A X = B` in place for a column-major block of `k` right-hand
    /// sides (`xs.len() == n·k`, column `c` at `xs[c·n .. (c+1)·n]`).
    ///
    /// The CSC factor is swept **once** per triangular phase, each stored
    /// entry of `L` applied to all `k` columns — amortizing the traversal
    /// (index decoding, cache misses) over the block. The fill-reducing
    /// permutation, when present, is applied per column on the way in and
    /// inverted per column on the way out. Column `c` undergoes exactly
    /// the scalar [`solve_in_place`](Self::solve_in_place) arithmetic in
    /// the same order, so a block solve is bitwise identical to `k` scalar
    /// solves.
    pub fn solve_block_in_place(&self, xs: &mut [f64], k: usize) {
        let n = self.n;
        assert_eq!(xs.len(), n * k, "SparseCholesky::solve_block length");
        match &self.perm {
            None => self.solve_block_natural(xs, k),
            Some(p) => {
                // B = P A Pᵀ factored; A x = b ⇔ B (P x) = P b, per column.
                for c in 0..k {
                    let col = &mut xs[c * n..(c + 1) * n];
                    let pb = p.apply(col);
                    col.copy_from_slice(&pb);
                }
                self.solve_block_natural(xs, k);
                for c in 0..k {
                    let col = &mut xs[c * n..(c + 1) * n];
                    let x = p.apply_inverse(col);
                    col.copy_from_slice(&x);
                }
            }
        }
    }

    fn solve_block_natural(&self, xs: &mut [f64], k: usize) {
        let n = self.n;
        // Forward: L Y = B (column-oriented, one factor sweep for all k).
        for j in 0..n {
            let pj = self.col_ptr[j];
            let d = self.values[pj];
            for c in 0..k {
                xs[c * n + j] /= d;
            }
            for p in (pj + 1)..self.col_ptr[j + 1] {
                let (i, v) = (self.row_idx[p], self.values[p]);
                for c in 0..k {
                    xs[c * n + i] -= v * xs[c * n + j];
                }
            }
        }
        // Backward: Lᵀ X = Y.
        for j in (0..n).rev() {
            let pj = self.col_ptr[j];
            for p in (pj + 1)..self.col_ptr[j + 1] {
                let (i, v) = (self.row_idx[p], self.values[p]);
                for c in 0..k {
                    xs[c * n + j] -= v * xs[c * n + i];
                }
            }
            let d = self.values[pj];
            for c in 0..k {
                xs[c * n + j] /= d;
            }
        }
    }

    /// Solve into a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }
}

/// Elimination tree of a symmetric CSR matrix (None = root).
///
/// Uses the ancestor path-compression algorithm; `parent[j]` is the smallest
/// `k > j` such that `L(k, j) ≠ 0`.
pub fn elimination_tree(a: &Csr) -> Vec<Option<usize>> {
    let n = a.n_rows();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut ancestor: Vec<Option<usize>> = vec![None; n];
    for k in 0..n {
        for (i, _) in a.row(k).filter(|&(c, _)| c < k) {
            let mut j = i;
            loop {
                let anc = ancestor[j];
                ancestor[j] = Some(k);
                match anc {
                    None => {
                        if parent[j].is_none() && j != k {
                            parent[j] = Some(k);
                        }
                        break;
                    }
                    Some(a) if a == k => break,
                    Some(a) => j = a,
                }
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::DenseCholesky;
    use crate::coo::Coo;
    use crate::generators;

    fn tridiag(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
        }
        for i in 0..n - 1 {
            coo.push_sym(i, i + 1, -1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn tridiagonal_solve_is_exact() {
        let a = tridiag(10);
        let f = SparseCholesky::factor(&a).unwrap();
        let xe: Vec<f64> = (0..10).map(|i| (i as f64).sin() + 1.0).collect();
        let b = a.matvec(&xe);
        let x = f.solve(&b);
        for (u, v) in x.iter().zip(&xe) {
            assert!((u - v).abs() < 1e-12);
        }
        // Tridiagonal ⇒ no fill: nnz(L) = 2n − 1.
        assert_eq!(f.nnz_l(), 19);
    }

    #[test]
    fn etree_of_tridiagonal_is_a_path() {
        let a = tridiag(5);
        let parent = elimination_tree(&a);
        assert_eq!(
            parent,
            vec![Some(1), Some(2), Some(3), Some(4), None],
            "tridiagonal etree must be the path 0→1→2→3→4"
        );
    }

    #[test]
    fn matches_dense_cholesky_on_grid() {
        let a = generators::grid2d_laplacian(6, 5);
        let fs = SparseCholesky::factor(&a).unwrap();
        let fd = DenseCholesky::factor_csr(&a).unwrap();
        let b: Vec<f64> = (0..a.n_rows()).map(|i| (i % 7) as f64 - 3.0).collect();
        let xs = fs.solve(&b);
        let xd = fd.solve(&b);
        for (u, v) in xs.iter().zip(&xd) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn rcm_variant_agrees_with_natural() {
        let a = generators::grid2d_laplacian(7, 7);
        let f1 = SparseCholesky::factor(&a).unwrap();
        let f2 = SparseCholesky::factor_rcm(&a).unwrap();
        let b: Vec<f64> = (0..a.n_rows()).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let x1 = f1.solve(&b);
        let x2 = f2.solve(&b);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn rcm_reduces_fill_on_shuffled_grid() {
        // Permute a grid randomly; RCM ordering should not produce more fill
        // than the shuffled natural ordering.
        let a = generators::grid2d_laplacian(9, 9);
        let shuffled = {
            let n = a.n_rows();
            let p = Permutation::from_new_to_old((0..n).map(|i| (i * 37) % n).collect::<Vec<_>>())
                .unwrap();
            a.permute_sym(&p)
        };
        let f_nat = SparseCholesky::factor(&shuffled).unwrap();
        let f_rcm = SparseCholesky::factor_rcm(&shuffled).unwrap();
        assert!(
            f_rcm.nnz_l() <= f_nat.nnz_l(),
            "RCM fill {} should not exceed natural fill {}",
            f_rcm.nnz_l(),
            f_nat.nnz_l()
        );
    }

    #[test]
    fn block_solve_is_bitwise_k_scalar_solves() {
        // Natural and RCM factors: the block path must reproduce the scalar
        // path column for column, bit for bit.
        let a = generators::grid2d_laplacian(6, 6);
        let n = a.n_rows();
        let k = 4;
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|c| (0..n).map(|i| ((i + 7 * c) as f64 * 0.173).cos()).collect())
            .collect();
        for f in [
            SparseCholesky::factor(&a).unwrap(),
            SparseCholesky::factor_rcm(&a).unwrap(),
        ] {
            let mut block: Vec<f64> = cols.iter().flatten().copied().collect();
            f.solve_block_in_place(&mut block, k);
            for (c, col) in cols.iter().enumerate() {
                let mut x = col.clone();
                f.solve_in_place(&mut x);
                assert_eq!(&block[c * n..(c + 1) * n], &x[..], "column {c}");
            }
        }
    }

    #[test]
    fn indefinite_rejected() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        coo.push_sym(0, 1, 2.0).unwrap();
        let a = coo.to_csr();
        assert!(matches!(
            SparseCholesky::factor(&a),
            Err(Error::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn diagonal_matrix() {
        let mut coo = Coo::new(3, 3);
        for (i, d) in [2.0, 8.0, 0.5].iter().enumerate() {
            coo.push(i, i, *d).unwrap();
        }
        let a = coo.to_csr();
        let f = SparseCholesky::factor(&a).unwrap();
        let x = f.solve(&[2.0, 8.0, 0.5]);
        for v in x {
            assert!((v - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn dense_like_matrix_with_full_fill() {
        // Arrow matrix pointing the wrong way produces maximal fill in
        // natural order; result must still be correct.
        let n = 12;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, n as f64).unwrap();
        }
        for i in 1..n {
            coo.push_sym(0, i, -1.0).unwrap();
        }
        let a = coo.to_csr();
        let f = SparseCholesky::factor(&a).unwrap();
        let xe = vec![1.0; n];
        let b = a.matvec(&xe);
        let x = f.solve(&b);
        for (u, v) in x.iter().zip(&xe) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}

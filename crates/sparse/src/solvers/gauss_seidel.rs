//! Gauss–Seidel iteration (forward sweep), the sequential limit of the
//! multiplicative-Schwarz family mentioned in the paper's introduction.

use super::{IterConfig, IterResult};
use crate::csr::Csr;
use crate::vector::norm2;

/// Solve `A x = b` by forward Gauss–Seidel from `x = 0`.
pub fn solve(a: &Csr, b: &[f64], cfg: &IterConfig) -> IterResult {
    let n = a.n_rows();
    assert_eq!(a.n_cols(), n, "gauss-seidel: square matrix required");
    assert_eq!(b.len(), n, "gauss-seidel: rhs length");
    let diag = a.diag();
    assert!(
        diag.iter().all(|&d| d != 0.0),
        "gauss-seidel: zero diagonal entry"
    );

    let threshold = cfg.threshold(norm2(b));
    let mut x = vec![0.0; n];
    let mut history = Vec::new();
    let mut residual = f64::INFINITY;

    for it in 0..cfg.max_iter {
        for r in 0..n {
            let mut s = b[r];
            for (c, v) in a.row(r) {
                if c != r {
                    s -= v * x[c]; // mixes already-updated and old values
                }
            }
            x[r] = s / diag[r];
        }
        residual = a.residual_norm(&x, b);
        if cfg.record_history {
            history.push(residual);
        }
        if residual <= threshold {
            return IterResult {
                x,
                iterations: it + 1,
                residual,
                converged: true,
                residual_history: history,
            };
        }
    }
    IterResult {
        x,
        iterations: cfg.max_iter,
        residual,
        converged: false,
        residual_history: history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::solvers::jacobi;

    #[test]
    fn converges_and_beats_jacobi() {
        let a = generators::grid2d_laplacian(8, 8);
        let (b, xe) = generators::manufactured_rhs(&a, 9);
        let cfg = IterConfig::with_rtol(1e-10);
        let gs = solve(&a, &b, &cfg);
        let jac = jacobi::solve(&a, &b, &cfg);
        assert!(gs.converged && jac.converged);
        assert!(
            gs.iterations < jac.iterations,
            "GS {} should beat Jacobi {}",
            gs.iterations,
            jac.iterations
        );
        for (u, v) in gs.x.iter().zip(&xe) {
            assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn exact_on_lower_triangular_in_one_sweep() {
        // For a lower-triangular system GS is exact after one sweep.
        let mut coo = crate::coo::Coo::new(3, 3);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        coo.push(2, 1, -1.0).unwrap();
        coo.push(2, 2, 2.0).unwrap();
        let a = coo.to_csr();
        let b = vec![2.0, 1.0, 0.0];
        let res = solve(&a, &b, &IterConfig::with_rtol(1e-14));
        assert_eq!(res.iterations, 1);
        assert!((res.x[0] - 1.0).abs() < 1e-14);
        assert!((res.x[1] - 1.0).abs() < 1e-14);
        assert!((res.x[2] - 0.5).abs() < 1e-14);
    }
}

//! Sequential iterative solvers: the classical baselines the paper's
//! introduction positions DTM against (Jacobi, Gauss–Seidel/SOR as the
//! building blocks of block-Jacobi / multiplicative Schwarz, and CG as the
//! standard Krylov workhorse for SPD systems).

pub mod cg;
pub mod gauss_seidel;
pub mod jacobi;
pub mod sor;

/// Shared configuration for the stationary/Krylov solvers.
#[derive(Debug, Clone)]
pub struct IterConfig {
    /// Relative residual tolerance: stop when `‖b − Ax‖ ≤ rtol·‖b‖`.
    pub rtol: f64,
    /// Absolute residual floor (for `b = 0`).
    pub atol: f64,
    /// Iteration budget.
    pub max_iter: usize,
    /// Record `‖r‖` after every iteration in [`IterResult::residual_history`].
    pub record_history: bool,
}

impl Default for IterConfig {
    fn default() -> Self {
        Self {
            rtol: 1e-10,
            atol: 1e-14,
            max_iter: 10_000,
            record_history: false,
        }
    }
}

impl IterConfig {
    /// Config with the given relative tolerance.
    pub fn with_rtol(rtol: f64) -> Self {
        Self {
            rtol,
            ..Self::default()
        }
    }

    /// Builder-style max-iteration override.
    pub fn max_iter(mut self, it: usize) -> Self {
        self.max_iter = it;
        self
    }

    /// Builder-style history recording toggle.
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// The absolute stop threshold for a given RHS norm.
    pub fn threshold(&self, b_norm: f64) -> f64 {
        (self.rtol * b_norm).max(self.atol)
    }
}

/// Outcome of an iterative solve.
#[derive(Debug, Clone)]
pub struct IterResult {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Whether the tolerance was met within the budget.
    pub converged: bool,
    /// Residual after each iteration (when requested).
    pub residual_history: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_uses_floor() {
        let c = IterConfig::with_rtol(1e-6);
        assert_eq!(c.threshold(0.0), c.atol);
        assert!((c.threshold(2.0) - 2e-6).abs() < 1e-18);
    }

    #[test]
    fn builder_chains() {
        let c = IterConfig::default().max_iter(5).record_history(true);
        assert_eq!(c.max_iter, 5);
        assert!(c.record_history);
    }
}

//! Point Jacobi iteration `x ← D⁻¹(b − (A − D)x)`.
//!
//! The discrete-time, globally synchronous ancestor of every method in this
//! workspace; also the smoothing kernel reused by the asynchronous
//! block-Jacobi baseline in `dtm-core`.

use super::{IterConfig, IterResult};
use crate::csr::Csr;
use crate::vector::norm2;

/// Solve `A x = b` by point Jacobi starting from `x = 0`.
///
/// # Panics
/// Panics if `A` is not square, `b` has the wrong length, or a diagonal
/// entry is zero.
pub fn solve(a: &Csr, b: &[f64], cfg: &IterConfig) -> IterResult {
    solve_from(a, b, vec![0.0; b.len()], cfg)
}

/// Solve starting from an initial guess `x0` (consumed).
pub fn solve_from(a: &Csr, b: &[f64], x0: Vec<f64>, cfg: &IterConfig) -> IterResult {
    let n = a.n_rows();
    assert_eq!(a.n_cols(), n, "jacobi: square matrix required");
    assert_eq!(b.len(), n, "jacobi: rhs length");
    assert_eq!(x0.len(), n, "jacobi: x0 length");
    let diag = a.diag();
    assert!(
        diag.iter().all(|&d| d != 0.0),
        "jacobi: zero diagonal entry"
    );

    let threshold = cfg.threshold(norm2(b));
    let mut x = x0;
    let mut x_new = vec![0.0; n];
    let mut history = Vec::new();
    let mut residual = f64::INFINITY;

    for it in 0..cfg.max_iter {
        for r in 0..n {
            let mut s = b[r];
            for (c, v) in a.row(r) {
                if c != r {
                    s -= v * x[c];
                }
            }
            x_new[r] = s / diag[r];
        }
        std::mem::swap(&mut x, &mut x_new);
        residual = a.residual_norm(&x, b);
        if cfg.record_history {
            history.push(residual);
        }
        if residual <= threshold {
            return IterResult {
                x,
                iterations: it + 1,
                residual,
                converged: true,
                residual_history: history,
            };
        }
    }
    IterResult {
        x,
        iterations: cfg.max_iter,
        residual,
        converged: false,
        residual_history: history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn converges_on_dominant_system() {
        let a = generators::tridiagonal(20, 4.0, -1.0);
        let (b, xe) = generators::manufactured_rhs(&a, 1);
        let res = solve(&a, &b, &IterConfig::with_rtol(1e-12));
        assert!(res.converged, "res {:?}", res.residual);
        for (u, v) in res.x.iter().zip(&xe) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn history_is_monotone_for_dominant_matrix() {
        let a = generators::tridiagonal(16, 5.0, -1.0);
        let b = vec![1.0; 16];
        let cfg = IterConfig::with_rtol(1e-10).record_history(true);
        let res = solve(&a, &b, &cfg);
        assert!(res.converged);
        for w in res.residual_history.windows(2) {
            assert!(w[1] <= w[0] * 1.0001, "residual should not grow");
        }
    }

    #[test]
    fn budget_exhaustion_reports_nonconverged() {
        let a = generators::grid2d_laplacian(10, 10);
        let b = vec![1.0; 100];
        let res = solve(&a, &b, &IterConfig::with_rtol(1e-14).max_iter(3));
        assert!(!res.converged);
        assert_eq!(res.iterations, 3);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let a = generators::tridiagonal(20, 4.0, -1.0);
        let (b, xe) = generators::manufactured_rhs(&a, 2);
        let cold = solve(&a, &b, &IterConfig::with_rtol(1e-10));
        let warm = solve_from(&a, &b, xe.clone(), &IterConfig::with_rtol(1e-10));
        assert!(warm.iterations < cold.iterations);
    }
}

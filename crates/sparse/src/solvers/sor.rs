//! Successive over-relaxation (SOR): Gauss–Seidel with relaxation factor ω.

use super::{IterConfig, IterResult};
use crate::csr::Csr;
use crate::vector::norm2;

/// Solve `A x = b` by SOR with relaxation factor `omega ∈ (0, 2)`.
///
/// `omega = 1` reduces to Gauss–Seidel.
///
/// # Panics
/// Panics for `omega` outside `(0, 2)` (divergent for SPD systems).
pub fn solve(a: &Csr, b: &[f64], omega: f64, cfg: &IterConfig) -> IterResult {
    assert!(
        omega > 0.0 && omega < 2.0,
        "SOR requires omega in (0, 2), got {omega}"
    );
    let n = a.n_rows();
    assert_eq!(a.n_cols(), n, "sor: square matrix required");
    assert_eq!(b.len(), n, "sor: rhs length");
    let diag = a.diag();
    assert!(diag.iter().all(|&d| d != 0.0), "sor: zero diagonal entry");

    let threshold = cfg.threshold(norm2(b));
    let mut x = vec![0.0; n];
    let mut history = Vec::new();
    let mut residual = f64::INFINITY;

    for it in 0..cfg.max_iter {
        for r in 0..n {
            let mut s = b[r];
            for (c, v) in a.row(r) {
                if c != r {
                    s -= v * x[c];
                }
            }
            let gs = s / diag[r];
            x[r] = (1.0 - omega) * x[r] + omega * gs;
        }
        residual = a.residual_norm(&x, b);
        if cfg.record_history {
            history.push(residual);
        }
        if residual <= threshold {
            return IterResult {
                x,
                iterations: it + 1,
                residual,
                converged: true,
                residual_history: history,
            };
        }
    }
    IterResult {
        x,
        iterations: cfg.max_iter,
        residual,
        converged: false,
        residual_history: history,
    }
}

/// The theoretically optimal ω for a consistently-ordered matrix with Jacobi
/// spectral radius `rho_j`: `2 / (1 + √(1 − ρ²))`.
pub fn optimal_omega(rho_jacobi: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho_jacobi), "need 0 ≤ ρ < 1");
    2.0 / (1.0 + (1.0 - rho_jacobi * rho_jacobi).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::solvers::gauss_seidel;

    #[test]
    fn omega_one_equals_gauss_seidel() {
        let a = generators::grid2d_laplacian(6, 6);
        let b = generators::random_rhs(36, 4);
        let cfg = IterConfig::with_rtol(1e-10);
        let s = solve(&a, &b, 1.0, &cfg);
        let g = gauss_seidel::solve(&a, &b, &cfg);
        assert_eq!(s.iterations, g.iterations);
        for (u, v) in s.x.iter().zip(&g.x) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn tuned_omega_accelerates_laplacian() {
        let nx = 16;
        let a = generators::grid2d_laplacian(nx, nx);
        let b = generators::random_rhs(nx * nx, 4);
        let cfg = IterConfig::with_rtol(1e-8).max_iter(100_000);
        // Jacobi spectral radius of the Dirichlet Laplacian ≈ cos(π/(nx+1)).
        let rho = (std::f64::consts::PI / (nx as f64 + 1.0)).cos();
        let s_opt = solve(&a, &b, optimal_omega(rho), &cfg);
        let s_gs = solve(&a, &b, 1.0, &cfg);
        assert!(s_opt.converged && s_gs.converged);
        assert!(
            s_opt.iterations < s_gs.iterations / 2,
            "optimal SOR {} should be ≫ faster than GS {}",
            s_opt.iterations,
            s_gs.iterations
        );
    }

    #[test]
    #[should_panic(expected = "omega")]
    fn rejects_bad_omega() {
        let a = generators::tridiagonal(3, 4.0, -1.0);
        let _ = solve(&a, &[1.0, 1.0, 1.0], 2.5, &IterConfig::default());
    }

    #[test]
    fn optimal_omega_bounds() {
        assert!((optimal_omega(0.0) - 1.0).abs() < 1e-15);
        assert!(optimal_omega(0.99) < 2.0);
        assert!(optimal_omega(0.99) > 1.0);
    }
}

//! Conjugate Gradient, optionally Jacobi-preconditioned.
//!
//! The standard Krylov solver for SPD systems (paper reference \[3\], Saad).
//! Serves two roles in the reproduction: the strong *sequential* baseline in
//! the end-to-end comparisons, and an alternative *local* solver for DTM
//! subsystems (§5: "(5.9) could be solved by Sparse or Dense Cholesky, CG,
//! MG, etc.").

use super::{IterConfig, IterResult};
use crate::csr::Csr;
use crate::vector::{axpy, aypx, dot, norm2};

/// Solve `A x = b` with plain CG from `x = 0`.
pub fn solve(a: &Csr, b: &[f64], cfg: &IterConfig) -> IterResult {
    solve_preconditioned(a, b, None, cfg)
}

/// Solve with Jacobi (diagonal) preconditioning.
pub fn solve_jacobi_pc(a: &Csr, b: &[f64], cfg: &IterConfig) -> IterResult {
    let inv_diag: Vec<f64> = a
        .diag()
        .iter()
        .map(|&d| {
            assert!(d > 0.0, "cg: Jacobi preconditioner needs positive diagonal");
            1.0 / d
        })
        .collect();
    solve_preconditioned(a, b, Some(&inv_diag), cfg)
}

fn solve_preconditioned(
    a: &Csr,
    b: &[f64],
    inv_diag: Option<&[f64]>,
    cfg: &IterConfig,
) -> IterResult {
    let n = a.n_rows();
    assert_eq!(a.n_cols(), n, "cg: square matrix required");
    assert_eq!(b.len(), n, "cg: rhs length");

    let threshold = cfg.threshold(norm2(b));
    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b − A·0
    let mut history = Vec::new();

    let apply_pc = |r: &[f64], z: &mut Vec<f64>| match inv_diag {
        Some(d) => {
            z.clear();
            z.extend(r.iter().zip(d).map(|(ri, di)| ri * di));
        }
        None => {
            z.clear();
            z.extend_from_slice(r);
        }
    };

    let mut z = Vec::with_capacity(n);
    apply_pc(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];
    let mut res_norm = norm2(&r);

    if res_norm <= threshold {
        return IterResult {
            x,
            iterations: 0,
            residual: res_norm,
            converged: true,
            residual_history: history,
        };
    }

    for it in 0..cfg.max_iter {
        a.matvec_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // Not SPD (or numerically broken down) — report best effort.
            return IterResult {
                x,
                iterations: it,
                residual: res_norm,
                converged: false,
                residual_history: history,
            };
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        res_norm = norm2(&r);
        if cfg.record_history {
            history.push(res_norm);
        }
        if res_norm <= threshold {
            return IterResult {
                x,
                iterations: it + 1,
                residual: res_norm,
                converged: true,
                residual_history: history,
            };
        }
        apply_pc(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        aypx(beta, &z, &mut p); // p ← z + β p
    }

    IterResult {
        x,
        iterations: cfg.max_iter,
        residual: res_norm,
        converged: false,
        residual_history: history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn exact_after_n_iterations_in_theory() {
        let a = generators::tridiagonal(12, 4.0, -1.0);
        let (b, xe) = generators::manufactured_rhs(&a, 11);
        let res = solve(&a, &b, &IterConfig::with_rtol(1e-12).max_iter(30));
        assert!(res.converged);
        assert!(res.iterations <= 12, "CG finite termination");
        for (u, v) in res.x.iter().zip(&xe) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_rhs_is_immediate() {
        let a = generators::grid2d_laplacian(4, 4);
        let res = solve(&a, &[0.0; 16], &IterConfig::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn preconditioning_helps_on_illconditioned_diagonal() {
        // Strongly varying diagonal: Jacobi preconditioning should cut the
        // iteration count.
        let n = 200;
        let mut coo = crate::coo::Coo::new(n, n);
        for i in 0..n {
            let d = 1.0 + (i as f64) * (i as f64); // 1 .. ~4·10⁴
            coo.push(i, i, d).unwrap();
        }
        for i in 0..n - 1 {
            coo.push_sym(i, i + 1, -0.45).unwrap();
        }
        let a = coo.to_csr();
        let b = generators::random_rhs(n, 2);
        let cfg = IterConfig::with_rtol(1e-10).max_iter(5000);
        let plain = solve(&a, &b, &cfg);
        let pc = solve_jacobi_pc(&a, &b, &cfg);
        assert!(plain.converged && pc.converged);
        assert!(
            pc.iterations < plain.iterations,
            "PC {} should beat plain {}",
            pc.iterations,
            plain.iterations
        );
    }

    #[test]
    fn grid_laplacian_converges_fast() {
        let a = generators::grid2d_laplacian(17, 17); // n = 289, a paper size
        let (b, xe) = generators::manufactured_rhs(&a, 8);
        let res = solve(&a, &b, &IterConfig::with_rtol(1e-10));
        assert!(res.converged);
        assert!(res.iterations < 289, "CG should be far sub-n on the grid");
        for (u, v) in res.x.iter().zip(&xe) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn history_records_every_iteration() {
        let a = generators::grid2d_laplacian(6, 6);
        let b = generators::random_rhs(36, 1);
        let res = solve(&a, &b, &IterConfig::with_rtol(1e-8).record_history(true));
        assert_eq!(res.residual_history.len(), res.iterations);
    }

    #[test]
    fn indefinite_matrix_reports_breakdown() {
        let mut coo = crate::coo::Coo::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, -1.0).unwrap();
        let a = coo.to_csr();
        let res = solve(&a, &[0.0, 1.0], &IterConfig::default());
        assert!(!res.converged);
    }
}

//! Seeded workload generators for every experiment in the paper.
//!
//! The paper evaluates DTM on "randomly generated" sparse SPD systems with
//! n = 289, 1089 and 4225 unknowns (= 17², 33², 65²) that are "regularly
//! partitioned" — i.e. grid-structured problems. The generators here produce:
//!
//! * deterministic 5-point / 9-point 2-D grid Laplacians,
//! * 2-D grids with **random positive conductances** (the closest synthetic
//!   equivalent of the paper's random systems; see DESIGN.md §2),
//! * 3-D 7-point Laplacians,
//! * random-sparsity diagonally dominant SPD matrices,
//! * tridiagonal SPD matrices,
//! * random right-hand sides and exact-solution/RHS pairs.
//!
//! All randomness is drawn from caller-provided seeds via `StdRng`, making
//! every experiment bit-reproducible.

use crate::coo::Coo;
use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 5-point finite-difference Laplacian on an `nx × ny` grid with Dirichlet
/// boundary conditions: diagonal 4, off-diagonal −1 to the 4-neighbours.
/// SPD and irreducibly diagonally dominant.
pub fn grid2d_laplacian(nx: usize, ny: usize) -> Csr {
    grid2d_conductance(nx, ny, |_, _| 1.0, 0.0).add_to_diagonal(&boundary_margin_2d(nx, ny))
}

/// Margin that converts the singular grid Laplacian into the classic
/// Dirichlet 5-point stencil: each boundary node is coupled to implicit
/// ghost nodes, adding 1 per missing neighbour so every diagonal becomes 4.
fn boundary_margin_2d(nx: usize, ny: usize) -> Vec<f64> {
    let mut m = vec![0.0; nx * ny];
    for y in 0..ny {
        for x in 0..nx {
            let mut missing = 0.0;
            if x == 0 {
                missing += 1.0;
            }
            if x + 1 == nx {
                missing += 1.0;
            }
            if y == 0 {
                missing += 1.0;
            }
            if y + 1 == ny {
                missing += 1.0;
            }
            m[y * nx + x] = missing;
        }
    }
    m
}

/// Weighted graph Laplacian of the `nx × ny` grid with per-edge conductance
/// `g(edge)` plus `margin` added to every diagonal entry (`margin > 0` makes
/// the matrix strictly diagonally dominant, hence SPD).
///
/// Vertex `(x, y)` has index `y * nx + x`.
pub fn grid2d_conductance(
    nx: usize,
    ny: usize,
    mut g: impl FnMut(usize, usize) -> f64,
    margin: f64,
) -> Csr {
    let n = nx * ny;
    let idx = |x: usize, y: usize| y * nx + x;
    let mut coo = Coo::with_capacity(n, n, 5 * n);
    let mut diag = vec![margin; n];
    for y in 0..ny {
        for x in 0..nx {
            let u = idx(x, y);
            if x + 1 < nx {
                let v = idx(x + 1, y);
                let w = g(u, v);
                assert!(w > 0.0, "conductances must be positive");
                coo.push_sym_trusted(u, v, -w);
                diag[u] += w;
                diag[v] += w;
            }
            if y + 1 < ny {
                let v = idx(x, y + 1);
                let w = g(u, v);
                assert!(w > 0.0, "conductances must be positive");
                coo.push_sym_trusted(u, v, -w);
                diag[u] += w;
                diag[v] += w;
            }
        }
    }
    for (i, d) in diag.iter().enumerate() {
        coo.push_trusted(i, i, *d);
    }
    coo.to_csr()
}

/// The paper's random sparse SPD testcase family: an `nx × ny` grid with
/// conductances drawn from `Uniform(0.1, 10)` (two decades of spread) and a
/// dominance margin of `margin` on every diagonal.
///
/// `grid2d_random(17, 17, 1.0, seed)` has n = 289; 33×33 → 1089; 65×65 →
/// 4225: exactly the paper's sizes.
pub fn grid2d_random(nx: usize, ny: usize, margin: f64, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    grid2d_conductance(nx, ny, move |_, _| rng.gen_range(0.1..10.0), margin)
}

/// 9-point 2-D stencil (includes diagonal neighbours at weight `diag_w`).
pub fn grid2d_laplacian_9pt(nx: usize, ny: usize, diag_w: f64) -> Csr {
    assert!(diag_w > 0.0, "diagonal coupling must be positive");
    let n = nx * ny;
    let idx = |x: usize, y: usize| y * nx + x;
    let mut coo = Coo::with_capacity(n, n, 9 * n);
    let mut diag = vec![0.0; n];
    for y in 0..ny {
        for x in 0..nx {
            let u = idx(x, y);
            let couple = |vx: isize, vy: isize, w: f64, diag: &mut [f64], coo: &mut Coo| {
                if vx >= 0 && vy >= 0 && (vx as usize) < nx && (vy as usize) < ny {
                    let v = idx(vx as usize, vy as usize);
                    if v > u {
                        coo.push_sym_trusted(u, v, -w);
                        diag[u] += w;
                        diag[v] += w;
                    }
                }
            };
            let (xi, yi) = (x as isize, y as isize);
            couple(xi + 1, yi, 1.0, &mut diag, &mut coo);
            couple(xi, yi + 1, 1.0, &mut diag, &mut coo);
            couple(xi + 1, yi + 1, diag_w, &mut diag, &mut coo);
            couple(xi - 1, yi + 1, diag_w, &mut diag, &mut coo);
        }
    }
    // Dirichlet-style margin to make it non-singular: pin every diagonal to
    // the full interior stencil weight.
    let full = 2.0 * (1.0 + 1.0) + 4.0 * diag_w;
    for (i, d) in diag.iter().enumerate() {
        coo.push_trusted(i, i, d + (full - d).max(0.0) * 0.5 + 1e-6);
    }
    coo.to_csr()
}

/// 7-point Laplacian on an `nx × ny × nz` grid (Dirichlet; diagonal 6).
pub fn grid3d_laplacian(nx: usize, ny: usize, nz: usize) -> Csr {
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut coo = Coo::with_capacity(n, n, 7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let u = idx(x, y, z);
                coo.push_trusted(u, u, 6.0);
                if x + 1 < nx {
                    coo.push_sym_trusted(u, idx(x + 1, y, z), -1.0);
                }
                if y + 1 < ny {
                    coo.push_sym_trusted(u, idx(x, y + 1, z), -1.0);
                }
                if z + 1 < nz {
                    coo.push_sym_trusted(u, idx(x, y, z + 1), -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

/// Anisotropic 7-point Laplacian on an `nx × ny × nz` grid (Dirichlet):
/// conductance 1 along x, `eps` along y and z, so the diagonal is
/// `2 + 4·eps` everywhere (boundary nodes couple to implicit ghost nodes).
/// Small `eps` stretches the stencil into near-1-D chains — the classic
/// stress case for partition quality and for the supernode panel shapes
/// the blocked substitution kernels rely on.
pub fn grid3d_laplacian_aniso(nx: usize, ny: usize, nz: usize, eps: f64) -> Csr {
    assert!(eps > 0.0, "anisotropy ratio must be positive");
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let diag = 2.0 + 4.0 * eps;
    let mut coo = Coo::with_capacity(n, n, 7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let u = idx(x, y, z);
                coo.push_trusted(u, u, diag);
                if x + 1 < nx {
                    coo.push_sym_trusted(u, idx(x + 1, y, z), -1.0);
                }
                if y + 1 < ny {
                    coo.push_sym_trusted(u, idx(x, y + 1, z), -eps);
                }
                if z + 1 < nz {
                    coo.push_sym_trusted(u, idx(x, y, z + 1), -eps);
                }
            }
        }
    }
    coo.to_csr()
}

/// Random-sparsity symmetric diagonally dominant SPD matrix: `n` vertices,
/// ~`avg_degree` random neighbours each, negative off-diagonals, diagonal =
/// Σ|off-diag| + `margin`.
pub fn random_spd(n: usize, avg_degree: usize, margin: f64, seed: u64) -> Csr {
    assert!(margin > 0.0, "margin must be positive for definiteness");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(n, n, n * (avg_degree + 1));
    let mut diag = vec![margin; n];
    for u in 0..n {
        for _ in 0..avg_degree.div_ceil(2) {
            let v = rng.gen_range(0..n);
            if v == u {
                continue;
            }
            let w: f64 = rng.gen_range(0.1..2.0);
            coo.push_sym_trusted(u, v, -w);
            diag[u] += w;
            diag[v] += w;
        }
    }
    for (i, d) in diag.iter().enumerate() {
        coo.push_trusted(i, i, *d);
    }
    coo.to_csr()
}

/// Tridiagonal SPD matrix with constant diagonal `d` and off-diagonal `e`
/// (requires `|d| > 2|e|` for strict dominance; asserted).
pub fn tridiagonal(n: usize, d: f64, e: f64) -> Csr {
    assert!(d.abs() > 2.0 * e.abs(), "need |d| > 2|e| for SPD");
    let mut coo = Coo::with_capacity(n, n, 3 * n);
    for i in 0..n {
        coo.push_trusted(i, i, d);
    }
    for i in 0..n.saturating_sub(1) {
        coo.push_sym_trusted(i, i + 1, e);
    }
    coo.to_csr()
}

/// The 4×4 example system (3.2) of the paper, with its right-hand side.
///
/// ```text
/// ⎡ 5 −1 −1  0⎤       ⎡1⎤
/// ⎢−1  6 −2 −1⎥   b = ⎢2⎥
/// ⎢−1 −2  7 −2⎥       ⎢3⎥
/// ⎣ 0 −1 −2  8⎦       ⎣4⎦
/// ```
pub fn paper_example_system() -> (Csr, Vec<f64>) {
    let mut coo = Coo::new(4, 4);
    for (i, d) in [5.0, 6.0, 7.0, 8.0].iter().enumerate() {
        coo.push_trusted(i, i, *d);
    }
    coo.push_sym_trusted(0, 1, -1.0);
    coo.push_sym_trusted(0, 2, -1.0);
    coo.push_sym_trusted(1, 2, -2.0);
    coo.push_sym_trusted(1, 3, -1.0);
    coo.push_sym_trusted(2, 3, -2.0);
    (coo.to_csr(), vec![1.0, 2.0, 3.0, 4.0])
}

/// Random dense RHS with entries in `[-1, 1]`.
pub fn random_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Manufactured problem: pick a random exact solution `x*`, return
/// `(b = A x*, x*)` so solvers can be checked against a known answer.
pub fn manufactured_rhs(a: &Csr, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let xe = random_rhs(a.n_cols(), seed);
    (a.matvec(&xe), xe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::{Definiteness, DenseLdlt};

    #[test]
    fn grid2d_laplacian_shape_and_spd() {
        let a = grid2d_laplacian(4, 3);
        assert_eq!(a.n_rows(), 12);
        assert!(a.is_symmetric(0.0));
        assert!(a.is_diag_dominant());
        // Interior node has diagonal 4 and four −1 neighbours.
        assert_eq!(a.get(5, 5), 4.0);
        assert_eq!(a.get(5, 4), -1.0);
        assert_eq!(a.get(5, 6), -1.0);
        assert_eq!(a.get(5, 1), -1.0);
        assert_eq!(a.get(5, 9), -1.0);
        // Corner node also has diagonal 4 (Dirichlet ghost margin).
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(
            DenseLdlt::classify_csr(&a, 1e-10),
            Definiteness::PositiveDefinite
        );
    }

    #[test]
    fn grid_row_sums_reflect_dirichlet_boundary() {
        let a = grid2d_laplacian(3, 3);
        // Interior node row sums to 0; boundary rows are strictly dominant.
        let row_sum = |r: usize| a.row(r).map(|(_, v)| v).sum::<f64>();
        assert!((row_sum(4) - 0.0).abs() < 1e-14);
        assert!(row_sum(0) > 0.0);
    }

    #[test]
    fn random_grid_is_reproducible_and_spd() {
        let a1 = grid2d_random(5, 5, 1.0, 42);
        let a2 = grid2d_random(5, 5, 1.0, 42);
        assert_eq!(a1, a2);
        let a3 = grid2d_random(5, 5, 1.0, 43);
        assert_ne!(a1, a3);
        assert!(a1.is_symmetric(1e-12));
        assert!(a1.is_diag_dominant());
    }

    #[test]
    fn paper_sizes() {
        assert_eq!(grid2d_random(17, 17, 1.0, 1).n_rows(), 289);
        // 33×33 = 1089 and 65×65 = 4225 checked cheaply by arithmetic here;
        // the repro harness builds them for real.
        assert_eq!(33 * 33, 1089);
        assert_eq!(65 * 65, 4225);
    }

    #[test]
    fn random_spd_is_spd() {
        let a = random_spd(40, 4, 0.5, 7);
        assert!(a.is_symmetric(1e-12));
        assert!(a.is_diag_dominant());
        assert_eq!(
            DenseLdlt::classify_csr(&a, 1e-10),
            Definiteness::PositiveDefinite
        );
    }

    #[test]
    fn grid3d_interior_diag() {
        let a = grid3d_laplacian(3, 3, 3);
        assert_eq!(a.n_rows(), 27);
        // Center node (1,1,1) = index 13 has six −1 neighbours.
        let offdiag: f64 = a.row(13).filter(|&(c, _)| c != 13).map(|(_, v)| v).sum();
        assert_eq!(offdiag, -6.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn grid3d_row_sums_and_spectrum() {
        // Row sums: an interior row of the 7-point Dirichlet Laplacian
        // sums to 0; each missing neighbour (one per adjacent face of the
        // boundary) leaves +1 behind. Total row sum = Σ missing edges
        // = 2(ny·nz + nx·nz + nx·ny).
        let (nx, ny, nz) = (5usize, 4, 3);
        let a = grid3d_laplacian(nx, ny, nz);
        let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
        let mut total = 0.0;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let faces = usize::from(x == 0)
                        + usize::from(x == nx - 1)
                        + usize::from(y == 0)
                        + usize::from(y == ny - 1)
                        + usize::from(z == 0)
                        + usize::from(z == nz - 1);
                    let sum: f64 = a.row(idx(x, y, z)).map(|(_, v)| v).sum();
                    assert_eq!(sum, faces as f64, "row ({x},{y},{z})");
                    total += sum;
                }
            }
        }
        assert_eq!(total, (2 * (ny * nz + nx * nz + nx * ny)) as f64);
        // nnz: 7 per vertex minus the two halves of every missing edge.
        let n = nx * ny * nz;
        assert_eq!(a.nnz(), 7 * n - 2 * (ny * nz + nx * nz + nx * ny));

        // Spectrum: the eigenvectors are separable sine products with
        // λ_{pqr} = 6 − 2cos(pπ/(nx+1)) − 2cos(qπ/(ny+1)) − 2cos(rπ/(nz+1)).
        // Check A v = λ v for the extreme pairs (smallest and largest).
        use std::f64::consts::PI;
        for (p, q, r) in [(1usize, 1usize, 1usize), (nx, ny, nz)] {
            let lambda = 6.0
                - 2.0 * (p as f64 * PI / (nx as f64 + 1.0)).cos()
                - 2.0 * (q as f64 * PI / (ny as f64 + 1.0)).cos()
                - 2.0 * (r as f64 * PI / (nz as f64 + 1.0)).cos();
            let mut v = vec![0.0; n];
            for z in 0..nz {
                for y in 0..ny {
                    for x in 0..nx {
                        v[idx(x, y, z)] = ((x + 1) as f64 * p as f64 * PI / (nx as f64 + 1.0))
                            .sin()
                            * ((y + 1) as f64 * q as f64 * PI / (ny as f64 + 1.0)).sin()
                            * ((z + 1) as f64 * r as f64 * PI / (nz as f64 + 1.0)).sin();
                    }
                }
            }
            let av = a.matvec(&v);
            for (i, (u, w)) in av.iter().zip(&v).enumerate() {
                assert!(
                    (u - lambda * w).abs() < 1e-12,
                    "eigenpair ({p},{q},{r}) fails at {i}: {u} vs λ·v = {}",
                    lambda * w
                );
            }
            assert!(lambda > 0.0, "Dirichlet Laplacian is positive definite");
        }
    }

    #[test]
    fn grid3d_aniso_row_sums_and_spd() {
        let (nx, ny, nz, eps) = (4usize, 3, 3, 0.05);
        let a = grid3d_laplacian_aniso(nx, ny, nz, eps);
        assert_eq!(a.n_rows(), nx * ny * nz);
        assert!(a.is_symmetric(0.0));
        assert!(a.is_diag_dominant());
        // Each row sums to the ghost-node leakage: 1 per missing x-face,
        // eps per missing y/z-face; interior rows sum to 0.
        let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let leak = (usize::from(x == 0) + usize::from(x == nx - 1)) as f64
                        + (usize::from(y == 0)
                            + usize::from(y == ny - 1)
                            + usize::from(z == 0)
                            + usize::from(z == nz - 1)) as f64
                            * eps;
                    let sum: f64 = a.row(idx(x, y, z)).map(|(_, v)| v).sum();
                    assert!((sum - leak).abs() < 1e-14, "row ({x},{y},{z}): {sum}");
                }
            }
        }
        assert_eq!(
            DenseLdlt::classify_csr(&a, 1e-10),
            Definiteness::PositiveDefinite
        );
    }

    #[test]
    fn grid3d_aniso_at_unit_eps_is_isotropic() {
        // eps = 1 must reproduce the plain 7-point Dirichlet Laplacian.
        assert_eq!(
            grid3d_laplacian_aniso(3, 4, 2, 1.0),
            grid3d_laplacian(3, 4, 2)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn grid3d_aniso_rejects_nonpositive_eps() {
        let _ = grid3d_laplacian_aniso(2, 2, 2, 0.0);
    }

    #[test]
    fn nine_point_is_spd() {
        let a = grid2d_laplacian_9pt(5, 4, 0.5);
        assert!(a.is_symmetric(1e-12));
        assert_eq!(
            DenseLdlt::classify_csr(&a, 1e-10),
            Definiteness::PositiveDefinite
        );
    }

    #[test]
    fn tridiagonal_entries() {
        let a = tridiagonal(5, 4.0, -1.0);
        assert_eq!(a.get(2, 2), 4.0);
        assert_eq!(a.get(2, 3), -1.0);
        assert_eq!(a.get(2, 1), -1.0);
        assert_eq!(a.nnz(), 5 + 2 * 4);
    }

    #[test]
    #[should_panic(expected = "SPD")]
    fn tridiagonal_rejects_non_dominant() {
        let _ = tridiagonal(3, 1.0, 1.0);
    }

    #[test]
    fn paper_example_matches_text() {
        let (a, b) = paper_example_system();
        assert_eq!(b, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.get(1, 1), 6.0);
        assert_eq!(a.get(1, 2), -2.0);
        assert_eq!(a.get(0, 3), 0.0);
        assert!(a.is_symmetric(0.0));
        assert!(a.is_diag_dominant());
    }

    #[test]
    fn manufactured_rhs_consistent() {
        let a = grid2d_laplacian(4, 4);
        let (b, xe) = manufactured_rhs(&a, 3);
        let ax = a.matvec(&xe);
        for (u, v) in ax.iter().zip(&b) {
            assert_eq!(u, v);
        }
    }

    #[test]
    fn random_rhs_seeded() {
        assert_eq!(random_rhs(8, 5), random_rhs(8, 5));
        assert_ne!(random_rhs(8, 5), random_rhs(8, 6));
    }
}

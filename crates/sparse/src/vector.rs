//! Dense vector kernels: norms, dot products, axpy, error metrics.
//!
//! These are the hot inner loops of every iterative solver in the workspace,
//! so they are kept simple, allocation-free and easily auto-vectorizable.

/// Euclidean (ℓ₂) norm of `x`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `‖x‖₂`, saturated to 1 when zero — the scale of a relative residual
/// `‖b − A·x‖ / ‖b‖` (keeps the ratio defined for b = 0, where the
/// absolute and relative residuals coincide).
pub fn norm2_or_one(x: &[f64]) -> f64 {
    let norm = norm2(x);
    if norm > 0.0 {
        norm
    } else {
        1.0
    }
}

/// Infinity (max-abs) norm of `x`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// Dot product `xᵀ y`.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y ← y + alpha·x`.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y ← alpha·y + x` (scale-then-add, the CG "beta" update).
#[inline]
pub fn aypx(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "aypx: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * *yi + xi;
    }
}

/// `out ← x − y`, reusing `out`'s allocation.
#[inline]
pub fn sub_into(x: &[f64], y: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub_into: length mismatch");
    assert_eq!(x.len(), out.len(), "sub_into: output length mismatch");
    for ((o, a), b) in out.iter_mut().zip(x).zip(y) {
        *o = a - b;
    }
}

/// Root-mean-square difference `‖x − y‖₂ / √n` — the paper's "RMS error"
/// metric (Figs. 9, 12, 14).
///
/// Returns 0 for empty vectors.
#[inline]
pub fn rms_error(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "rms_error: length mismatch");
    if x.is_empty() {
        return 0.0;
    }
    let ss: f64 = x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum();
    (ss / x.len() as f64).sqrt()
}

/// Relative ℓ₂ error `‖x − y‖ / max(‖y‖, ε)`.
#[inline]
pub fn rel_error(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "rel_error: length mismatch");
    let ss: f64 = x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum();
    ss.sqrt() / norm2(y).max(f64::MIN_POSITIVE)
}

/// Scale `x` in place by `alpha`.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    for v in x {
        *v *= alpha;
    }
}

/// Fill `x` with `value`.
#[inline]
pub fn fill(x: &mut [f64], value: f64) {
    for v in x {
        *v = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        let x = [3.0, 4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn dot_and_axpy() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
        aypx(0.5, &x, &mut y);
        assert_eq!(y, [4.0, 6.5, 9.0]);
    }

    #[test]
    fn rms_of_identical_vectors_is_zero() {
        let x = [1.0, -2.0, 3.5];
        assert_eq!(rms_error(&x, &x), 0.0);
        assert_eq!(rms_error(&[], &[]), 0.0);
    }

    #[test]
    fn rms_matches_hand_computation() {
        // differences: 1, -1 → mean square = 1 → rms = 1
        assert!((rms_error(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn sub_into_works() {
        let mut out = [0.0; 3];
        sub_into(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0], &mut out);
        assert_eq!(out, [4.0, 3.0, 2.0]);
    }

    #[test]
    fn rel_error_scale_free() {
        let y = [2.0, 0.0];
        let x = [2.2, 0.0];
        assert!((rel_error(&x, &y) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn scale_and_fill() {
        let mut x = [1.0, 2.0];
        scale(&mut x, 3.0);
        assert_eq!(x, [3.0, 6.0]);
        fill(&mut x, 0.0);
        assert_eq!(x, [0.0, 0.0]);
    }
}

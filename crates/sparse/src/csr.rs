//! Compressed sparse row (CSR) matrix.
//!
//! The computational sparse format of the workspace. For the symmetric
//! matrices that dominate this reproduction, CSR and CSC coincide, which the
//! sparse Cholesky in [`crate::sparse_cholesky`] exploits.

use crate::coo::Coo;
use crate::dense::Dense;
use crate::error::{Error, Result};
use crate::ordering::Permutation;

/// An immutable CSR sparse matrix.
///
/// Invariants (enforced by construction):
/// * `row_ptr.len() == n_rows + 1`, `row_ptr[0] == 0`, non-decreasing;
/// * column indices within each row are strictly increasing and `< n_cols`;
/// * `col_idx.len() == values.len() == row_ptr[n_rows]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csr {
    /// Build from raw CSR arrays.
    ///
    /// # Panics
    /// Panics (debug-style validation, always on) if the invariants above do
    /// not hold; this constructor is meant for trusted internal callers such
    /// as [`Coo::to_csr`].
    pub fn from_raw_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), n_rows + 1, "row_ptr length");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(row_ptr.last().copied(), Some(col_idx.len()), "row_ptr end");
        assert_eq!(col_idx.len(), values.len(), "col/val length");
        for r in 0..n_rows {
            assert!(row_ptr[r] <= row_ptr[r + 1], "row_ptr monotone");
            let cols = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "columns strictly increasing in row {r}");
            }
            if let Some(&last) = cols.last() {
                assert!(last < n_cols, "column index out of bounds in row {r}");
            }
        }
        Self {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Zero matrix with no stored entries.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            row_ptr: vec![0; n_rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Raw row pointer array.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Raw values array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (pattern is fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Iterate over `(col, value)` of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Value at `(r, c)`; zero if not stored. Binary search within the row.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        match self.col_idx[lo..hi].binary_search(&c) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// `y ← A x` into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "matvec: x length");
        assert_eq!(y.len(), self.n_rows, "matvec: y length");
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
    }

    /// `A x` as a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `r ← b − A x` into a caller-provided buffer — the residual SpMV
    /// kernel, fused so no intermediate `A x` vector is materialized (the
    /// allocation-free primitive behind reference-free residual
    /// termination).
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols` or `b`/`r` lengths differ from
    /// `n_rows`.
    // lint: hot-path
    pub fn residual_into(&self, x: &[f64], b: &[f64], r: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "residual: x length");
        assert_eq!(b.len(), self.n_rows, "residual: b length");
        assert_eq!(r.len(), self.n_rows, "residual: r length");
        for (row, rr) in r.iter_mut().enumerate() {
            let lo = self.row_ptr[row];
            let hi = self.row_ptr[row + 1];
            let mut acc = b[row];
            for k in lo..hi {
                acc -= self.values[k] * x[self.col_idx[k]];
            }
            *rr = acc;
        }
    }

    /// ‖b − A x‖₂, computed row-at-a-time without allocating.
    // lint: hot-path
    pub fn residual_norm(&self, x: &[f64], b: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_cols, "residual: x length");
        assert_eq!(b.len(), self.n_rows, "residual: b length");
        let mut sum_sq = 0.0;
        for (row, &br) in b.iter().enumerate() {
            let lo = self.row_ptr[row];
            let hi = self.row_ptr[row + 1];
            let mut acc = br;
            for k in lo..hi {
                acc -= self.values[k] * x[self.col_idx[k]];
            }
            sum_sq += acc * acc;
        }
        sum_sq.sqrt()
    }

    /// The diagonal as a dense vector (zeros where unstored).
    pub fn diag(&self) -> Vec<f64> {
        let n = self.n_rows.min(self.n_cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Structural + numerical symmetry check with tolerance `tol`
    /// (relative to the larger of the two mirrored magnitudes).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.symmetry_violation(tol).is_none()
    }

    /// First `(row, col)` where symmetry fails, if any.
    pub fn symmetry_violation(&self, tol: f64) -> Option<(usize, usize)> {
        if self.n_rows != self.n_cols {
            return Some((self.n_rows, self.n_cols));
        }
        for r in 0..self.n_rows {
            for (c, v) in self.row(r) {
                let vt = self.get(c, r);
                let scale = v.abs().max(vt.abs()).max(1.0);
                if (v - vt).abs() > tol * scale {
                    return Some((r, c));
                }
            }
        }
        None
    }

    /// Validate symmetry, returning `Err` on the first violation.
    pub fn require_symmetric(&self, tol: f64) -> Result<()> {
        match self.symmetry_violation(tol) {
            None => Ok(()),
            Some((row, col)) => Err(Error::NotSymmetric { row, col }),
        }
    }

    /// Weak row diagonal dominance: `|a_ii| ≥ Σ_{j≠i} |a_ij|` for all rows,
    /// with at least one strict inequality (sufficient for SPD when the
    /// diagonal is positive and the matrix symmetric & irreducible).
    pub fn is_diag_dominant(&self) -> bool {
        let mut any_strict = false;
        for r in 0..self.n_rows {
            let mut off = 0.0;
            let mut diag = 0.0;
            for (c, v) in self.row(r) {
                if c == r {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            if diag < off - 1e-14 * diag.max(off).max(1.0) {
                return false;
            }
            if diag > off + 1e-14 * diag.max(off).max(1.0) {
                any_strict = true;
            }
        }
        any_strict || self.n_rows == 0
    }

    /// Dense copy.
    pub fn to_dense(&self) -> Dense {
        let mut d = Dense::zeros(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            for (c, v) in self.row(r) {
                *d.get_mut(r, c) = v;
            }
        }
        d
    }

    /// COO copy (for re-assembly).
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::with_capacity(self.n_rows, self.n_cols, self.nnz());
        for r in 0..self.n_rows {
            for (c, v) in self.row(r) {
                coo.push_trusted(r, c, v);
            }
        }
        coo
    }

    /// Transpose (also converts CSR↔CSC interpretation).
    pub fn transpose(&self) -> Csr {
        let mut col_counts = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            col_counts[c + 1] += 1;
        }
        for i in 0..self.n_cols {
            col_counts[i + 1] += col_counts[i];
        }
        let mut next = col_counts.clone();
        let mut rows = vec![0usize; self.nnz()];
        let mut vals = vec![0f64; self.nnz()];
        for r in 0..self.n_rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let slot = next[c];
                rows[slot] = r;
                vals[slot] = self.values[k];
                next[c] += 1;
            }
        }
        Csr::from_raw_parts(self.n_cols, self.n_rows, col_counts, rows, vals)
    }

    /// Principal submatrix on `keep` (indices must be sorted, unique, valid).
    /// Returns the submatrix in the order given by `keep`.
    pub fn principal_submatrix(&self, keep: &[usize]) -> Csr {
        debug_assert!(keep.windows(2).all(|w| w[0] < w[1]), "keep must be sorted");
        let mut inv = vec![usize::MAX; self.n_cols];
        for (new, &old) in keep.iter().enumerate() {
            inv[old] = new;
        }
        let mut coo = Coo::with_capacity(keep.len(), keep.len(), self.nnz());
        for (new_r, &old_r) in keep.iter().enumerate() {
            for (c, v) in self.row(old_r) {
                let new_c = inv[c];
                if new_c != usize::MAX {
                    coo.push_trusted(new_r, new_c, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Symmetric permutation `P A Pᵀ`: entry `(i, j)` of the result equals
    /// `A(p(i), p(j))` where `p = perm.new_to_old`.
    pub fn permute_sym(&self, perm: &Permutation) -> Csr {
        assert_eq!(self.n_rows, self.n_cols, "permute_sym: square only");
        assert_eq!(perm.len(), self.n_rows, "permute_sym: size");
        let old_to_new = perm.inverse();
        let mut coo = Coo::with_capacity(self.n_rows, self.n_cols, self.nnz());
        for r in 0..self.n_rows {
            let nr = old_to_new.new_to_old()[r];
            for (c, v) in self.row(r) {
                let nc = old_to_new.new_to_old()[c];
                coo.push_trusted(nr, nc, v);
            }
        }
        coo.to_csr()
    }

    /// A copy with `delta[i]` added to diagonal entry `i` (creating the entry
    /// if absent). Used to build the DTM local matrices `A + Z⁻¹`.
    pub fn add_to_diagonal(&self, delta: &[f64]) -> Csr {
        assert_eq!(delta.len(), self.n_rows.min(self.n_cols), "delta length");
        let mut coo = self.to_coo();
        for (i, &d) in delta.iter().enumerate() {
            if d != 0.0 {
                coo.push_trusted(i, i, d);
            }
        }
        coo.to_csr()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum |value|.
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_matrix() -> Csr {
        // System (3.2) of the paper.
        let mut coo = Coo::new(4, 4);
        for (i, d) in [5.0, 6.0, 7.0, 8.0].iter().enumerate() {
            coo.push(i, i, *d).unwrap();
        }
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.push_sym(0, 2, -1.0).unwrap();
        coo.push_sym(1, 2, -2.0).unwrap();
        coo.push_sym(1, 3, -1.0).unwrap();
        coo.push_sym(2, 3, -2.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn matvec_matches_dense() {
        let a = paper_matrix();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = a.matvec(&x);
        let d = a.to_dense();
        let yd = d.matvec(&x);
        for (a, b) in y.iter().zip(&yd) {
            assert!((a - b).abs() < 1e-14);
        }
        // Hand check of the first row: 5·1 −1·2 −1·3 = 0
        assert!((y[0] - 0.0).abs() < 1e-14);
    }

    #[test]
    fn symmetry_and_dominance() {
        let a = paper_matrix();
        assert!(a.is_symmetric(1e-14));
        assert!(a.is_diag_dominant());
        assert!(a.require_symmetric(0.0).is_ok());
    }

    #[test]
    fn asymmetric_detected() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 2.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        let a = coo.to_csr();
        assert!(!a.is_symmetric(1e-12));
        assert!(matches!(
            a.require_symmetric(1e-12),
            Err(Error::NotSymmetric { .. })
        ));
    }

    #[test]
    fn identity_matvec_is_noop() {
        let i = Csr::identity(5);
        let x = vec![1.0, -2.0, 3.0, 0.5, 9.0];
        assert_eq!(i.matvec(&x), x);
        assert_eq!(i.nnz(), 5);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = paper_matrix();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
        // symmetric matrix: transpose equals itself
        assert_eq!(a, a.transpose());
    }

    #[test]
    fn transpose_rectangular() {
        let mut coo = Coo::new(2, 3);
        coo.push(0, 2, 1.0).unwrap();
        coo.push(1, 0, 2.0).unwrap();
        let a = coo.to_csr();
        let t = a.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.get(2, 0), 1.0);
        assert_eq!(t.get(0, 1), 2.0);
    }

    #[test]
    fn principal_submatrix_extracts() {
        let a = paper_matrix();
        let s = a.principal_submatrix(&[1, 2]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.get(0, 0), 6.0);
        assert_eq!(s.get(1, 1), 7.0);
        assert_eq!(s.get(0, 1), -2.0);
        assert_eq!(s.get(1, 0), -2.0);
    }

    #[test]
    fn add_to_diagonal_creates_entries() {
        let a = Csr::zeros(3, 3);
        let b = a.add_to_diagonal(&[1.0, 0.0, 3.0]);
        assert_eq!(b.get(0, 0), 1.0);
        assert_eq!(b.get(1, 1), 0.0);
        assert_eq!(b.get(2, 2), 3.0);
        assert_eq!(b.nnz(), 2);
    }

    #[test]
    fn permute_sym_diagonal_follows() {
        let a = paper_matrix();
        let p = Permutation::from_new_to_old(vec![3, 2, 1, 0]).unwrap();
        let b = a.permute_sym(&p);
        // Entry (i,j) of B equals A(p(i), p(j)).
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(b.get(i, j), a.get(3 - i, 3 - j), "({i},{j})");
            }
        }
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = Csr::identity(3);
        let b = vec![1.0, 2.0, 3.0];
        assert!(a.residual_norm(&b, &b) < 1e-15);
    }

    #[test]
    fn get_missing_is_zero() {
        let a = paper_matrix();
        assert_eq!(a.get(0, 3), 0.0);
        assert_eq!(a.get(3, 0), 0.0);
    }

    #[test]
    fn norms() {
        let i = Csr::identity(4);
        assert!((i.frobenius_norm() - 2.0).abs() < 1e-15);
        assert_eq!(i.max_abs(), 1.0);
    }
}

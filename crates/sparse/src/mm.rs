//! Matrix Market (`.mtx`) I/O for symmetric real coordinate matrices.
//!
//! Enough of the format to exchange test systems with other tools:
//! `matrix coordinate real {general|symmetric}` headers, `%` comments,
//! 1-based indices.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::{Error, Result};
use std::io::{BufRead, Write};

/// Parse a Matrix Market stream into CSR.
///
/// Symmetric files are expanded to both triangles.
pub fn read_matrix<R: BufRead>(reader: R) -> Result<Csr> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| Error::Parse("empty Matrix Market stream".into()))?
        .map_err(|e| Error::Parse(e.to_string()))?;
    let h: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(Error::Parse(format!("bad header: {header}")));
    }
    if h[2] != "coordinate" || h[3] != "real" {
        return Err(Error::Parse(format!(
            "only `coordinate real` supported, got: {header}"
        )));
    }
    let symmetric = match h[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(Error::Parse(format!("unsupported symmetry kind: {other}"))),
    };

    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(|e| Error::Parse(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| Error::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| Error::Parse(format!("bad size: {t}")))
        })
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(Error::Parse(format!("bad size line: {size_line}")));
    }
    let (nr, nc, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::with_capacity(nr, nc, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(|e| Error::Parse(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| Error::Parse("truncated entry".into()))?
            .parse()
            .map_err(|_| Error::Parse(format!("bad row in: {t}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| Error::Parse("truncated entry".into()))?
            .parse()
            .map_err(|_| Error::Parse(format!("bad col in: {t}")))?;
        let v: f64 = it
            .next()
            .ok_or_else(|| Error::Parse("truncated entry".into()))?
            .parse()
            .map_err(|_| Error::Parse(format!("bad value in: {t}")))?;
        if r == 0 || c == 0 {
            return Err(Error::Parse("Matrix Market indices are 1-based".into()));
        }
        if symmetric {
            coo.push_sym(r - 1, c - 1, v)?;
        } else {
            coo.push(r - 1, c - 1, v)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(Error::Parse(format!(
            "expected {nnz} entries, found {seen}"
        )));
    }
    Ok(coo.to_csr())
}

/// Write a CSR matrix in `coordinate real` format. If `symmetric` is true
/// only the lower triangle is emitted (the matrix must actually be
/// symmetric; unchecked beyond a debug assertion).
pub fn write_matrix<W: Write>(w: &mut W, a: &Csr, symmetric: bool) -> std::io::Result<()> {
    debug_assert!(!symmetric || a.is_symmetric(1e-12));
    let kind = if symmetric { "symmetric" } else { "general" };
    writeln!(w, "%%MatrixMarket matrix coordinate real {kind}")?;
    let entries: Vec<(usize, usize, f64)> = (0..a.n_rows())
        .flat_map(|r| {
            a.row(r)
                .filter(move |&(c, _)| !symmetric || c <= r)
                .map(move |(c, v)| (r, c, v))
        })
        .collect();
    writeln!(w, "{} {} {}", a.n_rows(), a.n_cols(), entries.len())?;
    for (r, c, v) in entries {
        writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
    }
    Ok(())
}

/// Parse a dense vector from whitespace/newline-separated numbers.
pub fn read_vector<R: BufRead>(reader: R) -> Result<Vec<f64>> {
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|e| Error::Parse(e.to_string()))?;
        for tok in line.split_whitespace() {
            if tok.starts_with('%') {
                break;
            }
            out.push(
                tok.parse()
                    .map_err(|_| Error::Parse(format!("bad number: {tok}")))?,
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use std::io::Cursor;

    #[test]
    fn roundtrip_general() {
        let a = generators::grid2d_random(4, 4, 1.0, 3);
        let mut buf = Vec::new();
        write_matrix(&mut buf, &a, false).unwrap();
        let b = read_matrix(Cursor::new(buf)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_symmetric() {
        let (a, _) = generators::paper_example_system();
        let mut buf = Vec::new();
        write_matrix(&mut buf, &a, true).unwrap();
        let b = read_matrix(Cursor::new(buf)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    \n\
                    2 2 2\n\
                    1 1 3.0\n\
                    % midway comment\n\
                    2 2 4.0\n";
        let a = read_matrix(Cursor::new(text)).unwrap();
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 1), 4.0);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(read_matrix(Cursor::new("hello\n1 1 0\n")).is_err());
        assert!(read_matrix(Cursor::new(
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 2.0\n"
        ))
        .is_err());
    }

    #[test]
    fn zero_based_index_rejected() {
        let text = "%%MatrixMarket matrix coordinate real general\n1 1 1\n0 1 2.0\n";
        assert!(read_matrix(Cursor::new(text)).is_err());
    }

    #[test]
    fn entry_count_mismatch_rejected() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix(Cursor::new(text)).is_err());
    }

    #[test]
    fn vector_parse() {
        let v = read_vector(Cursor::new("1.0 2.0\n3.0\n")).unwrap();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }
}

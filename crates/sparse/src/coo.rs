//! Coordinate-format (COO) sparse matrix builder.
//!
//! COO is the mutable "assembly" format: entries are appended in any order
//! (duplicates allowed — they sum), then compressed into [`crate::Csr`] for
//! computation. This mirrors how finite-difference / circuit matrices are
//! assembled element by element.

use crate::csr::Csr;
use crate::error::{Error, Result};

/// A sparse matrix under assembly, stored as `(row, col, value)` triplets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Coo {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Coo {
    /// New empty `rows × cols` matrix.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// New empty matrix with room for `cap` triplets.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored triplets (duplicates counted separately).
    pub fn n_triplets(&self) -> usize {
        self.entries.len()
    }

    /// The raw triplets.
    pub fn triplets(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Append `value` at `(row, col)`. Duplicates accumulate on compression.
    ///
    /// # Errors
    /// Returns [`Error::IndexOutOfBounds`] for out-of-range indices.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.n_rows {
            return Err(Error::IndexOutOfBounds {
                context: "Coo::push row",
                index: row,
                bound: self.n_rows,
            });
        }
        if col >= self.n_cols {
            return Err(Error::IndexOutOfBounds {
                context: "Coo::push col",
                index: col,
                bound: self.n_cols,
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Append both `(row, col, v)` and `(col, row, v)`; a convenience for
    /// assembling symmetric matrices from their upper or lower triangle.
    /// Diagonal entries are pushed once.
    pub fn push_sym(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        self.push(row, col, value)?;
        if row != col {
            self.push(col, row, value)?;
        }
        Ok(())
    }

    /// [`push`](Self::push) for crate-internal assembly whose indices are
    /// in range *by construction* (grid stencils, permutations of an
    /// existing matrix). The bounds invariant is checked in debug builds
    /// only, so provably-unreachable error paths don't litter the
    /// generators with panic-capable `expect`s.
    pub(crate) fn push_trusted(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(
            row < self.n_rows,
            "push_trusted row {row} >= {}",
            self.n_rows
        );
        debug_assert!(
            col < self.n_cols,
            "push_trusted col {col} >= {}",
            self.n_cols
        );
        self.entries.push((row, col, value));
    }

    /// Symmetric [`push_trusted`](Self::push_trusted).
    pub(crate) fn push_sym_trusted(&mut self, row: usize, col: usize, value: f64) {
        self.push_trusted(row, col, value);
        if row != col {
            self.push_trusted(col, row, value);
        }
    }

    /// Compress to CSR, summing duplicate entries and dropping explicit zeros
    /// produced by cancellation only when `drop_tol` exceeds their magnitude.
    ///
    /// Entries with `|v| <= drop_tol` after summation are discarded
    /// (`drop_tol = 0.0` keeps explicit zeros out but preserves everything
    /// else exactly).
    pub fn to_csr_with_tol(&self, drop_tol: f64) -> Csr {
        // Counting sort by row, then per-row sort by column and merge
        // duplicates: O(nnz log nnz_row) without hashing.
        let mut row_counts = vec![0usize; self.n_rows + 1];
        for &(r, _, _) in &self.entries {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.n_rows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut next = row_counts.clone();
        let mut cols = vec![0usize; self.entries.len()];
        let mut vals = vec![0f64; self.entries.len()];
        for &(r, c, v) in &self.entries {
            let slot = next[r];
            cols[slot] = c;
            vals[slot] = v;
            next[r] += 1;
        }

        let mut out_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut out_cols = Vec::with_capacity(self.entries.len());
        let mut out_vals = Vec::with_capacity(self.entries.len());
        out_ptr.push(0);

        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.n_rows {
            let (lo, hi) = (row_counts[r], row_counts[r + 1]);
            scratch.clear();
            scratch.extend(
                cols[lo..hi]
                    .iter()
                    .copied()
                    .zip(vals[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut sum = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    sum += scratch[i].1;
                    i += 1;
                }
                if sum.abs() > drop_tol || (drop_tol == 0.0 && sum != 0.0) {
                    out_cols.push(c);
                    out_vals.push(sum);
                }
            }
            out_ptr.push(out_cols.len());
        }

        Csr::from_raw_parts(self.n_rows, self.n_cols, out_ptr, out_cols, out_vals)
    }

    /// Compress to CSR, summing duplicates and dropping exact zeros.
    pub fn to_csr(&self) -> Csr {
        self.to_csr_with_tol(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_compress() {
        let mut coo = Coo::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.n_rows(), 2);
        assert_eq!(csr.n_cols(), 3);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(0, 2), 2.0);
        assert_eq!(csr.get(1, 1), 3.0);
        assert_eq!(csr.get(1, 0), 0.0);
    }

    #[test]
    fn duplicates_sum() {
        let mut coo = Coo::new(1, 1);
        coo.push(0, 0, 1.5).unwrap();
        coo.push(0, 0, 2.5).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), 4.0);
        assert_eq!(csr.nnz(), 1);
    }

    #[test]
    fn exact_cancellation_is_dropped() {
        let mut coo = Coo::new(1, 2);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(0, 1, -2.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn drop_tolerance() {
        let mut coo = Coo::new(1, 2);
        coo.push(0, 0, 1e-14).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        let csr = coo.to_csr_with_tol(1e-12);
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 1), 1.0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut coo = Coo::new(2, 2);
        assert!(matches!(
            coo.push(2, 0, 1.0),
            Err(Error::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            coo.push(0, 5, 1.0),
            Err(Error::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn push_sym_mirrors_offdiagonal() {
        let mut coo = Coo::new(3, 3);
        coo.push_sym(0, 1, -2.0).unwrap();
        coo.push_sym(2, 2, 5.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 1), -2.0);
        assert_eq!(csr.get(1, 0), -2.0);
        assert_eq!(csr.get(2, 2), 5.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn unsorted_input_sorts_columns() {
        let mut coo = Coo::new(1, 4);
        coo.push(0, 3, 3.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        let csr = coo.to_csr();
        let row: Vec<_> = csr.row(0).collect();
        assert_eq!(row, vec![(0, 1.0), (2, 2.0), (3, 3.0)]);
    }
}

//! # dtm-sparse — sparse linear-algebra substrate
//!
//! Foundation crate for the Directed Transmission Method (DTM) reproduction.
//! Everything the paper's solver sits on is implemented here from scratch:
//!
//! * [`Coo`] / [`Csr`] sparse matrix formats with symmetric-matrix helpers,
//! * a column-major [`Dense`] matrix,
//! * dense Cholesky ([`cholesky::DenseCholesky`]) and LDLᵀ,
//! * an up-looking sparse Cholesky with elimination-tree symbolic analysis
//!   ([`sparse_cholesky::SparseCholesky`]),
//! * reverse Cuthill–McKee fill-reducing ordering ([`ordering`]),
//! * the classic sequential iterative solvers used as baselines
//!   (Jacobi, Gauss–Seidel, SOR, Conjugate Gradient in [`solvers`]),
//! * seeded workload generators for every experiment in the paper
//!   ([`generators`]),
//! * Matrix Market I/O ([`mm`]).
//!
//! The crate is deliberately free of `unsafe` and of external linear-algebra
//! dependencies: the goal is a self-contained, auditable substrate.
//!
//! ## Quick example
//!
//! ```
//! use dtm_sparse::{generators, solvers::{cg, IterConfig}};
//!
//! let a = generators::grid2d_laplacian(9, 9);          // 81×81 SPD
//! let b = vec![1.0; a.n_rows()];
//! let res = cg::solve(&a, &b, &IterConfig::default());
//! assert!(res.converged);
//! let r = a.residual_norm(&res.x, &b);
//! assert!(r < 1e-6 * dtm_sparse::vector::norm2(&b));
//! ```

pub mod cholesky;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod generators;
pub mod mm;
pub mod ordering;
pub mod solvers;
pub mod sparse_cholesky;
pub mod vector;

pub use cholesky::{DenseCholesky, DenseLdlt};
pub use coo::Coo;
pub use csr::Csr;
pub use dense::Dense;
pub use error::{Error, Result};
pub use ordering::Permutation;
pub use sparse_cholesky::SparseCholesky;

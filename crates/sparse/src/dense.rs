//! Column-major dense matrix.
//!
//! Local DTM subsystems are small (tens to a few hundred unknowns per
//! processor in the paper's experiments), so a simple dense path is both the
//! reference implementation and frequently the fastest choice; the sparse
//! Cholesky takes over for larger blocks.

use crate::error::{Error, Result};

/// Column-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    n_rows: usize,
    n_cols: usize,
    /// `data[c * n_rows + r]` is entry `(r, c)`.
    data: Vec<f64>,
}

impl Dense {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// Identity of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            *m.get_mut(i, i) = 1.0;
        }
        m
    }

    /// Build from a row-major slice of slices (convenient in tests).
    ///
    /// # Errors
    /// [`Error::DimensionMismatch`] if rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        for r in rows {
            if r.len() != n_cols {
                return Err(Error::DimensionMismatch {
                    context: "Dense::from_rows",
                    expected: n_cols,
                    actual: r.len(),
                });
            }
        }
        let mut m = Self::zeros(n_rows, n_cols);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                *m.get_mut(i, j) = v;
            }
        }
        Ok(m)
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.n_rows && c < self.n_cols);
        self.data[c * self.n_rows + r]
    }

    /// Mutable entry `(r, c)`.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        debug_assert!(r < self.n_rows && c < self.n_cols);
        &mut self.data[c * self.n_rows + r]
    }

    /// Column `c` as a slice (column-major storage makes this free).
    #[inline]
    pub fn col(&self, c: usize) -> &[f64] {
        &self.data[c * self.n_rows..(c + 1) * self.n_rows]
    }

    /// Mutable column `c`.
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        &mut self.data[c * self.n_rows..(c + 1) * self.n_rows]
    }

    /// `y ← A x` (no allocation).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "dense matvec: x length");
        assert_eq!(y.len(), self.n_rows, "dense matvec: y length");
        y.fill(0.0);
        // Column-major: iterate columns outermost for unit-stride access.
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            let col = self.col(c);
            for (yi, &a) in y.iter_mut().zip(col) {
                *yi += a * xc;
            }
        }
    }

    /// `A x` as a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Max-abs difference to another matrix (∞ if shapes differ).
    pub fn max_abs_diff(&self, other: &Dense) -> f64 {
        if self.n_rows != other.n_rows || self.n_cols != other.n_cols {
            return f64::INFINITY;
        }
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Is this matrix symmetric within `tol`?
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        for r in 0..self.n_rows {
            for c in (r + 1)..self.n_cols {
                let (a, b) = (self.get(r, c), self.get(c, r));
                if (a - b).abs() > tol * a.abs().max(b.abs()).max(1.0) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.col(1), &[2.0, 4.0]);
    }

    #[test]
    fn ragged_rejected() {
        let e = Dense::from_rows(&[&[1.0, 2.0], &[3.0]]);
        assert!(matches!(e, Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn matvec() {
        let m = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let y = m.matvec(&[1.0, 1.0]);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn identity_is_symmetric() {
        assert!(Dense::identity(4).is_symmetric(0.0));
        let mut m = Dense::identity(2);
        *m.get_mut(0, 1) = 5.0;
        assert!(!m.is_symmetric(1e-12));
    }

    #[test]
    fn max_abs_diff() {
        let a = Dense::identity(2);
        let mut b = Dense::identity(2);
        *b.get_mut(1, 0) = 0.25;
        assert_eq!(a.max_abs_diff(&b), 0.25);
        assert_eq!(a.max_abs_diff(&Dense::zeros(3, 3)), f64::INFINITY);
    }
}

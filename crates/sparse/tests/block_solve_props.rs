//! Property tests for the cache-blocked substitution kernels: on random
//! SPD systems, a K-column block solve must agree with K independent
//! scalar solves — for the sparse factor (natural and RCM orderings), the
//! dense factor, and the retained column-major reference kernel.

use dtm_sparse::{Coo, Csr, DenseCholesky, SparseCholesky};
use proptest::prelude::*;

/// A random symmetric diagonally-dominant (hence SPD) matrix: `extra`
/// off-diagonal edges laid over a path (so the graph is connected and the
/// bandwidth is nontrivial), diagonal = |row off-diagonal sum| + slack.
fn random_spd(n: usize, edges: &[(usize, usize, f64)]) -> Csr {
    let mut dominance = vec![1.0f64; n];
    let mut coo = Coo::new(n, n);
    let mut seen = std::collections::BTreeSet::new();
    for i in 0..n - 1 {
        seen.insert((i, i + 1));
        coo.push_sym(i, i + 1, -1.0).unwrap();
        dominance[i] += 1.0;
        dominance[i + 1] += 1.0;
    }
    for &(a, b, w) in edges {
        let (r, c) = (a.min(b) % n, a.max(b) % n);
        if r == c || !seen.insert((r, c)) {
            continue;
        }
        coo.push_sym(r, c, w).unwrap();
        dominance[r] += w.abs();
        dominance[c] += w.abs();
    }
    for (i, d) in dominance.iter().enumerate() {
        coo.push(i, i, d + 0.25).unwrap();
    }
    coo.to_csr()
}

/// Deterministic pseudo-random RHS block (column-major, `n * k` values).
fn rhs_block(n: usize, k: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n * k)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// One scalar solve per column, through the same factor.
fn scalar_columns(solve: impl Fn(&mut [f64]), xs: &[f64], n: usize, k: usize) -> Vec<f64> {
    let mut out = xs.to_vec();
    for col in out.chunks_mut(n) {
        solve(col);
    }
    debug_assert_eq!(out.len(), n * k);
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Sparse blocked solve (supernode-panel interleaved kernel) agrees
    /// with K scalar solves to ≤ 1e-12 componentwise, across natural and
    /// RCM orderings and K ∈ {1, 2, 8, 16}.
    #[test]
    fn sparse_blocked_matches_k_scalar_solves(
        n in 4usize..40,
        edges in proptest::collection::vec((0usize..64, 0usize..64, 0.1f64..1.5), 0..80),
        seed in any::<u64>(),
    ) {
        let a = random_spd(n, &edges);
        for factor in [
            SparseCholesky::factor(&a).expect("SPD"),
            SparseCholesky::factor_rcm(&a).expect("SPD"),
        ] {
            for k in [1usize, 2, 8, 16] {
                let xs = rhs_block(n, k, seed);
                let mut blocked = xs.clone();
                factor.solve_block_in_place(&mut blocked, k);
                let scalar = scalar_columns(|col| factor.solve_in_place(col), &xs, n, k);
                for (i, (u, v)) in blocked.iter().zip(&scalar).enumerate() {
                    prop_assert!(
                        (u - v).abs() <= 1e-12,
                        "n={n} k={k} component {i}: blocked {u} vs scalar {v}"
                    );
                }
            }
        }
    }

    /// The blocked kernel and the retained column-major reference kernel
    /// are interchangeable: bit-for-bit equal on the sparse factor.
    #[test]
    fn sparse_blocked_is_bitwise_colmajor(
        n in 4usize..40,
        edges in proptest::collection::vec((0usize..64, 0usize..64, 0.1f64..1.5), 0..80),
        seed in any::<u64>(),
    ) {
        let a = random_spd(n, &edges);
        for factor in [
            SparseCholesky::factor(&a).expect("SPD"),
            SparseCholesky::factor_rcm(&a).expect("SPD"),
        ] {
            for k in [1usize, 2, 8, 16] {
                let xs = rhs_block(n, k, seed);
                let mut blocked = xs.clone();
                factor.solve_block_in_place(&mut blocked, k);
                let mut colmajor = xs;
                factor.solve_block_colmajor(&mut colmajor, k);
                for (i, (u, v)) in blocked.iter().zip(&colmajor).enumerate() {
                    prop_assert!(
                        u.to_bits() == v.to_bits(),
                        "n={n} k={k} component {i}: blocked {u:e} != colmajor {v:e}"
                    );
                }
            }
        }
    }

    /// Dense blocked solve agrees with K scalar solves to ≤ 1e-12 and is
    /// bitwise-identical to the column-major reference kernel.
    #[test]
    fn dense_blocked_matches_k_scalar_solves(
        n in 2usize..24,
        edges in proptest::collection::vec((0usize..32, 0usize..32, 0.1f64..1.5), 0..40),
        seed in any::<u64>(),
    ) {
        let a = random_spd(n, &edges);
        let factor = DenseCholesky::factor_csr(&a).expect("SPD");
        for k in [1usize, 2, 8, 16] {
            let xs = rhs_block(n, k, seed);
            let mut blocked = xs.clone();
            factor.solve_block_in_place(&mut blocked, k);
            let scalar = scalar_columns(|col| factor.solve_in_place(col), &xs, n, k);
            for (i, (u, v)) in blocked.iter().zip(&scalar).enumerate() {
                prop_assert!(
                    (u - v).abs() <= 1e-12,
                    "n={n} k={k} component {i}: blocked {u} vs scalar {v}"
                );
            }
            let mut colmajor = xs;
            factor.solve_block_colmajor(&mut colmajor, k);
            for (i, (u, v)) in blocked.iter().zip(&colmajor).enumerate() {
                prop_assert!(
                    u.to_bits() == v.to_bits(),
                    "n={n} k={k} component {i}: blocked {u:e} != colmajor {v:e}"
                );
            }
        }
    }

    /// Blocked solves actually solve the system: `A x ≈ b` column by
    /// column after a sparse RCM block substitution.
    #[test]
    fn sparse_blocked_solves_the_system(
        n in 4usize..40,
        edges in proptest::collection::vec((0usize..64, 0usize..64, 0.1f64..1.5), 0..80),
        seed in any::<u64>(),
    ) {
        let a = random_spd(n, &edges);
        let factor = SparseCholesky::factor_rcm(&a).expect("SPD");
        let k = 8usize;
        let b = rhs_block(n, k, seed);
        let mut x = b.clone();
        factor.solve_block_in_place(&mut x, k);
        for (col, bcol) in x.chunks(n).zip(b.chunks(n)) {
            let ax = a.matvec(col);
            for (i, (u, v)) in ax.iter().zip(bcol).enumerate() {
                prop_assert!(
                    (u - v).abs() <= 1e-9,
                    "n={n} residual component {i}: Ax = {u} vs b = {v}"
                );
            }
        }
    }
}

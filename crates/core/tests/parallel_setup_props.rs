//! Property tests for the concurrent setup path: factoring every
//! subdomain on the work-stealing pool (`build_nodes_parallel`) must yield
//! node runtimes — local matrices, Cholesky factors, base RHS, routes —
//! bitwise-identical to the serial `build_nodes` loop, for both scalar and
//! block-wave construction.

use dtm_core::local::LocalSolverKind;
use dtm_core::runtime::{
    build_nodes, build_nodes_block, build_nodes_block_parallel, build_nodes_parallel, CommonConfig,
};
use dtm_graph::evs::{split, EvsOptions};
use dtm_graph::{ElectricGraph, PartitionPlan};
use dtm_sparse::Coo;
use proptest::prelude::*;

fn random_system(n: usize, edges: &[(usize, usize, f64)], seed: u64) -> ElectricGraph {
    let mut dominance = vec![1.0f64; n];
    let mut coo = Coo::new(n, n);
    let mut seen = std::collections::BTreeSet::new();
    for i in 0..n - 1 {
        seen.insert((i, i + 1));
        coo.push_sym(i, i + 1, -1.0).unwrap();
        dominance[i] += 1.0;
        dominance[i + 1] += 1.0;
    }
    for &(a, b, w) in edges {
        let (r, c) = (a.min(b) % n, a.max(b) % n);
        if r == c || !seen.insert((r, c)) {
            continue;
        }
        coo.push_sym(r, c, -w).unwrap();
        dominance[r] += w.abs();
        dominance[c] += w.abs();
    }
    for (i, d) in dominance.iter().enumerate() {
        coo.push(i, i, d + 0.25).unwrap();
    }
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let b: Vec<f64> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect();
    ElectricGraph::from_system(coo.to_csr(), b).unwrap()
}

fn dense_assignment(mut asg: Vec<usize>, n_parts: usize) -> Vec<usize> {
    for (i, a) in asg.iter_mut().enumerate() {
        if i < n_parts {
            *a = i;
        } else {
            *a %= n_parts;
        }
    }
    asg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Pool-factored nodes equal serially-factored nodes bit for bit:
    /// same local matrix, same Cholesky factor, same base RHS, same wave
    /// routes — across dense/sparse/auto local solver backends.
    #[test]
    fn concurrent_factorization_is_bitwise_serial(
        n in 8usize..40,
        n_parts in 2usize..5,
        edges in proptest::collection::vec((0usize..64, 0usize..64, 0.1f64..1.5), 0..60),
        raw_asg in proptest::collection::vec(0usize..8, 40..41),
        seed in any::<u64>(),
    ) {
        let g = random_system(n, &edges, seed);
        let asg = dense_assignment(raw_asg[..n].to_vec(), n_parts);
        let plan = PartitionPlan::from_assignment(&g, &asg).expect("derived plans are valid");
        let ss = split(&g, &plan, &EvsOptions::default()).expect("split");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .expect("test pool");
        for kind in [
            LocalSolverKind::Auto,
            LocalSolverKind::Dense,
            LocalSolverKind::SparseRcm,
        ] {
            let common = CommonConfig {
                solver_kind: kind,
                ..Default::default()
            };
            let serial = build_nodes(&ss, &common).expect("serial build");
            let parallel = build_nodes_parallel(&ss, &common, &pool).expect("parallel build");
            prop_assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                prop_assert_eq!(s.part(), p.part());
                prop_assert!(
                    s.local() == p.local(),
                    "part {}: pool-factored local system diverged ({:?})",
                    s.part(), kind
                );
                let sr: Vec<usize> = s.neighbor_parts().collect();
                let pr: Vec<usize> = p.neighbor_parts().collect();
                prop_assert_eq!(sr, pr, "part {} routes diverged", s.part());
            }
        }
    }

    /// Block-wave variant: scattered multi-RHS construction is bitwise
    /// too.
    #[test]
    fn concurrent_block_build_is_bitwise_serial(
        n in 8usize..32,
        n_parts in 2usize..4,
        edges in proptest::collection::vec((0usize..48, 0usize..48, 0.1f64..1.5), 0..40),
        raw_asg in proptest::collection::vec(0usize..8, 32..33),
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let g = random_system(n, &edges, seed);
        let asg = dense_assignment(raw_asg[..n].to_vec(), n_parts);
        let plan = PartitionPlan::from_assignment(&g, &asg).expect("derived plans are valid");
        let ss = split(&g, &plan, &EvsOptions::default()).expect("split");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("test pool");
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|c| (0..n).map(|i| ((i + c * 31) as f64).cos()).collect())
            .collect();
        let common = CommonConfig::default();
        let serial = build_nodes_block(&ss, &common, &cols).expect("serial block build");
        let parallel =
            build_nodes_block_parallel(&ss, &common, &cols, &pool).expect("parallel block build");
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert!(
                s.local() == p.local(),
                "part {}: block-built local system diverged",
                s.part()
            );
        }
    }
}

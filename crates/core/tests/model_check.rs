//! Exhaustive-interleaving model checks of the concurrency protocols the
//! backends' correctness rests on. Runs only with the `model-check`
//! feature, which flips `dtm_core::sync` to the minloom shim primitives:
//!
//! ```text
//! cargo test -p dtm-core --features model-check --test model_check --release
//! ```
//!
//! Three protocols are modeled, each as a *distilled* version of the
//! production loop written against the same `dtm_core::sync` facade the
//! production code compiles against, plus a seeded mutant the checker
//! must catch:
//!
//! 1. **Quiescence kick** (`threaded.rs`): the LocalDelta idle kick may
//!    fire only at true global quiescence. Current code uses one
//!    deferred-decrement work counter; the mutant is the previous
//!    two-counter (`active` + `in_flight`) guard, whose two loads can
//!    straddle a receive handoff and both read zero while a wave is
//!    mid-absorb — the checker finds the resulting premature stop.
//! 2. **Scheduled-bit mailbox** (`rayon_backend.rs`): an activation must
//!    clear its cell's `scheduled` bit *before* draining the inbox; the
//!    drain-before-clear mutant strands a wave pushed between the drain
//!    and the clear.
//! 3. **Rolling-session retirement** (`session.rs`): a ticket retires
//!    only on the exact metric of its *own* gathered estimate
//!    (self-validating); the stale-metric mutant retires a freshly
//!    admitted ticket on the previous occupant's solved value.
//!
//! Plus the PR 4 regression: the monitor's incremental-metric resync
//! must trigger at `metric <= refresh_below` (inclusive); the historical
//! `<` mutant skips the resync exactly on the boundary and declares
//! convergence from a drifted metric. The checker finds the
//! supervisor-polls-between-updates schedule that exposes it.

#![cfg(feature = "model-check")]

use dtm_core::sync::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dtm_core::sync::{Arc, AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Mutex, Ordering};
use minloom::{checkpoint, hash_fold, thread, Builder};
use std::time::Duration;

// ---------------------------------------------------------------------------
// 1. Quiescence kick (threaded.rs)
// ---------------------------------------------------------------------------

/// Which quiescence guard the distilled worker runs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Guard {
    /// Current code: one deferred-decrement work counter; kick on a
    /// single zero read.
    SingleCounter,
    /// Pre-PR 9 code: separate `active` (workers mid-step) and
    /// `in_flight` (waves sent, not yet absorbed) counters; kick when
    /// both loads read zero. Racy: the receive path's
    /// `active += 1; in_flight -= 1` handoff can straddle the two loads.
    TwoCounter,
}

struct QuiesceShared {
    /// `SingleCounter`: outstanding work tokens (seeded with one per
    /// worker for the initial step). `TwoCounter`: waves in flight.
    in_flight: AtomicI64,
    /// `TwoCounter` only: workers currently mid-step.
    active: AtomicI64,
}

/// Distilled transport send, matching `ChannelTransport::send`: mint the
/// token *before* the wave becomes receivable.
fn q_send(shared: &QuiesceShared, tx: &Sender<u32>, v: u32) {
    shared.in_flight.fetch_add(1, Ordering::AcqRel);
    let _ = tx.send(v);
}

/// Distilled worker, matching the `threaded.rs` worker loop shape:
/// initial step, then recv/coalesce/step with the LocalDelta idle kick
/// on timeout. The "solve" forwards wave `v` as `v - 1` to the next part
/// while `v > 0` (a finite causal chain standing in for a decaying
/// delta). The streak advances only on the kick path, so a worker halts
/// exactly when its guard claimed global quiescence `patience` times —
/// any wave left undelivered at join time is a premature stop.
#[allow(clippy::needless_pass_by_value)]
fn q_worker(
    part: u64,
    guard: Guard,
    patience: u32,
    initial_wave: Option<u32>,
    rx: Receiver<u32>,
    next: Sender<u32>,
    shared: Arc<QuiesceShared>,
) {
    let step = |absorbed: &[u32]| -> Option<u32> {
        let out = absorbed.iter().copied().max().unwrap_or(0);
        (out > 0).then(|| out - 1)
    };

    // Initial solve. Under `SingleCounter` its token was minted at
    // counter setup and is released only after the step's own sends are
    // counted; under `TwoCounter` the step is bracketed by `active`.
    if guard == Guard::TwoCounter {
        shared.active.fetch_add(1, Ordering::AcqRel);
    }
    if let Some(v) = initial_wave {
        q_send(&shared, &next, v);
    }
    match guard {
        Guard::SingleCounter => {
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        }
        Guard::TwoCounter => {
            shared.active.fetch_sub(1, Ordering::AcqRel);
        }
    }

    let mut streak: u32 = 0;
    loop {
        // The recv_timeout poll loop is unbounded; everything
        // loop-carried that steers behavior is (part, streak).
        checkpoint(hash_fold(part, u64::from(streak)));
        match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(first) => {
                if guard == Guard::TwoCounter {
                    // The racy handoff under test: mark active, then
                    // release the in-flight count — two counters, so no
                    // observer can read both at once.
                    shared.active.fetch_add(1, Ordering::AcqRel);
                    shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                }
                let mut absorbed = vec![first];
                while let Ok(more) = rx.try_recv() {
                    if guard == Guard::TwoCounter {
                        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                    }
                    absorbed.push(more);
                }
                if let Some(out) = step(&absorbed) {
                    q_send(&shared, &next, out);
                }
                match guard {
                    Guard::SingleCounter => {
                        // Deferred decrement: consumed tokens stay
                        // outstanding until the step they caused has
                        // minted tokens for its own sends.
                        shared
                            .in_flight
                            .fetch_sub(absorbed.len() as i64, Ordering::AcqRel);
                    }
                    Guard::TwoCounter => {
                        shared.active.fetch_sub(1, Ordering::AcqRel);
                    }
                }
                streak = 0;
            }
            Err(RecvTimeoutError::Timeout) => {
                let quiescent = match guard {
                    Guard::SingleCounter => shared.in_flight.load(Ordering::Acquire) == 0,
                    Guard::TwoCounter => {
                        shared.active.load(Ordering::Acquire) == 0
                            && shared.in_flight.load(Ordering::Acquire) == 0
                    }
                };
                if quiescent {
                    // Idle kick: the re-solve against an unchanged
                    // boundary is zero-delta, advancing the self-halt
                    // streak (Table 1 step 3.3).
                    streak += 1;
                    if streak >= patience {
                        return;
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Build the ring of distilled workers and assert every wave was
/// absorbed before its addressee halted. `patience = 1` is the hardest
/// setting: a single spurious quiescence read kills a worker.
fn quiesce_model(guard: Guard, n_workers: u64, initial_wave: u32) {
    let shared = Arc::new(QuiesceShared {
        in_flight: AtomicI64::new(match guard {
            Guard::SingleCounter => n_workers as i64,
            Guard::TwoCounter => 0,
        }),
        active: AtomicI64::new(0),
    });
    let mut txs = Vec::new();
    let mut rxs = Vec::new();
    for _ in 0..n_workers {
        let (tx, rx) = unbounded::<u32>();
        txs.push(tx);
        rxs.push(rx);
    }
    // Keep supervisor-side clones, mirroring `drain_rx`: after every
    // worker has halted, an undelivered wave is a protocol violation.
    let drain: Vec<Receiver<u32>> = rxs.iter().map(Receiver::clone).collect();

    let mut handles = Vec::new();
    for (p, rx) in rxs.into_iter().enumerate() {
        let next = txs[(p + 1) % n_workers as usize].clone();
        let shared = Arc::clone(&shared);
        // Worker 0 owes the chain's seed wave; the others' initial
        // solves are zero-delta.
        let seed = (p == 0).then_some(initial_wave);
        handles.push(thread::spawn(move || {
            q_worker(p as u64, guard, 1, seed, rx, next, shared);
        }));
    }
    drop(txs);
    for h in handles {
        h.join().unwrap();
    }
    for (p, rx) in drain.iter().enumerate() {
        assert!(
            rx.try_recv().is_err(),
            "premature stop: worker {p} halted with a wave still addressed to it"
        );
    }
}

/// Current protocol, two workers, full interleaving exploration: the
/// idle kick can never fire while the seed wave's causal chain is alive.
#[test]
fn quiescence_single_counter_exhaustive() {
    let report = Builder::new().explore(|| quiesce_model(Guard::SingleCounter, 2, 1));
    assert!(report.violation.is_none(), "{}", report.violation.unwrap());
    assert!(report.complete, "exploration must exhaust: {report:?}");
    // State-hash dedup collapses most branches; completed schedules plus
    // pruned subtrees together witness a real exploration.
    assert!(
        report.schedules + report.pruned > 20,
        "trivial exploration: {report:?}"
    );
}

/// Current protocol at the scale of the real deployment shape (a
/// three-part ring with a two-hop chain), explored to preemption bound
/// 2 — the bound that exposes the two-counter race below.
#[test]
fn quiescence_single_counter_three_workers_bounded() {
    let report = Builder::new()
        .preemption_bound(2)
        .explore(|| quiesce_model(Guard::SingleCounter, 3, 2));
    assert!(report.violation.is_none(), "{}", report.violation.unwrap());
    assert!(report.complete, "exploration must exhaust: {report:?}");
}

/// The pre-PR 9 two-counter guard: the checker must find the schedule
/// where an idle worker's two loads straddle a peer's
/// `active += 1; in_flight -= 1` handoff, both read zero while the peer
/// is mid-absorb, and the worker self-halts just before the peer's step
/// sends it the next wave.
#[test]
fn quiescence_two_counter_mutant_is_caught() {
    let report = Builder::new()
        .preemption_bound(2)
        .explore(|| quiesce_model(Guard::TwoCounter, 2, 1));
    let v = report
        .violation
        .expect("the two-counter quiescence race must be found");
    assert!(
        v.message.contains("premature stop"),
        "unexpected violation:\n{v}"
    );
    assert!(!v.trace.is_empty(), "counterexample must carry a schedule");
}

// ---------------------------------------------------------------------------
// 2. Scheduled-bit mailbox (rayon_backend.rs)
// ---------------------------------------------------------------------------

struct Cell {
    scheduled: AtomicBool,
    inbox: Mutex<Vec<u32>>,
    processed: AtomicUsize,
}

/// Distilled `activate()`: the production code clears the scheduled bit
/// *before* draining the inbox, so a wave pushed after the drain finds
/// the bit clear and respawns the task. `clear_first = false` seeds the
/// lost-wave mutant.
fn activate(cell: &Cell, clear_first: bool) {
    if clear_first {
        cell.scheduled.store(false, Ordering::SeqCst);
    }
    let drained = {
        let mut inbox = cell.inbox.lock();
        let n = inbox.len();
        inbox.clear();
        n
    };
    if !clear_first {
        cell.scheduled.store(false, Ordering::SeqCst);
    }
    cell.processed.fetch_add(drained, Ordering::SeqCst);
}

/// Distilled `schedule()`: push, then CAS the bit 0 → 1 and run the
/// activation on its own thread if we won it (the model's stand-in for
/// `pool.spawn`). Joining inside keeps handle plumbing trivial without
/// serializing the *other* producer against the activation.
fn pool_producer(cell: &Arc<Cell>, wave: u32, clear_first: bool) {
    cell.inbox.lock().push(wave);
    if cell
        .scheduled
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        let cell2 = Arc::clone(cell);
        thread::spawn(move || activate(&cell2, clear_first))
            .join()
            .unwrap();
    }
}

fn scheduled_bit_model(clear_first: bool) {
    let cell = Arc::new(Cell {
        scheduled: AtomicBool::new(false),
        inbox: Mutex::new(Vec::new()),
        processed: AtomicUsize::new(0),
    });
    let producers: Vec<_> = (1..=2)
        .map(|w| {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                minloom::trace_value(u64::from(w));
                pool_producer(&cell, w, clear_first);
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    // Producers have returned, so every won CAS's activation has been
    // joined: anything still in the inbox is stranded for good.
    assert!(
        cell.inbox.lock().is_empty(),
        "lost wave: inbox nonempty after all activations finished"
    );
    assert_eq!(cell.processed.load(Ordering::SeqCst), 2);
}

#[test]
fn scheduled_bit_clear_before_drain_exhaustive() {
    let report = Builder::new().explore(|| scheduled_bit_model(true));
    assert!(report.violation.is_none(), "{}", report.violation.unwrap());
    assert!(report.complete, "exploration must exhaust: {report:?}");
}

/// Drain-before-clear: the checker must find the push that lands after
/// the drain but before the clear — its CAS loses, no task respawns,
/// the wave is stranded.
#[test]
fn scheduled_bit_drain_before_clear_mutant_is_caught() {
    let report = Builder::new().explore(|| scheduled_bit_model(false));
    let v = report
        .violation
        .expect("the lost-wave schedule must be found");
    assert!(
        v.message.contains("lost wave"),
        "unexpected violation:\n{v}"
    );
}

// ---------------------------------------------------------------------------
// 3. Rolling-session retirement (session.rs)
// ---------------------------------------------------------------------------

/// Distilled solved-value publication: ticket value `v` solves to
/// `v + 100` (distinguishing "swap applied" from "solve published").
const SOLVED_OFFSET: u64 = 100;

/// Distilled rolling-session worker, matching the
/// `RollingThreadedSession` loop: drain the swap mailbox between steps,
/// publish the slot's solved value to the shared snapshot.
fn session_worker(mailbox: &Mutex<Vec<(usize, u64)>>, snapshot: &AtomicU64, stop: &AtomicBool) {
    let mut current: u64 = 0;
    loop {
        checkpoint(hash_fold(0x5e55, current));
        if stop.load(Ordering::Acquire) {
            return;
        }
        let orders: Vec<(usize, u64)> = {
            let mut mb = mailbox.lock();
            let taken = mb.clone();
            mb.clear();
            taken
        };
        for (_slot, v) in orders {
            current = v;
        }
        if current != 0 {
            // One step of the live exchange: publish this slot's solve.
            snapshot.store(current + SOLVED_OFFSET, Ordering::Release);
        }
    }
}

/// Supervisor sweep, distilled: admit a ticket by dropping a swap order
/// into the mailbox, then retire it only when the published snapshot
/// equals the ticket's *own* solved value (`exact = true`, the
/// production self-validating rule) or — the mutant — as soon as any
/// solved value is published (`exact = false`, a stale cached metric:
/// slot 0 already "meets tolerance" from its previous occupant).
fn session_model(exact: bool) {
    let mailbox = Arc::new(Mutex::new(Vec::new()));
    let snapshot = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let worker = {
        let (mb, sn, st) = (
            Arc::clone(&mailbox),
            Arc::clone(&snapshot),
            Arc::clone(&stop),
        );
        thread::spawn(move || session_worker(&mb, &sn, &st))
    };

    let mut reports: Vec<u64> = Vec::new();
    for ticket in [10_u64, 20] {
        mailbox.lock().push((0, ticket));
        loop {
            checkpoint(hash_fold(ticket, reports.len() as u64));
            let seen = snapshot.load(Ordering::Acquire);
            let retire = if exact {
                seen == ticket + SOLVED_OFFSET
            } else {
                seen >= SOLVED_OFFSET
            };
            if retire {
                reports.push(seen);
                break;
            }
        }
    }
    stop.store(true, Ordering::Release);
    worker.join().unwrap();

    assert_eq!(reports.len(), 2, "every ticket must retire exactly once");
    assert_eq!(
        reports,
        vec![10 + SOLVED_OFFSET, 20 + SOLVED_OFFSET],
        "a ticket retired with a solution that is not its own"
    );
}

#[test]
fn session_exact_metric_retirement_exhaustive() {
    let report = Builder::new().explore(|| session_model(true));
    assert!(report.violation.is_none(), "{}", report.violation.unwrap());
    assert!(report.complete, "exploration must exhaust: {report:?}");
}

/// The stale-metric mutant: the checker must find the schedule where the
/// supervisor polls after admitting ticket 2 but before the worker
/// applies its swap — the snapshot still holds ticket 1's solved value,
/// the non-exact rule retires ticket 2 with it.
#[test]
fn session_stale_metric_mutant_is_caught() {
    let report = Builder::new().explore(|| session_model(false));
    let v = report
        .violation
        .expect("the stale-metric retirement must be found");
    assert!(
        v.message.contains("not its own"),
        "unexpected violation:\n{v}"
    );
}

// ---------------------------------------------------------------------------
// 4. PR 4 regression: the monitor resync boundary (`<=` vs `<`)
// ---------------------------------------------------------------------------

/// Distilled `Monitor` resync discipline (see
/// `crates/core/src/monitor.rs`, the `metric <= refresh_below` fix from
/// PR 4), integer-scaled so the boundary equality is exact. The worker
/// publishes two state updates; the supervisor tracks a cheap
/// incremental metric that *drifts low* and must re-derive the exact
/// metric before trusting any stop decision at or below
/// `refresh_below`.
fn resync_model(inclusive: bool) {
    /// Incremental (drifted) metric after observing worker state `v`.
    fn incremental(v: u64) -> u64 {
        10 - 5 * v // v=0 → 10, v=1 → 5 (the boundary!), v=2 → 0
    }
    /// Exact metric (what a resync recomputes) for worker state `v`.
    fn exact(v: u64) -> u64 {
        match v {
            0 => 10,
            1 => 7, // the drifted 5 was flattering: truth is above tol
            _ => 3, // genuinely converged
        }
    }
    const TOL: u64 = 5;
    const REFRESH_BELOW: u64 = 5;

    let state = Arc::new(AtomicU64::new(0));
    let worker = {
        let state = Arc::clone(&state);
        thread::spawn(move || {
            state.store(1, Ordering::Release);
            state.store(2, Ordering::Release);
        })
    };

    let converged_at = loop {
        let v = state.load(Ordering::Acquire);
        checkpoint(hash_fold(0x4e5c, v));
        let mut metric = incremental(v);
        let refresh = if inclusive {
            metric <= REFRESH_BELOW // production: PR 4's `<=` fix
        } else {
            metric < REFRESH_BELOW // mutant: the pre-PR 4 strict `<`
        };
        if refresh {
            metric = exact(v);
        }
        if metric <= TOL {
            break v;
        }
    };
    worker.join().unwrap();
    assert_eq!(
        converged_at, 2,
        "premature stop: converged on a drifted metric at the resync boundary"
    );
}

#[test]
fn monitor_resync_inclusive_boundary_exhaustive() {
    let report = Builder::new().explore(|| resync_model(true));
    assert!(report.violation.is_none(), "{}", report.violation.unwrap());
    assert!(report.complete, "exploration must exhaust: {report:?}");
}

/// Re-inject the PR 4 bug: with strict `<`, the schedule where the
/// supervisor polls between the worker's two stores sees the
/// incremental metric land exactly on `refresh_below`, skips the
/// resync, and declares convergence from the drifted value. The checker
/// must find that schedule.
#[test]
fn monitor_resync_strict_mutant_is_caught() {
    let report = Builder::new().explore(|| resync_model(false));
    let v = report
        .violation
        .expect("the boundary premature-stop schedule must be found");
    assert!(
        v.message.contains("premature stop"),
        "unexpected violation:\n{v}"
    );
}

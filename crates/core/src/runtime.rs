//! The backend-agnostic DTM runtime: **one** node state machine, many
//! executors.
//!
//! # Why this layer exists
//!
//! The paper's central promise (§5, "Algorithm-Architecture Delay
//! Mapping") is that the *same* algorithm — factor the local system once,
//! then solve-and-scatter whenever remote boundary conditions arrive —
//! runs unchanged on any machine, because the Directed Transmission Line's
//! propagation delay simply *is* whatever delay the executing machine
//! imposes on that message. The code must mirror that claim: the node
//! behaviour of Table 1 lives **here, once**, and each execution scenario
//! (deterministic simulation, OS threads, a work-stealing pool — later
//! sockets or GPUs) is a thin adapter that decides only *when* a node runs
//! and *how* its waves travel.
//!
//! # The contract
//!
//! Two small traits split the responsibilities:
//!
//! * [`Transport`] — *where scattered waves go.* The runtime calls
//!   [`Transport::send`] once per neighbour subdomain per solve, handing it
//!   a [`DtmMsg`] addressed to a peer part. The transport owns the delay:
//!   the simulated backend maps it onto a [`dtm_simnet`] link (delay =
//!   simulated link delay), the threaded backend onto a crossbeam channel
//!   (delay = real scheduling/transmission latency, optionally shaped by a
//!   router), the work-stealing backend onto a shared inbox (delay = task
//!   queueing latency). **A transport must never reorder the messages of
//!   one sender–receiver pair**; all three in-tree transports deliver
//!   per-pair FIFO, which is what eq. (2.1) assumes of a transmission
//!   line.
//!
//! * [`ExecutorBackend`] — *when nodes run.* A backend owns scheduling:
//!   build one [`NodeRuntime`] per subdomain (via [`build_nodes`]), call
//!   [`NodeRuntime::step`] for the initial solve of every node (eq. (5.6):
//!   zero boundary guess), then deliver waves and re-step receivers until
//!   a [`Termination`] condition ends the run. Backends report through the
//!   shared [`SolveReport`](crate::report::SolveReport) vocabulary.
//!
//! The runtime itself never blocks, spawns, sleeps or locks: every method
//! is a plain synchronous state transition. That is what makes it
//! executable under a discrete-event simulator and a thread pool alike.
//!
//! # How the delay mapping is preserved per backend
//!
//! | backend | wave travels as | delay realised by |
//! |---|---|---|
//! | [`solver`](crate::solver) (simnet) | [`dtm_simnet::Envelope`] | per-directed-link simulated delay (Fig. 7/11) |
//! | [`threaded`](crate::threaded) | crossbeam channel message | real channel latency, plus optional router-injected per-link delays |
//! | [`rayon_backend`](crate::rayon_backend) | inbox entry + spawned task | work-stealing queue latency (natural, uncontrolled asynchrony) |
//!
//! In every case the receiving node merges whatever has arrived *by the
//! time it runs* — Table 1 step 3: "wait until receiving part of the
//! remote boundary conditions from one or more of the adjacent subgraphs".
//! No barrier, no broadcast, no global clock.

use crate::impedance::{per_port, ImpedancePolicy};
use crate::local::{LocalSolverKind, LocalSystem};
use dtm_graph::evs::{SplitSystem, Subdomain};
use dtm_sparse::{Result, SparseCholesky};

/// Columns a [`SmallBlock`] stores inline before spilling to the heap.
///
/// Sized so the common block widths (and always the scalar K = 1 path) pay
/// zero allocations per scattered wave — the K = 1 fast-path guarantee.
pub const SMALL_BLOCK_INLINE: usize = 4;

/// One value per RHS column of a block wave — the payload half of a
/// [`PortUpdate`].
///
/// Up to [`SMALL_BLOCK_INLINE`] columns live inline; wider blocks spill to
/// a heap vector. Dereferences to `[f64]` (one entry per column).
#[derive(Debug, Clone, PartialEq)]
pub struct SmallBlock {
    len: usize,
    inline: [f64; SMALL_BLOCK_INLINE],
    spill: Vec<f64>,
}

impl SmallBlock {
    /// A single-column (scalar-pipeline) block.
    pub fn scalar(v: f64) -> Self {
        Self::from_fn(1, |_| v)
    }

    /// Build a `k`-column block from a per-column generator.
    pub fn from_fn(k: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        if k <= SMALL_BLOCK_INLINE {
            let mut inline = [0.0; SMALL_BLOCK_INLINE];
            for (c, slot) in inline.iter_mut().take(k).enumerate() {
                *slot = f(c);
            }
            Self {
                len: k,
                inline,
                spill: Vec::new(),
            }
        } else {
            Self {
                len: k,
                inline: [0.0; SMALL_BLOCK_INLINE],
                spill: (0..k).map(f).collect(),
            }
        }
    }

    /// Copy a slice into a block.
    pub fn from_slice(vals: &[f64]) -> Self {
        Self::from_fn(vals.len(), |c| vals[c])
    }

    /// Overwrite this block in place with `k` freshly generated columns,
    /// reusing the spill buffer's capacity — the zero-allocation refill used
    /// by the pooled wave pipeline (a recycled block never reallocates
    /// unless `k` outgrows every width it has carried before).
    // lint: hot-path
    pub fn fill_from_fn(&mut self, k: usize, mut f: impl FnMut(usize) -> f64) {
        self.len = k;
        if k <= SMALL_BLOCK_INLINE {
            self.spill.clear();
            for (c, slot) in self.inline.iter_mut().take(k).enumerate() {
                *slot = f(c);
            }
        } else {
            self.spill.clear();
            self.spill.extend((0..k).map(&mut f));
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block has no columns.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The per-column values.
    pub fn as_slice(&self) -> &[f64] {
        if self.len <= SMALL_BLOCK_INLINE {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

impl std::ops::Deref for SmallBlock {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl From<f64> for SmallBlock {
    fn from(v: f64) -> Self {
        Self::scalar(v)
    }
}

impl Default for SmallBlock {
    /// An empty (zero-column) block — the state of a pooled payload before
    /// its first [`fill_from_fn`](Self::fill_from_fn).
    fn default() -> Self {
        Self::from_fn(0, |_| 0.0)
    }
}

/// Boundary-condition update for one port of the receiving subdomain.
///
/// This is the paper's message payload (Table 1 step 3.2): the sender's
/// twin potential `u` and inflow current `ω` for one DTLP, addressed by
/// the *receiver's* port index — one value per RHS column of the block
/// wave (the scalar pipeline is the one-column case).
#[derive(Debug, Clone, PartialEq)]
pub struct PortUpdate {
    /// Port index *at the receiver*.
    pub port: usize,
    /// Transmitted twin potentials `u`, one per column.
    pub u: SmallBlock,
    /// Transmitted twin inflow currents `ω`, one per column.
    pub omega: SmallBlock,
}

impl PortUpdate {
    /// A scalar (single-column) update — the paper's original payload.
    pub fn scalar(port: usize, u: f64, omega: f64) -> Self {
        Self {
            port,
            u: SmallBlock::scalar(u),
            omega: SmallBlock::scalar(omega),
        }
    }
}

impl Default for PortUpdate {
    /// An empty pooled slot, overwritten in place before transmission.
    fn default() -> Self {
        Self {
            port: 0,
            u: SmallBlock::default(),
            omega: SmallBlock::default(),
        }
    }
}

/// One wave-front message: every boundary condition the sending subdomain
/// owes one neighbour after a solve.
#[derive(Debug, Clone, PartialEq)]
pub struct DtmMsg {
    /// Updates keyed by receiver port.
    pub updates: Vec<PortUpdate>,
}

/// Stopping rule of a distributed solve — shared vocabulary across all
/// backends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Termination {
    /// Oracle: stop when the (centrally monitored) global RMS error drops
    /// below `tol`. Matches how the paper's figures are produced. The
    /// *backend's* monitor enforces this; nodes never self-halt. Requires a
    /// direct reference solution `x* = A⁻¹b` per right-hand side — a cost
    /// real traffic cannot pay, which is what [`Residual`](Self::Residual)
    /// removes.
    OracleRms {
        /// RMS-error tolerance.
        tol: f64,
    },
    /// Reference-free: stop when the (centrally monitored) relative true
    /// residual `‖b − A·x‖₂ / ‖b‖₂` of the gathered estimate drops below
    /// `tol` (worst column of a block solve). No direct solve of the
    /// original system is ever performed — the monitor tracks the residual
    /// incrementally from the same per-part solution updates the oracle
    /// mode uses, with periodic exact resynchronization. This is the
    /// production stopping rule (cf. Avron et al. 2013, Hong 2012, which
    /// terminate on computable residuals).
    Residual {
        /// Relative-residual tolerance.
        tol: f64,
    },
    /// Distributed: each node halts itself once its outgoing boundary
    /// conditions change by less than `tol` for `patience` consecutive
    /// solves (Table 1 step 3.3, "if convergent, then break"). The run
    /// ends when every node halted.
    LocalDelta {
        /// Outgoing-wave change tolerance.
        tol: f64,
        /// Consecutive small-delta solves required.
        patience: usize,
    },
}

/// Configuration shared by every executor backend: everything that
/// parameterises the *algorithm* rather than the *machine*.
#[derive(Debug, Clone)]
pub struct CommonConfig {
    /// Impedance policy (the Fig. 9 knob).
    pub impedance: ImpedancePolicy,
    /// Local factorization backend.
    pub solver_kind: LocalSolverKind,
    /// Stopping rule.
    pub termination: Termination,
    /// Safety cap on solves per node (guards non-convergent configs).
    pub max_solves_per_node: usize,
}

impl Default for CommonConfig {
    fn default() -> Self {
        Self {
            impedance: ImpedancePolicy::default(),
            solver_kind: LocalSolverKind::Auto,
            termination: Termination::OracleRms { tol: 1e-8 },
            max_solves_per_node: 200_000,
        }
    }
}

/// Where scattered waves go. Implemented by each backend's message fabric;
/// see the [module docs](self) for the contract (per-pair FIFO, delay
/// owned by the transport).
pub trait Transport {
    /// Carry `msg` from the stepping node to the node executing subdomain
    /// `dst`. Called during [`NodeRuntime::step`], once per neighbour.
    fn send(&mut self, dst: usize, msg: DtmMsg);
}

/// A [`Transport`] that buffers instead of delivering — handy for
/// backends that must release a node lock before touching neighbour
/// state, and for tests that inspect scattered waves.
#[derive(Debug, Default)]
pub struct BufferedTransport {
    /// Collected `(destination part, message)` pairs, in send order.
    pub outbox: Vec<(usize, DtmMsg)>,
}

impl Transport for BufferedTransport {
    fn send(&mut self, dst: usize, msg: DtmMsg) {
        self.outbox.push((dst, msg));
    }
}

/// A bare `Vec<(dst, msg)>` is itself a transport — the reusable-buffer
/// variant of [`BufferedTransport`]: backends keep one outbox vector per
/// node and `drain(..)` it after each step, so the buffer's capacity
/// survives across activations and the scatter path never allocates.
impl Transport for Vec<(usize, DtmMsg)> {
    fn send(&mut self, dst: usize, msg: DtmMsg) {
        self.push((dst, msg));
    }
}

/// A mutable reference to a transport is itself a transport — lets node
/// state machines take `&mut dyn Transport` (the object-safe form the
/// [`AsyncNode`] contract uses) while callers keep passing concrete
/// transports by reference.
impl<T: Transport + ?Sized> Transport for &mut T {
    fn send(&mut self, dst: usize, msg: DtmMsg) {
        (**self).send(dst, msg);
    }
}

/// The abstract asynchronous-solver node: the contract every distributed
/// algorithm in this crate satisfies — DTM's [`NodeRuntime`] and the
/// randomized-asynchrony baselines of [`crate::async_baselines`]
/// (randomized Richardson, D-iteration) alike.
///
/// The contract is exactly the executor loop's view of a node: absorb
/// whatever waves arrived, run one activation (solve/relax/diffuse and
/// scatter through a [`Transport`]), publish the current local solution,
/// and report uniform work counters (activations, messages, flops). Any
/// machine that can drive this trait — the simulated engine, OS threads,
/// a work-stealing pool — can therefore drive *any* of the algorithms,
/// which is what makes `repro compare` a message-for-message benchmark on
/// identical machines.
pub trait AsyncNode: Send {
    /// The subdomain/partition id this node executes.
    fn part(&self) -> usize;

    /// Rows this node owns (length of [`solution`](Self::solution)).
    fn n_local(&self) -> usize;

    /// The node's current local solution estimate, one value per owned
    /// row (column-major `n_local × k` for block-capable algorithms; the
    /// baselines are scalar, `k = 1`).
    fn solution(&self) -> &[f64];

    /// Merge one incoming message (consuming it, so payload buffers can be
    /// recycled).
    fn absorb_owned(&mut self, msg: DtmMsg);

    /// One activation: update local state against the currently held
    /// remote values and scatter outgoing messages through `transport`.
    fn step_node(&mut self, transport: &mut dyn Transport) -> NodeControl;

    /// Activations performed so far.
    fn solves(&self) -> u64;

    /// Messages scattered so far.
    fn messages_sent(&self) -> u64;

    /// Estimated floating-point operations so far (multiply-adds ×2),
    /// counted uniformly across algorithms.
    fn flops(&self) -> u64;

    /// Size of one activation's working set (e.g. factor nonzeros for
    /// DTM, owned-row nonzeros for point relaxation) — the input to a
    /// per-activation compute-time model.
    fn work_nnz(&self) -> usize;

    /// Whether this node was retired by its solve cap rather than by
    /// declaring convergence.
    fn capped(&self) -> bool;
}

/// What a node does after a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeControl {
    /// Keep scheduling this node when waves arrive.
    Continue,
    /// The node declared local convergence (Table 1 step 3.3). The
    /// backend must stop activating it and may drop its pending messages.
    Converged,
    /// The node hit the `max_solves_per_node` safety cap *without*
    /// declaring convergence. The backend retires it like
    /// [`Converged`](Self::Converged), but a capped run must never be
    /// reported as converged under [`Termination::LocalDelta`].
    Capped,
}

impl NodeControl {
    /// Whether the backend should retire the node (either halt kind).
    pub fn is_halt(self) -> bool {
        !matches!(self, NodeControl::Continue)
    }
}

/// The canonical DTM node state machine: one subdomain's factored local
/// system, its wave routes, and the self-halt bookkeeping of Table 1.
///
/// Lifecycle, driven by a backend:
///
/// 1. [`build_nodes`] factors every subdomain once (§5: "only once
///    factorization should be done at the beginning");
/// 2. the backend calls [`step`](Self::step) on every node — the initial
///    solve under the zero boundary guess of eq. (5.6), scattering the
///    first wave fronts;
/// 3. whenever one or more waves reach a node, the backend calls
///    [`absorb`](Self::absorb) for each [`PortUpdate`] and then
///    [`step`](Self::step) — merge, re-solve, scatter;
/// 4. a halting [`NodeControl`] return (`Converged` or `Capped`) retires
///    the node.
#[derive(Debug, Clone)]
pub struct NodeRuntime {
    part: usize,
    local: LocalSystem,
    /// Per neighbour part: `(receiver_port, my_port)` pairs.
    routes: Vec<(usize, Vec<(usize, usize)>)>,
    /// Freelist of recycled message payloads: [`step`](Self::step) pops a
    /// buffer per outgoing wave and refills it in place;
    /// [`recycle`](Self::recycle) (or [`absorb_owned`](Self::absorb_owned))
    /// returns consumed payloads. In a balanced two-way exchange the list
    /// reaches a steady state and the wave pipeline stops allocating
    /// entirely (for K ≤ [`SMALL_BLOCK_INLINE`]; wider blocks also reuse
    /// their spill vectors once warm).
    pool: Vec<Vec<PortUpdate>>,
    termination: Termination,
    max_solves: usize,
    small_streak: usize,
    messages_sent: u64,
    capped: bool,
}

/// Cap on pooled payload buffers per node: enough for every neighbour to
/// have one message in flight in each direction plus slack, while bounding
/// memory if a fast sender outpaces a slow receiver.
fn pool_cap(n_routes: usize) -> usize {
    (2 * n_routes).max(8)
}

impl NodeRuntime {
    /// The subdomain/part id this node executes.
    pub fn part(&self) -> usize {
        self.part
    }

    /// The factored local system (for inspection and monitoring).
    pub fn local(&self) -> &LocalSystem {
        &self.local
    }

    /// Neighbour parts this node scatters waves to, in route order.
    pub fn neighbor_parts(&self) -> impl Iterator<Item = usize> + '_ {
        self.routes.iter().map(|&(dst, _)| dst)
    }

    /// Local solves performed so far.
    pub fn solves(&self) -> u64 {
        self.local.n_solves() as u64
    }

    /// Wave-front messages scattered so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Estimated floating-point operations so far: every solve is a pair
    /// of triangular substitutions over the constant factor (§5's
    /// factor-once remark), ≈ 2 flops (multiply + add) per stored factor
    /// entry per sweep per RHS column — `4 · nnz(L) · k` per activation.
    /// The wave algebra per port is negligible next to the substitutions.
    pub fn flops(&self) -> u64 {
        self.solves() * 4 * self.local.factor_nnz() as u64 * self.local.n_rhs() as u64
    }

    /// Merge one incoming boundary-condition update (Table 1 step 3.1).
    /// Later updates for the same port overwrite earlier ones — exactly
    /// the "use whatever is freshest" semantics of asynchronous iteration.
    /// All columns of a block wave merge together.
    pub fn absorb(&mut self, update: PortUpdate) {
        self.local
            .set_remote_block(update.port, &update.u, &update.omega);
    }

    /// Merge a whole wave-front message.
    pub fn absorb_msg(&mut self, msg: &DtmMsg) {
        for u in &msg.updates {
            self.local.set_remote_block(u.port, &u.u, &u.omega);
        }
    }

    /// Merge a whole wave-front message **and recycle its payload buffer**
    /// into this node's freelist — the allocation-free absorb path every
    /// executor uses: a consumed message funds the next outgoing one.
    // lint: hot-path
    pub fn absorb_owned(&mut self, msg: DtmMsg) {
        self.absorb_msg(&msg);
        self.recycle(msg);
    }

    /// Return a consumed message's payload buffer to the freelist (bounded;
    /// overflow is dropped). The buffer's `PortUpdate`s — including any
    /// heap-spilled wide blocks — are kept intact for in-place refill.
    pub fn recycle(&mut self, msg: DtmMsg) {
        if self.pool.len() < pool_cap(self.routes.len()) {
            self.pool.push(msg.updates);
        }
    }

    /// Recycled payload buffers currently pooled (for tests and
    /// diagnostics).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.len()
    }

    /// Solve-and-scatter (Table 1 steps 3.2–3.3, and step 1–2 on the first
    /// call): re-solve the local system against the currently stored
    /// boundary conditions, transmit the resulting `(u, ω)` pairs to every
    /// neighbour through `transport`, and evaluate the self-halt rule.
    // lint: hot-path
    pub fn step(&mut self, transport: &mut impl Transport) -> NodeControl {
        self.local.solve();
        let k = self.local.n_rhs();
        // Disjoint field borrows: routes are read while the freelist is
        // popped and the local system's outgoing state is sampled.
        let Self {
            routes,
            pool,
            local,
            messages_sent,
            ..
        } = self;
        for (dst, pairs) in routes.iter() {
            // Pop a recycled payload buffer — preferring one whose slot
            // count already matches this neighbour, so resize never
            // truncates warm spilled blocks (port counts are symmetric, so
            // a message received from a neighbour is exactly the size of
            // the one owed back). Only a cold pool allocates.
            let mut updates = match pool.iter().position(|b| b.len() == pairs.len()) {
                Some(i) => pool.swap_remove(i),
                None => pool.pop().unwrap_or_default(),
            };
            updates.resize_with(pairs.len(), PortUpdate::default);
            for (slot, &(their_port, my_port)) in updates.iter_mut().zip(pairs) {
                slot.port = their_port;
                slot.u.fill_from_fn(k, |c| local.outgoing_col(my_port, c).0);
                slot.omega
                    .fill_from_fn(k, |c| local.outgoing_col(my_port, c).1);
            }
            transport.send(*dst, DtmMsg { updates });
            *messages_sent += 1;
        }
        if let Termination::LocalDelta { tol, patience } = self.termination {
            if self.local.last_delta() < tol {
                self.small_streak += 1;
                if self.small_streak >= patience {
                    return NodeControl::Converged;
                }
            } else {
                self.small_streak = 0;
            }
        }
        if self.local.n_solves() >= self.max_solves {
            self.capped = true;
            return NodeControl::Capped;
        }
        NodeControl::Continue
    }

    /// Whether this node was retired by the solve cap rather than by
    /// declaring convergence (consulted by backends when deciding the
    /// run-level `converged` flag).
    pub fn capped(&self) -> bool {
        self.capped
    }

    /// Swap **one column** of the live block for a freshly admitted
    /// right-hand side (see [`LocalSystem::replace_rhs_col`]) — the
    /// rolling-session retire/admit step. The exchange keeps running: no
    /// counters reset, no routes change, the node simply solves the new
    /// column alongside the surviving ones from its next step on. The
    /// self-halt streak re-arms because the swapped column's delta does.
    ///
    /// # Panics
    /// Panics if `col` is out of range or `rhs_col` has the wrong length.
    pub fn swap_rhs_col(&mut self, col: usize, rhs_col: &[f64]) {
        self.local.replace_rhs_col(col, rhs_col);
        self.small_streak = 0;
    }

    /// Derive a fresh node over the **same factor** for a new block of
    /// local right-hand-side columns — the streaming path: routes,
    /// impedances and the factorization are reused; boundary state,
    /// self-halt streak and counters reset.
    pub fn with_rhs_block(&self, rhs_cols: &[Vec<f64>]) -> Self {
        Self {
            part: self.part,
            local: self.local.with_rhs_block(rhs_cols),
            routes: self.routes.clone(),
            pool: Vec::new(),
            termination: self.termination,
            max_solves: self.max_solves,
            small_streak: 0,
            messages_sent: 0,
            capped: false,
        }
    }
}

/// [`NodeRuntime`] satisfies the abstract [`AsyncNode`] contract — the
/// proof that DTM and the randomized-asynchrony baselines really are peer
/// algorithms behind one executor interface.
impl AsyncNode for NodeRuntime {
    fn part(&self) -> usize {
        NodeRuntime::part(self)
    }

    fn n_local(&self) -> usize {
        self.local.n_local()
    }

    fn solution(&self) -> &[f64] {
        self.local.solution()
    }

    fn absorb_owned(&mut self, msg: DtmMsg) {
        NodeRuntime::absorb_owned(self, msg);
    }

    fn step_node(&mut self, transport: &mut dyn Transport) -> NodeControl {
        self.step(&mut &mut *transport)
    }

    fn solves(&self) -> u64 {
        NodeRuntime::solves(self)
    }

    fn messages_sent(&self) -> u64 {
        NodeRuntime::messages_sent(self)
    }

    fn flops(&self) -> u64 {
        NodeRuntime::flops(self)
    }

    fn work_nnz(&self) -> usize {
        self.local.factor_nnz()
    }

    fn capped(&self) -> bool {
        NodeRuntime::capped(self)
    }
}

/// Build one [`NodeRuntime`] per subdomain: assign impedances, factor
/// every local system once, and derive the wave routes (ports grouped by
/// neighbour part, deterministically in port order).
///
/// # Errors
/// Fails if the impedance assignment fails or a local factorization fails
/// (the subdomain was not SNND, i.e. the EVS split violated Theorem 6.1's
/// hypothesis).
pub fn build_nodes(split: &SplitSystem, common: &CommonConfig) -> Result<Vec<NodeRuntime>> {
    build_nodes_inner(split, common, None)
}

/// [`build_nodes`] for a **block wave**: every node solves `rhs_cols.len()`
/// right-hand sides simultaneously over its one factorization. `rhs_cols`
/// are *global* RHS vectors, scattered onto the subdomains with the split's
/// own source-share fractions
/// ([`SplitSystem::scatter_rhs`](dtm_graph::evs::SplitSystem::scatter_rhs)).
///
/// # Errors
/// See [`build_nodes`].
///
/// # Panics
/// Panics if `rhs_cols` is empty or a column's length differs from the
/// original system dimension.
pub fn build_nodes_block(
    split: &SplitSystem,
    common: &CommonConfig,
    rhs_cols: &[Vec<f64>],
) -> Result<Vec<NodeRuntime>> {
    assert!(!rhs_cols.is_empty(), "at least one RHS column");
    let local_cols: Vec<Vec<Vec<f64>>> = rhs_cols.iter().map(|b| split.scatter_rhs(b)).collect();
    build_nodes_inner(split, common, Some(transpose_scatter(local_cols)))
}

/// Regroup scattered RHS columns from per-column `[c][p]` order into the
/// per-part `[p][c]` order node construction needs — by **moving** the
/// inner vectors, not cloning them (each scattered column is built exactly
/// once and consumed exactly once).
pub(crate) fn transpose_scatter(local_cols: Vec<Vec<Vec<f64>>>) -> Vec<Vec<Vec<f64>>> {
    let n_parts = local_cols.first().map_or(0, Vec::len);
    let k = local_cols.len();
    let mut by_part: Vec<Vec<Vec<f64>>> = (0..n_parts).map(|_| Vec::with_capacity(k)).collect();
    for col in local_cols {
        assert_eq!(col.len(), n_parts, "scatter produced one vector per part");
        for (p, v) in col.into_iter().enumerate() {
            by_part[p].push(v);
        }
    }
    by_part
}

/// Build a single part's [`NodeRuntime`] from its subdomain and its
/// pre-assigned per-port impedances — the distributed backend's entry
/// point: a child process holding only its own group's subdomains (no
/// full [`SplitSystem`]) rebuilds each node from exactly this data.
///
/// `z_ports[i]` is the impedance of `sub.ports[i]`, as produced by
/// [`crate::impedance::per_port`] at the parent. The result is
/// bitwise-identical to the node [`build_nodes`] constructs for the same
/// part: routes are derived from the same port list in the same order and
/// the factorization is the same [`LocalSystem::new`] call.
///
/// # Errors
/// Fails when `z_ports` does not match the subdomain's port count, or the
/// local factorization fails (the subdomain was not SNND, i.e. the EVS
/// split violated Theorem 6.1's hypothesis).
pub fn build_node(sub: &Subdomain, z_ports: &[f64], common: &CommonConfig) -> Result<NodeRuntime> {
    if z_ports.len() != sub.ports.len() {
        return Err(dtm_sparse::Error::DimensionMismatch {
            context: "build_node port impedances",
            expected: sub.ports.len(),
            actual: z_ports.len(),
        });
    }
    build_node_inner(sub, z_ports, common, None)
}

fn build_node_inner(
    sub: &Subdomain,
    z_ports: &[f64],
    common: &CommonConfig,
    cols: Option<&Vec<Vec<f64>>>,
) -> Result<NodeRuntime> {
    let mut routes: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
    for (my_port, port) in sub.ports.iter().enumerate() {
        match routes.iter_mut().find(|(dst, _)| *dst == port.peer.part) {
            Some((_, pairs)) => pairs.push((port.peer.port, my_port)),
            None => routes.push((port.peer.part, vec![(port.peer.port, my_port)])),
        }
    }
    let local = match cols {
        None => LocalSystem::new(sub, z_ports, common.solver_kind)?,
        Some(cols) => LocalSystem::new_block(sub, z_ports, common.solver_kind, cols)?,
    };
    Ok(NodeRuntime {
        part: sub.part,
        local,
        routes,
        pool: Vec::new(),
        termination: common.termination,
        max_solves: common.max_solves_per_node,
        small_streak: 0,
        messages_sent: 0,
        capped: false,
    })
}

/// Build one part's [`NodeRuntime`]: derive its wave routes and factor its
/// local system. Pure in its inputs, so parts can be built in any order —
/// or concurrently.
fn build_one_node(
    p: usize,
    split: &SplitSystem,
    z_ports: &[Vec<f64>],
    common: &CommonConfig,
    part_cols: Option<&Vec<Vec<Vec<f64>>>>,
) -> Result<NodeRuntime> {
    build_node_inner(
        &split.subdomains[p],
        &z_ports[p],
        common,
        part_cols.map(|cols| &cols[p]),
    )
}

/// `part_cols[p][c]` = column `c`'s scattered sources for part `p`; `None`
/// = the split's own single right-hand side.
fn build_nodes_inner(
    split: &SplitSystem,
    common: &CommonConfig,
    part_cols: Option<Vec<Vec<Vec<f64>>>>,
) -> Result<Vec<NodeRuntime>> {
    let z_dtlp = common.impedance.assign(split)?;
    let z_ports = per_port(split, &z_dtlp);
    (0..split.n_parts())
        .map(|p| build_one_node(p, split, &z_ports, common, part_cols.as_ref()))
        .collect()
}

/// [`build_nodes`] with every subdomain's factorization submitted to the
/// work-stealing pool instead of looping: setup cost becomes
/// `max(factor_p)` instead of `Σ factor_p` on a multi-core machine. Each
/// node is built by the same pure per-part function as the serial path, so
/// the resulting runtimes (routes, factors, scattered sources) are
/// **bitwise-identical** to [`build_nodes`]'s; only the execution order
/// differs.
///
/// # Errors
/// See [`build_nodes`]. When several parts fail, the error of the
/// lowest-numbered part is returned (matching the serial path, which stops
/// at the first failing part).
pub fn build_nodes_parallel(
    split: &SplitSystem,
    common: &CommonConfig,
    pool: &rayon::ThreadPool,
) -> Result<Vec<NodeRuntime>> {
    build_nodes_inner_pooled(split, common, None, pool)
}

/// Block-wave variant of [`build_nodes_parallel`] (see
/// [`build_nodes_block`]).
///
/// # Errors
/// See [`build_nodes_parallel`].
///
/// # Panics
/// Panics if `rhs_cols` is empty or a column's length differs from the
/// original system dimension.
pub fn build_nodes_block_parallel(
    split: &SplitSystem,
    common: &CommonConfig,
    rhs_cols: &[Vec<f64>],
    pool: &rayon::ThreadPool,
) -> Result<Vec<NodeRuntime>> {
    assert!(!rhs_cols.is_empty(), "at least one RHS column");
    let local_cols: Vec<Vec<Vec<f64>>> = rhs_cols.iter().map(|b| split.scatter_rhs(b)).collect();
    build_nodes_inner_pooled(split, common, Some(transpose_scatter(local_cols)), pool)
}

fn build_nodes_inner_pooled(
    split: &SplitSystem,
    common: &CommonConfig,
    part_cols: Option<Vec<Vec<Vec<f64>>>>,
    pool: &rayon::ThreadPool,
) -> Result<Vec<NodeRuntime>> {
    let z_dtlp = common.impedance.assign(split)?;
    let z_ports = per_port(split, &z_dtlp);
    let n_parts = split.n_parts();
    let slots: Vec<std::sync::Mutex<Option<Result<NodeRuntime>>>> =
        (0..n_parts).map(|_| std::sync::Mutex::new(None)).collect();
    let part_cols = part_cols.as_ref();
    pool.for_each_index(n_parts, |p| {
        let node = build_one_node(p, split, &z_ports, common, part_cols);
        // A poisoned slot means another builder panicked; the value this
        // closure writes is still well-formed, so keep going and let the
        // pool surface the panic.
        *slots[p].lock().unwrap_or_else(|e| e.into_inner()) = Some(node);
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner().unwrap_or_else(|e| e.into_inner()).unwrap_or(
                // for_each_index visits every index exactly once, so an
                // empty slot is unreachable; report it as a build error
                // rather than panicking.
                Err(dtm_sparse::Error::Parse(
                    "internal: node build slot left empty".into(),
                )),
            )
        })
        .collect()
}

/// The direct reference solution `x* = A⁻¹b` of the reconstructed system,
/// used by every backend's RMS monitor. Passing `Some` skips the (sparse
/// Cholesky) factorization.
///
/// # Errors
/// Propagates factorization failure of the reconstructed system.
pub fn reference_solution(split: &SplitSystem, reference: Option<Vec<f64>>) -> Result<Vec<f64>> {
    match reference {
        Some(r) => Ok(r),
        None => {
            let (a, b) = split.reconstruct();
            Ok(SparseCholesky::factor_rcm(&a)?.solve(&b))
        }
    }
}

/// Block form of [`reference_solution`]: the direct solutions
/// `x*_c = A⁻¹ b_c` for every RHS column, sharing **one** factorization of
/// the reconstructed `A`. `rhs_cols = None` means the split's own
/// right-hand side (the scalar pipeline). Passing `Some(references)` skips
/// the factorization entirely.
///
/// # Errors
/// Propagates factorization failure of the reconstructed system.
///
/// # Panics
/// Panics if `references` is given with a different column count than
/// `rhs_cols`.
pub fn reference_solutions(
    split: &SplitSystem,
    rhs_cols: Option<&[Vec<f64>]>,
    references: Option<Vec<Vec<f64>>>,
) -> Result<Vec<Vec<f64>>> {
    if let Some(refs) = references {
        if let Some(cols) = rhs_cols {
            assert_eq!(refs.len(), cols.len(), "one reference per RHS column");
        }
        return Ok(refs);
    }
    let (a, b) = split.reconstruct();
    let factor = SparseCholesky::factor_rcm(&a)?;
    Ok(match rhs_cols {
        None => vec![factor.solve(&b)],
        Some(cols) => cols.iter().map(|c| factor.solve(c)).collect(),
    })
}

/// Resolve the (now opt-in) oracle references for a run: an explicitly
/// supplied reference always wins; otherwise the oracle direct solve is
/// performed only for the termination modes that *need* one
/// ([`Termination::OracleRms`] to stop, [`Termination::LocalDelta`] to
/// report RMS). Under [`Termination::Residual`] no reference is ever
/// computed — the whole point of the mode.
///
/// # Errors
/// Propagates factorization failure of the reconstructed system.
pub(crate) fn resolve_references(
    split: &SplitSystem,
    termination: Termination,
    rhs_cols: Option<&[Vec<f64>]>,
    references: Option<Vec<Vec<f64>>>,
) -> Result<Option<Vec<Vec<f64>>>> {
    match (references, termination) {
        (Some(refs), _) => Ok(Some(reference_solutions(split, rhs_cols, Some(refs))?)),
        (None, Termination::Residual { .. }) => Ok(None),
        (None, _) => Ok(Some(reference_solutions(split, rhs_cols, None)?)),
    }
}

/// Exact per-column relative residuals `‖b_c − A·x_c‖₂ / ‖b_c‖₂` of a set
/// of gathered solutions, against the reconstructed original system
/// (`rhs_cols = None` = the split's own right-hand side). One SpMV per
/// column, performed once at the end of every solve so each report carries
/// a computable quality number even in oracle mode.
pub(crate) fn final_residuals(
    split: &SplitSystem,
    rhs_cols: Option<&[Vec<f64>]>,
    solutions: &[Vec<f64>],
) -> Vec<f64> {
    let (a, b) = split.reconstruct();
    let cols: Vec<&[f64]> = match rhs_cols {
        None => vec![&b],
        Some(cols) => cols.iter().map(Vec::as_slice).collect(),
    };
    solutions
        .iter()
        .zip(cols)
        .map(|(x, c)| a.residual_norm(x, c) / dtm_sparse::vector::norm2_or_one(c))
        .collect()
}

/// Shared supervision loop for the real-execution (wall-clock) backends.
///
/// The simulated backend has an omniscient observer inside the event
/// loop; real executors instead publish per-part solution snapshots that
/// a supervisor polls. This helper owns that loop: gather → RMS → record
/// a series point → decide (oracle tolerance reached / every node halted
/// / budget expired). Keeping it here means the threaded and
/// work-stealing backends share their termination bookkeeping exactly as
/// they share the node state machine.
pub(crate) mod wallclock {
    use super::Termination;
    use crate::report::StopKind;
    use dtm_graph::evs::SplitSystem;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    /// Bitmask of all columns of a `k`-wide block — the one saturating-mask
    /// rule shared with the publisher side
    /// ([`LocalSystem::last_solve_cols`](crate::local::LocalSystem::last_solve_cols)).
    pub(crate) use crate::local::all_cols as all_cols_mask;

    /// A worker's published `n_local × k` solution block with dirty-column
    /// tracking: workers publish only the columns whose boundary inputs
    /// changed in the step, and the supervisor copies only columns dirtied
    /// since its last poll into a persistent mirror — no full-block clone
    /// on either side of the hand-off.
    pub(crate) struct SharedBlock {
        data: Mutex<Vec<f64>>,
        /// Bumped on every publish; lets the supervisor skip untouched
        /// parts without taking the lock.
        version: AtomicU64,
        /// Columns written since the supervisor last drained.
        dirty: AtomicU64,
        nl: usize,
        k: usize,
    }

    impl SharedBlock {
        pub(crate) fn new(nl: usize, k: usize) -> Self {
            Self {
                data: Mutex::new(vec![0.0; nl * k]),
                version: AtomicU64::new(0),
                dirty: AtomicU64::new(0),
                nl,
                k,
            }
        }

        /// Publish the columns of `sol` selected by `cols` (a bitmask;
        /// saturated masks publish everything).
        pub(crate) fn publish(&self, sol: &[f64], cols: u64) {
            let mut data = self.data.lock();
            debug_assert_eq!(sol.len(), data.len(), "published block length");
            if self.k >= 64 || cols == all_cols_mask(self.k) {
                data.copy_from_slice(sol);
            } else {
                let mut rest = cols;
                while rest != 0 {
                    let c = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    if c < self.k {
                        let r = c * self.nl..(c + 1) * self.nl;
                        data[r.clone()].copy_from_slice(&sol[r]);
                    }
                }
            }
            // Ordered under the data lock: a drain observing the new
            // version also sees the new data and mask.
            self.dirty.fetch_or(cols, Ordering::Release);
            self.version.fetch_add(1, Ordering::Release);
        }

        /// Copy everything dirtied since the last drain into `mirror`;
        /// returns the drained column mask (0 = nothing changed, lock never
        /// taken). Shared with the rolling-session supervisors.
        pub(crate) fn drain_into(&self, mirror: &mut [f64], seen_version: &mut u64) -> u64 {
            if self.version.load(Ordering::Acquire) == *seen_version {
                return 0;
            }
            let data = self.data.lock();
            let mask = self.dirty.swap(0, Ordering::AcqRel);
            *seen_version = self.version.load(Ordering::Acquire);
            if self.k >= 64 || mask == all_cols_mask(self.k) {
                mirror.copy_from_slice(&data);
            } else {
                let mut rest = mask;
                while rest != 0 {
                    let c = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    if c < self.k {
                        let r = c * self.nl..(c + 1) * self.nl;
                        mirror[r.clone()].copy_from_slice(&data[r]);
                    }
                }
            }
            mask
        }
    }

    /// What the supervisor observed by the time the run ended.
    pub(crate) struct Outcome {
        /// Gathered global solution per RHS column at stop.
        pub solutions: Vec<Vec<f64>>,
        /// Exact RMS against the oracle references, worst column — `NaN`
        /// when the run carried no references (reference-free mode).
        pub final_rms: f64,
        /// Exact RMS per column; empty without references.
        pub final_rms_per_rhs: Vec<f64>,
        /// Exact relative residual `‖b − A·x‖/‖b‖`, worst column — always
        /// computed (one SpMV per column at stop).
        pub final_residual: f64,
        /// Exact relative residual per column.
        pub final_residual_per_rhs: Vec<f64>,
        /// Best worst-column driving metric ever observed at a poll
        /// (snapshots can drift *past* the tolerance while workers keep
        /// iterating).
        pub best_metric: f64,
        /// `(elapsed_ms, metric)` series, one point per poll (worst
        /// column, in the termination mode's own metric).
        pub series: Vec<(f64, f64)>,
        /// Why the run ended.
        pub stop: StopKind,
        /// Wall-clock duration of the run.
        pub elapsed: Duration,
    }

    /// Poll `snapshots` until the termination metric is met by **every**
    /// column, every node reports done (`all_done`), or `budget` expires.
    ///
    /// The driving metric follows `termination`: oracle RMS against
    /// `references` for [`Termination::OracleRms`], relative true residual
    /// of the reconstructed system for [`Termination::Residual`] (no
    /// reference required), and — for [`Termination::LocalDelta`] — a
    /// passive series in whichever of the two is available.
    ///
    /// Per poll the supervisor drains only dirty columns of changed parts
    /// into persistent mirrors and re-evaluates only the columns that
    /// moved; a poll where nothing changed reuses the previous metric
    /// without locking anything.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn supervise(
        split: &SplitSystem,
        references: Option<&[Vec<f64>]>,
        rhs_cols: Option<&[Vec<f64>]>,
        n_rhs: usize,
        snapshots: &[SharedBlock],
        termination: Termination,
        budget: Duration,
        poll: Duration,
        mut all_done: impl FnMut() -> bool,
    ) -> Outcome {
        let started = Instant::now();
        let k = n_rhs;
        let n = split.original_n;
        let (a, own_b) = split.reconstruct();
        let b_col = |c: usize| -> &[f64] {
            match rhs_cols {
                Some(cols) => &cols[c],
                None => &own_b,
            }
        };
        let b_scale: Vec<f64> = (0..k)
            .map(|c| dtm_sparse::vector::norm2_or_one(b_col(c)))
            .collect();
        let tol = match termination {
            Termination::OracleRms { tol } | Termination::Residual { tol } => Some(tol),
            Termination::LocalDelta { .. } => None,
        };
        // The oracle metric runs exactly when references exist to score
        // against: always under `OracleRms` (resolve_references supplies
        // them), opportunistically under `LocalDelta`, never under
        // `Residual`. Binding the slice here (instead of a bool) makes
        // "oracle metric requires references" hold by construction.
        let oracle_refs = match termination {
            Termination::OracleRms { .. } | Termination::LocalDelta { .. } => references,
            Termination::Residual { .. } => None,
        };

        // Persistent supervisor-side state: per-part mirrors + versions,
        // per-column gathered estimates and metric values. All allocated
        // once here; the poll loop below never allocates.
        let mut mirrors: Vec<Vec<f64>> = split
            .subdomains
            .iter()
            .map(|sd| vec![0.0; sd.n_local() * k])
            .collect();
        let mut seen: Vec<u64> = vec![0; snapshots.len()];
        let mut est: Vec<Vec<f64>> = (0..k).map(|_| vec![0.0; n]).collect();
        let mut metric_col: Vec<f64> = vec![f64::INFINITY; k];

        let gather_col = |est: &mut [Vec<f64>], mirrors: &[Vec<f64>], c: usize| {
            let e = &mut est[c];
            e.iter_mut().for_each(|v| *v = 0.0);
            for (sd, m) in split.subdomains.iter().zip(mirrors) {
                let nl = sd.n_local();
                for (l, &g) in sd.global_of_local.iter().enumerate() {
                    e[g] += m[c * nl + l];
                }
            }
            for (v, &cc) in e.iter_mut().zip(&split.copy_count) {
                *v /= cc as f64;
            }
        };
        let eval_col = |est: &[Vec<f64>], c: usize| -> f64 {
            match oracle_refs {
                Some(refs) => dtm_sparse::vector::rms_error(&est[c], &refs[c]),
                None => a.residual_norm(&est[c], b_col(c)) / b_scale[c],
            }
        };

        let worst = |m: &[f64]| m.iter().fold(0.0_f64, |acc, &v| acc.max(v));
        let mut series = Vec::new();
        let mut best_metric = f64::INFINITY;
        let stop = loop {
            std::thread::sleep(poll);
            let mut dirty = 0u64;
            for (snap, (mirror, seen)) in snapshots.iter().zip(mirrors.iter_mut().zip(&mut seen)) {
                dirty |= snap.drain_into(mirror, seen);
            }
            if dirty != 0 {
                let mut rest = if k >= 64 { all_cols_mask(64) } else { dirty };
                while rest != 0 {
                    let c = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    if c < k {
                        gather_col(&mut est, &mirrors, c);
                        metric_col[c] = eval_col(&est, c);
                    }
                }
                // Saturated masks (k ≥ 64) re-evaluate every column.
                if k > 64 {
                    for (c, slot) in metric_col.iter_mut().enumerate().skip(64) {
                        gather_col(&mut est, &mirrors, c);
                        *slot = eval_col(&est, c);
                    }
                }
            }
            let metric = worst(&metric_col);
            best_metric = best_metric.min(metric);
            series.push((started.elapsed().as_secs_f64() * 1e3, metric));
            if let Some(tol) = tol {
                if metric <= tol {
                    break StopKind::OracleTolerance;
                }
            }
            if all_done() {
                break StopKind::AllHalted;
            }
            if started.elapsed() >= budget {
                break StopKind::Budget;
            }
        };

        // Final exact numbers: one last full drain + gather, then both
        // metrics (oracle RMS only where references exist; residual
        // always — it is computable from the system alone).
        for (snap, (mirror, seen)) in snapshots.iter().zip(mirrors.iter_mut().zip(&mut seen)) {
            snap.drain_into(mirror, seen);
        }
        for c in 0..k {
            gather_col(&mut est, &mirrors, c);
        }
        let solutions = est;
        let final_rms_per_rhs: Vec<f64> = match references {
            Some(refs) => solutions
                .iter()
                .zip(refs)
                .map(|(e, r)| dtm_sparse::vector::rms_error(e, r))
                .collect(),
            None => Vec::new(),
        };
        let final_rms = if final_rms_per_rhs.is_empty() {
            f64::NAN
        } else {
            worst(&final_rms_per_rhs)
        };
        debug_assert_eq!(
            final_rms.is_nan(),
            final_rms_per_rhs.is_empty(),
            "SolveReport contract: final_rms is NaN exactly on reference-free runs"
        );
        let final_residual_per_rhs: Vec<f64> = (0..k)
            .map(|c| a.residual_norm(&solutions[c], b_col(c)) / b_scale[c])
            .collect();
        let final_residual = worst(&final_residual_per_rhs);
        let final_metric = if oracle_refs.is_some() {
            final_rms
        } else {
            final_residual
        };
        Outcome {
            solutions,
            final_rms,
            final_rms_per_rhs,
            final_residual,
            final_residual_per_rhs,
            best_metric: best_metric.min(final_metric),
            series,
            stop,
            elapsed: started.elapsed(),
        }
    }
}

/// An execution scenario for the DTM: a machine (real or simulated) that
/// schedules [`NodeRuntime`]s and carries their waves.
///
/// Implementations must preserve the delay-mapping contract described in
/// the [module docs](self): nodes run only in response to arriving waves
/// (after their initial solve), and per-pair message order is FIFO.
pub trait ExecutorBackend {
    /// Backend-specific knobs (time budgets, delay shaping, thread
    /// counts). Every config embeds [`CommonConfig`].
    type Config;

    /// Which executor this is, for reports.
    fn kind(&self) -> crate::report::BackendKind;

    /// Run DTM on `split` to completion under `config`.
    ///
    /// `reference` is the direct solution used for RMS monitoring; when
    /// `None` it is computed via [`reference_solution`].
    ///
    /// # Errors
    /// Propagates node-construction failures (see [`build_nodes`]) and
    /// backend-specific mapping failures.
    fn solve(
        &self,
        split: &SplitSystem,
        reference: Option<Vec<f64>>,
        config: &Self::Config,
    ) -> Result<crate::report::SolveReport>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::evs::{paper_example_shares, split as evs_split, EvsOptions};
    use dtm_graph::{ElectricGraph, PartitionPlan};
    use dtm_sparse::generators;

    fn paper_split() -> SplitSystem {
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a, b).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            explicit: paper_example_shares(),
            ..Default::default()
        };
        evs_split(&g, &plan, &options).unwrap()
    }

    fn paper_common() -> CommonConfig {
        CommonConfig {
            impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
            ..Default::default()
        }
    }

    #[test]
    fn build_nodes_factors_every_subdomain_once() {
        let ss = paper_split();
        let nodes = build_nodes(&ss, &paper_common()).unwrap();
        assert_eq!(nodes.len(), 2);
        for (p, node) in nodes.iter().enumerate() {
            assert_eq!(node.part(), p);
            assert_eq!(node.solves(), 0);
            assert_eq!(node.local().n_ports(), 2);
            assert_eq!(node.neighbor_parts().collect::<Vec<_>>(), vec![1 - p]);
        }
    }

    #[test]
    fn step_scatters_one_message_per_neighbor() {
        let ss = paper_split();
        let mut nodes = build_nodes(&ss, &paper_common()).unwrap();
        let mut t = BufferedTransport::default();
        let ctl = nodes[0].step(&mut t);
        assert_eq!(ctl, NodeControl::Continue);
        assert_eq!(nodes[0].solves(), 1);
        assert_eq!(nodes[0].messages_sent(), 1);
        assert_eq!(t.outbox.len(), 1);
        let (dst, msg) = &t.outbox[0];
        assert_eq!(*dst, 1);
        // Both DTLPs connect parts 0 and 1, so one message carries both
        // port updates.
        assert_eq!(msg.updates.len(), 2);
    }

    #[test]
    fn scatter_then_merge_reaches_fixed_point() {
        // Manual two-node exchange: ping-ponging wave fronts must converge
        // to the direct solution of the reconstructed system — the runtime
        // alone implements the whole algorithm.
        let ss = paper_split();
        let mut nodes = build_nodes(&ss, &paper_common()).unwrap();
        let (a, b) = ss.reconstruct();
        let exact = dtm_sparse::DenseCholesky::factor_csr(&a).unwrap().solve(&b);

        let mut inboxes: Vec<Vec<DtmMsg>> = vec![Vec::new(), Vec::new()];
        let mut t = BufferedTransport::default();
        for node in nodes.iter_mut() {
            node.step(&mut t);
        }
        for _ in 0..200 {
            for (dst, msg) in t.outbox.drain(..) {
                inboxes[dst].push(msg);
            }
            for (p, node) in nodes.iter_mut().enumerate() {
                if inboxes[p].is_empty() {
                    continue;
                }
                for msg in inboxes[p].drain(..) {
                    node.absorb_msg(&msg);
                }
                node.step(&mut t);
            }
        }
        let locals: Vec<Vec<f64>> = nodes
            .iter()
            .map(|n| n.local().solution().to_vec())
            .collect();
        let est = ss.gather(&locals);
        for (u, v) in est.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn local_delta_self_halt_respects_patience() {
        let ss = paper_split();
        let common = CommonConfig {
            termination: Termination::LocalDelta {
                tol: f64::INFINITY, // every solve counts as "small"
                patience: 3,
            },
            ..paper_common()
        };
        let mut nodes = build_nodes(&ss, &common).unwrap();
        let mut t = BufferedTransport::default();
        assert_eq!(nodes[0].step(&mut t), NodeControl::Continue);
        assert_eq!(nodes[0].step(&mut t), NodeControl::Continue);
        assert_eq!(nodes[0].step(&mut t), NodeControl::Converged);
        assert!(!nodes[0].capped());
    }

    #[test]
    fn max_solves_cap_halts() {
        let ss = paper_split();
        let common = CommonConfig {
            max_solves_per_node: 2,
            ..paper_common()
        };
        let mut nodes = build_nodes(&ss, &common).unwrap();
        let mut t = BufferedTransport::default();
        assert_eq!(nodes[0].step(&mut t), NodeControl::Continue);
        assert_eq!(nodes[0].step(&mut t), NodeControl::Capped);
        assert!(nodes[0].capped());
    }

    #[test]
    fn node_runtime_drives_through_the_async_node_contract() {
        // The object-safe AsyncNode view must behave exactly like the
        // inherent API: step through a `dyn` reference, counters included.
        let ss = paper_split();
        let mut nodes = build_nodes(&ss, &paper_common()).unwrap();
        let node: &mut dyn AsyncNode = &mut nodes[0];
        assert_eq!(node.part(), 0);
        assert_eq!(node.n_local(), 3);
        assert!(node.work_nnz() > 0);
        let mut t = BufferedTransport::default();
        let ctl = node.step_node(&mut t);
        assert_eq!(ctl, NodeControl::Continue);
        assert_eq!(node.solves(), 1);
        assert_eq!(node.messages_sent(), 1);
        assert_eq!(node.flops(), 4 * node.work_nnz() as u64);
        assert_eq!(node.solution().len(), 3);
        assert!(!node.capped());
        let (_, msg) = t.outbox.pop().unwrap();
        node.absorb_owned(msg);
    }

    #[test]
    fn absorb_overwrites_per_port() {
        let ss = paper_split();
        let mut nodes = build_nodes(&ss, &paper_common()).unwrap();
        nodes[1].absorb(PortUpdate::scalar(0, 1.0, 0.5));
        nodes[1].absorb(PortUpdate::scalar(0, 2.0, -0.25));
        // incident wave w = u − z·ω with z = 0.2 for port 0.
        let z = nodes[1].local().impedances()[0];
        assert!((nodes[1].local().incident_wave(0) - (2.0 - z * -0.25)).abs() < 1e-15);
    }

    #[test]
    fn small_block_inline_and_spill() {
        let s = SmallBlock::scalar(3.5);
        assert_eq!(s.as_slice(), &[3.5]);
        let inline = SmallBlock::from_fn(SMALL_BLOCK_INLINE, |c| c as f64);
        assert_eq!(inline.len(), SMALL_BLOCK_INLINE);
        let wide = SmallBlock::from_fn(SMALL_BLOCK_INLINE + 3, |c| c as f64);
        assert_eq!(wide.len(), SMALL_BLOCK_INLINE + 3);
        for (c, v) in wide.iter().enumerate() {
            assert_eq!(*v, c as f64);
        }
        assert_eq!(SmallBlock::from_slice(&[1.0, 2.0]).as_slice(), &[1.0, 2.0]);
        assert!(!wide.is_empty());
    }

    #[test]
    fn block_nodes_scatter_block_waves() {
        // A 3-column block build: every scattered update carries 3-wide
        // payloads, and column 0 (the split's own b, round-tripped through
        // the scatter fractions) matches the scalar build to rounding.
        let ss = paper_split();
        let (_, b) = ss.reconstruct();
        let cols = vec![b, vec![1.0, 0.0, 0.0, 0.0], vec![0.0, -1.0, 2.0, 0.5]];
        let mut block_nodes = build_nodes_block(&ss, &paper_common(), &cols).unwrap();
        let mut scalar_nodes = build_nodes(&ss, &paper_common()).unwrap();
        let mut bt = BufferedTransport::default();
        let mut st = BufferedTransport::default();
        block_nodes[0].step(&mut bt);
        scalar_nodes[0].step(&mut st);
        let (_, bmsg) = &bt.outbox[0];
        let (_, smsg) = &st.outbox[0];
        assert_eq!(bmsg.updates.len(), smsg.updates.len());
        for (bu, su) in bmsg.updates.iter().zip(&smsg.updates) {
            assert_eq!(bu.u.len(), 3);
            assert_eq!(bu.omega.len(), 3);
            assert!(
                (bu.u[0] - su.u[0]).abs() < 1e-14,
                "column 0 is the scalar pipeline"
            );
            assert!((bu.omega[0] - su.omega[0]).abs() < 1e-14);
        }
    }

    #[test]
    fn with_rhs_block_resets_node_counters() {
        let ss = paper_split();
        let mut nodes = build_nodes(&ss, &paper_common()).unwrap();
        let mut t = BufferedTransport::default();
        nodes[0].step(&mut t);
        assert_eq!(nodes[0].messages_sent(), 1);
        let fresh = nodes[0].with_rhs_block(&[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]);
        assert_eq!(fresh.messages_sent(), 0);
        assert_eq!(fresh.solves(), 0);
        assert_eq!(fresh.local().n_rhs(), 2);
        assert_eq!(
            fresh.neighbor_parts().collect::<Vec<_>>(),
            nodes[0].neighbor_parts().collect::<Vec<_>>()
        );
    }
}

//! DTM on real OS threads — genuine asynchrony, no simulation, under the
//! [`ThreadedBackend`].
//!
//! This module is a **thin adapter** over [`crate::runtime`]: one thread
//! per subdomain runs the shared [`NodeRuntime`] state machine; waves
//! travel crossbeam channels, so the DTL transmission delay is realised by
//! real scheduling and channel latency (the Algorithm-Architecture Delay
//! Mapping under natural asynchrony). No barrier anywhere. An optional
//! router thread injects per-link delays (scaled from a [`Topology`]) so
//! heterogeneous-machine behaviour can be exercised with real threads
//! too.
//!
//! Termination follows the shared [`Termination`] vocabulary: under
//! [`Termination::LocalDelta`] every worker halts itself through the
//! runtime's Table 1 step 3.3 rule; under [`Termination::OracleRms`] the
//! shared wall-clock supervisor polls solution snapshots and raises a
//! global stop flag when the tolerance is met (or the budget expires).

use crate::report::{AlgorithmKind, BackendKind, SolveReport, StopKind};
use crate::runtime::{
    self, wallclock, CommonConfig, DtmMsg, ExecutorBackend, NodeControl, NodeRuntime, Termination,
    Transport,
};
use crate::sync::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use crate::sync::{thread, Arc, AtomicBool, AtomicI64, AtomicU64, Ordering};
use dtm_graph::evs::SplitSystem;
use dtm_simnet::Topology;
use dtm_sparse::Result;
use std::time::{Duration, Instant};

/// Threaded-executor configuration: the shared [`CommonConfig`] plus the
/// wall-clock and delay-shaping knobs that only exist on real threads.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Algorithm configuration shared with every backend.
    pub common: CommonConfig,
    /// Wall-clock budget.
    pub budget: Duration,
    /// Supervisor poll interval.
    pub poll_interval: Duration,
    /// Inject link delays from this topology, scaled by `delay_scale`
    /// (simulated nanoseconds × scale = real nanoseconds). `None` sends
    /// directly (natural channel latency only).
    pub delay_topology: Option<Topology>,
    /// Delay scale factor (default 1e-3: simulated ms → real µs).
    pub delay_scale: f64,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        Self {
            common: CommonConfig {
                max_solves_per_node: 1_000_000,
                ..Default::default()
            },
            budget: Duration::from_secs(30),
            poll_interval: Duration::from_micros(500),
            delay_topology: None,
            delay_scale: 1e-3,
        }
    }
}

/// Unified report type; kept as an alias for source continuity with the
/// pre-runtime API.
pub type ThreadedReport = SolveReport;

enum RouterMsg {
    Forward {
        deliver_at: Instant,
        dst: usize,
        msg: DtmMsg,
    },
    /// Explicit shutdown; the router also exits when all worker-side
    /// senders disconnect, which is the path the supervisor normally takes.
    #[allow(dead_code)]
    Shutdown,
}

/// Adapter: scattered waves leave through crossbeam channels — directly,
/// or via the delay-shaping router when a topology is injected.
struct ChannelTransport {
    src: usize,
    senders: Vec<Sender<DtmMsg>>,
    router_tx: Sender<RouterMsg>,
    delays: Option<Arc<Topology>>,
    delay_scale: f64,
    messages: Arc<AtomicU64>,
    /// Outstanding work tokens — the quiescence signal for the
    /// LocalDelta idle kick. A token is minted here *before* the wave
    /// becomes receivable and is released by the consumer only after the
    /// step that absorbed it has registered its own outgoing sends, so a
    /// zero read proves no wave exists anywhere and none can appear
    /// without a fresh external cause.
    work: Arc<AtomicI64>,
}

impl Transport for ChannelTransport {
    fn send(&mut self, dst: usize, msg: DtmMsg) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.work.fetch_add(1, Ordering::AcqRel);
        match &self.delays {
            Some(topo) => {
                // Links were validated at backend construction; an absent
                // link degrades to immediate delivery, not an abort.
                let ns = topo
                    .try_delay(self.src, dst)
                    .map_or(0.0, |d| d.as_nanos() as f64)
                    * self.delay_scale;
                let deliver_at = Instant::now() + Duration::from_nanos(ns.round() as u64);
                // Ignore send failures during shutdown.
                let _ = self.router_tx.send(RouterMsg::Forward {
                    deliver_at,
                    dst,
                    msg,
                });
            }
            None => {
                let _ = self.senders[dst].send(msg);
            }
        }
    }
}

/// The one-thread-per-subdomain executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedBackend;

impl ExecutorBackend for ThreadedBackend {
    type Config = ThreadedConfig;

    fn kind(&self) -> BackendKind {
        BackendKind::Threaded
    }

    fn solve(
        &self,
        split: &SplitSystem,
        reference: Option<Vec<f64>>,
        config: &Self::Config,
    ) -> Result<SolveReport> {
        solve_with_reference(split, reference, config)
    }
}

/// Run DTM on real threads.
///
/// # Errors
/// Propagates impedance/factorization failures.
///
/// # Panics
/// Panics if a worker thread panics (the panic is propagated on join).
pub fn solve(split: &SplitSystem, config: &ThreadedConfig) -> Result<SolveReport> {
    solve_with_reference(split, None, config)
}

/// [`solve`] with a precomputed direct reference solution.
///
/// # Errors
/// See [`solve`].
pub fn solve_with_reference(
    split: &SplitSystem,
    reference: Option<Vec<f64>>,
    config: &ThreadedConfig,
) -> Result<SolveReport> {
    let references = runtime::resolve_references(
        split,
        config.common.termination,
        None,
        reference.map(|r| vec![r]),
    )?;
    let runtimes = runtime::build_nodes(split, &config.common)?;
    solve_runtimes(split, runtimes, references, None, config)
}

/// [`solve`] over **prebuilt node runtimes** — the factor-once serving
/// path. Callers build (and pay for) the per-part factorizations once via
/// [`runtime::build_nodes`]/[`runtime::build_nodes_parallel`], then hand a
/// clone of the templates to each solve: `NodeRuntime` clones share their
/// factors, so repeated solves re-run only the wave exchange.
///
/// # Errors
/// See [`solve`].
pub fn solve_prepared(
    split: &SplitSystem,
    runtimes: Vec<NodeRuntime>,
    reference: Option<Vec<f64>>,
    config: &ThreadedConfig,
) -> Result<SolveReport> {
    let references = runtime::resolve_references(
        split,
        config.common.termination,
        None,
        reference.map(|r| vec![r]),
    )?;
    solve_runtimes(split, runtimes, references, None, config)
}

/// Run DTM on real threads for a **block of right-hand sides** sharing one
/// factorization per subdomain (see [`crate::solver::solve_block`] for the
/// block-wave semantics; here the waves travel real channels).
///
/// # Errors
/// See [`solve`].
pub fn solve_block(
    split: &SplitSystem,
    rhs_cols: &[Vec<f64>],
    references: Option<Vec<Vec<f64>>>,
    config: &ThreadedConfig,
) -> Result<SolveReport> {
    let references =
        runtime::resolve_references(split, config.common.termination, Some(rhs_cols), references)?;
    let runtimes = runtime::build_nodes_block(split, &config.common, rhs_cols)?;
    solve_runtimes(split, runtimes, references, Some(rhs_cols), config)
}

/// The executor body shared by the scalar and block entry points.
/// `references = None` runs reference-free (the [`Termination::Residual`]
/// path); `rhs_cols` names the block's global right-hand sides (`None` =
/// the split's own source vector).
fn solve_runtimes(
    split: &SplitSystem,
    runtimes: Vec<NodeRuntime>,
    references: Option<Vec<Vec<f64>>>,
    rhs_cols: Option<&[Vec<f64>]>,
    config: &ThreadedConfig,
) -> Result<SolveReport> {
    let n_parts = split.n_parts();
    let n_rhs = runtimes.first().map_or(1, |rt| rt.local().n_rhs());

    // Validate an injected delay topology up front: every wave route needs
    // a directed link, or the transport would panic inside a worker thread
    // (surfacing as a join panic) the first time it looked the delay up.
    if let Some(topo) = &config.delay_topology {
        if topo.n_nodes() != n_parts {
            return Err(dtm_sparse::Error::DimensionMismatch {
                context: "threaded delay topology: processors vs parts",
                expected: n_parts,
                actual: topo.n_nodes(),
            });
        }
        for rt in &runtimes {
            for dst in rt.neighbor_parts() {
                if let Err(missing) = topo.try_delay(rt.part(), dst) {
                    return Err(dtm_sparse::Error::Parse(format!(
                        "threaded delay topology: {missing}"
                    )));
                }
            }
        }
    }

    // Wiring: one channel per part; router channel if delays are injected.
    let mut senders: Vec<Sender<DtmMsg>> = Vec::with_capacity(n_parts);
    let mut receivers: Vec<Receiver<DtmMsg>> = Vec::with_capacity(n_parts);
    // Supervisor-side receiver clones: once a worker has halted and
    // dropped out, waves still addressed to it are drained here so the
    // in-flight count can reach zero.
    let mut drain_rx: Vec<Receiver<DtmMsg>> = Vec::with_capacity(n_parts);
    for _ in 0..n_parts {
        let (tx, rx) = unbounded::<DtmMsg>();
        senders.push(tx);
        drain_rx.push(rx.clone());
        receivers.push(rx);
    }
    let (router_tx, router_rx) = unbounded::<RouterMsg>();
    let delays: Option<Arc<Topology>> = config.delay_topology.clone().map(Arc::new);

    let stop = Arc::new(AtomicBool::new(false));
    let total_solves = Arc::new(AtomicU64::new(0));
    let total_messages = Arc::new(AtomicU64::new(0));
    // Quiescence accounting: one deferred-decrement counter of
    // outstanding work tokens. Seeded with one token per worker (the
    // initial solve each owes); every transport send mints a token
    // before the wave is pushed; a worker releases the tokens it
    // consumed only *after* the absorbing step has minted tokens for its
    // own outgoing waves. The LocalDelta idle kick below fires only on a
    // zero read, which therefore proves global quiescence — no wave in
    // any channel or the router, no step in progress that could emit
    // one. (A previous two-counter scheme — waves in flight + workers
    // mid-step — was racy: the two loads could straddle a receive
    // handoff and both read zero while work remained, feeding spurious
    // zero-delta re-solves into the self-halt streak; the model checker
    // in tests/model_check.rs finds that schedule.)
    // A part count that overflows i64 is unreachable (it would dwarf
    // addressable memory); saturate rather than panic.
    let work = Arc::new(AtomicI64::new(i64::try_from(n_parts).unwrap_or(i64::MAX)));
    let any_capped = Arc::new(AtomicBool::new(false));
    // Per-part cumulative flop counters: each worker *stores* (not adds)
    // its runtime's running total after every step, so the sum at join
    // time is exact whatever order the workers retired in.
    let part_flops: Arc<Vec<AtomicU64>> =
        Arc::new((0..n_parts).map(|_| AtomicU64::new(0)).collect());
    let snapshots: Arc<Vec<wallclock::SharedBlock>> = Arc::new(
        runtimes
            .iter()
            .map(|rt| wallclock::SharedBlock::new(rt.local().n_local(), n_rhs))
            .collect(),
    );

    // Router thread: delivers delayed messages in deadline order.
    let router_handle = {
        let senders = senders.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            struct Pending {
                deliver_at: Instant,
                seq: u64,
                dst: usize,
                msg: DtmMsg,
            }
            impl PartialEq for Pending {
                fn eq(&self, o: &Self) -> bool {
                    (self.deliver_at, self.seq) == (o.deliver_at, o.seq)
                }
            }
            impl Eq for Pending {}
            impl PartialOrd for Pending {
                fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                    Some(self.cmp(o))
                }
            }
            impl Ord for Pending {
                fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                    (self.deliver_at, self.seq).cmp(&(o.deliver_at, o.seq))
                }
            }
            let mut heap: BinaryHeap<Reverse<Pending>> = BinaryHeap::new();
            let mut seq = 0u64;
            loop {
                let timeout = heap
                    .peek()
                    .map(|Reverse(p)| {
                        p.deliver_at
                            .saturating_duration_since(Instant::now())
                            .min(Duration::from_millis(1))
                    })
                    .unwrap_or(Duration::from_millis(1));
                match router_rx.recv_timeout(timeout) {
                    Ok(RouterMsg::Forward {
                        deliver_at,
                        dst,
                        msg,
                    }) => {
                        seq += 1;
                        heap.push(Reverse(Pending {
                            deliver_at,
                            seq,
                            dst,
                            msg,
                        }));
                    }
                    Ok(RouterMsg::Shutdown) => return,
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
                let now = Instant::now();
                while heap
                    .peek()
                    .is_some_and(|Reverse(p)| p.deliver_at <= now && !stop.load(Ordering::Relaxed))
                {
                    if let Some(Reverse(p)) = heap.pop() {
                        // Ignore send failures during shutdown.
                        let _ = senders[p.dst].send(p.msg);
                    }
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
        })
    };

    // Worker threads: the shared runtime drives each subdomain.
    let mut handles = Vec::with_capacity(n_parts);
    for (p, (mut rt, rx)) in runtimes.into_iter().zip(receivers).enumerate() {
        let mut transport = ChannelTransport {
            src: p,
            senders: senders.clone(),
            router_tx: router_tx.clone(),
            delays: delays.clone(),
            delay_scale: config.delay_scale,
            messages: total_messages.clone(),
            work: work.clone(),
        };
        let stop = stop.clone();
        let total_solves = total_solves.clone();
        let snapshots = snapshots.clone();
        let work = work.clone();
        let any_capped = any_capped.clone();
        let part_flops = part_flops.clone();
        let self_halting = matches!(config.common.termination, Termination::LocalDelta { .. });

        handles.push(thread::spawn(move || {
            let step = |rt: &mut NodeRuntime, transport: &mut ChannelTransport| -> bool {
                let control = rt.step(transport);
                total_solves.fetch_add(1, Ordering::Relaxed);
                part_flops[p].store(rt.flops(), Ordering::Relaxed);
                // Publish only the columns this step could have changed —
                // the supervisor mirrors them incrementally.
                snapshots[p].publish(rt.local().solution(), rt.local().last_solve_cols());
                if control == NodeControl::Capped {
                    any_capped.store(true, Ordering::Release);
                }
                !control.is_halt()
            };

            // Initial solve with the zero boundary guess (eq. 5.6). Its
            // work token was minted at counter setup; release it only
            // after the step's own sends are counted.
            let go_on = step(&mut rt, &mut transport);
            work.fetch_sub(1, Ordering::AcqRel);
            if !go_on {
                return;
            }
            loop {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(first) => {
                        // Consumed messages fund the next outgoing ones:
                        // their payload buffers go to this node's freelist.
                        rt.absorb_owned(first);
                        // Coalesce whatever else is pending (Table 1
                        // step 3: "one or more of the adjacent
                        // subgraphs").
                        let mut consumed: i64 = 1;
                        while let Ok(more) = rx.try_recv() {
                            consumed += 1;
                            rt.absorb_owned(more);
                        }
                        let go_on = step(&mut rt, &mut transport);
                        // Deferred decrement: the consumed waves' tokens
                        // stay outstanding until the step they caused has
                        // minted tokens for its own sends, so the counter
                        // never reads zero while this causal chain is
                        // mid-handoff (released on the halt path too —
                        // survivors' kicks must still be able to fire).
                        work.fetch_sub(consumed, Ordering::AcqRel);
                        if !go_on {
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        // Idle under LocalDelta *and* globally quiescent
                        // (no wave in any channel or the router, no step
                        // in progress): neighbours have halted, so no
                        // further waves will ever arrive. Re-solving
                        // against the unchanged boundary state yields a
                        // zero outgoing delta, letting the Table 1 step
                        // 3.3 streak complete instead of waiting forever.
                        // The single deferred-decrement counter makes the
                        // guard one atomic load — a wave merely delayed
                        // in flight, or mid-absorb in a peer, keeps it
                        // nonzero, so it can never feed the streak.
                        if self_halting && work.load(Ordering::Acquire) == 0 {
                            // The kick step owes no token: at the zero
                            // read no wave existed, so a re-solve against
                            // the unchanged boundary is zero-delta and
                            // sends nothing (any send it *did* make would
                            // mint its own token before becoming
                            // visible).
                            let go_on = step(&mut rt, &mut transport);
                            if !go_on {
                                return;
                            }
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
        }));
    }
    drop(senders);
    drop(router_tx);

    // Supervisor: shared wall-clock loop over the snapshots.
    let outcome = wallclock::supervise(
        split,
        references.as_deref(),
        rhs_cols,
        n_rhs,
        &snapshots,
        config.common.termination,
        config.budget,
        config.poll_interval,
        || {
            // Drain waves addressed to halted workers (semantically
            // dropped) so the work counter can reach zero and let the
            // survivors' quiescence kick fire.
            for (i, h) in handles.iter().enumerate() {
                if h.is_finished() {
                    while drain_rx[i].try_recv().is_ok() {
                        work.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }
            handles.iter().all(|h| h.is_finished())
        },
    );
    stop.store(true, Ordering::Relaxed);
    // Re-raise any worker/router panic with its original payload rather
    // than masking it behind a generic join message.
    for h in handles {
        if let Err(payload) = h.join() {
            std::panic::resume_unwind(payload);
        }
    }
    if let Err(payload) = router_handle.join() {
        std::panic::resume_unwind(payload);
    }

    let converged = match config.common.termination {
        Termination::OracleRms { tol } | Termination::Residual { tol } => {
            outcome.best_metric <= tol
        }
        Termination::LocalDelta { .. } => {
            // A worker retired by the solve cap never declared
            // convergence; don't let "everyone eventually stopped"
            // masquerade as success.
            outcome.stop == StopKind::AllHalted && !any_capped.load(Ordering::Acquire)
        }
    };
    Ok(SolveReport {
        backend: BackendKind::Threaded,
        algorithm: AlgorithmKind::Dtm,
        solution: outcome.solutions[0].clone(),
        n_rhs,
        solutions: outcome.solutions,
        final_rms_per_rhs: outcome.final_rms_per_rhs,
        converged,
        final_rms: outcome.final_rms,
        final_residual: outcome.final_residual,
        final_residual_per_rhs: outcome.final_residual_per_rhs,
        final_time_ms: outcome.elapsed.as_secs_f64() * 1e3,
        series: outcome.series,
        total_solves: total_solves.load(Ordering::Relaxed),
        total_messages: total_messages.load(Ordering::Relaxed),
        total_flops: part_flops.iter().map(|f| f.load(Ordering::Relaxed)).sum(),
        coalesced_batches: 0,
        n_parts,
        stop: outcome.stop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impedance::ImpedancePolicy;
    use dtm_graph::evs::{split as evs_split, EvsOptions};
    use dtm_graph::{ElectricGraph, PartitionPlan};
    use dtm_simnet::DelayModel;
    use dtm_sparse::generators;

    fn grid_split(nx: usize, k: usize, seed: u64) -> SplitSystem {
        let a = generators::grid2d_random(nx, nx, 1.0, seed);
        let b = generators::random_rhs(nx * nx, seed + 1);
        let g = ElectricGraph::from_system(a, b).unwrap();
        let asg = dtm_graph::partition::grid_strips(nx, nx, k);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        evs_split(&g, &plan, &EvsOptions::default()).unwrap()
    }

    #[test]
    fn threaded_dtm_converges_natural_asynchrony() {
        let ss = grid_split(10, 4, 71);
        let config = ThreadedConfig {
            common: CommonConfig {
                termination: Termination::OracleRms { tol: 1e-8 },
                ..ThreadedConfig::default().common
            },
            budget: Duration::from_secs(60),
            ..Default::default()
        };
        let report = solve(&ss, &config).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
        assert_eq!(report.backend, BackendKind::Threaded);
        let (a, b) = ss.reconstruct();
        assert!(a.residual_norm(&report.solution, &b) < 1e-5);
        assert!(report.total_solves > 4);
        assert!(report.total_messages > 0);
    }

    #[test]
    fn threaded_dtm_with_injected_heterogeneous_delays() {
        let ss = grid_split(8, 4, 72);
        let topo =
            dtm_simnet::Topology::ring(4).with_delays(&DelayModel::uniform_ms(10.0, 99.0, 9));
        let config = ThreadedConfig {
            common: CommonConfig {
                termination: Termination::OracleRms { tol: 1e-7 },
                ..ThreadedConfig::default().common
            },
            budget: Duration::from_secs(60),
            delay_topology: Some(topo),
            delay_scale: 1e-3, // 10–99 ms simulated → 10–99 µs real
            ..Default::default()
        };
        let report = solve(&ss, &config).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
    }

    #[test]
    fn threaded_local_delta_self_halts() {
        let ss = grid_split(8, 3, 73);
        let config = ThreadedConfig {
            common: CommonConfig {
                termination: Termination::LocalDelta {
                    tol: 1e-12,
                    patience: 4,
                },
                ..ThreadedConfig::default().common
            },
            budget: Duration::from_secs(60),
            ..Default::default()
        };
        let report = solve(&ss, &config).unwrap();
        assert_eq!(report.stop, StopKind::AllHalted);
        assert!(report.converged);
        assert!(report.final_rms < 1e-6, "rms {}", report.final_rms);
    }

    #[test]
    fn threaded_solve_cap_is_not_convergence() {
        let ss = grid_split(8, 3, 74);
        let config = ThreadedConfig {
            common: CommonConfig {
                // tol 0.0: the delta rule can never fire; only the cap halts.
                termination: Termination::LocalDelta {
                    tol: 0.0,
                    patience: 2,
                },
                max_solves_per_node: 5,
                ..ThreadedConfig::default().common
            },
            budget: Duration::from_secs(30),
            ..Default::default()
        };
        let report = solve(&ss, &config).unwrap();
        assert!(
            !report.converged,
            "capped-out run must not claim convergence (rms {})",
            report.final_rms
        );
    }

    #[test]
    fn threaded_local_delta_with_long_real_delays_still_converges() {
        // Regression: waves spending ~10 ms in the router used to let the
        // 1 ms idle kick feed the zero-delta self-halt streak, halting
        // workers long before the run converged. The quiescence guard
        // (no worker active, nothing in flight) must hold the kick back
        // until the waves have genuinely stopped.
        let ss = grid_split(6, 2, 75);
        let topo = dtm_simnet::Topology::ring(2).with_delays(&DelayModel::fixed_ms(10.0));
        let config = ThreadedConfig {
            common: CommonConfig {
                termination: Termination::LocalDelta {
                    tol: 1e-12,
                    patience: 4,
                },
                ..ThreadedConfig::default().common
            },
            budget: Duration::from_secs(60),
            delay_topology: Some(topo),
            delay_scale: 1.0, // 10 ms simulated -> 10 ms real
            ..Default::default()
        };
        let report = solve(&ss, &config).unwrap();
        assert_eq!(report.stop, StopKind::AllHalted);
        assert!(report.converged);
        assert!(report.final_rms < 1e-6, "rms {}", report.final_rms);
    }

    #[test]
    fn malformed_delay_topology_is_a_typed_error_not_a_panic() {
        // Regression: a delay topology missing a route's link used to
        // panic inside a worker thread ("no link {src} → {dst}") and
        // surface as a join panic; it must be a typed error before any
        // thread spawns.
        let ss = grid_split(6, 3, 76);
        // A 3-node topology with NO links at all: every route is missing.
        let topo = dtm_simnet::Topology::from_links(3, vec![]);
        let config = ThreadedConfig {
            delay_topology: Some(topo),
            budget: Duration::from_secs(5),
            ..Default::default()
        };
        let err = solve(&ss, &config);
        assert!(err.is_err(), "missing links must be a typed error");
        let msg = format!("{}", err.unwrap_err());
        assert!(msg.contains("no link"), "typed message, got: {msg}");

        // Wrong processor count is likewise typed.
        let wrong = ThreadedConfig {
            delay_topology: Some(
                dtm_simnet::Topology::ring(4).with_delays(&DelayModel::fixed_ms(1.0)),
            ),
            budget: Duration::from_secs(5),
            ..Default::default()
        };
        assert!(solve(&ss, &wrong).is_err());
    }

    #[test]
    fn paper_example_on_two_threads() {
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a.clone(), b.clone()).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            explicit: dtm_graph::evs::paper_example_shares(),
            ..Default::default()
        };
        let ss = evs_split(&g, &plan, &options).unwrap();
        let config = ThreadedConfig {
            common: CommonConfig {
                impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
                termination: Termination::OracleRms { tol: 1e-9 },
                ..ThreadedConfig::default().common
            },
            budget: Duration::from_secs(30),
            ..Default::default()
        };
        let report = solve(&ss, &config).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
        let exact = dtm_sparse::DenseCholesky::factor_csr(&a).unwrap().solve(&b);
        for (u, v) in report.solution.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-6);
        }
    }
}

//! DTM on real OS threads — genuine asynchrony, no simulation.
//!
//! The simulated engine proves the algorithm under *controlled* asynchrony;
//! this executor proves it under the real thing: one thread per subdomain,
//! lock-free crossbeam channels for the N2N messages, no barrier anywhere.
//! An optional router thread injects per-link delays (scaled from a
//! [`Topology`]) so heterogeneous-machine behaviour can be exercised with
//! real threads too.
//!
//! Termination mirrors Table 1 step 3.3: every worker halts itself once its
//! outgoing boundary conditions stop changing; a lightweight supervisor
//! additionally watches the shared snapshots and raises a global stop flag
//! when the oracle tolerance is met (or a wall-clock budget expires).

use crate::impedance::{per_port, ImpedancePolicy};
use crate::local::{LocalSolverKind, LocalSystem};
use crate::solver::PortUpdate;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dtm_graph::evs::SplitSystem;
use dtm_simnet::Topology;
use dtm_sparse::{Result, SparseCholesky};
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Threaded-executor configuration.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Impedance policy.
    pub impedance: ImpedancePolicy,
    /// Local factorization backend.
    pub solver_kind: LocalSolverKind,
    /// Oracle RMS tolerance watched by the supervisor.
    pub tol: f64,
    /// Wall-clock budget.
    pub budget: Duration,
    /// Per-worker solve cap.
    pub max_solves: usize,
    /// Local-delta self-halt: outgoing-wave change tolerance.
    pub local_tol: f64,
    /// Consecutive small-delta solves before self-halt.
    pub patience: usize,
    /// Inject link delays from this topology, scaled by `delay_scale`
    /// (simulated nanoseconds × scale = real nanoseconds). `None` sends
    /// directly (natural channel latency only).
    pub delay_topology: Option<Topology>,
    /// Delay scale factor (default 1e-3: simulated ms → real µs).
    pub delay_scale: f64,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        Self {
            impedance: ImpedancePolicy::default(),
            solver_kind: LocalSolverKind::Auto,
            tol: 1e-8,
            budget: Duration::from_secs(30),
            max_solves: 1_000_000,
            local_tol: 1e-12,
            patience: 4,
            delay_topology: None,
            delay_scale: 1e-3,
        }
    }
}

/// Threaded run outcome.
#[derive(Debug, Clone, Serialize)]
pub struct ThreadedReport {
    /// Gathered global solution.
    pub solution: Vec<f64>,
    /// Oracle tolerance met?
    pub converged: bool,
    /// Final RMS error.
    pub final_rms: f64,
    /// Wall-clock elapsed.
    pub elapsed: Duration,
    /// Total solves across workers.
    pub total_solves: u64,
    /// Total messages sent.
    pub total_messages: u64,
}

struct WireMsg {
    updates: Vec<PortUpdate>,
}

enum RouterMsg {
    Forward {
        deliver_at: Instant,
        dst: usize,
        msg: WireMsg,
    },
    /// Explicit shutdown; the router also exits when all worker-side
    /// senders disconnect, which is the path the supervisor normally takes.
    #[allow(dead_code)]
    Shutdown,
}

/// Run DTM on real threads.
///
/// # Errors
/// Propagates impedance/factorization failures.
///
/// # Panics
/// Panics if a worker thread panics (the panic is propagated on join).
pub fn solve(split: &SplitSystem, config: &ThreadedConfig) -> Result<ThreadedReport> {
    let n_parts = split.n_parts();
    let (a, b) = split.reconstruct();
    let reference = SparseCholesky::factor_rcm(&a)?.solve(&b);

    let z_dtlp = config.impedance.assign(split)?;
    let z_ports = per_port(split, &z_dtlp);
    let locals: Vec<LocalSystem> = split
        .subdomains
        .iter()
        .enumerate()
        .map(|(p, sd)| LocalSystem::new(sd, &z_ports[p], config.solver_kind))
        .collect::<Result<_>>()?;

    // Wiring: one channel per part; router channel if delays are injected.
    let mut senders: Vec<Sender<WireMsg>> = Vec::with_capacity(n_parts);
    let mut receivers: Vec<Option<Receiver<WireMsg>>> = Vec::with_capacity(n_parts);
    for _ in 0..n_parts {
        let (tx, rx) = unbounded::<WireMsg>();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let (router_tx, router_rx) = unbounded::<RouterMsg>();
    let delays: Option<Arc<Topology>> = config.delay_topology.clone().map(Arc::new);

    let stop = Arc::new(AtomicBool::new(false));
    let total_solves = Arc::new(AtomicU64::new(0));
    let total_messages = Arc::new(AtomicU64::new(0));
    let snapshots: Arc<Vec<Mutex<Vec<f64>>>> = Arc::new(
        locals
            .iter()
            .map(|l| Mutex::new(vec![0.0; l.n_local()]))
            .collect(),
    );

    // Router thread: delivers delayed messages in deadline order.
    let router_handle = {
        let senders = senders.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            struct Pending {
                deliver_at: Instant,
                seq: u64,
                dst: usize,
                msg: WireMsg,
            }
            impl PartialEq for Pending {
                fn eq(&self, o: &Self) -> bool {
                    (self.deliver_at, self.seq) == (o.deliver_at, o.seq)
                }
            }
            impl Eq for Pending {}
            impl PartialOrd for Pending {
                fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                    Some(self.cmp(o))
                }
            }
            impl Ord for Pending {
                fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                    (self.deliver_at, self.seq).cmp(&(o.deliver_at, o.seq))
                }
            }
            let mut heap: BinaryHeap<Reverse<Pending>> = BinaryHeap::new();
            let mut seq = 0u64;
            loop {
                let timeout = heap
                    .peek()
                    .map(|Reverse(p)| {
                        p.deliver_at
                            .saturating_duration_since(Instant::now())
                            .min(Duration::from_millis(1))
                    })
                    .unwrap_or(Duration::from_millis(1));
                match router_rx.recv_timeout(timeout) {
                    Ok(RouterMsg::Forward {
                        deliver_at,
                        dst,
                        msg,
                    }) => {
                        seq += 1;
                        heap.push(Reverse(Pending {
                            deliver_at,
                            seq,
                            dst,
                            msg,
                        }));
                    }
                    Ok(RouterMsg::Shutdown) => return,
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
                let now = Instant::now();
                while let Some(Reverse(p)) = heap.peek() {
                    if p.deliver_at > now || stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Reverse(p) = heap.pop().expect("peeked");
                    // Ignore send failures during shutdown.
                    let _ = senders[p.dst].send(p.msg);
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
        })
    };

    // Worker threads.
    let mut handles = Vec::with_capacity(n_parts);
    for (p, mut local) in locals.into_iter().enumerate() {
        let rx = receivers[p].take().expect("receiver unused");
        let senders = senders.clone();
        let router_tx = router_tx.clone();
        let delays = delays.clone();
        let stop = stop.clone();
        let total_solves = total_solves.clone();
        let total_messages = total_messages.clone();
        let snapshots = snapshots.clone();
        let routes: Vec<(usize, Vec<(usize, usize)>)> = {
            let sd = &split.subdomains[p];
            let mut routes: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
            for (my_port, port) in sd.ports.iter().enumerate() {
                match routes.iter_mut().find(|(d, _)| *d == port.peer.part) {
                    Some((_, pairs)) => pairs.push((port.peer.port, my_port)),
                    None => routes.push((port.peer.part, vec![(port.peer.port, my_port)])),
                }
            }
            routes
        };
        let max_solves = config.max_solves;
        let local_tol = config.local_tol;
        let patience = config.patience;
        let delay_scale = config.delay_scale;

        handles.push(std::thread::spawn(move || {
            let mut streak = 0usize;
            let solve_and_send = |local: &mut LocalSystem, streak: &mut usize| -> bool {
                local.solve();
                total_solves.fetch_add(1, Ordering::Relaxed);
                snapshots[p].lock().copy_from_slice(local.solution());
                for (dst, pairs) in &routes {
                    let updates: Vec<PortUpdate> = pairs
                        .iter()
                        .map(|&(their_port, my_port)| {
                            let (u, omega) = local.outgoing(my_port);
                            PortUpdate {
                                port: their_port,
                                u,
                                omega,
                            }
                        })
                        .collect();
                    total_messages.fetch_add(1, Ordering::Relaxed);
                    let msg = WireMsg { updates };
                    match &delays {
                        Some(topo) => {
                            let ns = topo.delay(p, *dst).as_nanos() as f64 * delay_scale;
                            let deliver_at =
                                Instant::now() + Duration::from_nanos(ns.round() as u64);
                            let _ = router_tx.send(RouterMsg::Forward {
                                deliver_at,
                                dst: *dst,
                                msg,
                            });
                        }
                        None => {
                            let _ = senders[*dst].send(msg);
                        }
                    }
                }
                // Local convergence (Table 1 step 3.3).
                if local.last_delta() < local_tol {
                    *streak += 1;
                    if *streak >= patience {
                        return false;
                    }
                } else {
                    *streak = 0;
                }
                local.n_solves() < max_solves
            };

            // Initial solve with the zero boundary guess (eq. 5.6).
            if !solve_and_send(&mut local, &mut streak) {
                return;
            }
            loop {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(first) => {
                        for upd in first.updates {
                            local.set_remote(upd.port, upd.u, upd.omega);
                        }
                        // Coalesce whatever else is pending.
                        while let Ok(more) = rx.try_recv() {
                            for upd in more.updates {
                                local.set_remote(upd.port, upd.u, upd.omega);
                            }
                        }
                        if !solve_and_send(&mut local, &mut streak) {
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
        }));
    }
    drop(senders);
    drop(router_tx);

    // Supervisor: watch the snapshots until tolerance or budget.
    let started = Instant::now();
    let mut rms;
    let gather = |snapshots: &Arc<Vec<Mutex<Vec<f64>>>>| -> Vec<f64> {
        let xs: Vec<Vec<f64>> = snapshots.iter().map(|m| m.lock().clone()).collect();
        split.gather(&xs)
    };
    loop {
        std::thread::sleep(Duration::from_micros(500));
        let est = gather(&snapshots);
        rms = dtm_sparse::vector::rms_error(&est, &reference);
        if rms <= config.tol || started.elapsed() >= config.budget {
            break;
        }
        if handles.iter().all(|h| h.is_finished()) {
            // All workers self-halted.
            let est = gather(&snapshots);
            rms = dtm_sparse::vector::rms_error(&est, &reference);
            break;
        }
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("worker thread panicked");
    }
    router_handle.join().expect("router thread panicked");

    let solution = gather(&snapshots);
    let final_rms = dtm_sparse::vector::rms_error(&solution, &reference);
    Ok(ThreadedReport {
        converged: final_rms.min(rms) <= config.tol,
        final_rms,
        elapsed: started.elapsed(),
        total_solves: total_solves.load(Ordering::Relaxed),
        total_messages: total_messages.load(Ordering::Relaxed),
        solution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::evs::{split as evs_split, EvsOptions};
    use dtm_graph::{ElectricGraph, PartitionPlan};
    use dtm_simnet::DelayModel;
    use dtm_sparse::generators;

    fn grid_split(nx: usize, k: usize, seed: u64) -> SplitSystem {
        let a = generators::grid2d_random(nx, nx, 1.0, seed);
        let b = generators::random_rhs(nx * nx, seed + 1);
        let g = ElectricGraph::from_system(a, b).unwrap();
        let asg = dtm_graph::partition::grid_strips(nx, nx, k);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        evs_split(&g, &plan, &EvsOptions::default()).unwrap()
    }

    #[test]
    fn threaded_dtm_converges_natural_asynchrony() {
        let ss = grid_split(10, 4, 71);
        let config = ThreadedConfig {
            tol: 1e-8,
            budget: Duration::from_secs(60),
            ..Default::default()
        };
        let report = solve(&ss, &config).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
        let (a, b) = ss.reconstruct();
        assert!(a.residual_norm(&report.solution, &b) < 1e-5);
        assert!(report.total_solves > 4);
    }

    #[test]
    fn threaded_dtm_with_injected_heterogeneous_delays() {
        let ss = grid_split(8, 4, 72);
        let topo = dtm_simnet::Topology::ring(4)
            .with_delays(&DelayModel::uniform_ms(10.0, 99.0, 9));
        let config = ThreadedConfig {
            tol: 1e-7,
            budget: Duration::from_secs(60),
            delay_topology: Some(topo),
            delay_scale: 1e-3, // 10–99 ms simulated → 10–99 µs real
            ..Default::default()
        };
        let report = solve(&ss, &config).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
    }

    #[test]
    fn paper_example_on_two_threads() {
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a.clone(), b.clone()).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            explicit: dtm_graph::evs::paper_example_shares(),
            ..Default::default()
        };
        let ss = evs_split(&g, &plan, &options).unwrap();
        let config = ThreadedConfig {
            impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
            tol: 1e-9,
            budget: Duration::from_secs(30),
            ..Default::default()
        };
        let report = solve(&ss, &config).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
        let exact = dtm_sparse::DenseCholesky::factor_csr(&a).unwrap().solve(&b);
        for (u, v) in report.solution.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-6);
        }
    }
}

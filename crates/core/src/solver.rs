//! DTM on the simulated heterogeneous machine — the algorithm of Table 1
//! under the [`SimulatedBackend`].
//!
//! This module is a **thin adapter**: the node behaviour (solve-and-
//! scatter, wave merge, self-halt) lives in [`crate::runtime`], shared
//! with every other executor. What this file owns is the *mapping onto the
//! simulated machine*: each [`NodeRuntime`] becomes a [`dtm_simnet`]
//! processor, each wave-front message travels the directed link whose
//! simulated delay realises the DTL's transmission delay (the
//! Algorithm-Architecture Delay Mapping), and the per-activation compute
//! time comes from a [`ComputeModel`]. There is no synchronization
//! anywhere: a node re-solves whenever at least one neighbour's boundary
//! condition arrives, with whatever other values it currently holds.

use crate::local::LocalSystem;
use crate::monitor::Monitor;
use crate::report::{AlgorithmKind, BackendKind, SolveReport, StopKind};
use crate::runtime::{
    self, build_nodes as build_runtime_nodes, CommonConfig, ExecutorBackend, NodeRuntime, Transport,
};
use dtm_graph::evs::SplitSystem;
use dtm_simnet::{Ctx, Engine, Envelope, Node, SimDuration, SimTime, StopReason, Topology};
use dtm_sparse::{Error, Result};

// The shared runtime vocabulary, re-exported where it historically lived.
pub use crate::runtime::{DtmMsg, PortUpdate, Termination};

/// Per-activation compute-time model for a processor's local solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComputeModel {
    /// Instantaneous solves. Only sensible for acyclic 2-processor setups —
    /// on cyclic topologies zero compute lets the event rate grow without
    /// bound (each batch triggers an immediate resend).
    Zero,
    /// Constant solve time.
    Fixed(SimDuration),
    /// Proportional to the local factor size: `ns_per_entry × nnz(L)` per
    /// RHS column, clamped below by `floor`. This is the legacy
    /// "K columns cost K× a scalar substitution" model — it ignores that
    /// a block solve sweeps the factor **once** for all columns; prefer
    /// [`ComputeModel::Batched`] (the default), which separates the
    /// per-sweep traversal from the per-column arithmetic.
    PerFactorEntry {
        /// Nanoseconds per stored factor entry per column.
        ns_per_entry: f64,
        /// Minimum activation cost.
        floor: SimDuration,
    },
    /// Batch-aware substitution cost mirroring the blocked kernels: one
    /// factor traversal per activation (index decoding, cache misses —
    /// amortized over the block) plus `k` unit-stride column sweeps:
    ///
    /// `cost(nnz, k) = traversal_ns_per_entry·nnz
    ///               + column_ns_per_entry·nnz·k`, clamped below by `floor`.
    Batched {
        /// Nanoseconds per stored factor entry for the shared traversal.
        traversal_ns_per_entry: f64,
        /// Nanoseconds per stored factor entry per RHS column.
        column_ns_per_entry: f64,
        /// Minimum activation cost.
        floor: SimDuration,
    },
}

impl Default for ComputeModel {
    fn default() -> Self {
        // ~1 ns/entry to stream the factor (indices + one value load) and
        // ~1 ns/entry/column of fused multiply-adds, on top of a 10 µs
        // activation floor (syscall + message handling). A scalar solve
        // costs the same 2 ns/entry as the pre-batching default.
        ComputeModel::Batched {
            traversal_ns_per_entry: 1.0,
            column_ns_per_entry: 1.0,
            floor: SimDuration::from_micros_f64(10.0),
        }
    }
}

impl ComputeModel {
    /// Resolve to a concrete duration for a local system (its factor size
    /// and its block width).
    pub fn duration_for(&self, local: &LocalSystem) -> SimDuration {
        self.duration_for_block(local.factor_nnz(), local.n_rhs())
    }

    /// Resolve to a concrete duration for a scalar (one-column) solve over
    /// a factor with `nnz` entries.
    pub fn duration_for_nnz(&self, nnz: usize) -> SimDuration {
        self.duration_for_block(nnz, 1)
    }

    /// Resolve to a concrete duration for a `k`-column block solve over a
    /// factor with `nnz` entries.
    pub fn duration_for_block(&self, nnz: usize, k: usize) -> SimDuration {
        match *self {
            ComputeModel::Zero => SimDuration::ZERO,
            ComputeModel::Fixed(d) => d,
            ComputeModel::PerFactorEntry {
                ns_per_entry,
                floor,
            } => {
                let ns = (ns_per_entry * (nnz * k) as f64).round() as u64;
                floor.max(SimDuration::from_nanos(ns))
            }
            ComputeModel::Batched {
                traversal_ns_per_entry,
                column_ns_per_entry,
                floor,
            } => {
                let ns = (traversal_ns_per_entry * nnz as f64
                    + column_ns_per_entry * (nnz * k) as f64)
                    .round() as u64;
                floor.max(SimDuration::from_nanos(ns))
            }
        }
    }
}

/// Simulated-backend configuration: the shared [`CommonConfig`] plus the
/// knobs that only exist on a simulated machine.
#[derive(Debug, Clone)]
pub struct DtmConfig {
    /// Algorithm configuration shared with every backend.
    pub common: CommonConfig,
    /// Compute-time model.
    pub compute: ComputeModel,
    /// Simulated-time budget.
    pub horizon: SimDuration,
    /// Series sampling interval (zero = every activation).
    pub sample_interval: SimDuration,
    /// Capture an activation trace of this capacity.
    pub trace_capacity: Option<usize>,
}

impl Default for DtmConfig {
    fn default() -> Self {
        Self {
            common: CommonConfig::default(),
            compute: ComputeModel::default(),
            horizon: SimDuration::from_millis_f64(60_000.0),
            sample_interval: SimDuration::ZERO,
            trace_capacity: None,
        }
    }
}

/// One subdomain living on one simulated processor: the shared
/// [`NodeRuntime`] plus its simulated per-activation compute time.
#[derive(Debug)]
pub struct DtmNode {
    rt: NodeRuntime,
    compute: SimDuration,
}

impl DtmNode {
    /// The local system (for inspection).
    pub fn local(&self) -> &LocalSystem {
        self.rt.local()
    }

    /// The subdomain/part id.
    pub fn part(&self) -> usize {
        self.rt.part()
    }

    /// Swap one column of the live block for a freshly admitted local
    /// right-hand side (see
    /// [`NodeRuntime::swap_rhs_col`](crate::runtime::NodeRuntime::swap_rhs_col))
    /// — called by the rolling session between engine `run` slices.
    pub fn swap_rhs_col(&mut self, col: usize, rhs_col: &[f64]) {
        self.rt.swap_rhs_col(col, rhs_col);
    }
}

/// Adapter: scattered waves leave through the simulation context, so the
/// link's simulated delay becomes the DTL's transmission delay.
struct CtxTransport<'a, 't>(&'a mut Ctx<'t, DtmMsg>);

impl Transport for CtxTransport<'_, '_> {
    fn send(&mut self, dst: usize, msg: DtmMsg) {
        self.0.send(dst, msg);
    }
}

impl DtmNode {
    fn run_step(&mut self, ctx: &mut Ctx<DtmMsg>) {
        ctx.set_compute(self.compute);
        if self.rt.step(&mut CtxTransport(ctx)).is_halt() {
            ctx.halt();
        }
    }
}

impl Node for DtmNode {
    type Msg = DtmMsg;

    fn start(&mut self, ctx: &mut Ctx<DtmMsg>) {
        // Initial boundary guess is zero (eq. 5.6) — already the local
        // system's initial state. Solve and transmit (Table 1 steps 1–2).
        self.run_step(ctx);
    }

    fn receive(&mut self, ctx: &mut Ctx<DtmMsg>, batch: &mut Vec<Envelope<DtmMsg>>) {
        for env in batch.drain(..) {
            // Consume the wave and recycle its payload buffer into this
            // node's freelist: steady-state exchange allocates nothing.
            self.rt.absorb_owned(env.payload);
        }
        self.run_step(ctx);
    }
}

/// Build the simulated DTM nodes for a split system, checking the
/// algorithm-architecture mapping.
///
/// # Errors
/// Fails if the impedance assignment fails, a local factorization fails,
/// or a DTLP connects parts with no directed machine link (broken
/// algorithm-architecture mapping).
pub fn build_nodes(
    split: &SplitSystem,
    topology: &Topology,
    config: &DtmConfig,
) -> Result<Vec<DtmNode>> {
    check_mapping(split, topology)?;
    Ok(map_nodes(
        build_runtime_nodes(split, &config.common)?,
        config,
    ))
}

/// [`build_nodes`] for a block of simultaneous right-hand sides: `rhs_cols`
/// are global RHS vectors scattered onto the split (see
/// [`runtime::build_nodes_block`]).
///
/// # Errors
/// See [`build_nodes`].
pub fn build_nodes_block(
    split: &SplitSystem,
    topology: &Topology,
    config: &DtmConfig,
    rhs_cols: &[Vec<f64>],
) -> Result<Vec<DtmNode>> {
    check_mapping(split, topology)?;
    Ok(map_nodes(
        runtime::build_nodes_block(split, &config.common, rhs_cols)?,
        config,
    ))
}

/// Check the algorithm-architecture mapping before the (dominant)
/// factorization cost: every DTLP needs a directed machine link. Shared
/// with [`DtmBuilder::build`](crate::builder::DtmBuilder::build), so a
/// malformed machine surfaces as a typed error at assembly time instead of
/// a [`dtm_simnet::MissingLink`] panic mid-run.
pub(crate) fn check_mapping(split: &SplitSystem, topology: &Topology) -> Result<()> {
    if topology.n_nodes() != split.n_parts() {
        return Err(Error::DimensionMismatch {
            context: "DTM: one processor per subdomain",
            expected: split.n_parts(),
            actual: topology.n_nodes(),
        });
    }
    for (p, sd) in split.subdomains.iter().enumerate() {
        for port in &sd.ports {
            let dst = port.peer.part;
            if let Err(missing) = topology.try_delay(p, dst) {
                return Err(Error::Parse(format!(
                    "subdomains {p} and {dst} share a DTLP but {missing}; \
                     delay mapping impossible"
                )));
            }
        }
    }
    Ok(())
}

/// Attach per-activation compute durations to shared runtimes.
pub(crate) fn map_nodes(runtimes: Vec<NodeRuntime>, config: &DtmConfig) -> Vec<DtmNode> {
    runtimes
        .into_iter()
        .map(|rt| {
            let compute = config.compute.duration_for(rt.local());
            DtmNode { rt, compute }
        })
        .collect()
}

/// The deterministic discrete-event executor (the paper's own testbed,
/// §7).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulatedBackend;

impl ExecutorBackend for SimulatedBackend {
    type Config = (Topology, DtmConfig);

    fn kind(&self) -> BackendKind {
        BackendKind::Simulated
    }

    fn solve(
        &self,
        split: &SplitSystem,
        reference: Option<Vec<f64>>,
        (topology, config): &Self::Config,
    ) -> Result<SolveReport> {
        solve(split, topology.clone(), reference, config)
    }
}

/// Run DTM to completion on a simulated machine.
///
/// `reference` is the direct solution used for RMS monitoring; when `None`
/// it is computed here by sparse Cholesky on the reconstructed system.
///
/// # Errors
/// Propagates node-construction failures (see [`build_nodes`]).
pub fn solve(
    split: &SplitSystem,
    topology: Topology,
    reference: Option<Vec<f64>>,
    config: &DtmConfig,
) -> Result<SolveReport> {
    let references = runtime::resolve_references(
        split,
        config.common.termination,
        None,
        reference.map(|r| vec![r]),
    )?;
    let nodes = build_nodes(split, &topology, config)?;
    solve_prepared(split, topology, nodes, references, None, config)
}

/// Run DTM for a **block of right-hand sides** sharing one factorization
/// per subdomain: every wave carries one `(u, ω)` value per column, and the
/// run ends when the *worst* column meets the stopping rule.
///
/// `rhs_cols` are global right-hand-side vectors; `references` optionally
/// supplies their precomputed direct solutions (same column order).
///
/// # Errors
/// Propagates node-construction failures (see [`build_nodes_block`]).
pub fn solve_block(
    split: &SplitSystem,
    topology: Topology,
    rhs_cols: &[Vec<f64>],
    references: Option<Vec<Vec<f64>>>,
    config: &DtmConfig,
) -> Result<SolveReport> {
    let references =
        runtime::resolve_references(split, config.common.termination, Some(rhs_cols), references)?;
    let nodes = build_nodes_block(split, &topology, config, rhs_cols)?;
    solve_prepared(split, topology, nodes, references, Some(rhs_cols), config)
}

/// Run prebuilt nodes to completion — the engine loop shared by the scalar
/// path, the block path, and the streaming [`crate::builder::SolveSession`]
/// (which rebuilds nodes from cached factors between batches).
///
/// `references = None` runs **reference-free**: the monitor tracks the
/// incremental true residual instead of oracle RMS (the
/// [`Termination::Residual`] path), and the report's RMS fields are
/// `NaN`/empty. `rhs_cols` names the global right-hand-side columns the
/// nodes were built with (`None` = the split's own source vector).
///
/// # Errors
/// Currently infallible; kept fallible for parity with the other entry
/// points.
pub fn solve_prepared(
    split: &SplitSystem,
    topology: Topology,
    nodes: Vec<DtmNode>,
    references: Option<Vec<Vec<f64>>>,
    rhs_cols: Option<&[Vec<f64>]>,
    config: &DtmConfig,
) -> Result<SolveReport> {
    let n_rhs = match (&references, rhs_cols) {
        (Some(refs), _) => refs.len(),
        (None, Some(cols)) => cols.len(),
        (None, None) => 1,
    };
    let mut engine = Engine::new(topology, nodes);
    if let Some(cap) = config.trace_capacity {
        engine.enable_trace(cap);
    }
    let mut monitor = match (&references, config.common.termination) {
        // Residual termination stays residual-primary even when a
        // reference was supplied: the references then only add RMS
        // reporting, never change the stopping metric (keeps all
        // backends' stopping behaviour identical for identical inputs).
        (Some(refs), Termination::Residual { .. }) => {
            let mut m = Monitor::new_residual(split, rhs_cols, config.sample_interval);
            m.attach_oracle(refs);
            m
        }
        (Some(refs), _) => Monitor::new_block(split, refs, config.sample_interval),
        (None, _) => Monitor::new_residual(split, rhs_cols, config.sample_interval),
    };
    let horizon = SimTime::ZERO + config.horizon;

    let metric_tol = match config.common.termination {
        Termination::OracleRms { tol } | Termination::Residual { tol } => Some(tol),
        Termination::LocalDelta { .. } => None,
    };
    // Guard the incremental tracker against cancellation right where the
    // stopping decision is made.
    monitor.set_refresh_below(metric_tol.unwrap_or(0.0));
    let outcome = engine.run(horizon, |time, part, node: &DtmNode| {
        let metric = monitor.update_part(part, time, node.local().solution());
        match metric_tol {
            Some(tol) => metric > tol,
            None => true,
        }
    });

    let stats = engine.stats();
    let solutions = monitor.estimates();
    let final_rms_per_rhs = if monitor.has_oracle() {
        monitor.rms_exact_per_rhs()
    } else {
        Vec::new()
    };
    let worst = |v: &[f64]| v.iter().fold(0.0_f64, |m, &x| m.max(x));
    let final_rms = if final_rms_per_rhs.is_empty() {
        f64::NAN
    } else {
        worst(&final_rms_per_rhs)
    };
    debug_assert_eq!(
        final_rms.is_nan(),
        final_rms_per_rhs.is_empty(),
        "SolveReport contract: final_rms is NaN exactly on reference-free runs"
    );
    let final_residual_per_rhs = if monitor.tracks_residual() {
        monitor.residual_exact_per_rhs()
    } else {
        runtime::final_residuals(split, rhs_cols, &solutions)
    };
    let final_residual = worst(&final_residual_per_rhs);
    let stop = match outcome.reason {
        StopReason::ObserverStop => StopKind::OracleTolerance,
        StopReason::AllHalted => StopKind::AllHalted,
        StopReason::TimeLimit => StopKind::Horizon,
        StopReason::QueueEmpty => StopKind::Quiescent,
    };
    // A node retired by the solve cap never declared convergence: the run
    // must not report success just because everyone eventually stopped.
    let any_capped = engine.nodes().iter().any(|n| n.rt.capped());
    let total_flops: u64 = engine.nodes().iter().map(|n| n.rt.flops()).sum();
    let converged = match config.common.termination {
        Termination::OracleRms { tol } => final_rms <= tol,
        Termination::Residual { tol } => final_residual <= tol,
        Termination::LocalDelta { .. } => {
            matches!(stop, StopKind::AllHalted | StopKind::Quiescent) && !any_capped
        }
    };
    Ok(SolveReport {
        backend: BackendKind::Simulated,
        algorithm: AlgorithmKind::Dtm,
        solution: solutions[0].clone(),
        n_rhs,
        solutions,
        final_rms_per_rhs,
        converged,
        final_rms,
        final_residual,
        final_residual_per_rhs,
        final_time_ms: outcome.final_time.as_millis_f64(),
        series: monitor.into_series(),
        total_solves: stats.activations.iter().sum(),
        total_messages: stats.messages_sent,
        total_flops,
        coalesced_batches: stats.coalesced_batches,
        n_parts: split.n_parts(),
        stop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impedance::{per_port, ImpedancePolicy};
    use crate::local::{LocalSolverKind, LocalSystem};
    use dtm_graph::evs::{paper_example_shares, split as evs_split, EvsOptions};
    use dtm_graph::{ElectricGraph, PartitionPlan};
    use dtm_simnet::DelayModel;
    use dtm_sparse::generators;

    /// The paper's Example 5.1 setup: two processors, delays 6.7 µs and
    /// 2.9 µs, impedances Z₂ = 0.2 and Z₃ = 0.1.
    fn example_5_1() -> (SplitSystem, Topology) {
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a, b).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            explicit: paper_example_shares(),
            ..Default::default()
        };
        let ss = evs_split(&g, &plan, &options).unwrap();
        let topo = Topology::from_links(
            2,
            vec![
                dtm_simnet::Link {
                    src: 0,
                    dst: 1,
                    delay: SimDuration::from_micros_f64(6.7),
                },
                dtm_simnet::Link {
                    src: 1,
                    dst: 0,
                    delay: SimDuration::from_micros_f64(2.9),
                },
            ],
        );
        (ss, topo)
    }

    fn example_config() -> DtmConfig {
        DtmConfig {
            common: CommonConfig {
                impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
                termination: Termination::OracleRms { tol: 1e-10 },
                ..Default::default()
            },
            compute: ComputeModel::Zero,
            horizon: SimDuration::from_millis_f64(10.0),
            ..Default::default()
        }
    }

    #[test]
    fn example_5_1_converges_to_exact_solution() {
        let (ss, topo) = example_5_1();
        let report = solve(&ss, topo, None, &example_config()).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
        // Compare against the direct solution of (3.2).
        let (a, b) = generators::paper_example_system();
        let exact = dtm_sparse::DenseCholesky::factor_csr(&a).unwrap().solve(&b);
        for (u, v) in report.solution.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
        assert_eq!(report.n_parts, 2);
        assert_eq!(report.backend, BackendKind::Simulated);
        assert!(report.total_solves > 4);
    }

    #[test]
    fn backend_trait_solves_like_free_function() {
        let (ss, topo) = example_5_1();
        let via_trait = SimulatedBackend
            .solve(&ss, None, &(topo.clone(), example_config()))
            .unwrap();
        let direct = solve(&ss, topo, None, &example_config()).unwrap();
        assert_eq!(via_trait.total_solves, direct.total_solves);
        assert_eq!(via_trait.solution, direct.solution);
    }

    #[test]
    fn error_series_decreases_overall() {
        let (ss, topo) = example_5_1();
        let report = solve(&ss, topo, None, &example_config()).unwrap();
        let first = report.series.first().unwrap().1;
        let last = report.series.last().unwrap().1;
        assert!(
            last < first * 1e-6,
            "error must fall by orders of magnitude"
        );
    }

    #[test]
    fn local_delta_termination_halts_all_nodes() {
        let (ss, topo) = example_5_1();
        let config = DtmConfig {
            common: CommonConfig {
                impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
                termination: Termination::LocalDelta {
                    tol: 1e-12,
                    patience: 2,
                },
                ..Default::default()
            },
            compute: ComputeModel::Zero,
            horizon: SimDuration::from_millis_f64(10.0),
            ..Default::default()
        };
        let report = solve(&ss, topo, None, &config).unwrap();
        assert!(matches!(
            report.stop,
            StopKind::AllHalted | StopKind::Quiescent
        ));
        assert!(report.converged);
        assert!(report.final_rms < 1e-7, "rms {}", report.final_rms);
    }

    #[test]
    fn grid_on_2x2_mesh_converges() {
        let a = generators::grid2d_random(8, 8, 1.0, 21);
        let b = generators::random_rhs(64, 22);
        let g = ElectricGraph::from_system(a.clone(), b.clone()).unwrap();
        let asg = dtm_graph::partition::grid_blocks(8, 8, 2, 2);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        let topo = Topology::mesh(2, 2).with_delays(&DelayModel::uniform_ms(10.0, 99.0, 5));
        // Align the DTLP wiring with the machine links so cross-point
        // (multilevel) splits never need a diagonal connection.
        let pairs: std::collections::BTreeSet<(usize, usize)> = topo
            .links()
            .iter()
            .map(|l| (l.src.min(l.dst), l.src.max(l.dst)))
            .collect();
        let options = EvsOptions {
            twin_topology: dtm_graph::TwinTopology::TreeWithin(pairs),
            ..Default::default()
        };
        let ss = evs_split(&g, &plan, &options).unwrap();
        let config = DtmConfig {
            common: CommonConfig {
                termination: Termination::OracleRms { tol: 1e-9 },
                ..Default::default()
            },
            compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
            horizon: SimDuration::from_millis_f64(3_600_000.0),
            ..Default::default()
        };
        let report = solve(&ss, topo, None, &config).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
        assert!(a.residual_norm(&report.solution, &b) < 1e-6);
    }

    #[test]
    fn single_column_block_is_the_scalar_pipeline() {
        // K = 1 must remain the fast path: on a uniform-share split the
        // scattered column equals the split's own sources bit for bit, so
        // the deterministic engine must produce the identical run.
        let a = generators::grid2d_random(8, 8, 1.0, 23);
        let b = generators::random_rhs(64, 24);
        let g = ElectricGraph::from_system(a, b.clone()).unwrap();
        let asg = dtm_graph::partition::grid_strips(8, 8, 2);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        let ss = evs_split(&g, &plan, &EvsOptions::default()).unwrap();
        let topo = Topology::ring(2).with_delays(&DelayModel::fixed_ms(1.0));
        let config = DtmConfig {
            common: CommonConfig {
                termination: Termination::OracleRms { tol: 1e-9 },
                ..Default::default()
            },
            compute: ComputeModel::Fixed(SimDuration::from_micros_f64(100.0)),
            horizon: SimDuration::from_millis_f64(3_600_000.0),
            ..Default::default()
        };
        let scalar = solve(&ss, topo.clone(), None, &config).unwrap();
        let block = solve_block(&ss, topo, &[b], None, &config).unwrap();
        assert_eq!(block.n_rhs, 1);
        assert_eq!(block.total_solves, scalar.total_solves);
        assert_eq!(block.total_messages, scalar.total_messages);
        assert_eq!(block.solution, scalar.solution, "bitwise-identical run");
        assert_eq!(block.solutions[0], scalar.solution);
        assert_eq!(block.final_rms_per_rhs, vec![block.final_rms]);
    }

    #[test]
    fn mismatched_processor_count_rejected() {
        let (ss, _) = example_5_1();
        let topo3 = Topology::ring(3).with_delays(&DelayModel::fixed_ms(1.0));
        assert!(solve(&ss, topo3, None, &example_config()).is_err());
    }

    #[test]
    fn missing_link_rejected() {
        // Two subdomains but a topology with no 0↔1 links at all.
        let (ss, _) = example_5_1();
        let topo = Topology::from_links(2, vec![]);
        let err = solve(&ss, topo, None, &example_config());
        assert!(err.is_err());
    }

    #[test]
    fn trace_shows_n2n_only_and_no_sync() {
        let (ss, topo) = example_5_1();
        let config = DtmConfig {
            trace_capacity: Some(10_000),
            ..example_config()
        };
        let nodes = build_nodes(&ss, &topo, &config).unwrap();
        let mut engine = Engine::new(topo, nodes);
        engine.enable_trace(10_000);
        engine.run_until(SimTime::ZERO + SimDuration::from_micros_f64(200.0));
        // Every activation is either the start or a receive of a bounded
        // batch; message counts per link are balanced within the round-trip
        // pattern (no global rounds enforced).
        let stats = engine.stats();
        assert!(stats.messages_sent > 10);
        assert_eq!(stats.sent_per_link.len(), 2);
        assert!(stats.sent_per_link.iter().all(|&c| c > 5));
    }

    #[test]
    fn compute_model_durations() {
        let (ss, _) = example_5_1();
        let z = ImpedancePolicy::PerDtlp(vec![0.2, 0.1])
            .assign(&ss)
            .unwrap();
        let zp = per_port(&ss, &z);
        let local = LocalSystem::new(&ss.subdomains[0], &zp[0], LocalSolverKind::Dense).unwrap();
        assert_eq!(ComputeModel::Zero.duration_for(&local), SimDuration::ZERO);
        let fixed = ComputeModel::Fixed(SimDuration::from_micros_f64(5.0));
        assert_eq!(fixed.duration_for(&local).as_nanos(), 5_000);
        let per = ComputeModel::PerFactorEntry {
            ns_per_entry: 100.0,
            floor: SimDuration::ZERO,
        };
        assert_eq!(per.duration_for(&local).as_nanos(), 600); // 6 entries
    }

    #[test]
    fn batched_compute_model_formula() {
        // cost(nnz, k) = traversal·nnz + column·nnz·k, clamped by floor.
        let m = ComputeModel::Batched {
            traversal_ns_per_entry: 3.0,
            column_ns_per_entry: 2.0,
            floor: SimDuration::ZERO,
        };
        assert_eq!(m.duration_for_block(1_000, 1).as_nanos(), 5_000);
        assert_eq!(m.duration_for_block(1_000, 8).as_nanos(), 19_000);
        // One traversal is amortized over the block: an 8-column solve is
        // far cheaper than 8 scalar solves.
        assert!(m.duration_for_block(1_000, 8) < m.duration_for_nnz(1_000).saturating_mul(8));
        // The floor still clamps small activations.
        let floored = ComputeModel::Batched {
            traversal_ns_per_entry: 1.0,
            column_ns_per_entry: 1.0,
            floor: SimDuration::from_micros_f64(10.0),
        };
        assert_eq!(floored.duration_for_block(6, 2).as_nanos(), 10_000);
        // The legacy per-entry model charges K× a scalar sweep.
        let legacy = ComputeModel::PerFactorEntry {
            ns_per_entry: 2.0,
            floor: SimDuration::ZERO,
        };
        assert_eq!(
            legacy.duration_for_block(500, 4),
            legacy.duration_for_nnz(500).saturating_mul(4)
        );
        // The default model keeps the historic 2 ns/entry scalar cost.
        assert_eq!(
            ComputeModel::default()
                .duration_for_block(100_000, 1)
                .as_nanos(),
            200_000
        );
    }
}

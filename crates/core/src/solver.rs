//! DTM on the simulated heterogeneous machine — the algorithm of Table 1.
//!
//! Each subdomain becomes a [`DtmNode`] mapped 1:1 onto a processor of the
//! [`Topology`]; each DTL maps onto the directed link its messages travel,
//! so the transmission delay of the algorithm *is* the communication delay
//! of the machine (the Algorithm-Architecture Delay Mapping). There is no
//! synchronization anywhere: a node re-solves whenever at least one
//! neighbour's boundary condition arrives, with whatever other values it
//! currently holds.

use crate::impedance::{per_port, ImpedancePolicy};
use crate::local::{LocalSolverKind, LocalSystem};
use crate::monitor::Monitor;
use crate::report::{SolveReport, StopKind};
use dtm_graph::evs::SplitSystem;
use dtm_simnet::{Ctx, Engine, Envelope, Node, SimDuration, SimTime, StopReason, Topology};
use dtm_sparse::{Error, Result, SparseCholesky};

/// Per-activation compute-time model for a processor's local solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComputeModel {
    /// Instantaneous solves. Only sensible for acyclic 2-processor setups —
    /// on cyclic topologies zero compute lets the event rate grow without
    /// bound (each batch triggers an immediate resend).
    Zero,
    /// Constant solve time.
    Fixed(SimDuration),
    /// Proportional to the local factor size: `ns_per_entry × nnz(L)`,
    /// clamped below by `floor` — a realistic substitution-cost model.
    PerFactorEntry {
        /// Nanoseconds per stored factor entry.
        ns_per_entry: f64,
        /// Minimum activation cost.
        floor: SimDuration,
    },
}

impl Default for ComputeModel {
    fn default() -> Self {
        // ~2 ns per factor entry (one multiply-add streamed from cache) on
        // top of a 10 µs activation floor (syscall + message handling).
        ComputeModel::PerFactorEntry {
            ns_per_entry: 2.0,
            floor: SimDuration::from_micros_f64(10.0),
        }
    }
}

impl ComputeModel {
    /// Resolve to a concrete duration for a local system.
    pub fn duration_for(&self, local: &LocalSystem) -> SimDuration {
        self.duration_for_nnz(local.factor_nnz())
    }

    /// Resolve to a concrete duration for a factor with `nnz` entries.
    pub fn duration_for_nnz(&self, nnz: usize) -> SimDuration {
        match *self {
            ComputeModel::Zero => SimDuration::ZERO,
            ComputeModel::Fixed(d) => d,
            ComputeModel::PerFactorEntry {
                ns_per_entry,
                floor,
            } => {
                let ns = (ns_per_entry * nnz as f64).round() as u64;
                floor.max(SimDuration::from_nanos(ns))
            }
        }
    }
}

/// Stopping rule of a distributed solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Termination {
    /// Oracle: stop when the (centrally monitored) global RMS error drops
    /// below `tol`. Matches how the paper's figures are produced.
    OracleRms {
        /// RMS-error tolerance.
        tol: f64,
    },
    /// Distributed: each processor halts itself after its outgoing boundary
    /// conditions change by less than `tol` for `patience` consecutive
    /// solves (Table 1 step 3.3). The run ends when every processor halted.
    LocalDelta {
        /// Outgoing-wave change tolerance.
        tol: f64,
        /// Consecutive small-delta solves required.
        patience: usize,
    },
}

/// Full DTM configuration.
#[derive(Debug, Clone)]
pub struct DtmConfig {
    /// Impedance policy (the Fig. 9 knob).
    pub impedance: ImpedancePolicy,
    /// Local factorization backend.
    pub solver_kind: LocalSolverKind,
    /// Compute-time model.
    pub compute: ComputeModel,
    /// Stopping rule.
    pub termination: Termination,
    /// Simulated-time budget.
    pub horizon: SimDuration,
    /// Series sampling interval (zero = every activation).
    pub sample_interval: SimDuration,
    /// Safety cap on solves per node (guards non-convergent configs).
    pub max_solves_per_node: usize,
    /// Capture an activation trace of this capacity.
    pub trace_capacity: Option<usize>,
}

impl Default for DtmConfig {
    fn default() -> Self {
        Self {
            impedance: ImpedancePolicy::default(),
            solver_kind: LocalSolverKind::Auto,
            compute: ComputeModel::default(),
            termination: Termination::OracleRms { tol: 1e-8 },
            horizon: SimDuration::from_millis_f64(60_000.0),
            sample_interval: SimDuration::ZERO,
            max_solves_per_node: 200_000,
            trace_capacity: None,
        }
    }
}

/// Boundary-condition update for one port of the receiving subdomain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortUpdate {
    /// Port index *at the receiver*.
    pub port: usize,
    /// Transmitted twin potential `u`.
    pub u: f64,
    /// Transmitted twin inflow current `ω`.
    pub omega: f64,
}

/// Message payload: the local boundary conditions relevant to one
/// neighbour (Table 1 step 3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct DtmMsg {
    /// Updates keyed by receiver port.
    pub updates: Vec<PortUpdate>,
}

/// One subdomain living on one simulated processor.
#[derive(Debug)]
pub struct DtmNode {
    part: usize,
    local: LocalSystem,
    /// Per neighbour processor: `(receiver_port, my_port)` pairs.
    routes: Vec<(usize, Vec<(usize, usize)>)>,
    compute: SimDuration,
    termination: Termination,
    max_solves: usize,
    small_streak: usize,
}

impl DtmNode {
    /// The local system (for inspection).
    pub fn local(&self) -> &LocalSystem {
        &self.local
    }

    /// The subdomain/part id.
    pub fn part(&self) -> usize {
        self.part
    }

    fn solve_and_send(&mut self, ctx: &mut Ctx<DtmMsg>) {
        self.local.solve();
        ctx.set_compute(self.compute);
        for (dst, pairs) in &self.routes {
            let updates = pairs
                .iter()
                .map(|&(their_port, my_port)| {
                    let (u, omega) = self.local.outgoing(my_port);
                    PortUpdate {
                        port: their_port,
                        u,
                        omega,
                    }
                })
                .collect();
            ctx.send(*dst, DtmMsg { updates });
        }
        if let Termination::LocalDelta { tol, patience } = self.termination {
            if self.local.last_delta() < tol {
                self.small_streak += 1;
                if self.small_streak >= patience {
                    ctx.halt();
                }
            } else {
                self.small_streak = 0;
            }
        }
        if self.local.n_solves() >= self.max_solves {
            ctx.halt();
        }
    }
}

impl Node for DtmNode {
    type Msg = DtmMsg;

    fn start(&mut self, ctx: &mut Ctx<DtmMsg>) {
        // Initial boundary guess is zero (eq. 5.6) — already the local
        // system's initial state. Solve and transmit (Table 1 steps 1–2).
        self.solve_and_send(ctx);
    }

    fn receive(&mut self, ctx: &mut Ctx<DtmMsg>, batch: Vec<Envelope<DtmMsg>>) {
        for env in batch {
            for upd in env.payload.updates {
                self.local.set_remote(upd.port, upd.u, upd.omega);
            }
        }
        self.solve_and_send(ctx);
    }
}

/// Build the DTM nodes for a split system.
///
/// # Errors
/// Fails if the impedance assignment fails, a local factorization fails, or
/// a DTLP connects parts with no directed machine link (broken
/// algorithm-architecture mapping).
pub fn build_nodes(
    split: &SplitSystem,
    topology: &Topology,
    config: &DtmConfig,
) -> Result<Vec<DtmNode>> {
    if topology.n_nodes() != split.n_parts() {
        return Err(Error::DimensionMismatch {
            context: "DTM: one processor per subdomain",
            expected: split.n_parts(),
            actual: topology.n_nodes(),
        });
    }
    let z_dtlp = config.impedance.assign(split)?;
    let z_ports = per_port(split, &z_dtlp);
    let mut nodes = Vec::with_capacity(split.n_parts());
    for (p, sd) in split.subdomains.iter().enumerate() {
        // Group ports by neighbour part, deterministically.
        let mut routes: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
        for (my_port, port) in sd.ports.iter().enumerate() {
            if topology.link(p, port.peer.part).is_none() {
                return Err(Error::Parse(format!(
                    "subdomains {p} and {} share a DTLP but the machine has \
                     no link {p} → {}; delay mapping impossible",
                    port.peer.part, port.peer.part
                )));
            }
            match routes.iter_mut().find(|(dst, _)| *dst == port.peer.part) {
                Some((_, pairs)) => pairs.push((port.peer.port, my_port)),
                None => routes.push((port.peer.part, vec![(port.peer.port, my_port)])),
            }
        }
        let local = LocalSystem::new(sd, &z_ports[p], config.solver_kind)?;
        let compute = config.compute.duration_for(&local);
        nodes.push(DtmNode {
            part: p,
            local,
            routes,
            compute,
            termination: config.termination,
            max_solves: config.max_solves_per_node,
            small_streak: 0,
        });
    }
    Ok(nodes)
}

/// Run DTM to completion on a simulated machine.
///
/// `reference` is the direct solution used for RMS monitoring; when `None`
/// it is computed here by sparse Cholesky on the reconstructed system.
///
/// # Errors
/// Propagates node-construction failures (see [`build_nodes`]).
pub fn solve(
    split: &SplitSystem,
    topology: Topology,
    reference: Option<Vec<f64>>,
    config: &DtmConfig,
) -> Result<SolveReport> {
    let reference = match reference {
        Some(r) => r,
        None => {
            let (a, b) = split.reconstruct();
            SparseCholesky::factor_rcm(&a)?.solve(&b)
        }
    };
    let nodes = build_nodes(split, &topology, config)?;
    let mut engine = Engine::new(topology, nodes);
    if let Some(cap) = config.trace_capacity {
        engine.enable_trace(cap);
    }
    let mut monitor = Monitor::new(split, reference, config.sample_interval);
    let horizon = SimTime::ZERO + config.horizon;

    let oracle_tol = match config.termination {
        Termination::OracleRms { tol } => Some(tol),
        Termination::LocalDelta { .. } => None,
    };
    // Guard the incremental error tracker against cancellation right where
    // the stopping decision is made.
    monitor.set_refresh_below(oracle_tol.unwrap_or(0.0));
    let outcome = engine.run(horizon, |time, part, node: &DtmNode| {
        let rms = monitor.update_part(part, time, node.local.solution());
        match oracle_tol {
            Some(tol) => rms > tol,
            None => true,
        }
    });

    let stats = engine.stats();
    let final_rms = monitor.rms_exact();
    let stop = match outcome.reason {
        StopReason::ObserverStop => StopKind::OracleTolerance,
        StopReason::AllHalted => StopKind::AllHalted,
        StopReason::TimeLimit => StopKind::Horizon,
        StopReason::QueueEmpty => StopKind::Quiescent,
    };
    let converged = match config.termination {
        Termination::OracleRms { tol } => final_rms <= tol,
        Termination::LocalDelta { .. } => matches!(
            stop,
            StopKind::AllHalted | StopKind::Quiescent
        ),
    };
    Ok(SolveReport {
        solution: monitor.estimate().to_vec(),
        converged,
        final_rms,
        final_time_ms: outcome.final_time.as_millis_f64(),
        series: monitor.into_series(),
        total_solves: stats.activations.iter().sum(),
        total_messages: stats.messages_sent,
        coalesced_batches: stats.coalesced_batches,
        n_parts: split.n_parts(),
        stop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::evs::{paper_example_shares, split as evs_split, EvsOptions};
    use dtm_graph::{ElectricGraph, PartitionPlan};
    use dtm_simnet::DelayModel;
    use dtm_sparse::generators;

    /// The paper's Example 5.1 setup: two processors, delays 6.7 µs and
    /// 2.9 µs, impedances Z₂ = 0.2 and Z₃ = 0.1.
    fn example_5_1() -> (SplitSystem, Topology) {
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a, b).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            explicit: paper_example_shares(),
            ..Default::default()
        };
        let ss = evs_split(&g, &plan, &options).unwrap();
        let topo = Topology::from_links(
            2,
            vec![
                dtm_simnet::Link {
                    src: 0,
                    dst: 1,
                    delay: SimDuration::from_micros_f64(6.7),
                },
                dtm_simnet::Link {
                    src: 1,
                    dst: 0,
                    delay: SimDuration::from_micros_f64(2.9),
                },
            ],
        );
        (ss, topo)
    }

    fn example_config() -> DtmConfig {
        DtmConfig {
            impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
            compute: ComputeModel::Zero,
            termination: Termination::OracleRms { tol: 1e-10 },
            horizon: SimDuration::from_millis_f64(10.0),
            ..Default::default()
        }
    }

    #[test]
    fn example_5_1_converges_to_exact_solution() {
        let (ss, topo) = example_5_1();
        let report = solve(&ss, topo, None, &example_config()).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
        // Compare against the direct solution of (3.2).
        let (a, b) = generators::paper_example_system();
        let exact = dtm_sparse::DenseCholesky::factor_csr(&a).unwrap().solve(&b);
        for (u, v) in report.solution.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
        assert_eq!(report.n_parts, 2);
        assert!(report.total_solves > 4);
    }

    #[test]
    fn error_series_decreases_overall() {
        let (ss, topo) = example_5_1();
        let report = solve(&ss, topo, None, &example_config()).unwrap();
        let first = report.series.first().unwrap().1;
        let last = report.series.last().unwrap().1;
        assert!(last < first * 1e-6, "error must fall by orders of magnitude");
    }

    #[test]
    fn local_delta_termination_halts_all_nodes() {
        let (ss, topo) = example_5_1();
        let config = DtmConfig {
            termination: Termination::LocalDelta {
                tol: 1e-12,
                patience: 2,
            },
            ..example_config()
        };
        let report = solve(&ss, topo, None, &config).unwrap();
        assert!(matches!(report.stop, StopKind::AllHalted | StopKind::Quiescent));
        assert!(report.converged);
        assert!(report.final_rms < 1e-7, "rms {}", report.final_rms);
    }

    #[test]
    fn grid_on_2x2_mesh_converges() {
        let a = generators::grid2d_random(8, 8, 1.0, 21);
        let b = generators::random_rhs(64, 22);
        let g = ElectricGraph::from_system(a.clone(), b.clone()).unwrap();
        let asg = dtm_graph::partition::grid_blocks(8, 8, 2, 2);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        let topo =
            Topology::mesh(2, 2).with_delays(&DelayModel::uniform_ms(10.0, 99.0, 5));
        // Align the DTLP wiring with the machine links so cross-point
        // (multilevel) splits never need a diagonal connection.
        let pairs: std::collections::BTreeSet<(usize, usize)> = topo
            .links()
            .iter()
            .map(|l| (l.src.min(l.dst), l.src.max(l.dst)))
            .collect();
        let options = EvsOptions {
            twin_topology: dtm_graph::TwinTopology::TreeWithin(pairs),
            ..Default::default()
        };
        let ss = evs_split(&g, &plan, &options).unwrap();
        let config = DtmConfig {
            compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
            termination: Termination::OracleRms { tol: 1e-9 },
            horizon: SimDuration::from_millis_f64(3_600_000.0),
            ..Default::default()
        };
        let report = solve(&ss, topo, None, &config).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
        assert!(a.residual_norm(&report.solution, &b) < 1e-6);
    }

    #[test]
    fn mismatched_processor_count_rejected() {
        let (ss, _) = example_5_1();
        let topo3 = Topology::ring(3).with_delays(&DelayModel::fixed_ms(1.0));
        assert!(solve(&ss, topo3, None, &example_config()).is_err());
    }

    #[test]
    fn missing_link_rejected() {
        // Two subdomains but a topology with no 0↔1 links at all.
        let (ss, _) = example_5_1();
        let topo = Topology::from_links(2, vec![]);
        let err = solve(&ss, topo, None, &example_config());
        assert!(err.is_err());
    }

    #[test]
    fn trace_shows_n2n_only_and_no_sync(){
        let (ss, topo) = example_5_1();
        let config = DtmConfig {
            trace_capacity: Some(10_000),
            ..example_config()
        };
        let nodes = build_nodes(&ss, &topo, &config).unwrap();
        let mut engine = Engine::new(topo, nodes);
        engine.enable_trace(10_000);
        engine.run_until(SimTime::ZERO + SimDuration::from_micros_f64(200.0));
        // Every activation is either the start or a receive of a bounded
        // batch; message counts per link are balanced within the round-trip
        // pattern (no global rounds enforced).
        let stats = engine.stats();
        assert!(stats.messages_sent > 10);
        assert_eq!(stats.sent_per_link.len(), 2);
        assert!(stats.sent_per_link.iter().all(|&c| c > 5));
    }

    #[test]
    fn compute_model_durations() {
        let (ss, _) = example_5_1();
        let z = ImpedancePolicy::PerDtlp(vec![0.2, 0.1]).assign(&ss).unwrap();
        let zp = per_port(&ss, &z);
        let local =
            LocalSystem::new(&ss.subdomains[0], &zp[0], LocalSolverKind::Dense).unwrap();
        assert_eq!(ComputeModel::Zero.duration_for(&local), SimDuration::ZERO);
        let fixed = ComputeModel::Fixed(SimDuration::from_micros_f64(5.0));
        assert_eq!(fixed.duration_for(&local).as_nanos(), 5_000);
        let per = ComputeModel::PerFactorEntry {
            ns_per_entry: 100.0,
            floor: SimDuration::ZERO,
        };
        assert_eq!(per.duration_for(&local).as_nanos(), 600); // 6 entries
    }
}

//! DTM on an in-process work-stealing pool — the [`WorkStealingBackend`].
//!
//! The third executor, and the proof that the [`crate::runtime`]
//! abstraction holds: the *same* [`NodeRuntime`] state machine that runs
//! under the discrete-event simulator and under one-thread-per-subdomain
//! here runs as **tasks on a rayon work-stealing pool**, one task per
//! activation. This is the execution shape a production service would
//! use: subdomain count decoupled from thread count, load balanced by
//! stealing, no thread parked on an idle subdomain.
//!
//! Delay mapping: a wave is an inbox entry plus a spawned task, so the
//! DTL transmission delay is realised by task queueing/stealing latency —
//! natural, uncontrolled asynchrony, exactly the regime the paper's
//! Theorem 6.1 covers (convergence for *arbitrary* positive delays).
//!
//! Scheduling protocol (per node): wave arrival appends the updates to
//! the node's inbox and sets its `scheduled` bit; if the bit was clear, an
//! activation task is spawned. The task clears the bit *before* draining
//! the inbox, so updates arriving during the solve schedule a fresh
//! activation instead of being lost — the lock-free equivalent of the
//! simulator's busy-window coalescing (Table 1 step 3: "one or more of
//! the adjacent subgraphs").

use crate::report::{AlgorithmKind, BackendKind, SolveReport, StopKind};
use crate::runtime::{
    self, wallclock, CommonConfig, DtmMsg, ExecutorBackend, NodeControl, NodeRuntime, Termination,
};
use crate::sync::{Arc, AtomicBool, AtomicU64, AtomicUsize, Mutex, Ordering};
use dtm_graph::evs::SplitSystem;
use dtm_sparse::Result;
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::time::Duration;

/// Work-stealing-executor configuration: the shared [`CommonConfig`] plus
/// pool sizing and wall-clock knobs.
#[derive(Debug, Clone)]
pub struct RayonConfig {
    /// Algorithm configuration shared with every backend.
    pub common: CommonConfig,
    /// Worker threads in the pool (`0` = available parallelism).
    pub num_threads: usize,
    /// Wall-clock budget.
    pub budget: Duration,
    /// Supervisor poll interval.
    pub poll_interval: Duration,
}

impl Default for RayonConfig {
    fn default() -> Self {
        Self {
            common: CommonConfig {
                max_solves_per_node: 1_000_000,
                ..Default::default()
            },
            num_threads: 0,
            budget: Duration::from_secs(30),
            poll_interval: Duration::from_micros(500),
        }
    }
}

/// One node's runtime plus its recycled activation buffers, all serialized
/// by one lock (activations of the same node never overlap their solves).
struct NodeState {
    rt: NodeRuntime,
    /// Swap target for the inbox: messages drain through here and their
    /// payload buffers return to `rt`'s freelist.
    drain: Vec<DtmMsg>,
    /// Reused scatter buffer (drained after every step, capacity kept).
    outbox: Vec<(usize, DtmMsg)>,
}

/// Per-subdomain shared state the tasks operate on.
struct NodeCell {
    state: Mutex<NodeState>,
    /// Whole wave-front messages, one per sender step — coalesced
    /// per-neighbour by the runtime, delivered without flattening so the
    /// payload buffers survive to be recycled.
    inbox: Mutex<Vec<DtmMsg>>,
    /// An activation task is queued or running.
    scheduled: AtomicBool,
    /// The node returned a halting [`NodeControl`].
    halted: AtomicBool,
}

struct Shared {
    cells: Vec<NodeCell>,
    snapshots: Vec<wallclock::SharedBlock>,
    stop: AtomicBool,
    halted_count: AtomicUsize,
    /// Some node was retired by the solve cap rather than by declaring
    /// convergence.
    any_capped: AtomicBool,
    total_solves: AtomicU64,
    total_messages: AtomicU64,
}

/// Run one activation of node `p`: drain inbox, merge, solve-and-scatter,
/// deliver the outgoing waves and schedule their receivers.
///
/// `force` solves even with an empty inbox (the initial eq.-5.6 solve and
/// the supervisor's idle kick). Without it an empty drain — possible when
/// a delivery raced an in-flight activation that already absorbed it —
/// returns without solving, so spurious wakeups can never feed the
/// zero-delta self-halt streak.
fn activate(shared: &Arc<Shared>, pool: &Arc<ThreadPool>, p: usize, force: bool) {
    let cell = &shared.cells[p];
    // Clear *before* draining: a wave landing after this point spawns a
    // fresh activation rather than relying on this one seeing it.
    cell.scheduled.store(false, Ordering::Release);
    if shared.stop.load(Ordering::Acquire) || cell.halted.load(Ordering::Acquire) {
        return;
    }
    {
        let mut st = cell.state.lock();
        let NodeState { rt, drain, outbox } = &mut *st;
        // Swap the inbox against the node's (empty) drain buffer: the
        // inbox lock is held only for the pointer swap, and both vectors
        // keep their capacity across activations.
        std::mem::swap(&mut *cell.inbox.lock(), drain);
        if drain.is_empty() && !force {
            return;
        }
        for msg in drain.drain(..) {
            // Consumed waves fund the next outgoing ones: the payload
            // buffers go to this node's freelist.
            rt.absorb_owned(msg);
        }
        let control = rt.step(outbox);
        shared.total_solves.fetch_add(1, Ordering::Relaxed);
        // Publish only the columns this step could have changed — the
        // supervisor mirrors them incrementally.
        shared.snapshots[p].publish(rt.local().solution(), rt.local().last_solve_cols());
        if control.is_halt() {
            if control == NodeControl::Capped {
                shared.any_capped.store(true, Ordering::Release);
            }
            cell.halted.store(true, Ordering::Release);
            shared.halted_count.fetch_add(1, Ordering::AcqRel);
        }
        // Deliver while still holding only this node's state lock: inbox
        // pushes are leaf locks on *other* cells, so no ordering cycle —
        // and draining here lets the outbox buffer be reused next step.
        for (dst, msg) in outbox.drain(..) {
            shared.total_messages.fetch_add(1, Ordering::Relaxed);
            let target = &shared.cells[dst];
            if target.halted.load(Ordering::Acquire) {
                continue; // halted nodes drop pending and future waves
            }
            target.inbox.lock().push(msg);
            schedule(shared, pool, dst, false);
        }
    }
}

/// Spawn an activation task for `p` unless one is already queued/running.
fn schedule(shared: &Arc<Shared>, pool: &Arc<ThreadPool>, p: usize, force: bool) {
    let cell = &shared.cells[p];
    if shared.stop.load(Ordering::Acquire) || cell.halted.load(Ordering::Acquire) {
        return;
    }
    if cell
        .scheduled
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        let shared = shared.clone();
        let pool2 = pool.clone();
        pool.spawn(move || activate(&shared, &pool2, p, force));
    }
}

/// The work-stealing executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkStealingBackend;

impl ExecutorBackend for WorkStealingBackend {
    type Config = RayonConfig;

    fn kind(&self) -> BackendKind {
        BackendKind::WorkStealing
    }

    fn solve(
        &self,
        split: &SplitSystem,
        reference: Option<Vec<f64>>,
        config: &Self::Config,
    ) -> Result<SolveReport> {
        solve_with_reference(split, reference, config)
    }
}

/// Run DTM on the work-stealing pool.
///
/// # Errors
/// Propagates impedance/factorization failures and pool construction
/// failure.
pub fn solve(split: &SplitSystem, config: &RayonConfig) -> Result<SolveReport> {
    solve_with_reference(split, None, config)
}

/// [`solve`] with a precomputed direct reference solution.
///
/// # Errors
/// See [`solve`].
pub fn solve_with_reference(
    split: &SplitSystem,
    reference: Option<Vec<f64>>,
    config: &RayonConfig,
) -> Result<SolveReport> {
    let references = runtime::resolve_references(
        split,
        config.common.termination,
        None,
        reference.map(|r| vec![r]),
    )?;
    let runtimes = runtime::build_nodes(split, &config.common)?;
    solve_runtimes(split, runtimes, references, None, config)
}

/// [`solve`] over **prebuilt node runtimes** — the factor-once serving
/// path. Callers build (and pay for) the per-part factorizations once via
/// [`runtime::build_nodes`]/[`runtime::build_nodes_parallel`], then hand a
/// clone of the templates to each solve: `NodeRuntime` clones share their
/// factors, so repeated solves re-run only the wave exchange.
///
/// # Errors
/// See [`solve`].
pub fn solve_prepared(
    split: &SplitSystem,
    runtimes: Vec<NodeRuntime>,
    reference: Option<Vec<f64>>,
    config: &RayonConfig,
) -> Result<SolveReport> {
    let references = runtime::resolve_references(
        split,
        config.common.termination,
        None,
        reference.map(|r| vec![r]),
    )?;
    solve_runtimes(split, runtimes, references, None, config)
}

/// Run DTM on the work-stealing pool for a **block of right-hand sides**
/// sharing one factorization per subdomain (see
/// [`crate::solver::solve_block`] for the block-wave semantics; here the
/// waves are inbox entries and spawned tasks).
///
/// # Errors
/// See [`solve`].
pub fn solve_block(
    split: &SplitSystem,
    rhs_cols: &[Vec<f64>],
    references: Option<Vec<Vec<f64>>>,
    config: &RayonConfig,
) -> Result<SolveReport> {
    let references =
        runtime::resolve_references(split, config.common.termination, Some(rhs_cols), references)?;
    let runtimes = runtime::build_nodes_block(split, &config.common, rhs_cols)?;
    solve_runtimes(split, runtimes, references, Some(rhs_cols), config)
}

/// The executor body shared by the scalar and block entry points.
/// `references = None` runs reference-free (the [`Termination::Residual`]
/// path); `rhs_cols` names the block's global right-hand sides (`None` =
/// the split's own source vector).
fn solve_runtimes(
    split: &SplitSystem,
    runtimes: Vec<NodeRuntime>,
    references: Option<Vec<Vec<f64>>>,
    rhs_cols: Option<&[Vec<f64>]>,
    config: &RayonConfig,
) -> Result<SolveReport> {
    let n_parts = split.n_parts();
    let n_rhs = runtimes.first().map_or(1, |rt| rt.local().n_rhs());

    let pool = Arc::new(
        ThreadPoolBuilder::new()
            .num_threads(config.num_threads)
            .build()
            .map_err(|e| dtm_sparse::Error::Parse(format!("thread pool: {e}")))?,
    );
    let shared = Arc::new(Shared {
        snapshots: runtimes
            .iter()
            .map(|rt| wallclock::SharedBlock::new(rt.local().n_local(), n_rhs))
            .collect(),
        cells: runtimes
            .into_iter()
            .map(|rt| NodeCell {
                state: Mutex::new(NodeState {
                    rt,
                    drain: Vec::new(),
                    outbox: Vec::new(),
                }),
                inbox: Mutex::new(Vec::new()),
                scheduled: AtomicBool::new(false),
                halted: AtomicBool::new(false),
            })
            .collect(),
        stop: AtomicBool::new(false),
        halted_count: AtomicUsize::new(0),
        any_capped: AtomicBool::new(false),
        total_solves: AtomicU64::new(0),
        total_messages: AtomicU64::new(0),
    });

    // Initial solves (eq. 5.6): every node gets one activation task.
    for p in 0..n_parts {
        schedule(&shared, &pool, p, true);
    }

    // Supervisor: shared wall-clock loop over the snapshots.
    let outcome = {
        let done = shared.clone();
        let pool2 = pool.clone();
        let self_halting = matches!(config.common.termination, Termination::LocalDelta { .. });
        wallclock::supervise(
            split,
            references.as_deref(),
            rhs_cols,
            n_rhs,
            &shared.snapshots,
            config.common.termination,
            config.budget,
            config.poll_interval,
            move || {
                if done.halted_count.load(Ordering::Acquire) == n_parts {
                    return true;
                }
                if self_halting && pool2.pending_tasks() == 0 {
                    // Quiescent under LocalDelta: halted nodes have gone
                    // silent and no activation is queued or running, so
                    // surviving nodes would never run again. Kick every
                    // live node: re-solving against unchanged boundary
                    // state yields a zero outgoing delta, letting the
                    // Table 1 step 3.3 streak complete. (Quiescence — not
                    // a stalled solve counter — is the trigger, so a
                    // scheduling hiccup can never feed the streak while
                    // real waves are still in flight.)
                    for p in 0..n_parts {
                        schedule(&done, &pool2, p, true);
                    }
                }
                false
            },
        )
    };
    shared.stop.store(true, Ordering::Release);
    pool.wait_quiescent();

    // The pool is quiescent: no activation holds a state lock, so the
    // per-node flop totals can be read directly off the runtimes.
    let total_flops: u64 = shared
        .cells
        .iter()
        .map(|cell| cell.state.lock().rt.flops())
        .sum();
    let converged = match config.common.termination {
        Termination::OracleRms { tol } | Termination::Residual { tol } => {
            outcome.best_metric <= tol
        }
        Termination::LocalDelta { .. } => {
            // A node retired by the solve cap never declared convergence;
            // don't let "everyone eventually stopped" masquerade as
            // success.
            outcome.stop == StopKind::AllHalted && !shared.any_capped.load(Ordering::Acquire)
        }
    };
    Ok(SolveReport {
        backend: BackendKind::WorkStealing,
        algorithm: AlgorithmKind::Dtm,
        solution: outcome.solutions[0].clone(),
        n_rhs,
        solutions: outcome.solutions,
        final_rms_per_rhs: outcome.final_rms_per_rhs,
        converged,
        final_rms: outcome.final_rms,
        final_residual: outcome.final_residual,
        final_residual_per_rhs: outcome.final_residual_per_rhs,
        final_time_ms: outcome.elapsed.as_secs_f64() * 1e3,
        series: outcome.series,
        total_solves: shared.total_solves.load(Ordering::Relaxed),
        total_messages: shared.total_messages.load(Ordering::Relaxed),
        total_flops,
        coalesced_batches: 0,
        n_parts,
        stop: outcome.stop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impedance::ImpedancePolicy;
    use dtm_graph::evs::{split as evs_split, EvsOptions};
    use dtm_graph::{ElectricGraph, PartitionPlan};
    use dtm_sparse::generators;

    fn grid_split(nx: usize, k: usize, seed: u64) -> SplitSystem {
        let a = generators::grid2d_random(nx, nx, 1.0, seed);
        let b = generators::random_rhs(nx * nx, seed + 1);
        let g = ElectricGraph::from_system(a, b).unwrap();
        let asg = dtm_graph::partition::grid_strips(nx, nx, k);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        evs_split(&g, &plan, &EvsOptions::default()).unwrap()
    }

    #[test]
    fn workstealing_dtm_converges() {
        let ss = grid_split(10, 4, 81);
        let config = RayonConfig {
            common: CommonConfig {
                termination: Termination::OracleRms { tol: 1e-8 },
                ..RayonConfig::default().common
            },
            num_threads: 3, // fewer workers than subdomains: real stealing
            budget: Duration::from_secs(60),
            ..Default::default()
        };
        let report = solve(&ss, &config).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
        assert_eq!(report.backend, BackendKind::WorkStealing);
        let (a, b) = ss.reconstruct();
        assert!(a.residual_norm(&report.solution, &b) < 1e-5);
        assert!(report.total_solves > 4);
        assert!(report.total_messages > 0);
    }

    #[test]
    fn workstealing_local_delta_self_halts() {
        let ss = grid_split(8, 3, 82);
        let config = RayonConfig {
            common: CommonConfig {
                termination: Termination::LocalDelta {
                    tol: 1e-12,
                    patience: 4,
                },
                ..RayonConfig::default().common
            },
            budget: Duration::from_secs(60),
            ..Default::default()
        };
        let report = solve(&ss, &config).unwrap();
        assert_eq!(report.stop, StopKind::AllHalted);
        assert!(report.converged);
        assert!(report.final_rms < 1e-6, "rms {}", report.final_rms);
    }

    #[test]
    fn paper_example_on_the_pool() {
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a.clone(), b.clone()).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            explicit: dtm_graph::evs::paper_example_shares(),
            ..Default::default()
        };
        let ss = evs_split(&g, &plan, &options).unwrap();
        let config = RayonConfig {
            common: CommonConfig {
                impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
                termination: Termination::OracleRms { tol: 1e-9 },
                ..RayonConfig::default().common
            },
            num_threads: 2,
            ..Default::default()
        };
        let report = solve(&ss, &config).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
        let exact = dtm_sparse::DenseCholesky::factor_csr(&a).unwrap().solve(&b);
        for (u, v) in report.solution.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-6);
        }
    }
}

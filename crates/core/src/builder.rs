//! High-level entry point: assemble graph → plan → EVS → machine → solve.
//!
//! [`DtmBuilder`] wires the whole pipeline with sensible defaults so the
//! quickstart is five lines, while every knob (partition, shares, twin
//! topology, impedances, machine, compute model, termination) stays
//! overridable.

use crate::impedance::ImpedancePolicy;
use crate::local::LocalSolverKind;
use crate::report::SolveReport;
use crate::runtime;
use crate::solver::{self, ComputeModel, DtmConfig, Termination};
use crate::vtm::{self, VtmConfig, VtmReport};
use dtm_graph::evs::{split_parallel as evs_split_parallel, EvsOptions, SplitSystem, TwinTopology};
use dtm_graph::partition::{PartitionConfig, Partitioner};
use dtm_graph::{partition, ElectricGraph, PartitionPlan};
use dtm_simnet::{DelayModel, SimDuration, Topology};
use dtm_sparse::{Csr, Error, Result, SparseCholesky};
use std::collections::BTreeSet;

/// Builder for a DTM solve.
#[derive(Debug, Clone)]
pub struct DtmBuilder {
    a: Csr,
    b: Vec<f64>,
    assignment: Option<Vec<usize>>,
    partitioner: Option<(Partitioner, usize)>,
    partition_config: PartitionConfig,
    evs_options: EvsOptions,
    twin_topology_set: bool,
    topology: Option<Topology>,
    config: DtmConfig,
}

/// A fully assembled DTM problem, ready to solve (and re-solve under
/// different configs without re-partitioning).
#[derive(Debug, Clone)]
pub struct DtmProblem {
    /// The torn system.
    pub split: SplitSystem,
    /// The machine.
    pub topology: Topology,
    /// Solver configuration.
    pub config: DtmConfig,
    /// Direct reference solution `A⁻¹ b` — computed at build time only for
    /// the termination modes that need an oracle
    /// ([`Termination::OracleRms`], and [`Termination::LocalDelta`] for RMS
    /// reporting). `None` under [`Termination::Residual`]: reference-free
    /// runs never direct-solve the original system.
    pub reference: Option<Vec<f64>>,
}

/// Work-stealing pool for the setup pipeline (EVS assembly, per-part
/// factorization, overlapped reference factor). Sized to the machine's
/// available parallelism.
fn setup_pool() -> Result<rayon::ThreadPool> {
    rayon::ThreadPoolBuilder::new()
        .build()
        .map_err(|e| Error::Parse(format!("setup pool: {e}")))
}

impl DtmBuilder {
    /// Start from a symmetric system `A x = b`.
    pub fn new(a: Csr, b: Vec<f64>) -> Self {
        Self {
            a,
            b,
            assignment: None,
            partitioner: None,
            partition_config: PartitionConfig::default(),
            evs_options: EvsOptions::default(),
            twin_topology_set: false,
            topology: None,
            config: DtmConfig::default(),
        }
    }

    /// Partition an `nx × ny` grid system into `px × py` blocks mapped onto
    /// a `py × px` processor mesh (links get 1 ms delays unless a topology
    /// is supplied explicitly).
    pub fn grid_blocks(mut self, nx: usize, ny: usize, px: usize, py: usize) -> Self {
        self.assignment = Some(partition::grid_blocks(nx, ny, px, py));
        if self.topology.is_none() {
            self.topology = Some(Topology::mesh(py, px).with_delays(&DelayModel::fixed_ms(1.0)));
        }
        self
    }

    /// Partition an `nx × ny` grid into `k` column strips on a `k`-ring.
    pub fn grid_strips(mut self, nx: usize, ny: usize, k: usize) -> Self {
        self.assignment = Some(partition::grid_strips(nx, ny, k));
        if self.topology.is_none() && k >= 2 {
            self.topology = Some(Topology::ring(k).with_delays(&DelayModel::fixed_ms(1.0)));
        }
        self
    }

    /// Use an explicit per-vertex part assignment.
    pub fn assignment(mut self, assignment: Vec<usize>) -> Self {
        self.assignment = Some(assignment);
        self
    }

    /// Partition the matrix graph into `n_parts` with the named
    /// [`Partitioner`] (computed at [`build`](Self::build) time, tuned by
    /// [`partition_config`](Self::partition_config)). An explicit
    /// [`assignment`](Self::assignment) takes precedence.
    pub fn partitioner(mut self, kind: Partitioner, n_parts: usize) -> Self {
        self.partitioner = Some((kind, n_parts));
        self
    }

    /// Partition the matrix graph into `n_parts` with the size-based
    /// default partitioner ([`Partitioner::default_for`]): multilevel for
    /// systems of ≥ 32³ unknowns, nested dissection below. Equivalent to
    /// [`partitioner`](Self::partitioner) with that choice spelled out.
    pub fn partition_auto(mut self, n_parts: usize) -> Self {
        self.partitioner = Some((Partitioner::default_for(self.a.n_rows()), n_parts));
        self
    }

    /// Tune the partitioner (seed, balance slack, coarsening threshold, FM
    /// passes, nested-dissection slack window).
    pub fn partition_config(mut self, config: PartitionConfig) -> Self {
        self.partition_config = config;
        self
    }

    /// Override the EVS options (share policy, explicit shares, twin
    /// topology). Supplying options here pins the twin topology and
    /// disables the automatic machine-aligned spanning tree.
    pub fn evs_options(mut self, options: EvsOptions) -> Self {
        self.twin_topology_set = true;
        self.evs_options = options;
        self
    }

    /// The machine to run on (processors must equal parts).
    pub fn network(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Impedance policy.
    pub fn impedance(mut self, policy: ImpedancePolicy) -> Self {
        self.config.common.impedance = policy;
        self
    }

    /// Local factorization backend.
    pub fn local_solver(mut self, kind: LocalSolverKind) -> Self {
        self.config.common.solver_kind = kind;
        self
    }

    /// Compute-time model.
    pub fn compute(mut self, model: ComputeModel) -> Self {
        self.config.compute = model;
        self
    }

    /// Termination rule.
    pub fn termination(mut self, t: Termination) -> Self {
        self.config.common.termination = t;
        self
    }

    /// Simulated-time budget.
    pub fn horizon(mut self, d: SimDuration) -> Self {
        self.config.horizon = d;
        self
    }

    /// Series sampling interval.
    pub fn sample_interval(mut self, d: SimDuration) -> Self {
        self.config.sample_interval = d;
        self
    }

    /// Assemble the problem: build the electric graph, derive the plan,
    /// choose the machine, align the DTLP trees with its links, split, and
    /// compute the direct reference solution.
    ///
    /// Setup is pipelined over a work-stealing pool: the per-part EVS
    /// assembly fans out ([`dtm_graph::evs::split_parallel`], bitwise-equal
    /// to the serial split), and under oracle terminations the direct
    /// reference factorization overlaps with the tearing instead of
    /// running after it. Reference-free ([`Termination::Residual`]) builds
    /// never factor the original system.
    ///
    /// # Errors
    /// Any validation failure along the pipeline.
    pub fn build(self) -> Result<DtmProblem> {
        let pool = setup_pool()?;
        // Kick off the reference factorization first so it overlaps with
        // plan derivation and the split on a multi-core machine.
        let reference_rx = match self.config.common.termination {
            Termination::Residual { .. } => None,
            _ => {
                let (tx, rx) = std::sync::mpsc::channel();
                let a = self.a.clone();
                let b = self.b.clone();
                pool.spawn(move || {
                    let _ = tx.send(SparseCholesky::factor_rcm(&a).map(|f| f.solve(&b)));
                });
                Some(rx)
            }
        };
        let assignment = match (self.assignment, self.partitioner) {
            (Some(asg), _) => asg,
            (None, Some((kind, n_parts))) => kind.assign(&self.a, n_parts, &self.partition_config),
            (None, None) => {
                return Err(Error::Parse(
                    "no partition given: call grid_blocks/grid_strips/assignment/partitioner"
                        .into(),
                ))
            }
        };
        let graph = ElectricGraph::from_system(self.a, self.b)?;
        let plan = PartitionPlan::from_assignment(&graph, &assignment)?;
        let n_parts = plan.n_parts();
        let topology = match self.topology {
            Some(t) => t,
            None => Topology::complete(n_parts).with_delays(&DelayModel::fixed_ms(1.0)),
        };
        if topology.n_nodes() != n_parts {
            return Err(Error::DimensionMismatch {
                context: "DtmBuilder: processors vs parts",
                expected: n_parts,
                actual: topology.n_nodes(),
            });
        }
        // Align multilevel DTLP trees with machine links unless the caller
        // pinned a twin topology explicitly.
        let mut evs_options = self.evs_options;
        if !self.twin_topology_set {
            let pairs: BTreeSet<(usize, usize)> = topology
                .links()
                .iter()
                .map(|l| (l.src.min(l.dst), l.src.max(l.dst)))
                .collect();
            evs_options.twin_topology = TwinTopology::TreeWithin(pairs);
        }
        let split = evs_split_parallel(&graph, &plan, &evs_options, &pool)?;
        // Surface a malformed machine (a DTLP with no directed link) as a
        // typed error here, at assembly time, rather than a panic once a
        // backend first looks the delay up.
        solver::check_mapping(&split, &topology)?;
        let reference = match reference_rx {
            None => None,
            Some(rx) => Some(rx.recv().map_err(|_| {
                Error::Parse("DtmBuilder: reference factorization task vanished".into())
            })??),
        };
        Ok(DtmProblem {
            split,
            topology,
            config: self.config,
            reference,
        })
    }

    /// Build and solve in one call.
    ///
    /// # Errors
    /// See [`DtmBuilder::build`] and [`solver::solve`].
    pub fn solve(self) -> Result<SolveReport> {
        self.build()?.solve()
    }
}

impl DtmProblem {
    /// Run DTM on the assembled problem.
    ///
    /// # Errors
    /// See [`solver::solve`].
    pub fn solve(&self) -> Result<SolveReport> {
        solver::solve(
            &self.split,
            self.topology.clone(),
            self.reference.clone(),
            &self.config,
        )
    }

    /// Run DTM for a block of `rhs_cols` global right-hand sides solved
    /// simultaneously over one factorization per subdomain (see
    /// [`solver::solve_block`]).
    ///
    /// # Errors
    /// See [`solver::solve_block`].
    pub fn solve_block(&self, rhs_cols: &[Vec<f64>]) -> Result<SolveReport> {
        solver::solve_block(
            &self.split,
            self.topology.clone(),
            rhs_cols,
            None,
            &self.config,
        )
    }

    /// Open a streaming [`SolveSession`] over this problem: every
    /// subdomain is factored **once**, then any number of right-hand-side
    /// batches can be solved without re-factoring or re-partitioning.
    ///
    /// # Errors
    /// Propagates impedance/factorization failures.
    pub fn session(&self) -> Result<SolveSession> {
        SolveSession::new(self.clone())
    }

    /// Open a **rolling** session on the simulated machine: right-hand
    /// sides are admitted into the live block wave as slots free up, each
    /// under its own [`Termination`], and completions stream out as
    /// [`crate::session::ColumnReport`]s — see [`crate::session`].
    ///
    /// # Errors
    /// Propagates impedance/factorization failures; `slots` must be ≥ 1.
    pub fn rolling(&self, slots: usize) -> Result<crate::session::RollingSession> {
        crate::session::RollingSession::new(self, slots)
    }

    /// Open a rolling session on real OS threads (one per subdomain) —
    /// the wall-clock variant of [`rolling`](Self::rolling).
    ///
    /// # Errors
    /// See [`rolling`](Self::rolling).
    pub fn rolling_threaded(&self, slots: usize) -> Result<crate::session::RollingThreadedSession> {
        crate::session::RollingThreadedSession::new(self, slots)
    }

    /// Open a rolling session on the in-process work-stealing pool
    /// (`num_threads = 0` uses the available parallelism).
    ///
    /// # Errors
    /// See [`rolling`](Self::rolling); pool construction may also fail.
    pub fn rolling_workstealing(
        &self,
        slots: usize,
        num_threads: usize,
    ) -> Result<crate::session::RollingPoolSession> {
        crate::session::RollingPoolSession::new(self, slots, num_threads)
    }

    /// Run VTM (synchronous rounds) on the same torn system — the paper's
    /// DTM-vs-VTM comparison uses exactly this pairing.
    ///
    /// # Errors
    /// See [`vtm::solve`].
    pub fn solve_vtm(&self, config: &VtmConfig) -> Result<VtmReport> {
        vtm::solve(&self.split, self.reference.clone(), config)
    }

    /// Run DTM on real OS threads over the same torn system — one
    /// algorithm, another machine (see [`crate::runtime`]).
    ///
    /// # Errors
    /// See [`crate::threaded::solve`].
    pub fn solve_threaded(&self, config: &crate::threaded::ThreadedConfig) -> Result<SolveReport> {
        crate::threaded::solve_with_reference(&self.split, self.reference.clone(), config)
    }

    /// Run DTM on the in-process work-stealing pool over the same torn
    /// system.
    ///
    /// # Errors
    /// See [`crate::rayon_backend::solve`].
    pub fn solve_workstealing(
        &self,
        config: &crate::rayon_backend::RayonConfig,
    ) -> Result<SolveReport> {
        crate::rayon_backend::solve_with_reference(&self.split, self.reference.clone(), config)
    }
}

/// A streaming solve session: the paper's factor-once design turned into a
/// serving API.
///
/// Setup (§5: "only once factorization should be done at the beginning")
/// happens exactly once, at [`DtmProblem::session`]: every subdomain's
/// local matrix is Cholesky-factored, the wave routes are derived, and the
/// original system is factored for reference monitoring. After that,
/// right-hand sides stream in through [`push_rhs`](Self::push_rhs) and each
/// [`solve_batch`](Self::solve_batch) re-runs **only the wave exchange**:
/// the pending columns are scattered onto the existing split
/// ([`SplitSystem::scatter_rhs`]), fresh per-batch node state is derived
/// over the cached factors ([`crate::runtime::NodeRuntime::with_rhs_block`]
/// — an `Arc` clone, no numerical work), and the block waves run to
/// convergence. No re-factorization, no re-partitioning, ever.
///
/// **Termination modes and the oracle.** Under the paper's oracle modes
/// ([`Termination::OracleRms`], and [`Termination::LocalDelta`] for RMS
/// reporting) the session factors the reconstructed original system once
/// and pays K triangular substitutions per batch for the reference
/// solutions `x*_c = A⁻¹ b_c`. Under [`Termination::Residual`] neither
/// happens: the run stops on the incrementally tracked true residual
/// `‖b − A·x‖/‖b‖`, no direct factorization or substitution of the
/// original system is ever performed, and the per-batch cost is purely the
/// wave exchange — the production serving configuration.
///
/// ```
/// use dtm_core::DtmBuilder;
/// use dtm_sparse::generators;
///
/// let a = generators::grid2d_laplacian(9, 9);
/// let problem = DtmBuilder::new(a, vec![1.0; 81])
///     .grid_blocks(9, 9, 2, 2)
///     .build()
///     .unwrap();
/// let mut session = problem.session().unwrap();
/// session.push_rhs(&vec![1.0; 81]).unwrap();
/// session.push_rhs(&generators::random_rhs(81, 7)).unwrap();
/// let report = session.solve_batch().unwrap(); // one exchange, 2 answers
/// assert!(report.converged);
/// assert_eq!(report.solutions.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SolveSession {
    problem: DtmProblem,
    /// Factored node templates (scalar, unstepped); per-batch nodes share
    /// their factors via `Arc`.
    templates: Vec<runtime::NodeRuntime>,
    /// Factorization of the reconstructed original system, reused for the
    /// per-batch direct reference solutions — only under oracle
    /// terminations. Reference-free ([`Termination::Residual`]) sessions
    /// never build it.
    ref_factor: Option<SparseCholesky>,
    /// Right-hand sides queued for the next batch.
    pending: Vec<Vec<f64>>,
    batches_solved: usize,
    rhs_solved: usize,
}

impl SolveSession {
    fn new(problem: DtmProblem) -> Result<Self> {
        // Factor every subdomain concurrently on the setup pool; under
        // oracle terminations the reference factorization of the
        // reconstructed system overlaps with them instead of running
        // after.
        let pool = setup_pool()?;
        let ref_rx = match problem.config.common.termination {
            Termination::Residual { .. } => None,
            _ => {
                let (tx, rx) = std::sync::mpsc::channel();
                let (a, _) = problem.split.reconstruct();
                pool.spawn(move || {
                    let _ = tx.send(SparseCholesky::factor_rcm(&a));
                });
                Some(rx)
            }
        };
        let templates =
            runtime::build_nodes_parallel(&problem.split, &problem.config.common, &pool)?;
        let ref_factor = match ref_rx {
            None => None,
            Some(rx) => Some(rx.recv().map_err(|_| {
                Error::Parse("SolveSession: reference factorization task vanished".into())
            })??),
        };
        Ok(Self {
            problem,
            templates,
            ref_factor,
            pending: Vec::new(),
            batches_solved: 0,
            rhs_solved: 0,
        })
    }

    /// Queue one right-hand side for the next batch.
    ///
    /// # Errors
    /// Rejects vectors whose length differs from the system dimension.
    pub fn push_rhs(&mut self, b: &[f64]) -> Result<&mut Self> {
        if b.len() != self.problem.split.original_n {
            return Err(Error::DimensionMismatch {
                context: "SolveSession::push_rhs",
                expected: self.problem.split.original_n,
                actual: b.len(),
            });
        }
        self.pending.push(b.to_vec());
        Ok(self)
    }

    /// Right-hand sides queued so far.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Batches solved so far.
    pub fn batches_solved(&self) -> usize {
        self.batches_solved
    }

    /// Right-hand sides solved so far, across all batches.
    pub fn rhs_solved(&self) -> usize {
        self.rhs_solved
    }

    /// Solve every queued right-hand side as one block wave exchange and
    /// drain the queue. Only the exchange runs: factors, routes, shares and
    /// the reference factorization are all reused from session setup.
    ///
    /// # Errors
    /// Fails if no right-hand side is queued.
    pub fn solve_batch(&mut self) -> Result<SolveReport> {
        if self.pending.is_empty() {
            return Err(Error::Parse(
                "SolveSession::solve_batch: no right-hand side queued (call push_rhs)".into(),
            ));
        }
        let rhs_cols = std::mem::take(&mut self.pending);
        let split = &self.problem.split;
        // Oracle substitutions only where an oracle termination asked for
        // them; residual-mode batches skip this entirely.
        let references: Option<Vec<Vec<f64>>> = self
            .ref_factor
            .as_ref()
            .map(|f| rhs_cols.iter().map(|b| f.solve(b)).collect());
        // Scatter each column once, then regroup per part by moving the
        // scattered vectors (no per-part clone).
        let part_cols =
            runtime::transpose_scatter(rhs_cols.iter().map(|b| split.scatter_rhs(b)).collect());
        let runtimes: Vec<runtime::NodeRuntime> = self
            .templates
            .iter()
            .zip(&part_cols)
            .map(|(t, cols)| t.with_rhs_block(cols))
            .collect();
        let nodes = solver::map_nodes(runtimes, &self.problem.config);
        let report = solver::solve_prepared(
            split,
            self.problem.topology.clone(),
            nodes,
            references,
            Some(&rhs_cols),
            &self.problem.config,
        )?;
        self.batches_solved += 1;
        self.rhs_solved += report.n_rhs;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_sparse::generators;

    #[test]
    fn quickstart_grid_blocks() {
        let a = generators::grid2d_laplacian(9, 9);
        let b = vec![1.0; 81];
        let report = DtmBuilder::new(a.clone(), b.clone())
            .grid_blocks(9, 9, 2, 2)
            .solve()
            .unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
        assert!(a.residual_norm(&report.solution, &b) < 1e-6);
        assert_eq!(report.n_parts, 4);
    }

    #[test]
    fn strips_on_ring() {
        let a = generators::grid2d_random(12, 6, 1.0, 61);
        let b = generators::random_rhs(72, 62);
        let report = DtmBuilder::new(a, b)
            .grid_strips(12, 6, 3)
            .termination(Termination::OracleRms { tol: 1e-7 })
            .solve()
            .unwrap();
        assert!(report.converged);
    }

    #[test]
    fn partitioner_builds_and_solves() {
        let a = generators::grid2d_laplacian(10, 10);
        let b = generators::random_rhs(100, 81);
        for kind in [Partitioner::NestedDissection, Partitioner::Multilevel] {
            let report = DtmBuilder::new(a.clone(), b.clone())
                .partitioner(kind, 4)
                .partition_config(PartitionConfig::default())
                .solve()
                .unwrap();
            assert!(
                report.converged,
                "{}: rms {}",
                kind.name(),
                report.final_rms
            );
            assert!(
                a.residual_norm(&report.solution, &b) < 1e-5,
                "{}",
                kind.name()
            );
            assert_eq!(report.n_parts, 4);
        }
    }

    #[test]
    fn partition_auto_picks_by_size_and_solves() {
        // 100 unknowns is far below the 32³ threshold: partition_auto must
        // behave exactly like an explicit nested-dissection partitioner.
        let a = generators::grid2d_laplacian(10, 10);
        let b = generators::random_rhs(100, 83);
        let auto = DtmBuilder::new(a.clone(), b.clone())
            .partition_auto(4)
            .build()
            .unwrap();
        let explicit = DtmBuilder::new(a.clone(), b.clone())
            .partitioner(Partitioner::NestedDissection, 4)
            .build()
            .unwrap();
        assert_eq!(auto.split.subdomains.len(), explicit.split.subdomains.len());
        let report = auto.solve().unwrap();
        assert!(report.converged);
        assert!(a.residual_norm(&report.solution, &b) < 1e-5);
    }

    #[test]
    fn missing_partition_is_an_error() {
        let a = generators::grid2d_laplacian(4, 4);
        let err = DtmBuilder::new(a, vec![0.0; 16]).solve();
        assert!(err.is_err());
    }

    #[test]
    fn problem_can_be_resolved_with_vtm() {
        let a = generators::grid2d_laplacian(8, 8);
        let b = generators::random_rhs(64, 63);
        let problem = DtmBuilder::new(a, b)
            .grid_blocks(8, 8, 2, 2)
            .build()
            .unwrap();
        let dtm = problem.solve().unwrap();
        let vtm = problem
            .solve_vtm(&VtmConfig {
                tol: 1e-8,
                ..Default::default()
            })
            .unwrap();
        assert!(dtm.converged && vtm.converged);
        for (u, v) in dtm.solution.iter().zip(&vtm.solution) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn session_streams_batches_without_refactoring() {
        let a = generators::grid2d_laplacian(8, 8);
        let b = generators::random_rhs(64, 71);
        let problem = DtmBuilder::new(a.clone(), b)
            .grid_blocks(8, 8, 2, 2)
            .build()
            .unwrap();
        let mut session = problem.session().unwrap();
        assert!(
            session.solve_batch().is_err(),
            "empty batch must be refused"
        );

        // Batch 1: two RHS at once.
        let b1 = generators::random_rhs(64, 72);
        let b2 = generators::random_rhs(64, 73);
        session.push_rhs(&b1).unwrap();
        session.push_rhs(&b2).unwrap();
        assert_eq!(session.pending(), 2);
        let r1 = session.solve_batch().unwrap();
        assert!(r1.converged, "rms {}", r1.final_rms);
        assert_eq!(r1.n_rhs, 2);
        assert_eq!(session.pending(), 0);
        assert!(a.residual_norm(&r1.solutions[0], &b1) < 1e-5);
        assert!(a.residual_norm(&r1.solutions[1], &b2) < 1e-5);

        // Batch 2: a later single RHS reuses the same factors.
        let b3 = generators::random_rhs(64, 74);
        session.push_rhs(&b3).unwrap();
        let r2 = session.solve_batch().unwrap();
        assert!(r2.converged);
        assert!(a.residual_norm(&r2.solution, &b3) < 1e-5);
        assert_eq!(session.batches_solved(), 2);
        assert_eq!(session.rhs_solved(), 3);
    }

    #[test]
    fn session_rejects_wrong_length_rhs() {
        let a = generators::grid2d_laplacian(6, 6);
        let problem = DtmBuilder::new(a, vec![1.0; 36])
            .grid_blocks(6, 6, 2, 2)
            .build()
            .unwrap();
        let mut session = problem.session().unwrap();
        assert!(session.push_rhs(&[1.0; 35]).is_err());
    }

    #[test]
    fn problem_solve_block_matches_per_column_direct() {
        let a = generators::grid2d_random(9, 9, 1.0, 64);
        let b = generators::random_rhs(81, 65);
        let problem = DtmBuilder::new(a.clone(), b)
            .grid_blocks(9, 9, 2, 2)
            .termination(Termination::OracleRms { tol: 1e-9 })
            .build()
            .unwrap();
        let cols: Vec<Vec<f64>> = (0..3).map(|c| generators::random_rhs(81, 90 + c)).collect();
        let report = problem.solve_block(&cols).unwrap();
        assert!(report.converged);
        assert_eq!(report.n_rhs, 3);
        assert_eq!(report.final_rms_per_rhs.len(), 3);
        for (x, b) in report.solutions.iter().zip(&cols) {
            assert!(a.residual_norm(x, b) < 1e-5);
        }
    }

    #[test]
    fn wrong_machine_size_rejected() {
        let a = generators::grid2d_laplacian(6, 6);
        let err = DtmBuilder::new(a, vec![0.0; 36])
            .assignment(dtm_graph::partition::grid_blocks(6, 6, 2, 2))
            .network(Topology::ring(3).with_delays(&DelayModel::fixed_ms(1.0)))
            .build();
        assert!(err.is_err());
    }
}

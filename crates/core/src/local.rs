//! The DTM local system (paper eq. (5.8)–(5.9)).
//!
//! Eliminating the inflow currents ω from the subdomain system plus the DTL
//! boundary conditions leaves
//!
//! ```text
//! [ C + Z⁻¹  E ] [u]   [ f + Z⁻¹·(u_twin(t−τ) − Z·ω_twin(t−τ)) ]
//! [ F        D ] [y] = [ g                                      ]      (5.9)
//!   ω = −Z⁻¹u + Z⁻¹·u_twin(t−τ) − ω_twin(t−τ)
//! ```
//!
//! The coefficient matrix is **constant**: "only once factorization should
//! be done at the beginning; as long as we get the Cholesky factor, it is a
//! piece of cake to solve (5.9)" (§5). [`LocalSystem`] is that object:
//! factor once, then each remote-boundary update is one RHS rebuild plus a
//! forward/backward substitution.

use crate::dtl;
use dtm_graph::evs::Subdomain;
use dtm_sparse::{Csr, DenseCholesky, Result, SparseCholesky};

/// Which factorization backs the local solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalSolverKind {
    /// Dense below [`AUTO_DENSE_LIMIT`] unknowns, sparse (RCM) above.
    #[default]
    Auto,
    /// Dense Cholesky.
    Dense,
    /// Sparse up-looking Cholesky in natural order.
    Sparse,
    /// Sparse Cholesky with reverse Cuthill–McKee pre-ordering.
    SparseRcm,
}

/// Crossover for [`LocalSolverKind::Auto`].
pub const AUTO_DENSE_LIMIT: usize = 96;

#[derive(Debug, Clone)]
enum Factor {
    Dense(DenseCholesky),
    Sparse(SparseCholesky),
}

impl Factor {
    fn solve_in_place(&self, x: &mut [f64]) {
        match self {
            Factor::Dense(f) => f.solve_in_place(x),
            Factor::Sparse(f) => f.solve_in_place(x),
        }
    }
}

/// A factored DTM local system with its current boundary state.
#[derive(Debug, Clone)]
pub struct LocalSystem {
    /// Local matrix `Â = A_j + Σ_p (1/z_p) e_v e_vᵀ` (kept for analysis).
    matrix: Csr,
    factor: Factor,
    /// Local vertex carrying each port.
    port_vertex: Vec<usize>,
    /// Characteristic impedance per port.
    z: Vec<f64>,
    /// Constant part of the RHS: `[f; g]`.
    base_rhs: Vec<f64>,
    /// Latest incident wave per port (`u_twin − z·ω_twin`, init 0: eq. 5.6).
    w: Vec<f64>,
    /// Latest local solution `[u; y]`.
    x: Vec<f64>,
    /// Latest inflow current per port.
    omega: Vec<f64>,
    /// Previous outgoing wave per port (for convergence deltas).
    prev_out: Vec<f64>,
    /// Outgoing-wave change of the latest solve.
    last_delta: f64,
    solves: usize,
    rhs_buf: Vec<f64>,
}

impl LocalSystem {
    /// Build and factor the local system of `sub` with per-port impedances
    /// `z` (use [`crate::impedance::per_port`] to derive them from a
    /// per-DTLP assignment).
    ///
    /// # Errors
    /// Propagates factorization failure (the subdomain was not SNND, i.e.
    /// the EVS split violated Theorem 6.1's hypothesis).
    ///
    /// # Panics
    /// Panics if `z.len() != sub.n_ports()` or any impedance is
    /// non-positive.
    pub fn new(sub: &Subdomain, z: &[f64], kind: LocalSolverKind) -> Result<Self> {
        assert_eq!(z.len(), sub.n_ports(), "one impedance per port");
        assert!(
            z.iter().all(|&zi| zi > 0.0 && zi.is_finite()),
            "impedances must be positive"
        );
        let n = sub.n_local();
        // Σ 1/z per local vertex (a vertex may carry several ports).
        let mut diag_add = vec![0.0; n];
        for (p, port) in sub.ports.iter().enumerate() {
            diag_add[port.local_vertex] += 1.0 / z[p];
        }
        let matrix = sub.matrix.add_to_diagonal(&diag_add);
        let factor = match kind {
            LocalSolverKind::Dense => Factor::Dense(DenseCholesky::factor_csr(&matrix)?),
            LocalSolverKind::Sparse => Factor::Sparse(SparseCholesky::factor(&matrix)?),
            LocalSolverKind::SparseRcm => Factor::Sparse(SparseCholesky::factor_rcm(&matrix)?),
            LocalSolverKind::Auto => {
                if n <= AUTO_DENSE_LIMIT {
                    Factor::Dense(DenseCholesky::factor_csr(&matrix)?)
                } else {
                    Factor::Sparse(SparseCholesky::factor_rcm(&matrix)?)
                }
            }
        };
        let n_ports = sub.n_ports();
        Ok(Self {
            matrix,
            factor,
            port_vertex: sub.ports.iter().map(|p| p.local_vertex).collect(),
            z: z.to_vec(),
            base_rhs: sub.rhs.clone(),
            w: vec![0.0; n_ports],
            x: vec![0.0; n],
            omega: vec![0.0; n_ports],
            prev_out: vec![0.0; n_ports],
            last_delta: f64::INFINITY,
            solves: 0,
            rhs_buf: vec![0.0; n],
        })
    }

    /// Local dimension.
    pub fn n_local(&self) -> usize {
        self.x.len()
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.port_vertex.len()
    }

    /// The (constant) local coefficient matrix `Â`.
    pub fn matrix(&self) -> &Csr {
        &self.matrix
    }

    /// Per-port impedances.
    pub fn impedances(&self) -> &[f64] {
        &self.z
    }

    /// Update one port's remote boundary condition from the twin's
    /// transmitted `(u_twin, ω_twin)` pair — the message payload of Table 1.
    pub fn set_remote(&mut self, port: usize, u_twin: f64, omega_twin: f64) {
        self.w[port] = dtl::incident_wave(u_twin, omega_twin, self.z[port]);
    }

    /// Update one port's incident wave directly.
    pub fn set_incident_wave(&mut self, port: usize, w: f64) {
        self.w[port] = w;
    }

    /// Incident wave currently stored for `port`.
    pub fn incident_wave(&self, port: usize) -> f64 {
        self.w[port]
    }

    /// Solve (5.9) with the stored remote boundary conditions: one RHS
    /// rebuild + forward/backward substitution (no refactorization).
    pub fn solve(&mut self) -> &[f64] {
        self.rhs_buf.copy_from_slice(&self.base_rhs);
        for (p, &v) in self.port_vertex.iter().enumerate() {
            self.rhs_buf[v] += self.w[p] / self.z[p];
        }
        self.factor.solve_in_place(&mut self.rhs_buf);
        std::mem::swap(&mut self.x, &mut self.rhs_buf);
        let mut delta = 0.0_f64;
        for (p, &v) in self.port_vertex.iter().enumerate() {
            self.omega[p] = dtl::inflow_current(self.w[p], self.x[v], self.z[p]);
            let out = dtl::outgoing_wave(self.x[v], self.omega[p], self.z[p]);
            delta = delta.max((out - self.prev_out[p]).abs());
            self.prev_out[p] = out;
        }
        self.last_delta = delta;
        self.solves += 1;
        &self.x
    }

    /// Latest local solution `[u; y]`.
    pub fn solution(&self) -> &[f64] {
        &self.x
    }

    /// Latest inflow currents.
    pub fn currents(&self) -> &[f64] {
        &self.omega
    }

    /// The local boundary condition `(u, ω)` this subdomain transmits for
    /// `port` (Table 1 step 3.2).
    pub fn outgoing(&self, port: usize) -> (f64, f64) {
        (self.x[self.port_vertex[port]], self.omega[port])
    }

    /// Max |change| of any outgoing wave in the latest solve — the local
    /// convergence signal of Table 1 step 3.3.
    pub fn last_delta(&self) -> f64 {
        self.last_delta
    }

    /// Number of solves performed.
    pub fn n_solves(&self) -> usize {
        self.solves
    }

    /// Size of the factor backing each substitution (dense: n(n+1)/2;
    /// sparse: nnz(L)); drives the per-solve compute-time model.
    pub fn factor_nnz(&self) -> usize {
        match &self.factor {
            Factor::Dense(f) => f.n() * (f.n() + 1) / 2,
            Factor::Sparse(f) => f.nnz_l(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::evs::{paper_example_shares, split, EvsOptions, SplitSystem};
    use dtm_graph::{ElectricGraph, PartitionPlan};
    use dtm_sparse::generators;

    fn paper_split() -> SplitSystem {
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a, b).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            explicit: paper_example_shares(),
            ..Default::default()
        };
        split(&g, &plan, &options).unwrap()
    }

    #[test]
    fn example_5_4_local_matrix_exact() {
        // (5.4): with Z₂ = 0.2, Z₃ = 0.1 the subgraph-1 matrix becomes
        // [5 −1 −1; −1 7.5 −0.9; −1 −0.9 13.3] in (x1, x2a, x3a) order —
        // ours is (x2a, x3a, x1).
        let ss = paper_split();
        let ls = LocalSystem::new(&ss.subdomains[0], &[0.2, 0.1], LocalSolverKind::Dense).unwrap();
        let m = ls.matrix();
        assert!((m.get(0, 0) - 7.5).abs() < 1e-12); // 2.5 + 1/0.2
        assert!((m.get(1, 1) - 13.3).abs() < 1e-12); // 3.3 + 1/0.1
        assert!((m.get(2, 2) - 5.0).abs() < 1e-12);
        assert_eq!(m.get(0, 1), -0.9);
        assert_eq!(m.get(0, 2), -1.0);
    }

    #[test]
    fn example_5_5_local_matrix_exact() {
        // (5.5): subgraph-2 matrix [8.5 −1.1 −1; −1.1 13.7 −2; −1 −2 8] in
        // (x2b, x3b, x4) order.
        let ss = paper_split();
        let ls = LocalSystem::new(&ss.subdomains[1], &[0.2, 0.1], LocalSolverKind::Dense).unwrap();
        let m = ls.matrix();
        assert!((m.get(0, 0) - 8.5).abs() < 1e-12); // 3.5 + 5
        assert!((m.get(1, 1) - 13.7).abs() < 1e-12); // 3.7 + 10
        assert!((m.get(2, 2) - 8.0).abs() < 1e-12);
        assert_eq!(m.get(0, 1), -1.1);
    }

    #[test]
    fn initial_solve_uses_zero_boundary() {
        // Initial condition (5.6): u = ω = 0 on all remote ports, so the
        // first solve is  Â x = [f; g].
        let ss = paper_split();
        let mut ls =
            LocalSystem::new(&ss.subdomains[0], &[0.2, 0.1], LocalSolverKind::Dense).unwrap();
        let x = ls.solve().to_vec();
        let expect = dtm_sparse::DenseCholesky::factor_csr(ls.matrix())
            .unwrap()
            .solve(&[0.8, 1.6, 1.0]);
        for (u, v) in x.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-12);
        }
        // ω = (0 − u)/z at each port.
        assert!((ls.currents()[0] - (-x[0] / 0.2)).abs() < 1e-12);
        assert!((ls.currents()[1] - (-x[1] / 0.1)).abs() < 1e-12);
    }

    #[test]
    fn solve_satisfies_delay_equation_at_ports() {
        let ss = paper_split();
        let mut ls =
            LocalSystem::new(&ss.subdomains[0], &[0.2, 0.1], LocalSolverKind::Dense).unwrap();
        ls.set_remote(0, 0.7, -0.2);
        ls.set_remote(1, 0.4, 0.1);
        ls.solve();
        for p in 0..2 {
            let (u, om) = ls.outgoing(p);
            assert!(crate::dtl::satisfies_delay_equation(
                u,
                om,
                ls.incident_wave(p),
                ls.impedances()[p],
                1e-12
            ));
        }
    }

    #[test]
    fn solve_satisfies_subdomain_equation_with_currents() {
        // A_j x = rhs + ω at ports (eq. 4.3) must hold exactly.
        let ss = paper_split();
        let sd = &ss.subdomains[1];
        let mut ls = LocalSystem::new(sd, &[0.2, 0.1], LocalSolverKind::Dense).unwrap();
        ls.set_remote(0, 1.0, 0.5);
        ls.set_remote(1, -0.3, 0.2);
        let x = ls.solve().to_vec();
        let ax = sd.matrix.matvec(&x);
        let mut rhs = sd.rhs.clone();
        for (p, port) in sd.ports.iter().enumerate() {
            rhs[port.local_vertex] += ls.currents()[p];
        }
        for (u, v) in ax.iter().zip(&rhs) {
            assert!((u - v).abs() < 1e-12, "{u} vs {v}");
        }
    }

    #[test]
    fn all_backends_agree() {
        let a = generators::grid2d_random(8, 8, 1.0, 3);
        let b = generators::random_rhs(64, 4);
        let g = ElectricGraph::from_system(a, b).unwrap();
        let asg = dtm_graph::partition::grid_blocks(8, 8, 2, 2);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        let ss = split(&g, &plan, &EvsOptions::default()).unwrap();
        let sd = &ss.subdomains[0];
        let z = vec![0.5; sd.n_ports()];
        let kinds = [
            LocalSolverKind::Dense,
            LocalSolverKind::Sparse,
            LocalSolverKind::SparseRcm,
            LocalSolverKind::Auto,
        ];
        let mut results = Vec::new();
        for kind in kinds {
            let mut ls = LocalSystem::new(sd, &z, kind).unwrap();
            for p in 0..sd.n_ports() {
                ls.set_remote(p, 0.1 * p as f64, -0.05 * p as f64);
            }
            results.push(ls.solve().to_vec());
        }
        for r in &results[1..] {
            for (u, v) in r.iter().zip(&results[0]) {
                assert!((u - v).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn delta_shrinks_under_fixed_boundary() {
        // Solving twice with the same remote boundary gives delta 0.
        let ss = paper_split();
        let mut ls =
            LocalSystem::new(&ss.subdomains[0], &[0.2, 0.1], LocalSolverKind::Dense).unwrap();
        ls.set_remote(0, 0.3, 0.0);
        ls.solve();
        let d1 = ls.last_delta();
        assert!(d1 > 0.0);
        ls.solve();
        assert_eq!(ls.last_delta(), 0.0);
        assert_eq!(ls.n_solves(), 2);
    }

    #[test]
    #[should_panic(expected = "one impedance per port")]
    fn wrong_impedance_count_panics() {
        let ss = paper_split();
        let _ = LocalSystem::new(&ss.subdomains[0], &[0.2], LocalSolverKind::Dense);
    }
}

//! The DTM local system (paper eq. (5.8)–(5.9)), generalized to a block
//! of K simultaneous right-hand sides.
//!
//! Eliminating the inflow currents ω from the subdomain system plus the DTL
//! boundary conditions leaves
//!
//! ```text
//! [ C + Z⁻¹  E ] [u]   [ f + Z⁻¹·(u_twin(t−τ) − Z·ω_twin(t−τ)) ]
//! [ F        D ] [y] = [ g                                      ]      (5.9)
//!   ω = −Z⁻¹u + Z⁻¹·u_twin(t−τ) − ω_twin(t−τ)
//! ```
//!
//! The coefficient matrix is **constant**: "only once factorization should
//! be done at the beginning; as long as we get the Cholesky factor, it is a
//! piece of cake to solve (5.9)" (§5). [`LocalSystem`] is that object:
//! factor once, then each remote-boundary update is one RHS rebuild plus a
//! forward/backward substitution.
//!
//! Because the matrix does not depend on the right-hand side, **K right-hand
//! sides share one factor**: the state (`w`, `x`, `ω`, previous outgoing
//! waves) simply becomes a K-column block, stored column-major, and each
//! solve is one *block* substitution that sweeps the factor once for all
//! columns ([`dtm_sparse::DenseCholesky::solve_block_in_place`]). Column `c`
//! undergoes exactly the scalar arithmetic, so a block solve is bitwise a
//! stack of K scalar solves — the property the block-wave pipeline is built
//! on. The factor itself sits behind an [`Arc`] so a streaming session can
//! re-instantiate fresh per-batch state without refactoring
//! ([`LocalSystem::with_rhs_block`]).

use crate::dtl;
use dtm_graph::evs::Subdomain;
use dtm_sparse::{Csr, DenseCholesky, Result, SparseCholesky};
use std::sync::Arc;

/// Which factorization backs the local solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalSolverKind {
    /// Dense below [`AUTO_DENSE_LIMIT`] unknowns, sparse (RCM) above.
    #[default]
    Auto,
    /// Dense Cholesky.
    Dense,
    /// Sparse up-looking Cholesky in natural order.
    Sparse,
    /// Sparse Cholesky with reverse Cuthill–McKee pre-ordering.
    SparseRcm,
}

/// Crossover for [`LocalSolverKind::Auto`].
pub const AUTO_DENSE_LIMIT: usize = 96;

#[derive(Debug, PartialEq)]
enum Factor {
    Dense(DenseCholesky),
    Sparse(SparseCholesky),
}

impl Factor {
    fn solve_block_with_scratch(&self, xs: &mut [f64], k: usize, scratch: &mut Vec<f64>) {
        match self {
            Factor::Dense(f) => f.solve_block_with_scratch(xs, k, scratch),
            Factor::Sparse(f) => f.solve_block_with_scratch(xs, k, scratch),
        }
    }
}

/// A factored DTM local system with its current boundary state — a block of
/// `n_rhs` columns sharing one factor (the scalar pipeline is the
/// `n_rhs == 1` special case).
///
/// All block state is stored column-major: column `c` of an `n`-vector
/// quantity occupies `[c·n .. (c+1)·n]`, and per-port quantities likewise
/// with `n = n_ports`.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSystem {
    /// Local matrix `Â = A_j + Σ_p (1/z_p) e_v e_vᵀ` (kept for analysis;
    /// constant, so shared like the factor).
    matrix: Arc<Csr>,
    /// Shared factor: cloning a `LocalSystem` (or deriving per-batch state
    /// via [`with_rhs_block`](Self::with_rhs_block)) never refactors.
    factor: Arc<Factor>,
    /// Local vertex carrying each port.
    port_vertex: Vec<usize>,
    /// Characteristic impedance per port.
    z: Vec<f64>,
    /// Local dimension.
    n: usize,
    /// Number of RHS columns in the block.
    k: usize,
    /// Constant part of the RHS: `[f; g]` per column (`n·k`).
    base_rhs: Vec<f64>,
    /// Latest incident wave per port per column (`u_twin − z·ω_twin`,
    /// init 0: eq. 5.6) — `n_ports·k`.
    w: Vec<f64>,
    /// Latest local solution `[u; y]` per column — `n·k`.
    x: Vec<f64>,
    /// Latest inflow current per port per column — `n_ports·k`.
    omega: Vec<f64>,
    /// Previous outgoing wave per port per column (convergence deltas).
    prev_out: Vec<f64>,
    /// Outgoing-wave change of the latest solve, per column.
    col_delta: Vec<f64>,
    /// Max over [`col_delta`](Self::col_delta).
    last_delta: f64,
    /// Columns whose boundary inputs changed since the previous solve
    /// (bitmask; `k ≥ 64` saturates to all-ones). A column outside the mask
    /// re-solves to a bitwise-identical solution, so publishers may skip it.
    touched_cols: u64,
    /// The mask captured by the latest [`solve`](Self::solve).
    solved_cols: u64,
    solves: usize,
    rhs_buf: Vec<f64>,
    /// Interleave scratch for the blocked substitution kernels, pre-sized
    /// to `n·k` at construction so the hot loop never allocates.
    solve_scratch: Vec<f64>,
}

/// All-columns bitmask for a `k`-wide block (saturating at 64) — the one
/// dirty-column mask rule, shared by the publisher here and the snapshot
/// consumer in `runtime::wallclock`.
pub(crate) fn all_cols(k: usize) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

impl LocalSystem {
    /// Build and factor the local system of `sub` with per-port impedances
    /// `z` (use [`crate::impedance::per_port`] to derive them from a
    /// per-DTLP assignment). Single right-hand side: the subdomain's own
    /// sources.
    ///
    /// # Errors
    /// Propagates factorization failure (the subdomain was not SNND, i.e.
    /// the EVS split violated Theorem 6.1's hypothesis).
    ///
    /// # Panics
    /// Panics if `z.len() != sub.n_ports()` or any impedance is
    /// non-positive.
    pub fn new(sub: &Subdomain, z: &[f64], kind: LocalSolverKind) -> Result<Self> {
        Self::with_base_rhs(sub, z, kind, sub.rhs.clone(), 1)
    }

    /// Build and factor the local system with a block of `rhs_cols` local
    /// right-hand sides solved simultaneously over the one factor (each
    /// column a full local source vector, e.g. from
    /// [`dtm_graph::evs::SplitSystem::scatter_rhs`]).
    ///
    /// # Errors
    /// See [`LocalSystem::new`].
    ///
    /// # Panics
    /// Additionally panics if `rhs_cols` is empty or a column has the wrong
    /// length.
    pub fn new_block(
        sub: &Subdomain,
        z: &[f64],
        kind: LocalSolverKind,
        rhs_cols: &[Vec<f64>],
    ) -> Result<Self> {
        let base = concat_cols(rhs_cols, sub.n_local());
        Self::with_base_rhs(sub, z, kind, base, rhs_cols.len())
    }

    fn with_base_rhs(
        sub: &Subdomain,
        z: &[f64],
        kind: LocalSolverKind,
        base_rhs: Vec<f64>,
        k: usize,
    ) -> Result<Self> {
        assert_eq!(z.len(), sub.n_ports(), "one impedance per port");
        assert!(
            z.iter().all(|&zi| zi > 0.0 && zi.is_finite()),
            "impedances must be positive"
        );
        let n = sub.n_local();
        // Σ 1/z per local vertex (a vertex may carry several ports).
        let mut diag_add = vec![0.0; n];
        for (p, port) in sub.ports.iter().enumerate() {
            diag_add[port.local_vertex] += 1.0 / z[p];
        }
        let matrix = sub.matrix.add_to_diagonal(&diag_add);
        let factor = match kind {
            LocalSolverKind::Dense => Factor::Dense(DenseCholesky::factor_csr(&matrix)?),
            LocalSolverKind::Sparse => Factor::Sparse(SparseCholesky::factor(&matrix)?),
            LocalSolverKind::SparseRcm => Factor::Sparse(SparseCholesky::factor_rcm(&matrix)?),
            LocalSolverKind::Auto => {
                if n <= AUTO_DENSE_LIMIT {
                    Factor::Dense(DenseCholesky::factor_csr(&matrix)?)
                } else {
                    Factor::Sparse(SparseCholesky::factor_rcm(&matrix)?)
                }
            }
        };
        let n_ports = sub.n_ports();
        Ok(Self {
            matrix: Arc::new(matrix),
            factor: Arc::new(factor),
            port_vertex: sub.ports.iter().map(|p| p.local_vertex).collect(),
            z: z.to_vec(),
            n,
            k,
            base_rhs,
            w: vec![0.0; n_ports * k],
            x: vec![0.0; n * k],
            omega: vec![0.0; n_ports * k],
            prev_out: vec![0.0; n_ports * k],
            col_delta: vec![f64::INFINITY; k],
            last_delta: f64::INFINITY,
            touched_cols: all_cols(k),
            solved_cols: all_cols(k),
            solves: 0,
            rhs_buf: vec![0.0; n * k],
            solve_scratch: vec![0.0; n * k],
        })
    }

    /// Derive a fresh block system over the **same factor** (no
    /// refactorization — the streaming path): new right-hand-side columns,
    /// zeroed boundary state (eq. 5.6), reset counters.
    ///
    /// # Panics
    /// Panics if `rhs_cols` is empty or a column has the wrong length.
    pub fn with_rhs_block(&self, rhs_cols: &[Vec<f64>]) -> Self {
        let k = rhs_cols.len();
        let (n, n_ports) = (self.n, self.n_ports());
        Self {
            matrix: Arc::clone(&self.matrix),
            factor: Arc::clone(&self.factor),
            port_vertex: self.port_vertex.clone(),
            z: self.z.clone(),
            n,
            k,
            base_rhs: concat_cols(rhs_cols, n),
            w: vec![0.0; n_ports * k],
            x: vec![0.0; n * k],
            omega: vec![0.0; n_ports * k],
            prev_out: vec![0.0; n_ports * k],
            col_delta: vec![f64::INFINITY; k],
            last_delta: f64::INFINITY,
            touched_cols: all_cols(k),
            solved_cols: all_cols(k),
            solves: 0,
            rhs_buf: vec![0.0; n * k],
            solve_scratch: vec![0.0; n * k],
        }
    }

    /// Replace **one column** of the block in place — the rolling-session
    /// retire/admit step: the column's base right-hand side becomes
    /// `rhs_col`, its boundary state resets to the zero initial guess of
    /// eq. (5.6), and its convergence delta re-arms, all without touching
    /// the other columns, the factor, or the exchange. The column is marked
    /// touched so the next solve republishes it (dirty-column snapshot
    /// compatibility).
    ///
    /// Waves already in flight still carry the retired column's values;
    /// absorbing them merely gives the fresh column a nonzero (stale)
    /// starting boundary state, which asynchronous contraction corrects —
    /// per-component staleness is exactly what Theorem 6.1 licenses.
    ///
    /// # Panics
    /// Panics if `col >= n_rhs()` or `rhs_col` has the wrong length.
    pub fn replace_rhs_col(&mut self, col: usize, rhs_col: &[f64]) {
        assert!(col < self.k, "column {col} out of range (k = {})", self.k);
        assert_eq!(rhs_col.len(), self.n, "RHS column length");
        let (n, np) = (self.n, self.n_ports());
        self.base_rhs[col * n..(col + 1) * n].copy_from_slice(rhs_col);
        for p in 0..np {
            let i = col * np + p;
            self.w[i] = 0.0;
            self.omega[i] = 0.0;
            self.prev_out[i] = 0.0;
        }
        self.col_delta[col] = f64::INFINITY;
        self.last_delta = f64::INFINITY;
        self.touch(col);
    }

    /// Local dimension.
    pub fn n_local(&self) -> usize {
        self.n
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.port_vertex.len()
    }

    /// Number of right-hand-side columns in the block.
    pub fn n_rhs(&self) -> usize {
        self.k
    }

    /// The (constant) local coefficient matrix `Â`.
    pub fn matrix(&self) -> &Csr {
        &self.matrix
    }

    /// Per-port impedances.
    pub fn impedances(&self) -> &[f64] {
        &self.z
    }

    /// Update one port's remote boundary condition from the twin's
    /// transmitted `(u_twin, ω_twin)` pair — the message payload of Table 1
    /// (column 0; see [`set_remote_col`](Self::set_remote_col) for blocks).
    pub fn set_remote(&mut self, port: usize, u_twin: f64, omega_twin: f64) {
        self.set_remote_col(port, 0, u_twin, omega_twin);
    }

    /// Update one port's remote boundary condition for one block column.
    pub fn set_remote_col(&mut self, port: usize, col: usize, u_twin: f64, omega_twin: f64) {
        let i = col * self.n_ports() + port;
        self.w[i] = dtl::incident_wave(u_twin, omega_twin, self.z[port]);
        self.touch(col);
    }

    /// Mark one column's boundary input as changed.
    fn touch(&mut self, col: usize) {
        self.touched_cols |= if col >= 64 { u64::MAX } else { 1u64 << col };
    }

    /// Update one port's remote boundary conditions for all columns at once
    /// — the block-wave merge (`u` and `omega` hold one value per column).
    ///
    /// # Panics
    /// Panics if the payload width differs from the block width.
    pub fn set_remote_block(&mut self, port: usize, u: &[f64], omega: &[f64]) {
        assert_eq!(u.len(), self.k, "block payload width");
        assert_eq!(omega.len(), self.k, "block payload width");
        let np = self.n_ports();
        for c in 0..self.k {
            self.w[c * np + port] = dtl::incident_wave(u[c], omega[c], self.z[port]);
        }
        self.touched_cols = all_cols(self.k);
    }

    /// Update one port's incident wave directly (column 0).
    pub fn set_incident_wave(&mut self, port: usize, w: f64) {
        self.w[port] = w;
        self.touch(0);
    }

    /// Incident wave currently stored for `port` (column 0).
    pub fn incident_wave(&self, port: usize) -> f64 {
        self.w[port]
    }

    /// Incident wave currently stored for `port` in block column `col`.
    pub fn incident_wave_col(&self, port: usize, col: usize) -> f64 {
        self.w[col * self.n_ports() + port]
    }

    /// Solve (5.9) for every column with the stored remote boundary
    /// conditions: one RHS rebuild + one block forward/backward
    /// substitution over the shared factor (no refactorization, no
    /// allocation — `rhs_buf` is recycled across solves and columns).
    pub fn solve(&mut self) -> &[f64] {
        let (n, np, k) = (self.n, self.n_ports(), self.k);
        // The buffer swap below recycles `x`'s storage: both buffers were
        // allocated at n·k once and must never shrink or grow, or the
        // rebuild would reallocate per solve.
        debug_assert_eq!(self.rhs_buf.len(), n * k, "rhs_buf recycled, never resized");
        debug_assert!(self.rhs_buf.capacity() >= n * k);
        self.rhs_buf.copy_from_slice(&self.base_rhs);
        for c in 0..k {
            for (p, &v) in self.port_vertex.iter().enumerate() {
                self.rhs_buf[c * n + v] += self.w[c * np + p] / self.z[p];
            }
        }
        self.factor
            .solve_block_with_scratch(&mut self.rhs_buf, k, &mut self.solve_scratch);
        std::mem::swap(&mut self.x, &mut self.rhs_buf);
        let mut max_delta = 0.0_f64;
        for c in 0..k {
            let mut delta = 0.0_f64;
            for (p, &v) in self.port_vertex.iter().enumerate() {
                let i = c * np + p;
                self.omega[i] = dtl::inflow_current(self.w[i], self.x[c * n + v], self.z[p]);
                let out = dtl::outgoing_wave(self.x[c * n + v], self.omega[i], self.z[p]);
                delta = delta.max((out - self.prev_out[i]).abs());
                self.prev_out[i] = out;
            }
            self.col_delta[c] = delta;
            max_delta = max_delta.max(delta);
        }
        self.last_delta = max_delta;
        self.solved_cols = std::mem::replace(&mut self.touched_cols, 0);
        self.solves += 1;
        &self.x
    }

    /// Latest local solution `[u; y]` — the whole block, column-major.
    pub fn solution(&self) -> &[f64] {
        &self.x
    }

    /// Latest local solution of one block column.
    pub fn solution_col(&self, col: usize) -> &[f64] {
        &self.x[col * self.n..(col + 1) * self.n]
    }

    /// Latest inflow currents (whole block, column-major per port).
    pub fn currents(&self) -> &[f64] {
        &self.omega
    }

    /// The local boundary condition `(u, ω)` this subdomain transmits for
    /// `port` (Table 1 step 3.2), column 0.
    pub fn outgoing(&self, port: usize) -> (f64, f64) {
        self.outgoing_col(port, 0)
    }

    /// The transmitted `(u, ω)` pair for `port` in block column `col`.
    pub fn outgoing_col(&self, port: usize, col: usize) -> (f64, f64) {
        (
            self.x[col * self.n + self.port_vertex[port]],
            self.omega[col * self.n_ports() + port],
        )
    }

    /// Max |change| of any outgoing wave in the latest solve, over all
    /// columns — the local convergence signal of Table 1 step 3.3 (a block
    /// node keeps exchanging until its *worst* column settles).
    pub fn last_delta(&self) -> f64 {
        self.last_delta
    }

    /// Per-column outgoing-wave change of the latest solve.
    pub fn col_deltas(&self) -> &[f64] {
        &self.col_delta
    }

    /// Bitmask of columns whose boundary inputs changed going into the
    /// latest solve (`k ≥ 64` saturates to all-ones; the first solve
    /// reports every column). Columns outside the mask re-solved to
    /// bitwise-identical values — the same deterministic substitution of
    /// the same inputs — so snapshot publishers copy only these columns.
    pub fn last_solve_cols(&self) -> u64 {
        self.solved_cols
    }

    /// Number of solves performed (a block solve counts once).
    pub fn n_solves(&self) -> usize {
        self.solves
    }

    /// Size of the factor backing each substitution (dense: n(n+1)/2;
    /// sparse: nnz(L)); drives the per-solve compute-time model.
    pub fn factor_nnz(&self) -> usize {
        match &*self.factor {
            Factor::Dense(f) => f.n() * (f.n() + 1) / 2,
            Factor::Sparse(f) => f.nnz_l(),
        }
    }
}

/// Concatenate equal-length columns into one column-major buffer.
fn concat_cols(cols: &[Vec<f64>], n: usize) -> Vec<f64> {
    assert!(!cols.is_empty(), "at least one RHS column");
    let mut out = Vec::with_capacity(n * cols.len());
    for col in cols {
        assert_eq!(col.len(), n, "RHS column length");
        out.extend_from_slice(col);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::evs::{paper_example_shares, split, EvsOptions, SplitSystem};
    use dtm_graph::{ElectricGraph, PartitionPlan};
    use dtm_sparse::generators;

    fn paper_split() -> SplitSystem {
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a, b).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            explicit: paper_example_shares(),
            ..Default::default()
        };
        split(&g, &plan, &options).unwrap()
    }

    #[test]
    fn example_5_4_local_matrix_exact() {
        // (5.4): with Z₂ = 0.2, Z₃ = 0.1 the subgraph-1 matrix becomes
        // [5 −1 −1; −1 7.5 −0.9; −1 −0.9 13.3] in (x1, x2a, x3a) order —
        // ours is (x2a, x3a, x1).
        let ss = paper_split();
        let ls = LocalSystem::new(&ss.subdomains[0], &[0.2, 0.1], LocalSolverKind::Dense).unwrap();
        let m = ls.matrix();
        assert!((m.get(0, 0) - 7.5).abs() < 1e-12); // 2.5 + 1/0.2
        assert!((m.get(1, 1) - 13.3).abs() < 1e-12); // 3.3 + 1/0.1
        assert!((m.get(2, 2) - 5.0).abs() < 1e-12);
        assert_eq!(m.get(0, 1), -0.9);
        assert_eq!(m.get(0, 2), -1.0);
    }

    #[test]
    fn example_5_5_local_matrix_exact() {
        // (5.5): subgraph-2 matrix [8.5 −1.1 −1; −1.1 13.7 −2; −1 −2 8] in
        // (x2b, x3b, x4) order.
        let ss = paper_split();
        let ls = LocalSystem::new(&ss.subdomains[1], &[0.2, 0.1], LocalSolverKind::Dense).unwrap();
        let m = ls.matrix();
        assert!((m.get(0, 0) - 8.5).abs() < 1e-12); // 3.5 + 5
        assert!((m.get(1, 1) - 13.7).abs() < 1e-12); // 3.7 + 10
        assert!((m.get(2, 2) - 8.0).abs() < 1e-12);
        assert_eq!(m.get(0, 1), -1.1);
    }

    #[test]
    fn initial_solve_uses_zero_boundary() {
        // Initial condition (5.6): u = ω = 0 on all remote ports, so the
        // first solve is  Â x = [f; g].
        let ss = paper_split();
        let mut ls =
            LocalSystem::new(&ss.subdomains[0], &[0.2, 0.1], LocalSolverKind::Dense).unwrap();
        let x = ls.solve().to_vec();
        let expect = dtm_sparse::DenseCholesky::factor_csr(ls.matrix())
            .unwrap()
            .solve(&[0.8, 1.6, 1.0]);
        for (u, v) in x.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-12);
        }
        // ω = (0 − u)/z at each port.
        assert!((ls.currents()[0] - (-x[0] / 0.2)).abs() < 1e-12);
        assert!((ls.currents()[1] - (-x[1] / 0.1)).abs() < 1e-12);
    }

    #[test]
    fn solve_satisfies_delay_equation_at_ports() {
        let ss = paper_split();
        let mut ls =
            LocalSystem::new(&ss.subdomains[0], &[0.2, 0.1], LocalSolverKind::Dense).unwrap();
        ls.set_remote(0, 0.7, -0.2);
        ls.set_remote(1, 0.4, 0.1);
        ls.solve();
        for p in 0..2 {
            let (u, om) = ls.outgoing(p);
            assert!(crate::dtl::satisfies_delay_equation(
                u,
                om,
                ls.incident_wave(p),
                ls.impedances()[p],
                1e-12
            ));
        }
    }

    #[test]
    fn solve_satisfies_subdomain_equation_with_currents() {
        // A_j x = rhs + ω at ports (eq. 4.3) must hold exactly.
        let ss = paper_split();
        let sd = &ss.subdomains[1];
        let mut ls = LocalSystem::new(sd, &[0.2, 0.1], LocalSolverKind::Dense).unwrap();
        ls.set_remote(0, 1.0, 0.5);
        ls.set_remote(1, -0.3, 0.2);
        let x = ls.solve().to_vec();
        let ax = sd.matrix.matvec(&x);
        let mut rhs = sd.rhs.clone();
        for (p, port) in sd.ports.iter().enumerate() {
            rhs[port.local_vertex] += ls.currents()[p];
        }
        for (u, v) in ax.iter().zip(&rhs) {
            assert!((u - v).abs() < 1e-12, "{u} vs {v}");
        }
    }

    #[test]
    fn all_backends_agree() {
        let a = generators::grid2d_random(8, 8, 1.0, 3);
        let b = generators::random_rhs(64, 4);
        let g = ElectricGraph::from_system(a, b).unwrap();
        let asg = dtm_graph::partition::grid_blocks(8, 8, 2, 2);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        let ss = split(&g, &plan, &EvsOptions::default()).unwrap();
        let sd = &ss.subdomains[0];
        let z = vec![0.5; sd.n_ports()];
        let kinds = [
            LocalSolverKind::Dense,
            LocalSolverKind::Sparse,
            LocalSolverKind::SparseRcm,
            LocalSolverKind::Auto,
        ];
        let mut results = Vec::new();
        for kind in kinds {
            let mut ls = LocalSystem::new(sd, &z, kind).unwrap();
            for p in 0..sd.n_ports() {
                ls.set_remote(p, 0.1 * p as f64, -0.05 * p as f64);
            }
            results.push(ls.solve().to_vec());
        }
        for r in &results[1..] {
            for (u, v) in r.iter().zip(&results[0]) {
                assert!((u - v).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn delta_shrinks_under_fixed_boundary() {
        // Solving twice with the same remote boundary gives delta 0.
        let ss = paper_split();
        let mut ls =
            LocalSystem::new(&ss.subdomains[0], &[0.2, 0.1], LocalSolverKind::Dense).unwrap();
        ls.set_remote(0, 0.3, 0.0);
        ls.solve();
        let d1 = ls.last_delta();
        assert!(d1 > 0.0);
        ls.solve();
        assert_eq!(ls.last_delta(), 0.0);
        assert_eq!(ls.n_solves(), 2);
    }

    #[test]
    fn block_solve_is_bitwise_stack_of_scalar_solves() {
        // A 3-column block with per-column boundary states must reproduce,
        // bit for bit, three independent scalar LocalSystems fed the same
        // states — for every factor kind.
        let ss = paper_split();
        let sd = &ss.subdomains[0];
        let z = [0.2, 0.1];
        let cols: Vec<Vec<f64>> = vec![sd.rhs.clone(), vec![1.0, -2.0, 0.5], vec![0.0, 3.0, -1.0]];
        for kind in [
            LocalSolverKind::Dense,
            LocalSolverKind::Sparse,
            LocalSolverKind::SparseRcm,
        ] {
            let mut block = LocalSystem::new_block(sd, &z, kind, &cols).unwrap();
            assert_eq!(block.n_rhs(), 3);
            for c in 0..3 {
                for p in 0..2 {
                    block.set_remote_col(p, c, 0.3 * (c + 1) as f64, -0.1 * (p as f64 + 1.0));
                }
            }
            block.solve();
            for (c, col) in cols.iter().enumerate() {
                let mut scalar = block.with_rhs_block(std::slice::from_ref(col));
                for p in 0..2 {
                    scalar.set_remote(p, 0.3 * (c + 1) as f64, -0.1 * (p as f64 + 1.0));
                }
                scalar.solve();
                assert_eq!(block.solution_col(c), scalar.solution(), "column {c}");
                assert_eq!(block.col_deltas()[c], scalar.last_delta(), "delta {c}");
                for p in 0..2 {
                    assert_eq!(block.outgoing_col(p, c), scalar.outgoing(p));
                }
            }
        }
    }

    #[test]
    fn with_rhs_block_shares_the_factor_and_resets_state() {
        let ss = paper_split();
        let mut ls =
            LocalSystem::new(&ss.subdomains[0], &[0.2, 0.1], LocalSolverKind::Dense).unwrap();
        ls.set_remote(0, 0.9, 0.1);
        ls.solve();
        let fresh = ls.with_rhs_block(&[vec![1.0, 0.0, 0.0], vec![0.0, 0.0, 2.0]]);
        assert_eq!(fresh.n_rhs(), 2);
        assert_eq!(fresh.n_solves(), 0);
        assert_eq!(fresh.incident_wave_col(0, 0), 0.0);
        assert_eq!(fresh.incident_wave_col(0, 1), 0.0);
        // Same factor object, no refactorization.
        assert!(Arc::ptr_eq(&ls.factor, &fresh.factor));
    }

    #[test]
    fn replace_rhs_col_resets_only_that_column() {
        // Swap column 1 of a 2-column block mid-exchange: the swapped
        // column must behave exactly like a freshly built scalar system
        // (zero boundary guess, new RHS) while column 0's state and
        // solutions are untouched.
        let ss = paper_split();
        let sd = &ss.subdomains[0];
        let z = [0.2, 0.1];
        let cols = vec![sd.rhs.clone(), vec![1.0, -2.0, 0.5]];
        let mut block = LocalSystem::new_block(sd, &z, LocalSolverKind::Dense, &cols).unwrap();
        for c in 0..2 {
            for p in 0..2 {
                block.set_remote_col(p, c, 0.4 * (c + 1) as f64, -0.2);
            }
        }
        block.solve();
        let col0_before = block.solution_col(0).to_vec();

        let new_rhs = vec![0.3, 2.0, -1.0];
        block.replace_rhs_col(1, &new_rhs);
        assert_eq!(block.incident_wave_col(0, 1), 0.0, "boundary reset");
        assert_eq!(block.col_deltas()[1], f64::INFINITY, "delta re-armed");
        block.solve();
        assert_eq!(
            block.last_solve_cols(),
            0b10,
            "only the swapped column was touched going into the solve"
        );
        assert_eq!(block.solution_col(0), col0_before, "column 0 untouched");
        let mut fresh = LocalSystem::new_block(
            sd,
            &z,
            LocalSolverKind::Dense,
            std::slice::from_ref(&new_rhs),
        )
        .unwrap();
        fresh.solve();
        assert_eq!(block.solution_col(1), fresh.solution(), "swapped == fresh");
    }

    #[test]
    #[should_panic(expected = "one impedance per port")]
    fn wrong_impedance_count_panics() {
        let ss = paper_split();
        let _ = LocalSystem::new(&ss.subdomains[0], &[0.2], LocalSolverKind::Dense);
    }
}

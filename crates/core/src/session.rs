//! Rolling mixed-tolerance solve sessions: admit right-hand sides into a
//! **live** wave exchange, retire them individually, and stream per-column
//! completion reports.
//!
//! The batch [`SolveSession`](crate::builder::SolveSession) works in rigid
//! rounds: every right-hand side in a batch shares one tolerance, and new
//! work waits for the whole exchange to drain. The paper's factor-once
//! design promises more — the local matrices never depend on the
//! right-hand side, so a *column slot* of the block wave can be recycled
//! the instant its ticket converges, without quiescing anything. Avron et
//! al. (2013) supply the license: asynchronous iterations tolerate
//! per-component staleness, so a freshly admitted column may start from
//! whatever stale boundary waves are still in flight for the retired one —
//! contraction corrects the initial state, and the stop decision is
//! **self-validating** (a ticket only retires when the *exact* metric of
//! the gathered estimate meets its own tolerance, so stale data can delay
//! a stop, never corrupt a result).
//!
//! The subsystem has one admission/queueing core and three drivers, one
//! per executor:
//!
//! * [`SessionQueue`] — tickets, slot states, completion stream. Pure
//!   logic, shared by every driver.
//! * [`RollingSession`] — the simulated machine: the discrete-event engine
//!   is paused (its event queue, in-flight envelopes and busy windows all
//!   persist), the retiring column is swapped in place
//!   ([`dtm_simnet::Engine::nodes_mut`] +
//!   [`NodeRuntime::swap_rhs_col`](crate::runtime::NodeRuntime::swap_rhs_col)),
//!   and the run resumes — an instantaneous control action at the current
//!   simulated instant, not an exchange restart.
//! * [`RollingThreadedSession`] — one OS thread per subdomain; swap orders
//!   travel per-part admission mailboxes the workers drain between steps,
//!   so no worker ever blocks or restarts.
//! * [`RollingPoolSession`] — the work-stealing pool; swap orders land in
//!   per-cell mailboxes drained at the top of each activation task.
//!
//! Every submitted right-hand side carries its **own**
//! [`Termination`] — `Residual` and `OracleRms` tolerances mix freely in
//! one session ([`Termination::LocalDelta`] is rejected: nodes must keep
//! exchanging for the session's lifetime, so per-node self-halt cannot
//! coexist with rolling admission). Completion is reported per column as a
//! [`ColumnReport`] stream instead of one batch-level
//! [`SolveReport`](crate::report::SolveReport).

use crate::builder::DtmProblem;
use crate::monitor::Monitor;
use crate::runtime::{
    self, wallclock::SharedBlock, CommonConfig, DtmMsg, NodeRuntime, Termination,
};
use crate::solver::{self, DtmNode};
use crate::sync::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use crate::sync::{thread, Arc, AtomicBool, Mutex, Ordering};
use dtm_graph::evs::SplitSystem;
use dtm_simnet::{Engine, SimDuration, SimTime, StopReason};
use dtm_sparse::{Csr, Error, Result, SparseCholesky};
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Handle for one submitted right-hand side; returned by `submit`, carried
/// by its [`ColumnReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TicketId(pub u64);

impl std::fmt::Display for TicketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Per-column completion report — the rolling analogue of a batch
/// [`SolveReport`](crate::report::SolveReport): one per ticket, streamed
/// out as tickets retire instead of once per barrier.
#[derive(Debug, Clone)]
pub struct ColumnReport {
    /// Which submission this answers.
    pub ticket: TicketId,
    /// The stopping rule the ticket was admitted with.
    pub termination: Termination,
    /// Gathered global solution at retirement (split copies averaged).
    pub solution: Vec<f64>,
    /// Exact relative residual `‖b − A·x‖₂ / ‖b‖₂` at retirement (absolute
    /// residual for an all-zero `b`). Always computed.
    pub final_residual: f64,
    /// Exact RMS error against the oracle reference — `None` for
    /// residual-rule tickets, which never pay for an oracle.
    pub final_rms: Option<f64>,
    /// Session clock at submission, in milliseconds (simulated time for
    /// the simnet driver, wall-clock for the real executors).
    pub submitted_at_ms: f64,
    /// Session clock at retirement, in milliseconds.
    pub completed_at_ms: f64,
}

impl ColumnReport {
    /// Submission-to-completion latency in milliseconds — the serving
    /// number the rolling design exists to lower.
    pub fn latency_ms(&self) -> f64 {
        self.completed_at_ms - self.submitted_at_ms
    }
}

/// One queued or live right-hand side.
#[derive(Debug, Clone)]
struct Ticket {
    id: TicketId,
    b: Vec<f64>,
    termination: Termination,
    /// Direct solution `A⁻¹ b`, present only for `OracleRms` tickets.
    reference: Option<Vec<f64>>,
    submitted_at_ms: f64,
}

/// State of one column slot of the live block wave.
#[derive(Debug, Clone)]
enum Slot {
    /// No ticket occupies the slot. The retired column's values keep
    /// circulating in the exchange (they are converged, so their deltas
    /// are ~0 and they cost nothing extra) until an admission overwrites
    /// them.
    Idle,
    /// A live ticket.
    Active(Ticket),
}

/// The admission/queueing layer every rolling driver shares: a FIFO of
/// pending tickets, the slot table of the live block wave, and the
/// completed-report stream. Owns no executor state — drivers translate
/// its decisions (admit into slot `s`, retire slot `s`) into column swaps
/// on their machine.
#[derive(Debug)]
pub struct SessionQueue {
    n: usize,
    slots: Vec<Slot>,
    queue: VecDeque<Ticket>,
    next_ticket: u64,
    completed: Vec<ColumnReport>,
}

impl SessionQueue {
    /// A queue for systems of dimension `n` over `slots` column slots.
    pub fn new(n: usize, slots: usize) -> Self {
        assert!(slots >= 1, "at least one column slot");
        Self {
            n,
            slots: vec![Slot::Idle; slots],
            queue: VecDeque::new(),
            next_ticket: 0,
            completed: Vec::new(),
        }
    }

    /// Column slots of the live block wave.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Tickets waiting for a slot.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Tickets currently occupying slots.
    pub fn active(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Active(_)))
            .count()
    }

    /// Tickets submitted but not yet completed (queued + live).
    pub fn outstanding(&self) -> usize {
        self.pending() + self.active()
    }

    /// Completed reports not yet taken.
    pub fn completed(&self) -> usize {
        self.completed.len()
    }

    /// Queue a right-hand side under its own stopping rule.
    ///
    /// # Errors
    /// Rejects wrong-length vectors and [`Termination::LocalDelta`]
    /// (rolling sessions need nodes that keep exchanging; per-node
    /// self-halt cannot coexist with mid-exchange admission).
    fn submit(
        &mut self,
        b: &[f64],
        termination: Termination,
        reference: Option<Vec<f64>>,
        now_ms: f64,
    ) -> Result<TicketId> {
        if b.len() != self.n {
            return Err(Error::DimensionMismatch {
                context: "rolling session submit",
                expected: self.n,
                actual: b.len(),
            });
        }
        if matches!(termination, Termination::LocalDelta { .. }) {
            return Err(Error::Parse(
                "rolling sessions accept Residual or OracleRms tickets; LocalDelta \
                 self-halt would retire nodes the session still needs"
                    .into(),
            ));
        }
        debug_assert_eq!(
            matches!(termination, Termination::OracleRms { .. }),
            reference.is_some(),
            "oracle tickets carry a reference, residual tickets never do"
        );
        let id = TicketId(self.next_ticket);
        self.next_ticket += 1;
        self.queue.push_back(Ticket {
            id,
            b: b.to_vec(),
            termination,
            reference,
            submitted_at_ms: now_ms,
        });
        Ok(id)
    }

    /// Lowest-numbered idle slot, if any.
    fn idle_slot(&self) -> Option<usize> {
        self.slots.iter().position(|s| matches!(s, Slot::Idle))
    }

    /// Move the front pending ticket into `slot`; returns the admitted
    /// ticket for the driver to scatter, or `None` if the queue is empty.
    fn admit_into(&mut self, slot: usize) -> Option<&Ticket> {
        debug_assert!(matches!(self.slots[slot], Slot::Idle), "slot occupied");
        let t = self.queue.pop_front()?;
        self.slots[slot] = Slot::Active(t);
        match &self.slots[slot] {
            Slot::Active(t) => Some(t),
            Slot::Idle => None, // just stored Active
        }
    }

    /// Live tickets, as `(slot, ticket)` pairs.
    fn active_slots(&self) -> impl Iterator<Item = (usize, &Ticket)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Active(t) => Some((i, t)),
            Slot::Idle => None,
        })
    }

    /// Retire the ticket in `slot` with its final numbers; frees the slot.
    fn retire(
        &mut self,
        slot: usize,
        solution: Vec<f64>,
        final_residual: f64,
        final_rms: Option<f64>,
        now_ms: f64,
    ) {
        let Slot::Active(t) = std::mem::replace(&mut self.slots[slot], Slot::Idle) else {
            // Retiring an idle slot is a driver bug; there is no ticket to
            // report, so in release this is a no-op.
            debug_assert!(false, "retiring an idle slot");
            return;
        };
        self.completed.push(ColumnReport {
            ticket: t.id,
            termination: t.termination,
            solution,
            final_residual,
            final_rms,
            submitted_at_ms: t.submitted_at_ms,
            completed_at_ms: now_ms,
        });
    }

    /// Drain the completed-report stream (submission order not
    /// guaranteed — tickets complete when their own tolerance is met).
    pub fn take_completed(&mut self) -> Vec<ColumnReport> {
        std::mem::take(&mut self.completed)
    }
}

/// Node-level configuration for a rolling run: the problem's common config
/// with self-halt and the solve cap disabled — session nodes live as long
/// as the session and halt for no reason of their own.
fn rolling_common(common: &CommonConfig) -> CommonConfig {
    CommonConfig {
        termination: Termination::Residual { tol: 0.0 },
        max_solves_per_node: usize::MAX,
        ..common.clone()
    }
}

/// Lazily factored oracle for `OracleRms` tickets: residual-only sessions
/// never pay for the direct factorization of the original system.
#[derive(Debug, Default)]
struct LazyOracle {
    factor: Option<SparseCholesky>,
}

impl LazyOracle {
    fn reference(&mut self, a: &Csr, b: &[f64]) -> Result<Vec<f64>> {
        let f = match self.factor.take() {
            Some(f) => f,
            None => SparseCholesky::factor_rcm(a)?,
        };
        let out = f.solve(b);
        self.factor = Some(f);
        Ok(out)
    }

    fn for_ticket(&mut self, a: &Csr, b: &[f64], t: Termination) -> Result<Option<Vec<f64>>> {
        match t {
            Termination::OracleRms { .. } => Ok(Some(self.reference(a, b)?)),
            _ => Ok(None),
        }
    }
}

// ---------------------------------------------------------------------------
// Driver 1: the simulated machine.
// ---------------------------------------------------------------------------

/// A rolling session on the simulated heterogeneous machine.
///
/// Built once from a [`DtmProblem`]: every subdomain is factored once,
/// the engine and its event queue live for the whole session, and columns
/// are admitted/retired by in-place swaps between `run` slices — the
/// exchange is never restarted and nothing is ever re-factored.
///
/// ```
/// use dtm_core::runtime::Termination;
/// use dtm_core::DtmBuilder;
/// use dtm_simnet::SimDuration;
/// use dtm_sparse::generators;
///
/// let a = generators::grid2d_laplacian(9, 9);
/// let problem = DtmBuilder::new(a, vec![1.0; 81])
///     .grid_blocks(9, 9, 2, 2)
///     .build()
///     .unwrap();
/// let mut session = problem.rolling(2).unwrap();
/// // Mixed tolerances in one session: each stops at its own target.
/// let loose = session
///     .submit(&generators::random_rhs(81, 1), Termination::Residual { tol: 1e-3 })
///     .unwrap();
/// let tight = session
///     .submit(&generators::random_rhs(81, 2), Termination::OracleRms { tol: 1e-8 })
///     .unwrap();
/// let reports = session.drain_for(SimDuration::from_millis_f64(60_000.0));
/// assert_eq!(reports.len(), 2);
/// assert!(reports.iter().any(|r| r.ticket == loose));
/// assert!(reports.iter().any(|r| r.ticket == tight));
/// ```
#[derive(Debug)]
pub struct RollingSession {
    split: SplitSystem,
    engine: Engine<DtmNode>,
    monitor: Monitor,
    queue: SessionQueue,
    /// Reconstructed original system, for oracle references.
    a: Csr,
    oracle: LazyOracle,
    k: usize,
}

impl RollingSession {
    pub(crate) fn new(problem: &DtmProblem, slots: usize) -> Result<Self> {
        if slots == 0 {
            return Err(Error::Parse("rolling session needs ≥ 1 column slot".into()));
        }
        let split = problem.split.clone();
        let n = split.original_n;
        let mut config = problem.config.clone();
        config.common = rolling_common(&config.common);
        let zero_cols = vec![vec![0.0; n]; slots];
        let nodes = solver::build_nodes_block(&split, &problem.topology, &config, &zero_cols)?;
        let engine = Engine::new(problem.topology.clone(), nodes);
        // Residual tracking only: the oracle tracker is attached lazily on
        // the first `OracleRms` admission, so residual-only sessions never
        // pay its per-update accounting in the observer hot loop.
        let monitor = Monitor::new_residual(&split, Some(&zero_cols), config.sample_interval);
        let (a, _) = split.reconstruct();
        Ok(Self {
            split,
            engine,
            monitor,
            queue: SessionQueue::new(n, slots),
            a,
            oracle: LazyOracle::default(),
            k: slots,
        })
    }

    /// Current simulated session clock.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Column slots of the live block wave.
    pub fn n_slots(&self) -> usize {
        self.k
    }

    /// Tickets submitted but not yet completed.
    pub fn outstanding(&self) -> usize {
        self.queue.outstanding()
    }

    /// Total local solves across the session so far — monotone for the
    /// session's whole life (admissions never reset the exchange).
    pub fn total_solves(&self) -> u64 {
        self.engine.stats().activations.iter().sum()
    }

    /// Queue a right-hand side under its own stopping rule; it is admitted
    /// into the live wave as soon as a slot is free (immediately, if one
    /// is).
    ///
    /// # Errors
    /// See [`SessionQueue`] (wrong length, `LocalDelta`); `OracleRms`
    /// tickets additionally factor the original system once per session.
    pub fn submit(&mut self, b: &[f64], termination: Termination) -> Result<TicketId> {
        let reference = self.oracle.for_ticket(&self.a, b, termination)?;
        let now_ms = self.engine.now().as_millis_f64();
        let id = self.queue.submit(b, termination, reference, now_ms)?;
        self.admit_idle_slots();
        Ok(id)
    }

    /// Admit pending tickets into every idle slot: swap the column into
    /// every node's live block and re-anchor the monitor — the exchange
    /// keeps running throughout.
    fn admit_idle_slots(&mut self) {
        while self.queue.pending() > 0 {
            let Some(slot) = self.queue.idle_slot() else {
                return;
            };
            let Some(t) = self.queue.admit_into(slot) else {
                return;
            };
            let (b, reference) = (t.b.clone(), t.reference.clone());
            let local_cols = self.split.scatter_rhs(&b);
            for (node, local) in self.engine.nodes_mut().iter_mut().zip(&local_cols) {
                node.swap_rhs_col(slot, local);
            }
            // First oracle ticket: attach the (lazily created) oracle
            // tracker with zero references; `replace_column` installs this
            // ticket's real one below. Residual-rule slots never query it.
            if reference.is_some() && !self.monitor.has_oracle() {
                let zeros = vec![vec![0.0; self.split.original_n]; self.k];
                self.monitor.attach_oracle(&zeros);
            }
            self.monitor.replace_column(slot, &b, reference.as_deref());
        }
    }

    /// Retire `slot` at the current instant and return nothing — the
    /// report lands in the completed stream.
    fn retire_slot(&mut self, slot: usize) {
        let now_ms = self.engine.now().as_millis_f64();
        let solution = self.monitor.estimate_col(slot).to_vec();
        let final_residual = self.monitor.residual_exact_col(slot);
        let final_rms = match self
            .queue
            .active_slots()
            .find(|&(s, _)| s == slot)
            .map(|(_, t)| t.termination)
        {
            Some(Termination::OracleRms { .. }) => Some(self.monitor.rms_exact_col(slot)),
            _ => None,
        };
        self.queue
            .retire(slot, solution, final_residual, final_rms, now_ms);
    }

    /// Advance the simulated machine by `d`, admitting and retiring
    /// tickets as their own tolerances are crossed; returns the reports
    /// completed in the window.
    pub fn run_for(&mut self, d: SimDuration) -> Vec<ColumnReport> {
        let horizon = self.engine.now() + d;
        self.run_until(horizon, false)
    }

    /// Run until every outstanding ticket has completed, or `max` more
    /// simulated time has elapsed; returns everything completed.
    pub fn drain_for(&mut self, max: SimDuration) -> Vec<ColumnReport> {
        let horizon = self.engine.now() + max;
        self.run_until(horizon, true)
    }

    fn run_until(&mut self, horizon: SimTime, stop_when_drained: bool) -> Vec<ColumnReport> {
        let mut crossed: Vec<usize> = Vec::new();
        loop {
            if stop_when_drained && self.queue.outstanding() == 0 {
                break;
            }
            self.admit_idle_slots();
            // Keep the monitor resyncing exactly where stop decisions are
            // made: the tightest live tolerance.
            let tightest = self
                .queue
                .active_slots()
                .map(|(_, t)| match t.termination {
                    Termination::Residual { tol } | Termination::OracleRms { tol } => tol,
                    Termination::LocalDelta { .. } => unreachable!("rejected at submit"),
                })
                .fold(f64::INFINITY, f64::min);
            self.monitor
                .set_refresh_below(if tightest.is_finite() { tightest } else { 0.0 });

            let Self {
                engine,
                monitor,
                queue,
                ..
            } = self;
            crossed.clear();
            let outcome = engine.run(horizon, |time, part, node| {
                monitor.update_part(part, time, node.local().solution());
                for (slot, t) in queue.active_slots() {
                    // Cached per-column values gate the check; an exact
                    // recomputation confirms every crossing, so a stale or
                    // drifted number can never retire a ticket early.
                    let done = match t.termination {
                        Termination::Residual { tol } => {
                            monitor.col_residual(slot) <= tol
                                && monitor.residual_exact_col(slot) <= tol
                        }
                        Termination::OracleRms { tol } => {
                            monitor.col_rms(slot) <= tol && monitor.rms_exact_col(slot) <= tol
                        }
                        Termination::LocalDelta { .. } => unreachable!("rejected at submit"),
                    };
                    if done {
                        crossed.push(slot);
                    }
                }
                crossed.is_empty()
            });
            if !crossed.is_empty() {
                for slot in crossed.drain(..) {
                    self.retire_slot(slot);
                }
                continue; // resume the same exchange; admissions at loop top
            }
            match outcome.reason {
                StopReason::TimeLimit => break,
                // A quiescent or fully halted machine cannot make further
                // progress (only possible with no live tickets driving it).
                StopReason::QueueEmpty | StopReason::AllHalted => break,
                StopReason::ObserverStop => unreachable!("observer stops only on crossings"),
            }
        }
        self.queue.take_completed()
    }
}

// ---------------------------------------------------------------------------
// Wall-clock drivers (threads, work-stealing pool).
// ---------------------------------------------------------------------------

/// Supervisor-side state shared by the two real-execution drivers: the
/// queue, the per-part solution mirrors, the gathered per-column
/// estimates, and the exact per-ticket stop decisions. The drivers differ
/// only in how workers run and how swap orders reach them.
#[derive(Debug)]
struct WallclockCore {
    split: SplitSystem,
    a: Csr,
    queue: SessionQueue,
    oracle: LazyOracle,
    mirrors: Vec<Vec<f64>>,
    seen: Vec<u64>,
    est: Vec<Vec<f64>>,
    started: Instant,
}

impl WallclockCore {
    fn new(split: SplitSystem, slots: usize) -> Self {
        let n = split.original_n;
        let (a, _) = split.reconstruct();
        Self {
            mirrors: split
                .subdomains
                .iter()
                .map(|sd| vec![0.0; sd.n_local() * slots])
                .collect(),
            seen: vec![0; split.n_parts()],
            est: (0..slots).map(|_| vec![0.0; n]).collect(),
            queue: SessionQueue::new(n, slots),
            oracle: LazyOracle::default(),
            a,
            split,
            started: Instant::now(),
        }
    }

    fn now_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    fn submit(&mut self, b: &[f64], termination: Termination) -> Result<TicketId> {
        let reference = self.oracle.for_ticket(&self.a, b, termination)?;
        let now_ms = self.now_ms();
        self.queue.submit(b, termination, reference, now_ms)
    }

    /// Copy everything the workers dirtied since the last poll into the
    /// mirrors (cheap no-op for untouched parts).
    fn drain_snapshots(&mut self, snapshots: &[SharedBlock]) {
        for (snap, (mirror, seen)) in snapshots
            .iter()
            .zip(self.mirrors.iter_mut().zip(&mut self.seen))
        {
            snap.drain_into(mirror, seen);
        }
    }

    /// Gather one column's global estimate from the mirrors.
    fn gather_col(&mut self, c: usize) {
        let k = self.est.len();
        let e = &mut self.est[c];
        e.iter_mut().for_each(|v| *v = 0.0);
        for (sd, m) in self.split.subdomains.iter().zip(&self.mirrors) {
            let nl = sd.n_local();
            debug_assert_eq!(m.len(), nl * k);
            for (l, &g) in sd.global_of_local.iter().enumerate() {
                e[g] += m[c * nl + l];
            }
        }
        for (v, &cc) in e.iter_mut().zip(&self.split.copy_count) {
            *v /= cc as f64;
        }
    }

    /// One admission/retirement sweep over the drained state. `issue_swap`
    /// delivers `(slot, per-part local columns)` to the executor's workers.
    fn sweep(&mut self, mut issue_swap: impl FnMut(usize, &[Vec<f64>])) {
        loop {
            // Admissions first, so freed slots refill in the same poll.
            while self.queue.pending() > 0 {
                let Some(slot) = self.queue.idle_slot() else {
                    break;
                };
                let Some(t) = self.queue.admit_into(slot) else {
                    break;
                };
                let local_cols = self.split.scatter_rhs(&t.b);
                issue_swap(slot, &local_cols);
            }
            let slots: Vec<usize> = self.queue.active_slots().map(|(slot, _)| slot).collect();
            for &slot in &slots {
                self.gather_col(slot);
            }
            // Exact metrics straight off the gathered estimates: the stop
            // decision is self-validating even while some parts still hold
            // a just-swapped column's stale state. One scan, one residual
            // SpMV per residual-rule slot (it *is* the stopping metric);
            // oracle slots pay theirs only on retirement, for the report.
            let mut retire: Vec<(usize, f64, Option<f64>)> = Vec::new();
            for (slot, t) in self.queue.active_slots() {
                let est = &self.est[slot];
                let resid =
                    || self.a.residual_norm(est, &t.b) / dtm_sparse::vector::norm2_or_one(&t.b);
                match t.termination {
                    Termination::OracleRms { tol } => {
                        // submit() attaches a reference to every oracle
                        // ticket, so the if-let always takes.
                        debug_assert!(t.reference.is_some(), "oracle tickets carry a reference");
                        if let Some(reference) = t.reference.as_deref() {
                            let rms = dtm_sparse::vector::rms_error(est, reference);
                            if rms <= tol {
                                retire.push((slot, resid(), Some(rms)));
                            }
                        }
                    }
                    Termination::Residual { tol } => {
                        let r = resid();
                        if r <= tol {
                            retire.push((slot, r, None));
                        }
                    }
                    Termination::LocalDelta { .. } => unreachable!("rejected at submit"),
                }
            }
            if retire.is_empty() {
                return;
            }
            let now_ms = self.now_ms();
            for (slot, final_residual, final_rms) in retire {
                let solution = self.est[slot].clone();
                self.queue
                    .retire(slot, solution, final_residual, final_rms, now_ms);
            }
        }
    }
}

/// One admission order: `(column slot, local RHS column)`.
type ColumnSwap = (usize, Vec<f64>);

/// Per-part channels and mailboxes shared with the threaded workers.
struct ThreadedShared {
    snapshots: Vec<SharedBlock>,
    /// Admission mailboxes: [`ColumnSwap`] orders the worker drains
    /// between steps — column swap-in without quiescing.
    swaps: Vec<Mutex<Vec<ColumnSwap>>>,
    stop: AtomicBool,
}

/// A rolling session on real OS threads (one per subdomain).
///
/// Workers run the perpetual exchange — every received wave triggers a
/// re-solve and a re-scatter — for the session's whole life; the caller's
/// thread is the supervisor: [`poll`](Self::poll) drains solution
/// snapshots, retires tickets whose own tolerance is met (exact metrics on
/// the gathered estimate — self-validating), and admits queued tickets by
/// dropping swap orders into per-part mailboxes. Call
/// [`finish`](Self::finish) (or drop the session) to stop the workers.
pub struct RollingThreadedSession {
    core: WallclockCore,
    shared: Arc<ThreadedShared>,
    handles: Vec<thread::JoinHandle<()>>,
    poll_interval: Duration,
}

impl RollingThreadedSession {
    pub(crate) fn new(problem: &DtmProblem, slots: usize) -> Result<Self> {
        if slots == 0 {
            return Err(Error::Parse("rolling session needs ≥ 1 column slot".into()));
        }
        let split = problem.split.clone();
        let n = split.original_n;
        let common = rolling_common(&problem.config.common);
        let zero_cols = vec![vec![0.0; n]; slots];
        let runtimes = runtime::build_nodes_block(&split, &common, &zero_cols)?;
        let n_parts = split.n_parts();

        let mut senders: Vec<Sender<DtmMsg>> = Vec::with_capacity(n_parts);
        let mut receivers: Vec<Receiver<DtmMsg>> = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            let (tx, rx) = unbounded::<DtmMsg>();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(ThreadedShared {
            snapshots: runtimes
                .iter()
                .map(|rt| SharedBlock::new(rt.local().n_local(), slots))
                .collect(),
            swaps: (0..n_parts).map(|_| Mutex::new(Vec::new())).collect(),
            stop: AtomicBool::new(false),
        });

        let mut handles = Vec::with_capacity(n_parts);
        for (p, (mut rt, rx)) in runtimes.into_iter().zip(receivers).enumerate() {
            let senders = senders.clone();
            let shared = shared.clone();
            handles.push(thread::spawn(move || {
                let mut outbox: Vec<(usize, DtmMsg)> = Vec::new();
                let mut step = |rt: &mut NodeRuntime| {
                    rt.step(&mut outbox);
                    for (dst, msg) in outbox.drain(..) {
                        // Send failures mean the session is tearing down.
                        let _ = senders[dst].send(msg);
                    }
                    shared.snapshots[p]
                        .publish(rt.local().solution(), rt.local().last_solve_cols());
                };
                step(&mut rt); // initial solve, zero boundary guess (eq. 5.6)
                loop {
                    if shared.stop.load(Ordering::Acquire) {
                        return;
                    }
                    // Drain admission orders between steps: the swap is an
                    // in-place column replacement, never a pause.
                    let mut swapped = false;
                    {
                        let mut orders = shared.swaps[p].lock();
                        for (col, rhs) in orders.drain(..) {
                            rt.swap_rhs_col(col, &rhs);
                            swapped = true;
                        }
                    }
                    match rx.recv_timeout(Duration::from_millis(1)) {
                        Ok(first) => {
                            rt.absorb_owned(first);
                            while let Ok(more) = rx.try_recv() {
                                rt.absorb_owned(more);
                            }
                            step(&mut rt);
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            // No wave this millisecond (possible on tiny
                            // or single-part machines): a swapped column
                            // must still be solved and published.
                            if swapped {
                                step(&mut rt);
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            }));
        }
        drop(senders);

        Ok(Self {
            core: WallclockCore::new(split, slots),
            shared,
            handles,
            poll_interval: Duration::from_micros(200),
        })
    }

    /// Tickets submitted but not yet completed.
    pub fn outstanding(&self) -> usize {
        self.core.queue.outstanding()
    }

    /// Queue a right-hand side under its own stopping rule; admission
    /// happens immediately if a slot is free (completed reports stay
    /// queued for the next [`poll`](Self::poll) — submitting never
    /// discards them).
    ///
    /// # Errors
    /// See [`SessionQueue`]; also rejects submissions after
    /// [`finish`](Self::finish) — the workers are gone, so the ticket
    /// could never complete.
    pub fn submit(&mut self, b: &[f64], termination: Termination) -> Result<TicketId> {
        if self.shared.stop.load(Ordering::Acquire) {
            return Err(Error::Parse(
                "rolling session is finished; workers are stopped".into(),
            ));
        }
        let id = self.core.submit(b, termination)?;
        self.pump();
        Ok(id)
    }

    /// Drain snapshots, retire finished tickets, admit queued ones —
    /// without consuming the completed-report stream.
    fn pump(&mut self) {
        let shared = self.shared.clone();
        self.core.drain_snapshots(&shared.snapshots);
        self.core.sweep(|slot, local_cols| {
            for (mailbox, local) in shared.swaps.iter().zip(local_cols) {
                mailbox.lock().push((slot, local.clone()));
            }
        });
    }

    /// One supervisor pass: drain snapshots, retire finished tickets,
    /// admit queued ones; returns the reports completed so far.
    pub fn poll(&mut self) -> Vec<ColumnReport> {
        self.pump();
        self.core.queue.take_completed()
    }

    /// Poll until every outstanding ticket completes or `timeout` elapses.
    pub fn drain(&mut self, timeout: Duration) -> Vec<ColumnReport> {
        let deadline = Instant::now() + timeout;
        let mut out = self.poll();
        while self.core.queue.outstanding() > 0 && Instant::now() < deadline {
            std::thread::sleep(self.poll_interval);
            out.extend(self.poll());
        }
        out
    }

    /// Stop the workers and join them. Further submissions are rejected;
    /// prefer draining first.
    pub fn finish(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for RollingThreadedSession {
    fn drop(&mut self) {
        self.finish();
    }
}

/// One pool node's runtime plus its recycled buffers (same shape as the
/// batch work-stealing executor).
struct PoolNodeState {
    rt: NodeRuntime,
    drain: Vec<DtmMsg>,
    outbox: Vec<(usize, DtmMsg)>,
}

struct PoolCell {
    state: Mutex<PoolNodeState>,
    inbox: Mutex<Vec<DtmMsg>>,
    /// Admission mailbox, drained at the top of each activation.
    swaps: Mutex<Vec<ColumnSwap>>,
    scheduled: AtomicBool,
}

struct PoolShared {
    cells: Vec<PoolCell>,
    snapshots: Vec<SharedBlock>,
    stop: AtomicBool,
}

/// Run one activation of pool node `p`: drain swap orders and inbox,
/// merge, solve-and-scatter, schedule receivers — the rolling variant of
/// the batch executor's task body (no halt states: session nodes never
/// self-retire).
fn pool_activate(shared: &Arc<PoolShared>, pool: &Arc<ThreadPool>, p: usize, force: bool) {
    let cell = &shared.cells[p];
    cell.scheduled.store(false, Ordering::Release);
    if shared.stop.load(Ordering::Acquire) {
        return;
    }
    let mut st = cell.state.lock();
    let PoolNodeState { rt, drain, outbox } = &mut *st;
    let mut swapped = false;
    {
        let mut orders = cell.swaps.lock();
        for (col, rhs) in orders.drain(..) {
            rt.swap_rhs_col(col, &rhs);
            swapped = true;
        }
    }
    std::mem::swap(&mut *cell.inbox.lock(), drain);
    if drain.is_empty() && !force && !swapped {
        return;
    }
    for msg in drain.drain(..) {
        rt.absorb_owned(msg);
    }
    rt.step(outbox);
    shared.snapshots[p].publish(rt.local().solution(), rt.local().last_solve_cols());
    for (dst, msg) in outbox.drain(..) {
        shared.cells[dst].inbox.lock().push(msg);
        pool_schedule(shared, pool, dst, false);
    }
}

/// Spawn an activation task for `p` unless one is already queued/running.
fn pool_schedule(shared: &Arc<PoolShared>, pool: &Arc<ThreadPool>, p: usize, force: bool) {
    if shared.stop.load(Ordering::Acquire) {
        return;
    }
    if shared.cells[p]
        .scheduled
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        let shared = shared.clone();
        let pool2 = pool.clone();
        pool.spawn(move || pool_activate(&shared, &pool2, p, force));
    }
}

/// A rolling session on the in-process work-stealing pool — the serving
/// shape: subdomain count decoupled from thread count, column swap-in
/// without quiescing via per-cell admission mailboxes.
pub struct RollingPoolSession {
    core: WallclockCore,
    shared: Arc<PoolShared>,
    pool: Arc<ThreadPool>,
    poll_interval: Duration,
}

impl RollingPoolSession {
    pub(crate) fn new(problem: &DtmProblem, slots: usize, num_threads: usize) -> Result<Self> {
        if slots == 0 {
            return Err(Error::Parse("rolling session needs ≥ 1 column slot".into()));
        }
        let split = problem.split.clone();
        let n = split.original_n;
        let common = rolling_common(&problem.config.common);
        let zero_cols = vec![vec![0.0; n]; slots];
        let runtimes = runtime::build_nodes_block(&split, &common, &zero_cols)?;
        let n_parts = split.n_parts();
        let pool = Arc::new(
            ThreadPoolBuilder::new()
                .num_threads(num_threads)
                .build()
                .map_err(|e| Error::Parse(format!("thread pool: {e}")))?,
        );
        let shared = Arc::new(PoolShared {
            snapshots: runtimes
                .iter()
                .map(|rt| SharedBlock::new(rt.local().n_local(), slots))
                .collect(),
            cells: runtimes
                .into_iter()
                .map(|rt| PoolCell {
                    state: Mutex::new(PoolNodeState {
                        rt,
                        drain: Vec::new(),
                        outbox: Vec::new(),
                    }),
                    inbox: Mutex::new(Vec::new()),
                    swaps: Mutex::new(Vec::new()),
                    scheduled: AtomicBool::new(false),
                })
                .collect(),
            stop: AtomicBool::new(false),
        });
        // Initial solves (eq. 5.6).
        for p in 0..n_parts {
            pool_schedule(&shared, &pool, p, true);
        }
        Ok(Self {
            core: WallclockCore::new(split, slots),
            shared,
            pool,
            poll_interval: Duration::from_micros(200),
        })
    }

    /// Tickets submitted but not yet completed.
    pub fn outstanding(&self) -> usize {
        self.core.queue.outstanding()
    }

    /// Queue a right-hand side under its own stopping rule; admission
    /// happens immediately if a slot is free (completed reports stay
    /// queued for the next [`poll`](Self::poll) — submitting never
    /// discards them).
    ///
    /// # Errors
    /// See [`SessionQueue`]; also rejects submissions after
    /// [`finish`](Self::finish) — the activation chain is stopped, so the
    /// ticket could never complete.
    pub fn submit(&mut self, b: &[f64], termination: Termination) -> Result<TicketId> {
        if self.shared.stop.load(Ordering::Acquire) {
            return Err(Error::Parse(
                "rolling session is finished; the pool is stopped".into(),
            ));
        }
        let id = self.core.submit(b, termination)?;
        self.pump();
        Ok(id)
    }

    /// Drain snapshots, retire finished tickets, admit queued ones —
    /// without consuming the completed-report stream. Swap orders
    /// additionally kick an activation so an idle cell picks them up
    /// promptly.
    fn pump(&mut self) {
        let shared = self.shared.clone();
        let pool = self.pool.clone();
        self.core.drain_snapshots(&shared.snapshots);
        self.core.sweep(|slot, local_cols| {
            for (p, (cell, local)) in shared.cells.iter().zip(local_cols).enumerate() {
                cell.swaps.lock().push((slot, local.clone()));
                pool_schedule(&shared, &pool, p, true);
            }
        });
    }

    /// One supervisor pass (see [`RollingThreadedSession::poll`]).
    pub fn poll(&mut self) -> Vec<ColumnReport> {
        self.pump();
        self.core.queue.take_completed()
    }

    /// Poll until every outstanding ticket completes or `timeout` elapses.
    pub fn drain(&mut self, timeout: Duration) -> Vec<ColumnReport> {
        let deadline = Instant::now() + timeout;
        let mut out = self.poll();
        while self.core.queue.outstanding() > 0 && Instant::now() < deadline {
            std::thread::sleep(self.poll_interval);
            out.extend(self.poll());
        }
        out
    }

    /// Stop the pool's activation chain and wait for quiescence.
    pub fn finish(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.pool.wait_quiescent();
    }
}

impl Drop for RollingPoolSession {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DtmBuilder;
    use dtm_sparse::generators;

    fn grid_problem(side: usize) -> DtmProblem {
        let a = generators::grid2d_laplacian(side, side);
        let b = vec![1.0; side * side];
        DtmBuilder::new(a, b)
            .grid_blocks(side, side, 2, 2)
            .build()
            .expect("builds")
    }

    #[test]
    fn queue_rejects_local_delta_and_wrong_lengths() {
        let mut q = SessionQueue::new(4, 2);
        assert!(q
            .submit(&[1.0; 3], Termination::Residual { tol: 1e-6 }, None, 0.0)
            .is_err());
        assert!(q
            .submit(
                &[1.0; 4],
                Termination::LocalDelta {
                    tol: 1e-9,
                    patience: 2
                },
                None,
                0.0
            )
            .is_err());
        let id = q
            .submit(&[1.0; 4], Termination::Residual { tol: 1e-6 }, None, 0.0)
            .unwrap();
        assert_eq!(id, TicketId(0));
        assert_eq!(q.outstanding(), 1);
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn queue_admission_and_retirement_lifecycle() {
        let mut q = SessionQueue::new(2, 1);
        let t0 = q
            .submit(&[1.0, 2.0], Termination::Residual { tol: 1e-6 }, None, 1.0)
            .unwrap();
        let t1 = q
            .submit(&[3.0, 4.0], Termination::Residual { tol: 1e-3 }, None, 2.0)
            .unwrap();
        assert_eq!(q.idle_slot(), Some(0));
        assert_eq!(q.admit_into(0).unwrap().id, t0);
        assert_eq!(q.idle_slot(), None, "single slot occupied");
        assert_eq!(q.active(), 1);
        q.retire(0, vec![0.5, 0.5], 1e-7, None, 5.0);
        assert_eq!(q.idle_slot(), Some(0), "slot recycled");
        assert_eq!(q.admit_into(0).unwrap().id, t1);
        q.retire(0, vec![0.1, 0.1], 1e-4, None, 9.0);
        let done = q.take_completed();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].ticket, t0);
        assert!((done[0].latency_ms() - 4.0).abs() < 1e-12);
        assert_eq!(done[1].ticket, t1);
        assert!((done[1].latency_ms() - 7.0).abs() < 1e-12);
        assert_eq!(q.outstanding(), 0);
    }

    mod queue_props {
        use super::*;
        use proptest::prelude::*;

        /// One step of the adversarial driver schedule.
        #[derive(Debug, Clone, Copy)]
        enum Op {
            /// Submit a fresh ticket.
            Submit,
            /// Retire the `i % active`-th live slot (no-op when none live).
            Retire(u8),
            /// Admit pending tickets into every idle slot (what every
            /// driver does between steps).
            AdmitAll,
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            (0u8..12).prop_map(|v| match v {
                0..=4 => Op::Submit,
                5..=8 => Op::Retire(v),
                _ => Op::AdmitAll,
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

            /// FIFO + slot-recycling invariants under racing retire/admit
            /// schedules: admission happens in exact submission order, a
            /// retired slot is reused exactly once per free-up, and no
            /// ticket is ever lost or duplicated.
            #[test]
            fn queue_fifo_and_slot_recycling_invariants(
                slots in 1usize..5,
                ops in proptest::collection::vec(op_strategy(), 1..60),
            ) {
                let n = 3;
                let mut q = SessionQueue::new(n, slots);
                let mut submitted: u64 = 0;
                let mut admitted_order: Vec<u64> = Vec::new();
                let mut live: Vec<(usize, u64)> = Vec::new(); // (slot, ticket)
                let mut clock = 0.0_f64;
                for op in ops {
                    clock += 1.0;
                    match op {
                        Op::Submit => {
                            let id = q
                                .submit(
                                    &[1.0, 2.0, 3.0],
                                    Termination::Residual { tol: 1e-6 },
                                    None,
                                    clock,
                                )
                                .unwrap();
                            prop_assert_eq!(id, TicketId(submitted), "ids are sequential");
                            submitted += 1;
                        }
                        Op::Retire(i) => {
                            if !live.is_empty() {
                                let (slot, ticket) =
                                    live.remove(i as usize % live.len());
                                q.retire(slot, vec![0.0; n], 1e-9, None, clock);
                                prop_assert_eq!(
                                    q.idle_slot(),
                                    Some(
                                        (0..slots)
                                            .find(|s| !live.iter().any(|&(l, _)| l == *s))
                                            .unwrap()
                                    ),
                                    "lowest freed slot becomes admissible (ticket {})",
                                    ticket
                                );
                            }
                        }
                        Op::AdmitAll => {
                            while q.pending() > 0 {
                                let Some(slot) = q.idle_slot() else { break };
                                prop_assert!(
                                    !live.iter().any(|&(l, _)| l == slot),
                                    "admitting into an occupied slot"
                                );
                                let t = q.admit_into(slot).unwrap();
                                admitted_order.push(t.id.0);
                                live.push((slot, t.id.0));
                            }
                        }
                    }
                    // Book-keeping invariants hold after every op.
                    prop_assert_eq!(q.active(), live.len());
                    prop_assert_eq!(
                        q.outstanding(),
                        q.pending() + live.len(),
                        "outstanding = queued + live"
                    );
                    prop_assert!(q.active() <= slots, "never more live than slots");
                }
                // FIFO: tickets entered slots in exact submission order.
                let sorted: Vec<u64> = {
                    let mut s = admitted_order.clone();
                    s.sort_unstable();
                    s
                };
                prop_assert_eq!(&admitted_order, &sorted, "admission preserves FIFO");
                // Drain everything: every submitted ticket must surface in
                // exactly one completed report — none lost, none duplicated.
                loop {
                    while q.pending() > 0 {
                        let Some(slot) = q.idle_slot() else { break };
                        let t = q.admit_into(slot).unwrap();
                        live.push((slot, t.id.0));
                    }
                    let Some((slot, _)) = live.pop() else { break };
                    q.retire(slot, vec![0.0; n], 1e-9, None, clock);
                }
                let mut done: Vec<u64> =
                    q.take_completed().iter().map(|r| r.ticket.0).collect();
                done.sort_unstable();
                prop_assert_eq!(done.len() as u64, submitted, "no ticket lost");
                prop_assert_eq!(done, (0..submitted).collect::<Vec<u64>>(), "no duplicates");
                prop_assert_eq!(q.outstanding(), 0);
            }

            /// Latency accounting survives any schedule: completion time
            /// never precedes submission time, and reports carry the
            /// termination they were admitted with.
            #[test]
            fn queue_reports_are_causally_ordered(
                gaps in proptest::collection::vec(0.0f64..10.0, 1..12),
            ) {
                let mut q = SessionQueue::new(2, 1);
                let mut clock = 0.0;
                for (i, gap) in gaps.iter().enumerate() {
                    clock += gap;
                    let term = if i % 2 == 0 {
                        Termination::Residual { tol: 1e-6 }
                    } else {
                        Termination::Residual { tol: 1e-3 }
                    };
                    q.submit(&[1.0, 2.0], term, None, clock).unwrap();
                }
                let mut retired = 0;
                while retired < gaps.len() {
                    let slot = q.idle_slot().unwrap();
                    q.admit_into(slot).unwrap();
                    clock += 1.0;
                    q.retire(slot, vec![0.0; 2], 1e-9, None, clock);
                    retired += 1;
                }
                for r in q.take_completed() {
                    prop_assert!(r.latency_ms() >= 1.0 - 1e-12, "causal latency");
                    prop_assert!(matches!(r.termination, Termination::Residual { .. }));
                }
            }
        }
    }

    #[test]
    fn rolling_sim_session_admits_mid_exchange_without_restart() {
        let problem = grid_problem(8);
        let (a, _) = problem.split.reconstruct();
        let mut session = problem.rolling(2).expect("builds");
        let b1 = generators::random_rhs(64, 11);
        let b2 = generators::random_rhs(64, 12);
        let b3 = generators::random_rhs(64, 13);
        // Two tickets occupy both slots; the third queues.
        session
            .submit(&b1, Termination::Residual { tol: 1e-8 })
            .unwrap();
        session
            .submit(&b2, Termination::Residual { tol: 1e-8 })
            .unwrap();
        session
            .submit(&b3, Termination::OracleRms { tol: 1e-8 })
            .unwrap();
        assert_eq!(session.outstanding(), 3);
        // Run a short slice: the exchange starts and time advances.
        let _ = session.run_for(SimDuration::from_millis_f64(1.0));
        let (t_mid, solves_mid) = (session.now(), session.total_solves());
        assert!(solves_mid > 0, "exchange is live");
        // Drain: ticket 3 must be admitted into a recycled slot while the
        // same exchange keeps running — time and solve counts continue
        // monotonically from the mid-run snapshot, never reset.
        let reports = session.drain_for(SimDuration::from_millis_f64(600_000.0));
        assert_eq!(reports.len(), 3, "all tickets complete");
        assert!(session.now() > t_mid, "simulated time never restarted");
        assert!(
            session.total_solves() > solves_mid,
            "solve counters continued, not reset"
        );
        for r in &reports {
            let b = match r.ticket {
                TicketId(0) => &b1,
                TicketId(1) => &b2,
                _ => &b3,
            };
            // Residual tickets stopped on the relative residual itself; the
            // oracle ticket stopped on its RMS, which bounds the residual
            // more loosely.
            let bound = if r.ticket == TicketId(2) { 1e-5 } else { 1e-8 };
            assert!(
                a.residual_norm(&r.solution, b) / dtm_sparse::vector::norm2(b) <= bound * 1.0001,
                "ticket {} meets its own tolerance",
                r.ticket
            );
            assert!(r.latency_ms() >= 0.0);
        }
        // The oracle ticket reports an RMS; residual tickets don't.
        let oracle_report = reports.iter().find(|r| r.ticket == TicketId(2)).unwrap();
        assert!(oracle_report.final_rms.is_some());
        assert!(oracle_report.final_rms.unwrap() <= 1e-8);
        assert!(reports
            .iter()
            .filter(|r| r.ticket != TicketId(2))
            .all(|r| r.final_rms.is_none()));
    }

    #[test]
    fn rolling_sim_mixed_tolerances_stop_at_their_own_targets() {
        let problem = grid_problem(8);
        let mut session = problem.rolling(2).expect("builds");
        let b_loose = generators::random_rhs(64, 21);
        let b_tight = generators::random_rhs(64, 22);
        let loose = session
            .submit(&b_loose, Termination::Residual { tol: 1e-2 })
            .unwrap();
        let tight = session
            .submit(&b_tight, Termination::Residual { tol: 1e-9 })
            .unwrap();
        let reports = session.drain_for(SimDuration::from_millis_f64(600_000.0));
        assert_eq!(reports.len(), 2);
        let r_loose = reports.iter().find(|r| r.ticket == loose).unwrap();
        let r_tight = reports.iter().find(|r| r.ticket == tight).unwrap();
        assert!(r_loose.final_residual <= 1e-2);
        assert!(r_tight.final_residual <= 1e-9);
        assert!(
            r_loose.completed_at_ms < r_tight.completed_at_ms,
            "the loose ticket retires earlier ({} vs {} ms), not at a shared barrier",
            r_loose.completed_at_ms,
            r_tight.completed_at_ms
        );
    }

    #[test]
    fn rolling_session_rejects_local_delta_and_zero_slots() {
        let problem = grid_problem(6);
        assert!(problem.rolling(0).is_err());
        let mut session = problem.rolling(1).unwrap();
        assert!(session
            .submit(
                &[0.0; 36],
                Termination::LocalDelta {
                    tol: 1e-9,
                    patience: 2
                }
            )
            .is_err());
        assert!(session
            .submit(&[0.0; 35], Termination::Residual { tol: 1e-6 })
            .is_err());
    }

    #[test]
    fn rolling_threaded_session_serves_staggered_tickets() {
        let problem = grid_problem(8);
        let (a, _) = problem.split.reconstruct();
        let mut session = problem.rolling_threaded(2).expect("spawns");
        let b1 = generators::random_rhs(64, 31);
        let b2 = generators::random_rhs(64, 32);
        session
            .submit(&b1, Termination::Residual { tol: 1e-7 })
            .unwrap();
        let r1 = session.drain(Duration::from_secs(60));
        assert_eq!(r1.len(), 1, "first ticket completes");
        // Staggered admission into the still-running exchange.
        session
            .submit(&b2, Termination::OracleRms { tol: 1e-7 })
            .unwrap();
        let r2 = session.drain(Duration::from_secs(60));
        assert_eq!(r2.len(), 1, "second ticket completes");
        session.finish();
        assert!(a.residual_norm(&r1[0].solution, &b1) / dtm_sparse::vector::norm2(&b1) <= 2e-7);
        assert!(r2[0].final_rms.expect("oracle ticket") <= 1e-7);
    }

    #[test]
    fn rolling_pool_session_serves_staggered_tickets() {
        let problem = grid_problem(8);
        let (a, _) = problem.split.reconstruct();
        let mut session = problem.rolling_workstealing(2, 2).expect("spawns");
        let b1 = generators::random_rhs(64, 41);
        let b2 = generators::random_rhs(64, 42);
        session
            .submit(&b1, Termination::Residual { tol: 1e-7 })
            .unwrap();
        session
            .submit(&b2, Termination::Residual { tol: 1e-4 })
            .unwrap();
        let reports = session.drain(Duration::from_secs(60));
        session.finish();
        assert_eq!(reports.len(), 2);
        let r1 = reports.iter().find(|r| r.ticket == TicketId(0)).unwrap();
        let r2 = reports.iter().find(|r| r.ticket == TicketId(1)).unwrap();
        assert!(a.residual_norm(&r1.solution, &b1) / dtm_sparse::vector::norm2(&b1) <= 2e-7);
        assert!(a.residual_norm(&r2.solution, &b2) / dtm_sparse::vector::norm2(&b2) <= 2e-4);
    }
}

//! Solve reports: everything a run produces, ready for printing or
//! regression-testing.

use serde::Serialize;

/// Why a distributed solve ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StopKind {
    /// The oracle monitor observed the RMS tolerance.
    OracleTolerance,
    /// Every processor declared local convergence and halted (Table 1 step
    /// 3.3 — the genuinely distributed criterion).
    AllHalted,
    /// The simulated-time horizon was exhausted first.
    Horizon,
    /// The network went quiescent (no messages in flight).
    Quiescent,
}

/// Outcome of a distributed solve (DTM, VTM or a baseline).
#[derive(Debug, Clone, Serialize)]
pub struct SolveReport {
    /// Gathered global solution (split copies averaged).
    pub solution: Vec<f64>,
    /// Whether the requested tolerance was met.
    pub converged: bool,
    /// Final RMS error against the direct reference solution.
    pub final_rms: f64,
    /// Simulated wall-clock at stop, in milliseconds.
    pub final_time_ms: f64,
    /// `(time_ms, rms)` staircase (decimated by the sample interval).
    pub series: Vec<(f64, f64)>,
    /// Total local solves across all processors.
    pub total_solves: u64,
    /// Total messages transmitted.
    pub total_messages: u64,
    /// Receive batches that coalesced more than one message.
    pub coalesced_batches: u64,
    /// Number of processors/subdomains.
    pub n_parts: usize,
    /// Stop cause.
    pub stop: StopKind,
}

impl SolveReport {
    /// Time (ms) at which the recorded series first dropped below `rms`;
    /// `None` if it never did. Handy for "time to 10⁻⁶" tables.
    pub fn time_to_rms(&self, rms: f64) -> Option<f64> {
        self.series
            .iter()
            .find(|&&(_, e)| e <= rms)
            .map(|&(t, _)| t)
    }

    /// Average messages per local solve (communication efficiency).
    pub fn messages_per_solve(&self) -> f64 {
        if self.total_solves == 0 {
            0.0
        } else {
            self.total_messages as f64 / self.total_solves as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SolveReport {
        SolveReport {
            solution: vec![1.0],
            converged: true,
            final_rms: 1e-9,
            final_time_ms: 12.5,
            series: vec![(0.0, 1.0), (5.0, 1e-3), (10.0, 1e-7), (12.5, 1e-9)],
            total_solves: 40,
            total_messages: 80,
            coalesced_batches: 3,
            n_parts: 4,
            stop: StopKind::OracleTolerance,
        }
    }

    #[test]
    fn time_to_rms_interpolates_staircase() {
        let r = report();
        assert_eq!(r.time_to_rms(1e-3), Some(5.0));
        assert_eq!(r.time_to_rms(1e-8), Some(12.5));
        assert_eq!(r.time_to_rms(1e-12), None);
    }

    #[test]
    fn messages_per_solve() {
        assert!((report().messages_per_solve() - 2.0).abs() < 1e-12);
    }
}

//! Solve reports: everything a run produces, ready for printing or
//! regression-testing.

use serde::Serialize;

/// Which executor produced a report — one entry per
/// [`ExecutorBackend`](crate::runtime::ExecutorBackend) implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BackendKind {
    /// Deterministic discrete-event simulation on a [`dtm_simnet`]
    /// machine ([`crate::solver`]).
    Simulated,
    /// One OS thread per subdomain, channels for waves
    /// ([`crate::threaded`]).
    Threaded,
    /// In-process work-stealing pool, one task per activation
    /// ([`crate::rayon_backend`]).
    WorkStealing,
    /// Multi-process execution over real sockets (UDS/TCP), one OS
    /// process per partition group (`dtm-net`'s round-structured
    /// distributed runner).
    Distributed,
}

/// Which *algorithm* produced a report — orthogonal to [`BackendKind`]
/// (the machine it ran on). DTM and the randomized-asynchrony baselines
/// run behind the same [`Transport`](crate::runtime::Transport) /
/// [`ExecutorBackend`](crate::runtime::ExecutorBackend) contract, so one
/// report vocabulary covers them all and `repro compare` can pit them
/// message for message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AlgorithmKind {
    /// The Directed Transmission Method (the paper's algorithm).
    Dtm,
    /// Asynchronous block-Jacobi (refs \[17\]–\[19\] of the paper).
    BlockJacobiAsync,
    /// Synchronous block-Jacobi / additive Schwarz with a barrier model.
    BlockJacobiSync,
    /// Randomized asynchronous Richardson (Avron et al. 2013,
    /// arXiv:1304.6475): per-update random row selection with a relaxation
    /// schedule.
    RandomizedRichardson,
    /// Hong's D-iteration (2012, arXiv:1202.3108): residual diffusion with
    /// per-node fluid retention.
    DIteration,
}

impl AlgorithmKind {
    /// Human-readable name for tables and trace tags.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::Dtm => "dtm",
            AlgorithmKind::BlockJacobiAsync => "block-jacobi-async",
            AlgorithmKind::BlockJacobiSync => "block-jacobi-sync",
            AlgorithmKind::RandomizedRichardson => "randomized-richardson",
            AlgorithmKind::DIteration => "d-iteration",
        }
    }
}

/// Why a distributed solve ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StopKind {
    /// The oracle monitor observed the RMS tolerance.
    OracleTolerance,
    /// Every processor declared local convergence and halted (Table 1 step
    /// 3.3 — the genuinely distributed criterion).
    AllHalted,
    /// The simulated-time horizon was exhausted first.
    Horizon,
    /// The wall-clock budget of a real-execution backend expired first.
    Budget,
    /// The network went quiescent (no messages in flight).
    Quiescent,
}

/// Outcome of a distributed solve (DTM, VTM or a baseline) — the shared
/// report vocabulary of every [`ExecutorBackend`](crate::runtime::ExecutorBackend).
#[derive(Debug, Clone, Serialize)]
pub struct SolveReport {
    /// Which executor ran the solve.
    pub backend: BackendKind,
    /// Which algorithm ran (DTM or one of the baselines).
    pub algorithm: AlgorithmKind,
    /// Gathered global solution (split copies averaged) of the first RHS
    /// column — the scalar pipeline's answer, kept as the primary field.
    pub solution: Vec<f64>,
    /// Number of right-hand-side columns solved simultaneously (1 for the
    /// scalar pipeline).
    pub n_rhs: usize,
    /// Gathered global solution per RHS column (`solutions[0]` ==
    /// `solution`).
    pub solutions: Vec<Vec<f64>>,
    /// Final RMS error per RHS column. **Empty for reference-free runs**
    /// ([`Termination::Residual`](crate::runtime::Termination::Residual)
    /// with no explicit reference): no oracle solution exists to compare
    /// against.
    pub final_rms_per_rhs: Vec<f64>,
    /// Whether the requested tolerance was met.
    pub converged: bool,
    /// Final RMS error against the direct reference solution (worst column
    /// of a block solve). **`NaN` for reference-free runs** (by contract,
    /// exactly when [`final_rms_per_rhs`](Self::final_rms_per_rhs) is
    /// empty) — use [`final_rms_opt`](Self::final_rms_opt) for printing
    /// and [`final_residual`](Self::final_residual), which is always
    /// computed, for a quality number.
    pub final_rms: f64,
    /// Final relative true residual `‖b − A·x‖₂ / ‖b‖₂` against the
    /// reconstructed original system, worst column. Always computed (one
    /// SpMV per column at stop), in every termination mode.
    pub final_residual: f64,
    /// Final relative residual per RHS column.
    pub final_residual_per_rhs: Vec<f64>,
    /// Solver time at stop, in milliseconds: simulated time for the
    /// simnet backend, wall-clock time for real-execution backends.
    pub final_time_ms: f64,
    /// `(time_ms, rms)` staircase (decimated by the sample interval for
    /// the simulated backend; one point per supervisor poll for the
    /// wall-clock backends).
    pub series: Vec<(f64, f64)>,
    /// Total local solves (activations) across all processors — one unit
    /// of useful work whatever the algorithm: a pair of triangular
    /// substitutions for DTM/block-Jacobi, a randomized relaxation sweep
    /// for Richardson, a diffusion pass for D-iteration.
    pub total_solves: u64,
    /// Total messages transmitted.
    pub total_messages: u64,
    /// Estimated floating-point operations across all processors —
    /// counted uniformly (multiply-adds ×2) so DTM and the baselines can
    /// be compared flop for flop as well as message for message.
    pub total_flops: u64,
    /// Receive batches that coalesced more than one message (tracked by
    /// the simulated backend; zero where the fabric doesn't expose it).
    pub coalesced_batches: u64,
    /// Number of processors/subdomains.
    pub n_parts: usize,
    /// Stop cause.
    pub stop: StopKind,
}

impl SolveReport {
    /// [`final_rms`](Self::final_rms) as an `Option`: `None` on
    /// reference-free runs, where the stored field is `NaN` **by
    /// contract** (`final_rms.is_nan()` ⇔ `final_rms_per_rhs.is_empty()`;
    /// every constructor debug-asserts it). Prefer this accessor anywhere
    /// the value is printed or compared, so a reference-free run renders
    /// as "no oracle" (e.g. `-`) instead of leaking `NaN` into a table.
    pub fn final_rms_opt(&self) -> Option<f64> {
        if self.final_rms.is_nan() {
            None
        } else {
            Some(self.final_rms)
        }
    }

    /// Time (ms) at which the recorded series first dropped below `rms`;
    /// `None` if it never did. Handy for "time to 10⁻⁶" tables.
    pub fn time_to_rms(&self, rms: f64) -> Option<f64> {
        self.series
            .iter()
            .find(|&&(_, e)| e <= rms)
            .map(|&(t, _)| t)
    }

    /// Average messages per local solve (communication efficiency).
    pub fn messages_per_solve(&self) -> f64 {
        if self.total_solves == 0 {
            0.0
        } else {
            self.total_messages as f64 / self.total_solves as f64
        }
    }

    /// Average flops per transmitted message (arithmetic intensity of the
    /// exchange — the comparison axis where DTM's factor-once local solves
    /// differ most from point-relaxation baselines).
    pub fn flops_per_message(&self) -> f64 {
        if self.total_messages == 0 {
            0.0
        } else {
            self.total_flops as f64 / self.total_messages as f64
        }
    }

    /// Solver time per right-hand side — the amortized cost a batched run
    /// pays per RHS column (equals [`final_time_ms`](Self::final_time_ms)
    /// for the scalar pipeline).
    pub fn time_per_rhs_ms(&self) -> f64 {
        self.final_time_ms / self.n_rhs.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SolveReport {
        SolveReport {
            backend: BackendKind::Simulated,
            algorithm: AlgorithmKind::Dtm,
            solution: vec![1.0],
            n_rhs: 1,
            solutions: vec![vec![1.0]],
            final_rms_per_rhs: vec![1e-9],
            converged: true,
            final_rms: 1e-9,
            final_residual: 2e-9,
            final_residual_per_rhs: vec![2e-9],
            final_time_ms: 12.5,
            series: vec![(0.0, 1.0), (5.0, 1e-3), (10.0, 1e-7), (12.5, 1e-9)],
            total_solves: 40,
            total_messages: 80,
            total_flops: 400,
            coalesced_batches: 3,
            n_parts: 4,
            stop: StopKind::OracleTolerance,
        }
    }

    #[test]
    fn time_to_rms_interpolates_staircase() {
        let r = report();
        assert_eq!(r.time_to_rms(1e-3), Some(5.0));
        assert_eq!(r.time_to_rms(1e-8), Some(12.5));
        assert_eq!(r.time_to_rms(1e-12), None);
    }

    #[test]
    fn messages_per_solve() {
        assert!((report().messages_per_solve() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flops_per_message() {
        assert!((report().flops_per_message() - 5.0).abs() < 1e-12);
        let mut r = report();
        r.total_messages = 0;
        assert_eq!(r.flops_per_message(), 0.0);
    }

    #[test]
    fn algorithm_names_are_stable() {
        assert_eq!(AlgorithmKind::Dtm.name(), "dtm");
        assert_eq!(
            AlgorithmKind::RandomizedRichardson.name(),
            "randomized-richardson"
        );
        assert_eq!(AlgorithmKind::DIteration.name(), "d-iteration");
    }

    #[test]
    fn time_per_rhs_amortizes_over_columns() {
        let mut r = report();
        assert!((r.time_per_rhs_ms() - 12.5).abs() < 1e-12);
        r.n_rhs = 5;
        assert!((r.time_per_rhs_ms() - 2.5).abs() < 1e-12);
    }
}

//! Distributed baselines: synchronous and asynchronous block-Jacobi.
//!
//! The paper's introduction motivates DTM against two families:
//!
//! * **synchronous** domain-decomposition methods (additive Schwarz /
//!   block-Jacobi), which pay a barrier costing the *maximum* link delay
//!   every round on a heterogeneous machine, and
//! * **traditional asynchronous** iterations (asynchronous block-Jacobi of
//!   Baudet / Chazan–Miranker; refs \[17\]–\[19\]), whose "performances … are
//!   not comparable to the synchronous ones".
//!
//! Both exchange raw boundary *potentials*; DTM instead exchanges
//! impedance-matched wave pairs `(u, ω)`. These baselines run on the same
//! partition, the same machine model and the same monitoring, so the
//! comparisons in `repro cmp-jacobi` are apples-to-apples.

use crate::monitor::Monitor;
use crate::report::{AlgorithmKind, BackendKind, SolveReport, StopKind};
use crate::solver::{ComputeModel, Termination};
use dtm_simnet::{Ctx, Engine, Envelope, Node, SimDuration, SimTime, StopReason, Topology};
use dtm_sparse::{Csr, DenseCholesky, Error, Result, SparseCholesky};

/// Per part: for each neighbour part, `(their_ext_slot, my_local_row)`
/// exchange pairs.
type PartRoutes = Vec<(usize, Vec<(usize, usize)>)>;

/// Configuration shared by both block-Jacobi baselines.
#[derive(Debug, Clone)]
pub struct BlockJacobiConfig {
    /// Per-activation compute model (same semantics as DTM's).
    pub compute: ComputeModel,
    /// Stopping rule (oracle RMS or local-delta).
    pub termination: Termination,
    /// Simulated-time budget (async) / time-model budget (sync).
    pub horizon: SimDuration,
    /// Series sampling interval.
    pub sample_interval: SimDuration,
    /// Per-node solve cap.
    pub max_solves_per_node: usize,
    /// Synchronous variant only: barrier + exchange overhead added to every
    /// round on top of the slowest compute (defaults to twice the max link
    /// delay when run through [`solve_sync`]).
    pub sync_round_overhead: Option<SimDuration>,
}

impl Default for BlockJacobiConfig {
    fn default() -> Self {
        Self {
            compute: ComputeModel::default(),
            termination: Termination::OracleRms { tol: 1e-8 },
            horizon: SimDuration::from_millis_f64(60_000.0),
            sample_interval: SimDuration::ZERO,
            max_solves_per_node: 200_000,
            sync_round_overhead: None,
        }
    }
}

/// A non-overlapping block decomposition of `A x = b` by a raw assignment.
#[derive(Debug)]
struct Blocks {
    /// Sorted global rows per part.
    rows: Vec<Vec<usize>>,
    /// Factored diagonal blocks.
    factors: Vec<BlockFactor>,
    /// Factor sizes (for the compute model).
    factor_nnz: Vec<usize>,
    /// Per part: coupling entries `(local_row, ext_slot, weight)`.
    coupling: Vec<Vec<(usize, usize, f64)>>,
    /// Per part: the global vertex each ext slot mirrors.
    ext_globals: Vec<Vec<usize>>,
    /// Per part: per neighbour part, `(their_ext_slot, my_local_row)`.
    routes: Vec<PartRoutes>,
    /// Local rhs per part.
    rhs: Vec<Vec<f64>>,
}

#[derive(Debug)]
enum BlockFactor {
    Dense(DenseCholesky),
    Sparse(SparseCholesky),
}

impl BlockFactor {
    fn solve_in_place(&self, x: &mut [f64]) {
        match self {
            BlockFactor::Dense(f) => f.solve_in_place(x),
            BlockFactor::Sparse(f) => f.solve_in_place(x),
        }
    }
}

impl Blocks {
    fn build(a: &Csr, b: &[f64], assignment: &[usize]) -> Result<Self> {
        let n = a.n_rows();
        if assignment.len() != n {
            return Err(Error::DimensionMismatch {
                context: "block-jacobi assignment",
                expected: n,
                actual: assignment.len(),
            });
        }
        let k = assignment.iter().copied().max().map_or(0, |m| m + 1);
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (v, &p) in assignment.iter().enumerate() {
            rows[p].push(v);
        }
        let mut local_of = vec![usize::MAX; n];
        for part_rows in &rows {
            for (l, &g) in part_rows.iter().enumerate() {
                local_of[g] = l;
            }
        }

        let mut factors = Vec::with_capacity(k);
        let mut factor_nnz = Vec::with_capacity(k);
        let mut coupling = vec![Vec::new(); k];
        let mut ext_globals: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut routes: Vec<PartRoutes> = vec![Vec::new(); k];
        let mut rhs = Vec::with_capacity(k);

        for p in 0..k {
            let app = a.principal_submatrix(&rows[p]);
            let nl = app.n_rows();
            if nl <= crate::local::AUTO_DENSE_LIMIT {
                let f = DenseCholesky::factor_csr(&app)?;
                factor_nnz.push(nl * (nl + 1) / 2);
                factors.push(BlockFactor::Dense(f));
            } else {
                let f = SparseCholesky::factor_rcm(&app)?;
                factor_nnz.push(f.nnz_l());
                factors.push(BlockFactor::Sparse(f));
            }
            rhs.push(rows[p].iter().map(|&g| b[g]).collect());

            // Coupling to foreign vertices, and the ext-slot directory.
            let mut ext_index: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            for (l, &g) in rows[p].iter().enumerate() {
                for (u, w) in a.row(g) {
                    if assignment[u] != p {
                        let next = ext_index.len();
                        let slot = *ext_index.entry(u).or_insert(next);
                        if slot == ext_globals[p].len() {
                            ext_globals[p].push(u);
                        }
                        coupling[p].push((l, slot, w));
                    }
                }
            }
        }
        // Routes: part p must send x[v] to every part q whose ext list
        // contains v ∈ p.
        for (q, globals) in ext_globals.iter().enumerate() {
            for (slot, &g) in globals.iter().enumerate() {
                let p = assignment[g];
                match routes[p].iter_mut().find(|(dst, _)| *dst == q) {
                    Some((_, pairs)) => pairs.push((slot, local_of[g])),
                    None => routes[p].push((q, vec![(slot, local_of[g])])),
                }
            }
        }
        Ok(Self {
            rows,
            factors,
            factor_nnz,
            coupling,
            ext_globals,
            routes,
            rhs,
        })
    }

    fn n_parts(&self) -> usize {
        self.rows.len()
    }

    /// Uniform flop estimate of one block solve: a pair of triangular
    /// substitutions over the factor (2 flops per stored entry per sweep)
    /// plus the coupling fold into the right-hand side.
    fn flops_per_solve(&self, p: usize) -> u64 {
        4 * self.factor_nnz[p] as u64 + 2 * self.coupling[p].len() as u64
    }

    /// One block solve: `x_p = A_pp⁻¹ (b_p − A_p,ext · x_ext)`.
    fn solve_block(&self, p: usize, ext: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.rhs[p]);
        for &(l, slot, w) in &self.coupling[p] {
            out[l] -= w * ext[slot];
        }
        self.factors[p].solve_in_place(out);
    }
}

/// Block-Jacobi message: `(receiver_ext_slot, value)` pairs.
#[derive(Debug, Clone)]
pub struct BjMsg {
    updates: Vec<(usize, f64)>,
}

/// One block on one simulated processor (asynchronous variant).
#[derive(Debug)]
struct BjNode {
    part: usize,
    blocks: std::sync::Arc<Blocks>,
    ext: Vec<f64>,
    x: Vec<f64>,
    prev_boundary: Vec<f64>,
    compute: SimDuration,
    termination: Termination,
    max_solves: usize,
    solves: usize,
    small_streak: usize,
}

impl BjNode {
    fn solve_and_send(&mut self, ctx: &mut Ctx<BjMsg>) {
        let blocks = self.blocks.clone();
        let mut x = std::mem::take(&mut self.x);
        blocks.solve_block(self.part, &self.ext, &mut x);
        self.x = x;
        self.solves += 1;
        ctx.set_compute(self.compute);
        let mut delta = 0.0_f64;
        let mut bi = 0usize;
        for (dst, pairs) in &self.blocks.routes[self.part] {
            let updates: Vec<(usize, f64)> =
                pairs.iter().map(|&(slot, l)| (slot, self.x[l])).collect();
            for &(_, v) in &updates {
                if bi < self.prev_boundary.len() {
                    delta = delta.max((v - self.prev_boundary[bi]).abs());
                    self.prev_boundary[bi] = v;
                } else {
                    self.prev_boundary.push(v);
                    delta = f64::INFINITY;
                }
                bi += 1;
            }
            ctx.send(*dst, BjMsg { updates });
        }
        if let Termination::LocalDelta { tol, patience } = self.termination {
            if delta < tol {
                self.small_streak += 1;
                if self.small_streak >= patience {
                    ctx.halt();
                }
            } else {
                self.small_streak = 0;
            }
        }
        if self.solves >= self.max_solves {
            ctx.halt();
        }
    }
}

impl Node for BjNode {
    type Msg = BjMsg;

    fn start(&mut self, ctx: &mut Ctx<BjMsg>) {
        self.solve_and_send(ctx);
    }

    fn receive(&mut self, ctx: &mut Ctx<BjMsg>, batch: &mut Vec<Envelope<BjMsg>>) {
        for env in batch.drain(..) {
            for (slot, v) in env.payload.updates {
                self.ext[slot] = v;
            }
        }
        self.solve_and_send(ctx);
    }
}

/// Asynchronous block-Jacobi on a simulated machine: same engine, same
/// monitoring as DTM, but exchanging raw potentials without transmission
/// lines (the classical asynchronous iteration, refs \[17\]–\[19\]).
///
/// # Errors
/// Fails on dimension mismatches, factorization failure, or a block
/// adjacency with no machine link.
pub fn solve_async(
    a: &Csr,
    b: &[f64],
    assignment: &[usize],
    topology: Topology,
    reference: Option<Vec<f64>>,
    config: &BlockJacobiConfig,
) -> Result<SolveReport> {
    // The oracle direct solve is opt-in: under `Termination::Residual`
    // (and no explicit reference) the run is monitored reference-free.
    let reference = match (reference, config.termination) {
        (Some(r), _) => Some(r),
        (None, Termination::Residual { .. }) => None,
        (None, _) => Some(SparseCholesky::factor_rcm(a)?.solve(b)),
    };
    let blocks = std::sync::Arc::new(Blocks::build(a, b, assignment)?);
    let k = blocks.n_parts();
    if topology.n_nodes() != k {
        return Err(Error::DimensionMismatch {
            context: "block-jacobi: one processor per block",
            expected: k,
            actual: topology.n_nodes(),
        });
    }
    for p in 0..k {
        for (dst, _) in &blocks.routes[p] {
            if topology.link(p, *dst).is_none() {
                return Err(Error::Parse(format!(
                    "blocks {p} and {dst} are coupled but the machine has no \
                     link {p} → {dst}"
                )));
            }
        }
    }
    let nodes: Vec<BjNode> = (0..k)
        .map(|p| BjNode {
            part: p,
            blocks: blocks.clone(),
            ext: vec![0.0; blocks.ext_globals[p].len()],
            x: vec![0.0; blocks.rows[p].len()],
            prev_boundary: Vec::new(),
            // Baseline pipelines are scalar: one RHS column per sweep.
            compute: config.compute.duration_for_block(blocks.factor_nnz[p], 1),
            termination: config.termination,
            max_solves: config.max_solves_per_node,
            solves: 0,
            small_streak: 0,
        })
        .collect();

    let mut monitor = match (reference, config.termination) {
        // As in the DTM executors: residual termination keeps the
        // residual as the stopping metric even when a reference exists
        // (the reference then only adds RMS reporting).
        (Some(r), Termination::Residual { .. }) => {
            let mut m = Monitor::from_parts_residual(
                blocks.rows.clone(),
                vec![1; a.n_rows()],
                a.clone(),
                std::slice::from_ref(&b.to_vec()),
                config.sample_interval,
            );
            m.attach_oracle(std::slice::from_ref(&r));
            m
        }
        (Some(r), _) => Monitor::from_parts(
            blocks.rows.clone(),
            vec![1; a.n_rows()],
            r,
            config.sample_interval,
        ),
        (None, _) => Monitor::from_parts_residual(
            blocks.rows.clone(),
            vec![1; a.n_rows()],
            a.clone(),
            std::slice::from_ref(&b.to_vec()),
            config.sample_interval,
        ),
    };
    let metric_tol = match config.termination {
        Termination::OracleRms { tol } | Termination::Residual { tol } => Some(tol),
        Termination::LocalDelta { .. } => None,
    };
    monitor.set_refresh_below(metric_tol.unwrap_or(0.0));

    let mut engine = Engine::new(topology, nodes);
    let outcome = engine.run(
        SimTime::ZERO + config.horizon,
        |time, part, node: &BjNode| {
            let metric = monitor.update_part(part, time, &node.x);
            match metric_tol {
                Some(tol) => metric > tol,
                None => true,
            }
        },
    );

    let stats = engine.stats();
    let (final_rms, final_rms_per_rhs) = if monitor.has_oracle() {
        let rms = monitor.rms_exact();
        (rms, vec![rms])
    } else {
        (f64::NAN, Vec::new())
    };
    let final_residual =
        a.residual_norm(monitor.estimate(), b) / dtm_sparse::vector::norm2_or_one(b);
    let stop = match outcome.reason {
        StopReason::ObserverStop => StopKind::OracleTolerance,
        StopReason::AllHalted => StopKind::AllHalted,
        StopReason::TimeLimit => StopKind::Horizon,
        StopReason::QueueEmpty => StopKind::Quiescent,
    };
    let converged = match config.termination {
        Termination::OracleRms { tol } => final_rms <= tol,
        Termination::Residual { tol } => final_residual <= tol,
        Termination::LocalDelta { .. } => {
            matches!(stop, StopKind::AllHalted | StopKind::Quiescent)
        }
    };
    Ok(SolveReport {
        backend: BackendKind::Simulated,
        algorithm: AlgorithmKind::BlockJacobiAsync,
        solution: monitor.estimate().to_vec(),
        n_rhs: 1,
        solutions: vec![monitor.estimate().to_vec()],
        final_rms_per_rhs,
        converged,
        final_rms,
        final_residual,
        final_residual_per_rhs: vec![final_residual],
        final_time_ms: outcome.final_time.as_millis_f64(),
        series: monitor.into_series(),
        total_solves: stats.activations.iter().sum(),
        total_messages: stats.messages_sent,
        total_flops: stats
            .activations
            .iter()
            .enumerate()
            .map(|(p, &acts)| acts * blocks.flops_per_solve(p))
            .sum(),
        coalesced_batches: stats.coalesced_batches,
        n_parts: k,
        stop,
    })
}

/// Synchronous block-Jacobi (additive Schwarz, overlap 0) under a barrier
/// cost model: every round costs the slowest block's compute plus
/// `sync_round_overhead` (default: twice the maximum link delay — one
/// exchange, one barrier).
///
/// # Errors
/// Fails on dimension mismatches or factorization failure.
pub fn solve_sync(
    a: &Csr,
    b: &[f64],
    assignment: &[usize],
    topology: &Topology,
    reference: Option<Vec<f64>>,
    config: &BlockJacobiConfig,
) -> Result<SolveReport> {
    // Opt-in oracle, as in `solve_async`: residual termination tracks
    // `‖b − A·x‖/‖b‖` instead and performs no direct solve.
    let reference = match (reference, config.termination) {
        (Some(r), _) => Some(r),
        (None, Termination::Residual { .. }) => None,
        (None, _) => Some(SparseCholesky::factor_rcm(a)?.solve(b)),
    };
    let b_scale = dtm_sparse::vector::norm2_or_one(b);
    // The stopping metric follows the termination mode, not reference
    // availability: residual termination stops on the residual even when
    // a reference was supplied for reporting.
    let use_residual = matches!(config.termination, Termination::Residual { .. });
    // Non-residual modes always carry a reference (constructed above), so
    // the `(None, false)` arm is unreachable — falling back to the
    // residual there keeps the closure total without a panic path.
    let metric_of = |x: &[f64]| -> f64 {
        match (&reference, use_residual) {
            (Some(r), false) => dtm_sparse::vector::rms_error(x, r),
            _ => a.residual_norm(x, b) / b_scale,
        }
    };
    let blocks = Blocks::build(a, b, assignment)?;
    let k = blocks.n_parts();
    let max_compute = (0..k)
        .map(|p| config.compute.duration_for_block(blocks.factor_nnz[p], 1))
        .max()
        .unwrap_or(SimDuration::ZERO);
    let overhead = config.sync_round_overhead.unwrap_or_else(|| {
        let (_, hi) = topology.delay_range();
        hi.saturating_mul(2)
    });
    let round_time = max_compute + overhead;

    let tol = match config.termination {
        Termination::OracleRms { tol } | Termination::Residual { tol } => tol,
        Termination::LocalDelta { tol, .. } => tol,
    };
    let mut x = vec![0.0; a.n_rows()];
    let mut series = Vec::new();
    let mut t = SimTime::ZERO;
    let mut rounds = 0u64;
    let mut metric = metric_of(&x);
    let mut buf = Vec::new();
    while t + round_time <= SimTime::ZERO + config.horizon {
        // One synchronous round: every block reads the same global x.
        let mut x_new = x.clone();
        for p in 0..k {
            let ext: Vec<f64> = blocks.ext_globals[p].iter().map(|&g| x[g]).collect();
            blocks.solve_block(p, &ext, &mut buf);
            for (l, &g) in blocks.rows[p].iter().enumerate() {
                x_new[g] = buf[l];
            }
        }
        x = x_new;
        t += round_time;
        rounds += 1;
        metric = metric_of(&x);
        series.push((t.as_millis_f64(), metric));
        if metric <= tol || rounds >= config.max_solves_per_node as u64 {
            break;
        }
    }
    let (final_rms, final_rms_per_rhs) = match &reference {
        Some(r) => {
            let rms = dtm_sparse::vector::rms_error(&x, r);
            (rms, vec![rms])
        }
        None => (f64::NAN, Vec::new()),
    };
    let final_residual = a.residual_norm(&x, b) / b_scale;
    Ok(SolveReport {
        backend: BackendKind::Simulated,
        algorithm: AlgorithmKind::BlockJacobiSync,
        solution: x.clone(),
        n_rhs: 1,
        solutions: vec![x],
        final_rms_per_rhs,
        converged: metric <= tol,
        final_rms,
        final_residual,
        final_residual_per_rhs: vec![final_residual],
        final_time_ms: t.as_millis_f64(),
        series,
        total_solves: rounds * k as u64,
        // Per round each coupled pair exchanges once in each direction.
        total_messages: rounds * blocks.routes.iter().map(|r| r.len() as u64).sum::<u64>(),
        total_flops: rounds * (0..k).map(|p| blocks.flops_per_solve(p)).sum::<u64>(),
        coalesced_batches: 0,
        n_parts: k,
        stop: if metric <= tol {
            StopKind::OracleTolerance
        } else {
            StopKind::Horizon
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_simnet::DelayModel;
    use dtm_sparse::generators;

    fn setup(nx: usize, k: usize, seed: u64) -> (Csr, Vec<f64>, Vec<usize>, Topology) {
        let a = generators::grid2d_random(nx, nx, 1.0, seed);
        let b = generators::random_rhs(nx * nx, seed + 1);
        let asg = dtm_graph::partition::grid_strips(nx, nx, k);
        // Strips form a line of processors: use a ring (superset of a line).
        let topo = Topology::ring(k).with_delays(&DelayModel::uniform_ms(10.0, 99.0, seed));
        (a, b, asg, topo)
    }

    #[test]
    fn async_block_jacobi_converges_on_dominant_grid() {
        let (a, b, asg, topo) = setup(8, 4, 51);
        let config = BlockJacobiConfig {
            compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
            termination: Termination::OracleRms { tol: 1e-8 },
            horizon: SimDuration::from_millis_f64(600_000.0),
            ..Default::default()
        };
        let report = solve_async(&a, &b, &asg, topo, None, &config).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
        assert!(a.residual_norm(&report.solution, &b) < 1e-5);
    }

    #[test]
    fn sync_block_jacobi_converges_and_charges_barrier() {
        let (a, b, asg, topo) = setup(8, 4, 52);
        let config = BlockJacobiConfig {
            compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
            termination: Termination::OracleRms { tol: 1e-8 },
            horizon: SimDuration::from_millis_f64(600_000.0),
            ..Default::default()
        };
        let report = solve_sync(&a, &b, &asg, &topo, None, &config).unwrap();
        assert!(report.converged);
        // Round time ≥ 2×max delay: with max delay ≤ 99 ms, the first
        // series point must lie at ≥ 21 ms (2×10+1).
        assert!(report.series[0].0 >= 21.0 - 1e-9);
        let rounds = report.series.len() as f64;
        let per_round = report.final_time_ms / rounds;
        assert!(per_round >= 21.0 - 1e-9);
    }

    #[test]
    fn sync_and_async_agree_on_solution() {
        let (a, b, asg, topo) = setup(7, 3, 53);
        let config = BlockJacobiConfig {
            compute: ComputeModel::Fixed(SimDuration::from_millis_f64(0.5)),
            termination: Termination::OracleRms { tol: 1e-9 },
            horizon: SimDuration::from_millis_f64(600_000.0),
            ..Default::default()
        };
        let s = solve_sync(&a, &b, &asg, &topo, None, &config).unwrap();
        let r = solve_async(&a, &b, &asg, topo, None, &config).unwrap();
        assert!(s.converged && r.converged);
        for (u, v) in s.solution.iter().zip(&r.solution) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn async_local_delta_termination() {
        let (a, b, asg, topo) = setup(6, 2, 54);
        let config = BlockJacobiConfig {
            compute: ComputeModel::Fixed(SimDuration::from_millis_f64(1.0)),
            termination: Termination::LocalDelta {
                tol: 1e-10,
                patience: 3,
            },
            horizon: SimDuration::from_millis_f64(600_000.0),
            ..Default::default()
        };
        let report = solve_async(&a, &b, &asg, topo, None, &config).unwrap();
        assert!(matches!(
            report.stop,
            StopKind::AllHalted | StopKind::Quiescent
        ));
        assert!(report.final_rms < 1e-6);
    }

    #[test]
    fn missing_machine_link_rejected() {
        let (a, b, asg, _) = setup(6, 3, 55);
        // A 3-node topology with no links: blocks are coupled → error.
        let topo = Topology::from_links(3, vec![]);
        assert!(solve_async(&a, &b, &asg, topo, None, &BlockJacobiConfig::default()).is_err());
    }

    #[test]
    fn wrong_assignment_length_rejected() {
        let a = generators::grid2d_laplacian(4, 4);
        let b = vec![1.0; 16];
        let topo = Topology::ring(2).with_delays(&DelayModel::fixed_ms(1.0));
        let asg = vec![0usize; 7];
        assert!(solve_async(&a, &b, &asg, topo, None, &BlockJacobiConfig::default()).is_err());
    }
}

//! Synchronization facade for the concurrent backends.
//!
//! Every primitive the threaded/rayon/session executors use — atomics,
//! mutexes, channels, thread spawning — is imported through this module
//! rather than from `std`/`crossbeam`/`parking_lot` directly. Normally
//! it re-exports the real primitives at zero cost; with the
//! `model-check` feature it re-exports the `minloom` shim types
//! instead, so the same protocol code can run under the
//! exhaustive-interleaving model checker (see
//! `crates/core/tests/model_check.rs` and `vendor/minloom`).
//!
//! Build/test matrix:
//! * default: production primitives, all tests.
//! * `--features model-check --test model_check`: shim primitives, the
//!   protocol models only. (Other test targets are not built in this
//!   configuration — shim primitives panic outside a checker run.)

#[cfg(not(feature = "model-check"))]
mod imp {
    pub use crossbeam::channel;
    pub use parking_lot::{Mutex, MutexGuard};
    pub use std::sync::atomic::{
        AtomicBool, AtomicI64, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };

    /// Thread spawning, narrowed to the surface the backends use.
    pub mod thread {
        pub use std::thread::{spawn, yield_now, JoinHandle};
    }
}

#[cfg(feature = "model-check")]
mod imp {
    pub use minloom::channel;
    pub use minloom::sync::{
        AtomicBool, AtomicI64, AtomicU64, AtomicU8, AtomicUsize, Mutex, MutexGuard, Ordering,
    };
    pub use minloom::thread;
}

pub use imp::*;

pub use std::sync::Arc;

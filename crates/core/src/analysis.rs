//! Spectral analysis of the synchronous (VTM) iteration operator.
//!
//! Per round, the stacked incident-wave vector `w` evolves affinely:
//! `w ← T w + c`, where applying `T` means: every subdomain solves its
//! local system with boundary input `w` (and zero sources), and each port's
//! *outgoing* wave is routed to its twin. The spectral radius `ρ(T)` is the
//! asymptotic per-round error contraction — the quantity behind Fig. 9's
//! impedance bowl and Theorem 6.1's `ρ < 1` claim in the equal-delay case.

use crate::impedance::{per_port, ImpedancePolicy};
use crate::local::{LocalSolverKind, LocalSystem};
use dtm_graph::evs::SplitSystem;
use dtm_sparse::{Dense, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The VTM wave-iteration operator `w ↦ T w` (sources zeroed).
pub struct WaveOperator {
    locals: Vec<LocalSystem>,
    /// For each (part, port): the twin's (part, port).
    routes: Vec<Vec<(usize, usize)>>,
    /// Port offsets per part into the stacked vector.
    offsets: Vec<usize>,
    /// Total stacked dimension.
    dim: usize,
}

impl WaveOperator {
    /// Build the operator for a split system under an impedance assignment.
    ///
    /// # Errors
    /// Propagates impedance/factorization failures.
    pub fn new(
        split: &SplitSystem,
        impedance: &ImpedancePolicy,
        kind: LocalSolverKind,
    ) -> Result<Self> {
        let z_dtlp = impedance.assign(split)?;
        let z_ports = per_port(split, &z_dtlp);
        let locals: Vec<LocalSystem> = split
            .subdomains
            .iter()
            .enumerate()
            .map(|(p, sd)| {
                // Zero the sources: T is the homogeneous part.
                let mut sd0 = sd.clone();
                sd0.rhs.iter_mut().for_each(|v| *v = 0.0);
                LocalSystem::new(&sd0, &z_ports[p], kind)
            })
            .collect::<Result<_>>()?;
        let routes: Vec<Vec<(usize, usize)>> = split
            .subdomains
            .iter()
            .map(|sd| {
                sd.ports
                    .iter()
                    .map(|p| (p.peer.part, p.peer.port))
                    .collect()
            })
            .collect();
        let mut offsets = Vec::with_capacity(routes.len());
        let mut dim = 0;
        for r in &routes {
            offsets.push(dim);
            dim += r.len();
        }
        Ok(Self {
            locals,
            routes,
            offsets,
            dim,
        })
    }

    /// Stacked dimension (total ports).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Apply `w_out = T w_in`.
    pub fn apply(&mut self, w_in: &[f64], w_out: &mut [f64]) {
        assert_eq!(w_in.len(), self.dim, "wave dim");
        assert_eq!(w_out.len(), self.dim, "wave dim");
        for (p, local) in self.locals.iter_mut().enumerate() {
            for q in 0..local.n_ports() {
                local.set_incident_wave(q, w_in[self.offsets[p] + q]);
            }
            local.solve();
        }
        for (p, local) in self.locals.iter().enumerate() {
            for q in 0..local.n_ports() {
                let (u, omega) = local.outgoing(q);
                let out = crate::dtl::outgoing_wave(u, omega, local.impedances()[q]);
                let (tp, tq) = self.routes[p][q];
                w_out[self.offsets[tp] + tq] = out;
            }
        }
    }

    /// Materialize `T` as a dense matrix by probing unit vectors (small
    /// port counts only — O(dim) solves).
    pub fn to_dense(&mut self) -> Dense {
        let dim = self.dim;
        let mut t = Dense::zeros(dim, dim);
        let mut e = vec![0.0; dim];
        let mut col = vec![0.0; dim];
        for j in 0..dim {
            e[j] = 1.0;
            self.apply(&e, &mut col);
            e[j] = 0.0;
            for (i, &v) in col.iter().enumerate() {
                *t.get_mut(i, j) = v;
            }
        }
        t
    }

    /// Spectral radius by power iteration with periodic re-normalization;
    /// `iters` applications (a few hundred suffice well within 1%).
    pub fn spectral_radius(&mut self, iters: usize, seed: u64) -> f64 {
        assert!(iters >= 8, "need a few iterations");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<f64> = (0..self.dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut w = vec![0.0; self.dim];
        let mut log_growth_tail = 0.0;
        let tail_start = iters - iters / 4;
        for k in 0..iters {
            let norm = dtm_sparse::vector::norm2(&v).max(f64::MIN_POSITIVE);
            for x in v.iter_mut() {
                *x /= norm;
            }
            self.apply(&v, &mut w);
            std::mem::swap(&mut v, &mut w);
            if k >= tail_start {
                let growth = dtm_sparse::vector::norm2(&v).max(f64::MIN_POSITIVE);
                log_growth_tail += growth.ln();
            }
        }
        (log_growth_tail / (iters - tail_start) as f64).exp()
    }
}

/// Per-round contraction factor of VTM for a given uniform impedance scale:
/// the Fig. 9 "bowl" computed analytically rather than by simulation.
///
/// # Errors
/// Propagates operator construction failures.
pub fn impedance_sweep(
    split: &SplitSystem,
    scales: &[f64],
    kind: LocalSolverKind,
) -> Result<Vec<(f64, f64)>> {
    scales
        .iter()
        .map(|&s| {
            let mut op =
                WaveOperator::new(split, &ImpedancePolicy::GeometricMean { scale: s }, kind)?;
            Ok((s, op.spectral_radius(200, 42)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::evs::{paper_example_shares, split as evs_split, EvsOptions};
    use dtm_graph::{ElectricGraph, PartitionPlan};
    use dtm_sparse::generators;

    fn paper_split() -> SplitSystem {
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a, b).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            explicit: paper_example_shares(),
            ..Default::default()
        };
        evs_split(&g, &plan, &options).unwrap()
    }

    #[test]
    fn paper_operator_is_contractive() {
        // Theorem 6.1 implies ρ(T) < 1 for the SPD split with any Z > 0.
        let ss = paper_split();
        let mut op = WaveOperator::new(
            &ss,
            &ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
            LocalSolverKind::Dense,
        )
        .unwrap();
        assert_eq!(op.dim(), 4);
        let rho = op.spectral_radius(400, 7);
        assert!(rho < 1.0, "rho = {rho}");
        assert!(rho > 0.0);
    }

    #[test]
    fn spectral_radius_matches_observed_vtm_rate() {
        let ss = paper_split();
        let imp = ImpedancePolicy::PerDtlp(vec![0.2, 0.1]);
        let mut op = WaveOperator::new(&ss, &imp, LocalSolverKind::Dense).unwrap();
        let rho = op.spectral_radius(600, 3);
        // Observed late-stage per-round error ratio from a VTM run.
        let report = crate::vtm::solve(
            &ss,
            None,
            &crate::vtm::VtmConfig {
                impedance: imp,
                tol: 1e-300,
                max_rounds: 60,
                ..Default::default()
            },
        )
        .unwrap();
        let s = &report.series;
        let observed = (s[s.len() - 1] / s[s.len() - 11]).powf(0.1);
        assert!(
            (rho - observed).abs() < 0.05,
            "rho {rho} vs observed rate {observed}"
        );
    }

    #[test]
    fn dense_probe_agrees_with_apply() {
        let ss = paper_split();
        let mut op =
            WaveOperator::new(&ss, &ImpedancePolicy::Fixed(0.3), LocalSolverKind::Dense).unwrap();
        let t = op.to_dense();
        let w: Vec<f64> = (0..op.dim()).map(|i| (i as f64 + 1.0) * 0.5).collect();
        let mut out = vec![0.0; op.dim()];
        op.apply(&w, &mut out);
        let tv = t.matvec(&w);
        for (u, v) in out.iter().zip(&tv) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn sweep_has_interior_optimum() {
        // The Fig. 9 phenomenon: very small and very large impedances both
        // slow convergence; some interior scale is best.
        let a = generators::grid2d_laplacian(8, 8);
        let g = ElectricGraph::from_system(a, vec![0.0; 64]).unwrap();
        let asg = dtm_graph::partition::grid_strips(8, 8, 2);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        let ss = evs_split(&g, &plan, &EvsOptions::default()).unwrap();
        let scales = [0.01, 0.1, 1.0, 10.0, 100.0];
        let sweep = impedance_sweep(&ss, &scales, LocalSolverKind::Dense).unwrap();
        let rhos: Vec<f64> = sweep.iter().map(|&(_, r)| r).collect();
        let best = rhos.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(rhos.iter().all(|&r| r < 1.0), "all contractive: {rhos:?}");
        assert!(
            best < rhos[0] && best < rhos[rhos.len() - 1],
            "interior optimum expected: {rhos:?}"
        );
    }
}

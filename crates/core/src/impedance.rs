//! Characteristic-impedance selection.
//!
//! Theorem 6.1 guarantees convergence for *any* positive impedances, but §5
//! (Fig. 9) shows the choice governs convergence *speed*: "we could speedup
//! DTM if the characteristic impedances of DTLPs are carefully chosen."
//! This module provides the policies the reproduction sweeps over.

use dtm_graph::evs::SplitSystem;
use dtm_sparse::{Error, Result};

/// How to assign the characteristic impedance of each DTLP.
#[derive(Debug, Clone, PartialEq)]
pub enum ImpedancePolicy {
    /// The same impedance for every DTLP.
    Fixed(f64),
    /// One explicit impedance per DTLP (indexed like `SplitSystem::dtlps`);
    /// reproduces Example 5.1's `Z₂ = 0.2, Z₃ = 0.1` exactly.
    PerDtlp(Vec<f64>),
    /// Admittance matching: `z = scale / √(dₐ · d_b)` where `dₐ`, `d_b` are
    /// the split diagonal weights of the DTLP's two copy vertices. The
    /// diagonal of an electric graph is an admittance, so its inverse
    /// square-root mean is a natural impedance scale; `scale = 1` is the
    /// default policy.
    GeometricMean {
        /// Multiplier on the matched impedance.
        scale: f64,
    },
}

impl Default for ImpedancePolicy {
    fn default() -> Self {
        ImpedancePolicy::GeometricMean { scale: 1.0 }
    }
}

impl ImpedancePolicy {
    /// Resolve the policy into one impedance per DTLP.
    ///
    /// # Errors
    /// Rejects non-positive impedances (Theorem 6.1 requires `z > 0`) and
    /// length mismatches for [`ImpedancePolicy::PerDtlp`].
    pub fn assign(&self, split: &SplitSystem) -> Result<Vec<f64>> {
        let n = split.dtlps.len();
        let zs = match self {
            ImpedancePolicy::Fixed(z) => vec![*z; n],
            ImpedancePolicy::PerDtlp(zs) => {
                if zs.len() != n {
                    return Err(Error::DimensionMismatch {
                        context: "ImpedancePolicy::PerDtlp",
                        expected: n,
                        actual: zs.len(),
                    });
                }
                zs.clone()
            }
            ImpedancePolicy::GeometricMean { scale } => split
                .dtlps
                .iter()
                .map(|d| {
                    let da = copy_diag(split, d.a);
                    let db = copy_diag(split, d.b);
                    let prod = (da * db).max(f64::MIN_POSITIVE);
                    scale / prod.sqrt()
                })
                .collect(),
        };
        for (i, &z) in zs.iter().enumerate() {
            if !(z > 0.0 && z.is_finite()) {
                return Err(Error::Parse(format!(
                    "DTLP {i}: impedance must be positive and finite, got {z}"
                )));
            }
        }
        Ok(zs)
    }
}

/// Diagonal weight of the copy vertex a port sits on.
fn copy_diag(split: &SplitSystem, port: dtm_graph::evs::PortRef) -> f64 {
    let sd = &split.subdomains[port.part];
    let lv = sd.ports[port.port].local_vertex;
    sd.matrix.get(lv, lv).abs()
}

/// Impedances per *port* from impedances per DTLP (both ports of a DTLP
/// share its impedance, as §5 requires).
pub fn per_port(split: &SplitSystem, z_per_dtlp: &[f64]) -> Vec<Vec<f64>> {
    split
        .subdomains
        .iter()
        .map(|sd| sd.ports.iter().map(|p| z_per_dtlp[p.dtlp]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::evs::{paper_example_shares, split, EvsOptions};
    use dtm_graph::{ElectricGraph, PartitionPlan};
    use dtm_sparse::generators;

    fn paper_split() -> SplitSystem {
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a, b).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            explicit: paper_example_shares(),
            ..Default::default()
        };
        split(&g, &plan, &options).unwrap()
    }

    #[test]
    fn fixed_assigns_everywhere() {
        let ss = paper_split();
        let z = ImpedancePolicy::Fixed(0.25).assign(&ss).unwrap();
        assert_eq!(z, vec![0.25, 0.25]);
    }

    #[test]
    fn per_dtlp_reproduces_example_5_1() {
        // Z₂ = 0.2 between V2a/V2b, Z₃ = 0.1 between V3a/V3b.
        let ss = paper_split();
        assert_eq!(ss.dtlps[0].vertex, 1);
        assert_eq!(ss.dtlps[1].vertex, 2);
        let z = ImpedancePolicy::PerDtlp(vec![0.2, 0.1])
            .assign(&ss)
            .unwrap();
        assert_eq!(z, vec![0.2, 0.1]);
        let ports = per_port(&ss, &z);
        // Twin ports of one DTLP share the impedance.
        assert_eq!(ports[0], vec![0.2, 0.1]);
        assert_eq!(ports[1], vec![0.2, 0.1]);
    }

    #[test]
    fn geometric_mean_uses_copy_diagonals() {
        let ss = paper_split();
        let z = ImpedancePolicy::default().assign(&ss).unwrap();
        // V2 copies have diagonals 2.5 and 3.5; V3 copies 3.3 and 3.7.
        assert!((z[0] - 1.0 / (2.5_f64 * 3.5).sqrt()).abs() < 1e-14);
        assert!((z[1] - 1.0 / (3.3_f64 * 3.7).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn nonpositive_rejected() {
        let ss = paper_split();
        assert!(ImpedancePolicy::Fixed(0.0).assign(&ss).is_err());
        assert!(ImpedancePolicy::Fixed(-1.0).assign(&ss).is_err());
        assert!(ImpedancePolicy::PerDtlp(vec![0.5, f64::NAN])
            .assign(&ss)
            .is_err());
    }

    #[test]
    fn per_dtlp_length_checked() {
        let ss = paper_split();
        assert!(ImpedancePolicy::PerDtlp(vec![0.5]).assign(&ss).is_err());
    }
}

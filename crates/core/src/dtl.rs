//! The Directed Transmission Line and its delay-equation algebra (paper §2).
//!
//! A DTL with characteristic impedance `Z > 0` and propagation delay `τ`
//! imposes
//!
//! ```text
//! U_out(t) + Z·I_out(t) = U_in(t − τ) − Z·I_in(t − τ)
//! ```
//!
//! In *wave* form: the sender emits `w = u − Z·ω` (its reflected wave), and
//! the receiver enforces `u + Z·ω = w` as a Robin boundary condition. Two
//! DTLs of equal impedance pointing opposite ways form a DTLP; their delays
//! may differ (that is what "directed" buys: a perfect match to asymmetric
//! link delays).

/// A single directed transmission line: impedance plus one-way delay in
/// nanoseconds (delay bookkeeping lives in the network layer; it is carried
/// here for inspection and Laplace-domain analysis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dtl {
    /// Characteristic impedance `Z > 0`.
    pub impedance: f64,
    /// Propagation delay in nanoseconds.
    pub delay_ns: u64,
}

impl Dtl {
    /// Create a DTL.
    ///
    /// # Panics
    /// Panics unless `impedance > 0` (required by §2 and Theorem 6.1).
    pub fn new(impedance: f64, delay_ns: u64) -> Self {
        assert!(
            impedance > 0.0 && impedance.is_finite(),
            "DTL impedance must be positive, got {impedance}"
        );
        Self {
            impedance,
            delay_ns,
        }
    }
}

/// The wave value the far end will *receive*: `u − Z·ω` evaluated at the
/// near end (right-hand side of eq. (2.1) with the sign convention of §5).
#[inline]
pub fn outgoing_wave(u: f64, omega: f64, z: f64) -> f64 {
    u - z * omega
}

/// The incident-wave constraint value at the receiving port: the received
/// pair `(u_twin, ω_twin)` collapses to `w = u_twin − Z·ω_twin`, and the
/// local solve then enforces `u + Z·ω = w`.
#[inline]
pub fn incident_wave(u_twin: f64, omega_twin: f64, z: f64) -> f64 {
    u_twin - z * omega_twin
}

/// Inflow current implied by the incident wave once the local potential is
/// known: `ω = (w − u) / Z` (rearranging `u + Z·ω = w`).
#[inline]
pub fn inflow_current(w: f64, u: f64, z: f64) -> f64 {
    (w - u) / z
}

/// Verify a `(u, ω)` pair satisfies the receiving-end delay equation for an
/// incident wave `w` within `tol`.
#[inline]
pub fn satisfies_delay_equation(u: f64, omega: f64, w: f64, z: f64, tol: f64) -> bool {
    (u + z * omega - w).abs() <= tol
}

/// Fixed point of an isolated DTLP: at steady state the twin potentials are
/// equal and the twin currents cancel. Returns `(|u1 − u2|, |ω1 + ω2|)` as
/// a diagnostic.
pub fn dtlp_steady_state_gap(u1: f64, o1: f64, u2: f64, o2: f64) -> (f64, f64) {
    ((u1 - u2).abs(), (o1 + o2).abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_roundtrip_is_consistent() {
        let z = 0.2;
        let (u2, o2) = (1.5, -0.3);
        let w = incident_wave(u2, o2, z);
        // Receiver solves, getting some u1; its current follows from w.
        let u1 = 0.9;
        let o1 = inflow_current(w, u1, z);
        assert!(satisfies_delay_equation(u1, o1, w, z, 1e-14));
    }

    #[test]
    fn steady_state_forces_equality_and_cancellation() {
        // Impose both directions of the DTLP with *equal* values on both
        // sides (the time-invariant fixed point):
        //   u1 + z ω1 = u2 − z ω2   and   u2 + z ω2 = u1 − z ω1.
        // Adding: z(ω1 + ω2) = −z(ω1 + ω2) → ω1 = −ω2; then u1 = u2.
        let z = 0.7;
        // Pick a candidate fixed point and check it satisfies both ends.
        let (u, o) = (2.4, 0.31);
        let (u1, o1, u2, o2) = (u, o, u, -o);
        let w12 = incident_wave(u1, o1, z);
        let w21 = incident_wave(u2, o2, z);
        assert!(satisfies_delay_equation(u2, o2, w12, z, 1e-14));
        assert!(satisfies_delay_equation(u1, o1, w21, z, 1e-14));
        let (du, dsum) = dtlp_steady_state_gap(u1, o1, u2, o2);
        assert_eq!(du, 0.0);
        assert_eq!(dsum, 0.0);
    }

    #[test]
    fn non_fixed_point_violates_some_end() {
        let z = 1.0;
        let (u1, o1, u2, o2) = (1.0, 0.5, 2.0, 0.25);
        let w12 = incident_wave(u1, o1, z);
        let ok2 = satisfies_delay_equation(u2, o2, w12, z, 1e-12);
        let w21 = incident_wave(u2, o2, z);
        let ok1 = satisfies_delay_equation(u1, o1, w21, z, 1e-12);
        assert!(!(ok1 && ok2), "arbitrary state must not be a fixed point");
    }

    #[test]
    #[should_panic(expected = "impedance must be positive")]
    fn zero_impedance_rejected() {
        let _ = Dtl::new(0.0, 100);
    }

    #[test]
    fn physical_line_is_symmetric_special_case() {
        // §2: "the physical transmission line could be recognized as a
        // special DTLP with symmetric propagation delay".
        let fwd = Dtl::new(0.1, 2900);
        let bwd = Dtl::new(0.1, 2900);
        assert_eq!(fwd.delay_ns, bwd.delay_ns);
        assert_eq!(fwd.impedance, bwd.impedance);
    }
}

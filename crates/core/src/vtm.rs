//! The Virtual Transmission Method (VTM) — DTM's synchronous special case.
//!
//! "If we set τ₁ = τ₂ = … = τ_n = 1, then DTM is degenerated into a
//! discrete-time iterative algorithm, which is called Virtual Transmission
//! Method" (§1). The local system is eq. (5.10): identical to DTM's except
//! the remote boundary conditions advance in lock-step rounds `k`.
//!
//! VTM converges in fewer *exchanges* than DTM under heterogeneous delays
//! (conclusion §8: "the convergence speed of DTM is slower" than VTM), but
//! each synchronous round costs the *maximum* link delay plus a barrier,
//! which is precisely what DTM avoids — the trade-off the `cmp-vtm`
//! experiment quantifies.

use crate::impedance::{per_port, ImpedancePolicy};
use crate::local::{LocalSolverKind, LocalSystem};
use dtm_graph::evs::SplitSystem;
use dtm_sparse::{Result, SparseCholesky};
use serde::Serialize;

/// VTM configuration.
#[derive(Debug, Clone)]
pub struct VtmConfig {
    /// Impedance policy (shared with DTM).
    pub impedance: ImpedancePolicy,
    /// Local factorization backend.
    pub solver_kind: LocalSolverKind,
    /// RMS tolerance against the direct reference.
    pub tol: f64,
    /// Round budget.
    pub max_rounds: usize,
}

impl Default for VtmConfig {
    fn default() -> Self {
        Self {
            impedance: ImpedancePolicy::default(),
            solver_kind: LocalSolverKind::Auto,
            tol: 1e-8,
            max_rounds: 100_000,
        }
    }
}

/// VTM outcome.
#[derive(Debug, Clone, Serialize)]
pub struct VtmReport {
    /// Gathered global solution.
    pub solution: Vec<f64>,
    /// Tolerance met within the round budget?
    pub converged: bool,
    /// Synchronous rounds performed.
    pub rounds: usize,
    /// Final RMS error.
    pub final_rms: f64,
    /// RMS error after each round.
    pub series: Vec<f64>,
}

/// Run VTM: synchronous rounds of local solves + boundary exchanges.
///
/// # Errors
/// Propagates impedance assignment and factorization failures.
pub fn solve(
    split: &SplitSystem,
    reference: Option<Vec<f64>>,
    config: &VtmConfig,
) -> Result<VtmReport> {
    let reference = match reference {
        Some(r) => r,
        None => {
            let (a, b) = split.reconstruct();
            SparseCholesky::factor_rcm(&a)?.solve(&b)
        }
    };
    let z_dtlp = config.impedance.assign(split)?;
    let z_ports = per_port(split, &z_dtlp);
    let mut locals: Vec<LocalSystem> = split
        .subdomains
        .iter()
        .enumerate()
        .map(|(p, sd)| LocalSystem::new(sd, &z_ports[p], config.solver_kind))
        .collect::<Result<_>>()?;

    let mut series = Vec::new();
    let mut rounds = 0;
    let mut rms = f64::INFINITY;
    // Outgoing boundary conditions, buffered so every round-k solve sees
    // only round-(k−1) data.
    let mut outbox: Vec<Vec<(f64, f64)>> = split
        .subdomains
        .iter()
        .map(|sd| vec![(0.0, 0.0); sd.n_ports()])
        .collect();

    while rounds < config.max_rounds {
        for local in locals.iter_mut() {
            local.solve();
        }
        for (p, local) in locals.iter().enumerate() {
            for (q, slot) in outbox[p].iter_mut().enumerate() {
                *slot = local.outgoing(q);
            }
        }
        for (p, sd) in split.subdomains.iter().enumerate() {
            for (q, port) in sd.ports.iter().enumerate() {
                let (u, omega) = outbox[port.peer.part][port.peer.port];
                locals[p].set_remote(q, u, omega);
            }
        }
        rounds += 1;
        let gathered = gather(split, &locals);
        rms = dtm_sparse::vector::rms_error(&gathered, &reference);
        series.push(rms);
        if rms <= config.tol {
            break;
        }
    }

    let solution = gather(split, &locals);
    Ok(VtmReport {
        converged: rms <= config.tol,
        rounds,
        final_rms: rms,
        series,
        solution,
    })
}

fn gather(split: &SplitSystem, locals: &[LocalSystem]) -> Vec<f64> {
    let xs: Vec<Vec<f64>> = locals.iter().map(|l| l.solution().to_vec()).collect();
    split.gather(&xs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::CommonConfig;
    use crate::solver::{self, ComputeModel, DtmConfig, Termination};

    fn dtm_core_common(impedance: ImpedancePolicy) -> CommonConfig {
        CommonConfig {
            impedance,
            termination: Termination::OracleRms { tol: 0.0 },
            ..Default::default()
        }
    }
    use dtm_graph::evs::{paper_example_shares, split as evs_split, EvsOptions};
    use dtm_graph::{ElectricGraph, PartitionPlan};
    use dtm_simnet::{DelayModel, SimDuration, Topology};
    use dtm_sparse::generators;

    fn paper_split() -> SplitSystem {
        let (a, b) = generators::paper_example_system();
        let g = ElectricGraph::from_system(a, b).unwrap();
        let plan = PartitionPlan::from_assignment(&g, &[0, 0, 1, 1]).unwrap();
        let options = EvsOptions {
            explicit: paper_example_shares(),
            ..Default::default()
        };
        evs_split(&g, &plan, &options).unwrap()
    }

    #[test]
    fn vtm_converges_on_paper_example() {
        let ss = paper_split();
        let config = VtmConfig {
            impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
            tol: 1e-10,
            ..Default::default()
        };
        let report = solve(&ss, None, &config).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
        let (a, b) = generators::paper_example_system();
        let exact = dtm_sparse::DenseCholesky::factor_csr(&a).unwrap().solve(&b);
        for (u, v) in report.solution.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn series_is_monotone_decreasing_late() {
        let ss = paper_split();
        let config = VtmConfig {
            impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
            tol: 1e-12,
            max_rounds: 200,
            ..Default::default()
        };
        let report = solve(&ss, None, &config).unwrap();
        let tail = &report.series[report.series.len().saturating_sub(10)..];
        for w in tail.windows(2) {
            assert!(w[1] <= w[0] * 1.01, "{} then {}", w[0], w[1]);
        }
    }

    /// The defining equivalence: DTM on a network with *equal* delays and
    /// zero compute time reproduces VTM's round-k state exactly.
    #[test]
    fn dtm_with_equal_delays_equals_vtm() {
        let ss = paper_split();
        let impedance = ImpedancePolicy::PerDtlp(vec![0.2, 0.1]);
        let rounds = 12;

        let vtm_report = solve(
            &ss,
            None,
            &VtmConfig {
                impedance: impedance.clone(),
                tol: 0.0, // run exactly max_rounds
                max_rounds: rounds,
                ..Default::default()
            },
        )
        .unwrap();

        // DTM with both delays = 1 ms, compute 0: the k-th exchanged solve
        // happens at t = k ms; stop mid-way through round `rounds`.
        let topo = Topology::complete(2).with_delays(&DelayModel::fixed_ms(1.0));
        let config = DtmConfig {
            common: dtm_core_common(impedance),
            compute: ComputeModel::Zero,
            horizon: SimDuration::from_micros_f64((rounds as f64 - 0.5) * 1000.0),
            ..Default::default()
        };
        let dtm_report = solver::solve(&ss, topo, None, &config).unwrap();

        assert!(
            (dtm_report.final_rms - vtm_report.final_rms).abs()
                <= 1e-12 * vtm_report.final_rms.max(1e-30),
            "DTM(equal delays) {} vs VTM {}",
            dtm_report.final_rms,
            vtm_report.final_rms
        );
        for (u, v) in dtm_report.solution.iter().zip(&vtm_report.solution) {
            assert!((u - v).abs() < 1e-12, "{u} vs {v}");
        }
    }

    #[test]
    fn vtm_on_grid_with_uniform_policy() {
        let a = generators::grid2d_random(10, 10, 1.0, 31);
        let b = generators::random_rhs(100, 32);
        let g = ElectricGraph::from_system(a.clone(), b.clone()).unwrap();
        let asg = dtm_graph::partition::grid_strips(10, 10, 4);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        let ss = evs_split(&g, &plan, &EvsOptions::default()).unwrap();
        let report = solve(&ss, None, &VtmConfig::default()).unwrap();
        assert!(report.converged, "rms {}", report.final_rms);
        assert!(a.residual_norm(&report.solution, &b) < 1e-5);
    }

    #[test]
    fn round_budget_respected() {
        let ss = paper_split();
        let config = VtmConfig {
            impedance: ImpedancePolicy::PerDtlp(vec![0.2, 0.1]),
            tol: 1e-300,
            max_rounds: 7,
            ..Default::default()
        };
        let report = solve(&ss, None, &config).unwrap();
        assert!(!report.converged);
        assert_eq!(report.rounds, 7);
        assert_eq!(report.series.len(), 7);
    }
}

//! Randomized-asynchrony baselines: **randomized asynchronous Richardson**
//! (Avron et al. 2013, arXiv:1304.6475) and **Hong's D-iteration** (2012,
//! arXiv:1202.3108) as first-class peer solvers of DTM.
//!
//! The paper's central claim is that DTM's directed waves converge where
//! synchronous exchange stalls — but claims need competitors. Both schemes
//! here are genuinely asynchronous point methods from the literature, and
//! both fit the DTM runtime's contract exactly:
//!
//! * they are **node state machines** ([`AsyncNode`]) over the same
//!   [`DtmMsg`] wire format and [`Transport`] trait the DTM runtime uses
//!   (a [`PortUpdate`] is just a receiver-addressed scalar; Richardson
//!   overwrites boundary values, D-iteration accumulates fluid — both are
//!   valid under the per-pair-FIFO transport contract);
//! * they run on **all three executor fabrics** — the deterministic
//!   simulated machine, one OS thread per partition, and the
//!   work-stealing pool — through the drivers in this module;
//! * they report through the same [`SolveReport`] vocabulary, with the
//!   uniform message/activation/flop counters, so `repro compare` can pit
//!   all three algorithms **message for message on identical machines**
//!   (same partition, same delay topology, same
//!   [`Termination::Residual`] rule — no oracle taints the comparison).
//!
//! # The algorithms
//!
//! **Randomized Richardson** (per node): own a block of rows; per
//! activation perform `updates_per_activation` randomized relaxations
//! `x_i ← x_i + ω(t)·(b_i − Σ_j a_ij x_j)/a_ii` on uniformly sampled owned
//! rows, against whatever remote boundary values have arrived so far, then
//! scatter the owned boundary values to every coupled neighbour. The
//! relaxation schedule `ω(t)` is the knob Avron et al. analyse: a constant
//! step (their consistent-read regime) or a diminishing polynomial
//! schedule.
//!
//! **D-iteration** (per node): maintain a *fluid* vector `F` (initially
//! the Jacobi source `D⁻¹b`) and a *history* `H` (the published solution
//! estimate). Per activation each owned row diffuses `(1 − retention)`
//! of its fluid: the diffused mass moves into `H_i` and spreads
//! `−a_ji/a_jj` fractions into the neighbours' fluid — remote shares are
//! accumulated per destination row and shipped as messages. The invariant
//! `x* = H + (I − J)⁻¹F` holds after every diffusion, in any order, with
//! any message interleaving — which is exactly why the scheme is
//! asynchronous. `retention` is Hong's per-node fluid retention: a node
//! keeps a fraction back to batch its outgoing diffusion.

use crate::monitor::Monitor;
use crate::report::{AlgorithmKind, BackendKind, SolveReport, StopKind};
use crate::runtime::{
    wallclock::SharedBlock, AsyncNode, DtmMsg, ExecutorBackend, NodeControl, PortUpdate,
    Termination, Transport,
};
use crate::solver::ComputeModel;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dtm_graph::evs::SplitSystem;
use dtm_simnet::{Ctx, Engine, Envelope, Node, SimDuration, SimTime, StopReason, Topology};
use dtm_sparse::{Csr, Error, Result, SparseCholesky};
use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per part: for each neighbour part, `(their_ext_slot, my_local_row)`
/// value-exchange pairs.
type PartRoutes = Vec<(usize, Vec<(usize, usize)>)>;

/// A non-overlapping row partition of `A x = b`, with everything both
/// point algorithms need precomputed: per-row entry lists (internal
/// neighbours by local index, external by ext slot), the ext-slot
/// directory (owner part, owner-local row, remote diagonal), value routes
/// for Richardson-style exchange, and diffusion grouping for D-iteration.
#[derive(Debug)]
pub(crate) struct RowPartition {
    /// Sorted global rows per part.
    rows: Vec<Vec<usize>>,
    /// Diagonal per part per local row.
    diag: Vec<Vec<f64>>,
    /// Local right-hand side per part.
    rhs: Vec<Vec<f64>>,
    /// Off-diagonal entries per part per local row: `(idx, w)` where
    /// `idx < n_local` is an internal local column and `idx ≥ n_local`
    /// addresses ext slot `idx − n_local`.
    entries: Vec<Vec<Vec<(usize, f64)>>>,
    /// Per part: the global vertex each ext slot mirrors.
    ext_globals: Vec<Vec<usize>>,
    /// Per part: the part owning each ext slot's vertex (folded into
    /// `ext_by_part` for the hot path; kept for structural assertions).
    #[allow(dead_code)]
    ext_owner: Vec<Vec<usize>>,
    /// Per part: the vertex's local row in its owner.
    ext_local: Vec<Vec<usize>>,
    /// Per part: the diagonal `a_gg` of each ext vertex (D-iteration's
    /// remote share `−a_ig/a_gg` needs it sender-side).
    ext_diag: Vec<Vec<f64>>,
    /// Richardson value routes: per part, per neighbour part,
    /// `(their_ext_slot, my_local_row)`.
    routes: Vec<PartRoutes>,
    /// D-iteration diffusion grouping: per part, per neighbour part, the
    /// ext slots owned by that neighbour.
    ext_by_part: Vec<Vec<(usize, Vec<usize>)>>,
    /// Per part: total owned-row nonzeros (the compute-model work size).
    work_nnz: Vec<usize>,
}

impl RowPartition {
    fn build(a: &Csr, b: &[f64], assignment: &[usize]) -> Result<Arc<Self>> {
        let n = a.n_rows();
        if assignment.len() != n {
            return Err(Error::DimensionMismatch {
                context: "baseline assignment",
                expected: n,
                actual: assignment.len(),
            });
        }
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                context: "baseline right-hand side",
                expected: n,
                actual: b.len(),
            });
        }
        let k = assignment.iter().copied().max().map_or(0, |m| m + 1);
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (v, &p) in assignment.iter().enumerate() {
            rows[p].push(v);
        }
        let mut local_of = vec![usize::MAX; n];
        for part_rows in &rows {
            for (l, &g) in part_rows.iter().enumerate() {
                local_of[g] = l;
            }
        }
        // Global diagonal, needed sender-side by D-iteration.
        let mut gdiag = vec![0.0; n];
        for (g, d) in gdiag.iter_mut().enumerate() {
            for (u, w) in a.row(g) {
                if u == g {
                    *d = w;
                }
            }
            if *d <= 0.0 {
                return Err(Error::Parse(format!(
                    "baselines need a positive diagonal; a[{g},{g}] = {d}"
                )));
            }
        }

        let mut diag = vec![Vec::new(); k];
        let mut rhs = vec![Vec::new(); k];
        let mut entries: Vec<Vec<Vec<(usize, f64)>>> = vec![Vec::new(); k];
        let mut ext_globals: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut ext_owner: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut ext_local: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut ext_diag: Vec<Vec<f64>> = vec![Vec::new(); k];
        let mut work_nnz = vec![0usize; k];
        for p in 0..k {
            let nl = rows[p].len();
            let mut ext_index: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            for &g in &rows[p] {
                diag[p].push(gdiag[g]);
                rhs[p].push(b[g]);
                let mut row_entries = Vec::new();
                for (u, w) in a.row(g) {
                    if u == g {
                        continue;
                    }
                    if assignment[u] == p {
                        row_entries.push((local_of[u], w));
                    } else {
                        let next = ext_index.len();
                        let slot = *ext_index.entry(u).or_insert(next);
                        if slot == ext_globals[p].len() {
                            ext_globals[p].push(u);
                            ext_owner[p].push(assignment[u]);
                            ext_local[p].push(local_of[u]);
                            ext_diag[p].push(gdiag[u]);
                        }
                        row_entries.push((nl + slot, w));
                    }
                }
                work_nnz[p] += row_entries.len() + 1;
                entries[p].push(row_entries);
            }
        }
        // Value routes: part p sends x[g] to every part q whose ext list
        // mirrors g ∈ p (deterministic slot order, as in block-Jacobi).
        let mut routes: Vec<PartRoutes> = vec![Vec::new(); k];
        for (q, globals) in ext_globals.iter().enumerate() {
            for (slot, &g) in globals.iter().enumerate() {
                let p = assignment[g];
                match routes[p].iter_mut().find(|(dst, _)| *dst == q) {
                    Some((_, pairs)) => pairs.push((slot, local_of[g])),
                    None => routes[p].push((q, vec![(slot, local_of[g])])),
                }
            }
        }
        // Diffusion grouping: p's ext slots bucketed by owner part.
        let mut ext_by_part: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); k];
        for p in 0..k {
            for (slot, &dst) in ext_owner[p].iter().enumerate() {
                match ext_by_part[p].iter_mut().find(|(d, _)| *d == dst) {
                    Some((_, s)) => s.push(slot),
                    None => ext_by_part[p].push((dst, vec![slot])),
                }
            }
        }
        Ok(Arc::new(Self {
            rows,
            diag,
            rhs,
            entries,
            ext_globals,
            ext_owner,
            ext_local,
            ext_diag,
            routes,
            ext_by_part,
            work_nnz,
        }))
    }

    fn n_parts(&self) -> usize {
        self.rows.len()
    }

    /// Every directed pair both algorithms may send over (coupling is
    /// symmetric for a symmetric matrix, so one check covers both the
    /// value-exchange and the diffusion direction).
    fn check_links(&self, topology: &Topology) -> Result<()> {
        if topology.n_nodes() != self.n_parts() {
            return Err(Error::DimensionMismatch {
                context: "baselines: one processor per partition",
                expected: self.n_parts(),
                actual: topology.n_nodes(),
            });
        }
        for (p, routes) in self.routes.iter().enumerate() {
            for (dst, _) in routes {
                if topology.link(p, *dst).is_none() {
                    return Err(Error::Parse(format!(
                        "partitions {p} and {dst} are coupled but the machine \
                         has no link {p} → {dst}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// The relaxation-step schedule of the randomized Richardson baseline —
/// the parameter Avron et al. (2013) analyse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RelaxationSchedule {
    /// Fixed step `ω` for every update (`ω = 1` is exact per-coordinate
    /// relaxation — asynchronous randomized Gauss–Seidel).
    Constant(f64),
    /// Diminishing steps `ω(t) = ω₀ / (1 + t)^power` over the node's own
    /// update counter `t` — the robust-to-staleness schedule.
    Polynomial {
        /// Initial step.
        omega0: f64,
        /// Decay exponent (0 recovers the constant schedule).
        power: f64,
    },
}

impl RelaxationSchedule {
    fn omega(self, t: u64) -> f64 {
        match self {
            RelaxationSchedule::Constant(w) => w,
            RelaxationSchedule::Polynomial { omega0, power } => {
                omega0 / (1.0 + t as f64).powf(power)
            }
        }
    }

    fn validate(self) -> Result<()> {
        let ok = match self {
            RelaxationSchedule::Constant(w) => w > 0.0 && w.is_finite(),
            RelaxationSchedule::Polynomial { omega0, power } => {
                omega0 > 0.0 && omega0.is_finite() && power >= 0.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(Error::Parse(
                "relaxation schedule needs a positive step".into(),
            ))
        }
    }
}

impl Default for RelaxationSchedule {
    fn default() -> Self {
        RelaxationSchedule::Constant(1.0)
    }
}

/// Parameters of the randomized Richardson baseline.
#[derive(Debug, Clone)]
pub struct RichardsonParams {
    /// Relaxation schedule (see [`RelaxationSchedule`]).
    pub schedule: RelaxationSchedule,
    /// Randomized row updates per activation; `0` means one expected
    /// sweep (`n_local` updates).
    pub updates_per_activation: usize,
    /// Seed of the per-node update-order stream (node `p` draws from
    /// `seed + p`, so runs are reproducible yet nodes are decorrelated).
    pub seed: u64,
}

impl Default for RichardsonParams {
    fn default() -> Self {
        Self {
            schedule: RelaxationSchedule::default(),
            updates_per_activation: 0,
            seed: 7,
        }
    }
}

/// Parameters of the D-iteration baseline.
#[derive(Debug, Clone)]
pub struct DIterationParams {
    /// Per-node fluid retention in `[0, 1)`: the fraction of each row's
    /// fluid kept back per diffusion pass (0 diffuses everything — the
    /// classical scheme; larger values batch outgoing mass).
    pub retention: f64,
}

impl Default for DIterationParams {
    fn default() -> Self {
        Self { retention: 0.0 }
    }
}

/// Which baseline algorithm to run.
#[derive(Debug, Clone)]
pub enum BaselineAlgo {
    /// Randomized asynchronous Richardson (Avron et al. 2013).
    RandomizedRichardson(RichardsonParams),
    /// Hong's D-iteration (2012).
    DIteration(DIterationParams),
}

impl BaselineAlgo {
    /// The report tag of this algorithm.
    pub fn kind(&self) -> AlgorithmKind {
        match self {
            BaselineAlgo::RandomizedRichardson(_) => AlgorithmKind::RandomizedRichardson,
            BaselineAlgo::DIteration(_) => AlgorithmKind::DIteration,
        }
    }

    fn validate(&self) -> Result<()> {
        match self {
            BaselineAlgo::RandomizedRichardson(p) => p.schedule.validate(),
            BaselineAlgo::DIteration(p) => {
                if (0.0..1.0).contains(&p.retention) {
                    Ok(())
                } else {
                    Err(Error::Parse(format!(
                        "fluid retention must lie in [0, 1), got {}",
                        p.retention
                    )))
                }
            }
        }
    }

    /// One node state machine per partition.
    fn build_nodes(
        &self,
        pt: &Arc<RowPartition>,
        config: &BaselineConfig,
    ) -> Vec<Box<dyn AsyncNode>> {
        (0..pt.n_parts())
            .map(|p| -> Box<dyn AsyncNode> {
                match self {
                    BaselineAlgo::RandomizedRichardson(params) => {
                        Box::new(RichardsonNode::new(p, pt.clone(), params, config))
                    }
                    BaselineAlgo::DIteration(params) => {
                        Box::new(DIterationNode::new(p, pt.clone(), params, config))
                    }
                }
            })
            .collect()
    }
}

/// Configuration shared by the baseline drivers: the common stopping
/// vocabulary plus the per-executor knobs (simulated-machine fields are
/// ignored by the wall-clock drivers and vice versa).
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Stopping rule (the comparison harness uses
    /// [`Termination::Residual`] so no oracle taints the numbers).
    pub termination: Termination,
    /// Per-activation compute model (simulated executor).
    pub compute: ComputeModel,
    /// Simulated-time budget (simulated executor).
    pub horizon: SimDuration,
    /// Series sampling interval.
    pub sample_interval: SimDuration,
    /// Per-node activation cap.
    pub max_solves_per_node: usize,
    /// Wall-clock budget (threaded / work-stealing executors).
    pub budget: Duration,
    /// Supervisor poll interval (wall-clock executors).
    pub poll_interval: Duration,
    /// Pool threads (work-stealing executor; 0 = available parallelism).
    pub num_threads: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            termination: Termination::Residual { tol: 1e-8 },
            compute: ComputeModel::default(),
            horizon: SimDuration::from_millis_f64(600_000.0),
            sample_interval: SimDuration::ZERO,
            max_solves_per_node: 200_000,
            budget: Duration::from_secs(30),
            poll_interval: Duration::from_micros(500),
            num_threads: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Node state machine 1: randomized asynchronous Richardson.
// ---------------------------------------------------------------------------

struct RichardsonNode {
    part: usize,
    pt: Arc<RowPartition>,
    x: Vec<f64>,
    ext: Vec<f64>,
    rng: StdRng,
    schedule: RelaxationSchedule,
    updates_per_step: usize,
    t: u64,
    prev_boundary: Vec<f64>,
    termination: Termination,
    max_solves: usize,
    solves: u64,
    messages: u64,
    flops: u64,
    small_streak: usize,
    capped: bool,
}

impl RichardsonNode {
    fn new(
        part: usize,
        pt: Arc<RowPartition>,
        params: &RichardsonParams,
        config: &BaselineConfig,
    ) -> Self {
        let nl = pt.rows[part].len();
        let n_ext = pt.ext_globals[part].len();
        let updates = if params.updates_per_activation == 0 {
            nl
        } else {
            params.updates_per_activation
        };
        Self {
            part,
            x: vec![0.0; nl],
            ext: vec![0.0; n_ext],
            rng: StdRng::seed_from_u64(params.seed.wrapping_add(part as u64)),
            schedule: params.schedule,
            updates_per_step: updates,
            t: 0,
            prev_boundary: Vec::new(),
            termination: config.termination,
            max_solves: config.max_solves_per_node,
            solves: 0,
            messages: 0,
            flops: 0,
            small_streak: 0,
            capped: false,
            pt,
        }
    }
}

impl AsyncNode for RichardsonNode {
    fn part(&self) -> usize {
        self.part
    }

    fn n_local(&self) -> usize {
        self.x.len()
    }

    fn solution(&self) -> &[f64] {
        &self.x
    }

    fn absorb_owned(&mut self, msg: DtmMsg) {
        // Boundary values overwrite: use whatever is freshest (the
        // classical totally-asynchronous iteration semantics).
        for u in &msg.updates {
            self.ext[u.port] = u.u[0];
        }
    }

    fn step_node(&mut self, transport: &mut dyn Transport) -> NodeControl {
        let p = self.part;
        let nl = self.x.len();
        let pt = self.pt.clone();
        if nl > 0 {
            for _ in 0..self.updates_per_step {
                let i = self.rng.gen_range(0..nl);
                let mut r = pt.rhs[p][i] - pt.diag[p][i] * self.x[i];
                for &(j, w) in &pt.entries[p][i] {
                    r -= w * if j < nl { self.x[j] } else { self.ext[j - nl] };
                }
                let omega = self.schedule.omega(self.t);
                self.t += 1;
                self.x[i] += omega * r / pt.diag[p][i];
                self.flops += 2 * pt.entries[p][i].len() as u64 + 6;
            }
        }
        self.solves += 1;
        // Scatter owned boundary values, tracking the outgoing delta for
        // the LocalDelta self-halt (Table-1-style rule, shared vocabulary).
        let mut delta = 0.0_f64;
        let mut bi = 0usize;
        for (dst, pairs) in &pt.routes[p] {
            let updates: Vec<PortUpdate> = pairs
                .iter()
                .map(|&(slot, l)| PortUpdate::scalar(slot, self.x[l], 0.0))
                .collect();
            for u in &updates {
                let v = u.u[0];
                if bi < self.prev_boundary.len() {
                    delta = delta.max((v - self.prev_boundary[bi]).abs());
                    self.prev_boundary[bi] = v;
                } else {
                    self.prev_boundary.push(v);
                    delta = f64::INFINITY;
                }
                bi += 1;
            }
            transport.send(*dst, DtmMsg { updates });
            self.messages += 1;
        }
        if let Termination::LocalDelta { tol, patience } = self.termination {
            if delta < tol {
                self.small_streak += 1;
                if self.small_streak >= patience {
                    return NodeControl::Converged;
                }
            } else {
                self.small_streak = 0;
            }
        }
        if self.solves >= self.max_solves as u64 {
            self.capped = true;
            return NodeControl::Capped;
        }
        NodeControl::Continue
    }

    fn solves(&self) -> u64 {
        self.solves
    }

    fn messages_sent(&self) -> u64 {
        self.messages
    }

    fn flops(&self) -> u64 {
        self.flops
    }

    fn work_nnz(&self) -> usize {
        self.pt.work_nnz[self.part]
    }

    fn capped(&self) -> bool {
        self.capped
    }
}

// ---------------------------------------------------------------------------
// Node state machine 2: Hong's D-iteration.
// ---------------------------------------------------------------------------

struct DIterationNode {
    part: usize,
    pt: Arc<RowPartition>,
    /// Undiffused residual mass per owned row.
    fluid: Vec<f64>,
    /// Accumulated history — the published solution estimate.
    hist: Vec<f64>,
    retention: f64,
    /// Per ext slot: outgoing fluid accumulated this activation.
    buckets: Vec<f64>,
    termination: Termination,
    max_solves: usize,
    solves: u64,
    messages: u64,
    flops: u64,
    small_streak: usize,
    capped: bool,
}

impl DIterationNode {
    fn new(
        part: usize,
        pt: Arc<RowPartition>,
        params: &DIterationParams,
        config: &BaselineConfig,
    ) -> Self {
        // Initial fluid is the Jacobi source c = D⁻¹ b: the invariant
        // x* = H + (I − J)⁻¹ F then holds from the first instant.
        let fluid: Vec<f64> = pt.rhs[part]
            .iter()
            .zip(&pt.diag[part])
            .map(|(b, d)| b / d)
            .collect();
        let nl = fluid.len();
        let n_ext = pt.ext_globals[part].len();
        Self {
            part,
            fluid,
            hist: vec![0.0; nl],
            retention: params.retention,
            buckets: vec![0.0; n_ext],
            termination: config.termination,
            max_solves: config.max_solves_per_node,
            solves: 0,
            messages: 0,
            flops: 0,
            small_streak: 0,
            capped: false,
            pt,
        }
    }
}

impl AsyncNode for DIterationNode {
    fn part(&self) -> usize {
        self.part
    }

    fn n_local(&self) -> usize {
        self.hist.len()
    }

    fn solution(&self) -> &[f64] {
        &self.hist
    }

    fn absorb_owned(&mut self, msg: DtmMsg) {
        // Fluid shares accumulate (each diffusion is a one-shot transfer
        // of mass; the FIFO exactly-once transport keeps the invariant).
        for u in &msg.updates {
            self.fluid[u.port] += u.u[0];
        }
    }

    fn step_node(&mut self, transport: &mut dyn Transport) -> NodeControl {
        let p = self.part;
        let nl = self.hist.len();
        let pt = self.pt.clone();
        self.buckets.iter_mut().for_each(|b| *b = 0.0);
        let mut delta = 0.0_f64;
        for i in 0..nl {
            let f = self.fluid[i];
            if f == 0.0 {
                continue;
            }
            let m = (1.0 - self.retention) * f;
            self.hist[i] += m;
            self.fluid[i] -= m;
            delta = delta.max(m.abs());
            for &(j, w) in &pt.entries[p][i] {
                // The Jacobi share J_{ji} = −a_ji/a_jj of the diffused
                // mass lands in neighbour j's fluid (a symmetric ⇒ a_ji
                // is this row's entry; remote diagonals are precomputed).
                if j < nl {
                    self.fluid[j] += (-w / pt.diag[p][j]) * m;
                } else {
                    let slot = j - nl;
                    self.buckets[slot] += (-w / pt.ext_diag[p][slot]) * m;
                }
            }
            self.flops += 2 * pt.entries[p][i].len() as u64 + 4;
        }
        self.solves += 1;
        for (dst, slots) in &pt.ext_by_part[p] {
            let updates: Vec<PortUpdate> = slots
                .iter()
                .filter(|&&slot| self.buckets[slot] != 0.0)
                .map(|&slot| PortUpdate::scalar(pt.ext_local[p][slot], self.buckets[slot], 0.0))
                .collect();
            // An all-zero diffusion sends nothing: the network quiesces
            // naturally once the fluid is exhausted.
            if !updates.is_empty() {
                transport.send(*dst, DtmMsg { updates });
                self.messages += 1;
            }
        }
        if let Termination::LocalDelta { tol, patience } = self.termination {
            if delta < tol {
                self.small_streak += 1;
                if self.small_streak >= patience {
                    return NodeControl::Converged;
                }
            } else {
                self.small_streak = 0;
            }
        }
        if self.solves >= self.max_solves as u64 {
            self.capped = true;
            return NodeControl::Capped;
        }
        NodeControl::Continue
    }

    fn solves(&self) -> u64 {
        self.solves
    }

    fn messages_sent(&self) -> u64 {
        self.messages
    }

    fn flops(&self) -> u64 {
        self.flops
    }

    fn work_nnz(&self) -> usize {
        self.pt.work_nnz[self.part]
    }

    fn capped(&self) -> bool {
        self.capped
    }
}

// ---------------------------------------------------------------------------
// Shared driver plumbing.
// ---------------------------------------------------------------------------

/// Resolve the opt-in oracle reference, exactly as the DTM executors do:
/// an explicit reference wins, [`Termination::Residual`] never pays for a
/// direct solve, anything else computes `A⁻¹b` once.
fn resolve_reference(
    a: &Csr,
    b: &[f64],
    reference: Option<Vec<f64>>,
    termination: Termination,
) -> Result<Option<Vec<f64>>> {
    match (reference, termination) {
        (Some(r), _) => Ok(Some(r)),
        (None, Termination::Residual { .. }) => Ok(None),
        (None, _) => Ok(Some(SparseCholesky::factor_rcm(a)?.solve(b))),
    }
}

/// Build the run's monitor over the raw row partition (copy counts all
/// one — partitions don't overlap), with the same primary-metric rules as
/// every DTM executor: residual termination stays residual-primary even
/// when a reference exists.
fn baseline_monitor(
    pt: &RowPartition,
    a: &Csr,
    b: &[f64],
    reference: &Option<Vec<f64>>,
    termination: Termination,
    sample_interval: SimDuration,
) -> Monitor {
    let n = a.n_rows();
    let mut monitor = match (reference, termination) {
        (Some(r), Termination::Residual { .. }) => {
            let mut m = Monitor::from_parts_residual(
                pt.rows.clone(),
                vec![1; n],
                a.clone(),
                std::slice::from_ref(&b.to_vec()),
                sample_interval,
            );
            m.attach_oracle(std::slice::from_ref(r));
            m
        }
        (Some(r), _) => {
            Monitor::from_parts(pt.rows.clone(), vec![1; n], r.clone(), sample_interval)
        }
        (None, _) => Monitor::from_parts_residual(
            pt.rows.clone(),
            vec![1; n],
            a.clone(),
            std::slice::from_ref(&b.to_vec()),
            sample_interval,
        ),
    };
    monitor.set_refresh_below(metric_tol(termination).unwrap_or(0.0));
    monitor
}

fn metric_tol(termination: Termination) -> Option<f64> {
    match termination {
        Termination::OracleRms { tol } | Termination::Residual { tol } => Some(tol),
        Termination::LocalDelta { .. } => None,
    }
}

/// Uniform per-run counters gathered from whichever fabric ran the nodes.
struct Counters {
    solves: u64,
    messages: u64,
    flops: u64,
    coalesced: u64,
    any_capped: bool,
}

/// Assemble the shared [`SolveReport`] from the monitor's final state.
#[allow(clippy::too_many_arguments)]
fn finish_report(
    backend: BackendKind,
    algorithm: AlgorithmKind,
    mut monitor: Monitor,
    a: &Csr,
    b: &[f64],
    termination: Termination,
    stop: StopKind,
    final_time_ms: f64,
    counters: Counters,
    n_parts: usize,
) -> SolveReport {
    monitor.resync();
    let (final_rms, final_rms_per_rhs) = if monitor.has_oracle() {
        let rms = monitor.rms_exact();
        (rms, vec![rms])
    } else {
        (f64::NAN, Vec::new())
    };
    let final_residual = if monitor.tracks_residual() {
        monitor.residual_exact_per_rhs()[0]
    } else {
        a.residual_norm(monitor.estimate(), b) / dtm_sparse::vector::norm2_or_one(b)
    };
    let converged = match termination {
        Termination::OracleRms { tol } => final_rms <= tol,
        Termination::Residual { tol } => final_residual <= tol,
        Termination::LocalDelta { .. } => {
            matches!(stop, StopKind::AllHalted | StopKind::Quiescent) && !counters.any_capped
        }
    };
    let solution = monitor.estimate().to_vec();
    SolveReport {
        backend,
        algorithm,
        solution: solution.clone(),
        n_rhs: 1,
        solutions: vec![solution],
        final_rms_per_rhs,
        converged,
        final_rms,
        final_residual,
        final_residual_per_rhs: vec![final_residual],
        final_time_ms,
        series: monitor.into_series(),
        total_solves: counters.solves,
        total_messages: counters.messages,
        total_flops: counters.flops,
        coalesced_batches: counters.coalesced,
        n_parts,
        stop,
    }
}

// ---------------------------------------------------------------------------
// Executor 1: the deterministic simulated machine.
// ---------------------------------------------------------------------------

/// One baseline node on one simulated processor: the state machine plus
/// its per-activation compute time (same shape as the DTM adapter).
pub struct SimBaselineNode {
    inner: Box<dyn AsyncNode>,
    compute: SimDuration,
}

impl SimBaselineNode {
    /// The partition id this node executes.
    pub fn part(&self) -> usize {
        self.inner.part()
    }

    /// The node's current local solution estimate.
    pub fn solution(&self) -> &[f64] {
        self.inner.solution()
    }
}

/// Adapter: scattered updates leave through the simulation context, so
/// the link's simulated delay is the message's transmission delay —
/// identical to the DTM mapping.
struct CtxTransport<'a, 't>(&'a mut Ctx<'t, DtmMsg>);

impl Transport for CtxTransport<'_, '_> {
    fn send(&mut self, dst: usize, msg: DtmMsg) {
        self.0.send(dst, msg);
    }
}

impl SimBaselineNode {
    fn run_step(&mut self, ctx: &mut Ctx<DtmMsg>) {
        ctx.set_compute(self.compute);
        if self.inner.step_node(&mut CtxTransport(ctx)).is_halt() {
            ctx.halt();
        }
    }
}

impl Node for SimBaselineNode {
    type Msg = DtmMsg;

    fn start(&mut self, ctx: &mut Ctx<DtmMsg>) {
        self.run_step(ctx);
    }

    fn receive(&mut self, ctx: &mut Ctx<DtmMsg>, batch: &mut Vec<Envelope<DtmMsg>>) {
        for env in batch.drain(..) {
            self.inner.absorb_owned(env.payload);
        }
        self.run_step(ctx);
    }
}

/// Build the simulated nodes of a baseline run — public so traced manual
/// engine runs (e.g. `repro compare`'s tagged trace samples) can drive
/// them exactly like `solver::build_nodes` is driven for DTM.
///
/// # Errors
/// Fails on dimension mismatches, invalid parameters, a non-positive
/// diagonal, or a coupled partition pair with no machine link.
pub fn build_sim_nodes(
    algo: &BaselineAlgo,
    a: &Csr,
    b: &[f64],
    assignment: &[usize],
    topology: &Topology,
    config: &BaselineConfig,
) -> Result<Vec<SimBaselineNode>> {
    prepare_sim(algo, a, b, assignment, topology, config).map(|(nodes, _)| nodes)
}

/// The one validated construction path behind both [`build_sim_nodes`]
/// and [`solve_sim`]: validate, partition, check the machine mapping,
/// wrap nodes with their compute durations.
fn prepare_sim(
    algo: &BaselineAlgo,
    a: &Csr,
    b: &[f64],
    assignment: &[usize],
    topology: &Topology,
    config: &BaselineConfig,
) -> Result<(Vec<SimBaselineNode>, Arc<RowPartition>)> {
    algo.validate()?;
    let pt = RowPartition::build(a, b, assignment)?;
    pt.check_links(topology)?;
    let nodes = algo
        .build_nodes(&pt, config)
        .into_iter()
        .map(|inner| SimBaselineNode {
            // Baseline pipelines are scalar: one RHS column per sweep.
            compute: config.compute.duration_for_block(inner.work_nnz(), 1),
            inner,
        })
        .collect();
    Ok((nodes, pt))
}

/// Run a baseline to completion on the simulated machine — the
/// message-for-message comparison executor (delays are exact, runs are
/// deterministic).
///
/// # Errors
/// See [`build_sim_nodes`].
pub fn solve_sim(
    algo: &BaselineAlgo,
    a: &Csr,
    b: &[f64],
    assignment: &[usize],
    topology: Topology,
    reference: Option<Vec<f64>>,
    config: &BaselineConfig,
) -> Result<SolveReport> {
    let (nodes, pt) = prepare_sim(algo, a, b, assignment, &topology, config)?;
    let reference = resolve_reference(a, b, reference, config.termination)?;
    let mut monitor = baseline_monitor(
        &pt,
        a,
        b,
        &reference,
        config.termination,
        config.sample_interval,
    );
    let tol = metric_tol(config.termination);
    let n_parts = nodes.len();
    let mut engine = Engine::new(topology, nodes);
    let outcome = engine.run(
        SimTime::ZERO + config.horizon,
        |time, part, node: &SimBaselineNode| {
            let metric = monitor.update_part(part, time, node.solution());
            match tol {
                Some(tol) => metric > tol,
                None => true,
            }
        },
    );
    let stats = engine.stats();
    let counters = Counters {
        solves: stats.activations.iter().sum(),
        messages: stats.messages_sent,
        flops: engine.nodes().iter().map(|n| n.inner.flops()).sum(),
        coalesced: stats.coalesced_batches,
        any_capped: engine.nodes().iter().any(|n| n.inner.capped()),
    };
    // Uniform-counter cross-check: the monitor witnessed exactly one
    // update per engine activation, whatever the algorithm.
    debug_assert_eq!(monitor.updates(), counters.solves);
    let stop = match outcome.reason {
        StopReason::ObserverStop => StopKind::OracleTolerance,
        StopReason::AllHalted => StopKind::AllHalted,
        StopReason::TimeLimit => StopKind::Horizon,
        StopReason::QueueEmpty => StopKind::Quiescent,
    };
    Ok(finish_report(
        BackendKind::Simulated,
        algo.kind(),
        monitor,
        a,
        b,
        config.termination,
        stop,
        outcome.final_time.as_millis_f64(),
        counters,
        n_parts,
    ))
}

// ---------------------------------------------------------------------------
// Wall-clock supervision shared by the threaded and pool executors.
// ---------------------------------------------------------------------------

struct WallOutcome {
    stop: StopKind,
    best_metric: f64,
    elapsed_ms: f64,
}

/// Poll the workers' published snapshots into the monitor until the
/// stopping metric is met, every node halted, or the budget expired. The
/// monitor's series clock is the wall-clock elapsed time, so reports read
/// uniformly across executors.
fn supervise_monitor(
    monitor: &mut Monitor,
    snapshots: &[SharedBlock],
    n_locals: &[usize],
    termination: Termination,
    budget: Duration,
    poll: Duration,
    mut all_done: impl FnMut() -> bool,
) -> WallOutcome {
    let started = Instant::now();
    let tol = metric_tol(termination);
    let mut mirrors: Vec<Vec<f64>> = n_locals.iter().map(|&nl| vec![0.0; nl]).collect();
    let mut seen: Vec<u64> = vec![0; snapshots.len()];
    let mut best = f64::INFINITY;
    let stop = loop {
        std::thread::sleep(poll);
        let now = SimTime::from_nanos(started.elapsed().as_nanos() as u64);
        let mut metric = None;
        for (p, (snap, (mirror, seen))) in snapshots
            .iter()
            .zip(mirrors.iter_mut().zip(&mut seen))
            .enumerate()
        {
            if snap.drain_into(mirror, seen) != 0 {
                metric = Some(monitor.update_part(p, now, mirror));
            }
        }
        if let Some(m) = metric {
            best = best.min(m);
            if let Some(tol) = tol {
                if m <= tol {
                    break StopKind::OracleTolerance;
                }
            }
        }
        if all_done() {
            break StopKind::AllHalted;
        }
        if started.elapsed() >= budget {
            break StopKind::Budget;
        }
    };
    // One final drain so the report reflects the workers' last published
    // state even if the loop exited on a non-metric condition.
    let now = SimTime::from_nanos(started.elapsed().as_nanos() as u64);
    for (p, (snap, (mirror, seen))) in snapshots
        .iter()
        .zip(mirrors.iter_mut().zip(&mut seen))
        .enumerate()
    {
        if snap.drain_into(mirror, seen) != 0 {
            best = best.min(monitor.update_part(p, now, mirror));
        }
    }
    WallOutcome {
        stop,
        best_metric: best,
        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

// ---------------------------------------------------------------------------
// Executor 2: one OS thread per partition.
// ---------------------------------------------------------------------------

/// Adapter: updates leave through crossbeam channels, with in-flight
/// accounting for the LocalDelta quiescence kick (same discipline as the
/// threaded DTM executor).
struct BaselineChannelTransport {
    senders: Vec<Sender<DtmMsg>>,
    in_flight: Arc<AtomicI64>,
}

impl Transport for BaselineChannelTransport {
    fn send(&mut self, dst: usize, msg: DtmMsg) {
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        // Ignore send failures during shutdown.
        let _ = self.senders[dst].send(msg);
    }
}

/// Run a baseline on real OS threads — genuine asynchrony, no simulation:
/// message delay is whatever the scheduler and channels impose.
///
/// # Errors
/// See [`build_sim_nodes`] (the same validation applies, minus the
/// machine-link check — channels form a complete graph).
pub fn solve_threaded(
    algo: &BaselineAlgo,
    a: &Csr,
    b: &[f64],
    assignment: &[usize],
    reference: Option<Vec<f64>>,
    config: &BaselineConfig,
) -> Result<SolveReport> {
    algo.validate()?;
    let pt = RowPartition::build(a, b, assignment)?;
    let nodes = algo.build_nodes(&pt, config);
    let n_parts = nodes.len();
    let n_locals: Vec<usize> = nodes.iter().map(|n| n.n_local()).collect();
    let reference = resolve_reference(a, b, reference, config.termination)?;
    let mut monitor = baseline_monitor(
        &pt,
        a,
        b,
        &reference,
        config.termination,
        config.sample_interval,
    );

    let mut senders: Vec<Sender<DtmMsg>> = Vec::with_capacity(n_parts);
    let mut receivers: Vec<Receiver<DtmMsg>> = Vec::with_capacity(n_parts);
    for _ in 0..n_parts {
        let (tx, rx) = unbounded::<DtmMsg>();
        senders.push(tx);
        receivers.push(rx);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let in_flight = Arc::new(AtomicI64::new(0));
    let active = Arc::new(AtomicUsize::new(0));
    let snapshots: Arc<Vec<SharedBlock>> =
        Arc::new(n_locals.iter().map(|&nl| SharedBlock::new(nl, 1)).collect());
    let drain_rx: Vec<Receiver<DtmMsg>> = receivers.iter().map(Receiver::clone).collect();
    let self_halting = matches!(config.termination, Termination::LocalDelta { .. });

    let mut handles: Vec<std::thread::JoinHandle<(u64, u64, u64, bool)>> =
        Vec::with_capacity(n_parts);
    for ((p, mut node), rx) in nodes.into_iter().enumerate().zip(receivers) {
        let mut transport = BaselineChannelTransport {
            senders: senders.clone(),
            in_flight: in_flight.clone(),
        };
        let stop = stop.clone();
        let snapshots = snapshots.clone();
        let in_flight = in_flight.clone();
        let active = active.clone();
        handles.push(std::thread::spawn(move || {
            let step =
                |node: &mut Box<dyn AsyncNode>, transport: &mut BaselineChannelTransport| -> bool {
                    let control = node.step_node(transport);
                    snapshots[p].publish(node.solution(), 1);
                    !control.is_halt()
                };
            let counters = |node: &dyn AsyncNode| {
                (
                    node.solves(),
                    node.messages_sent(),
                    node.flops(),
                    node.capped(),
                )
            };
            active.fetch_add(1, Ordering::AcqRel);
            let go_on = step(&mut node, &mut transport);
            active.fetch_sub(1, Ordering::AcqRel);
            if !go_on {
                return counters(&*node);
            }
            loop {
                if stop.load(Ordering::Relaxed) {
                    return counters(&*node);
                }
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(first) => {
                        active.fetch_add(1, Ordering::AcqRel);
                        in_flight.fetch_sub(1, Ordering::AcqRel);
                        node.absorb_owned(first);
                        while let Ok(more) = rx.try_recv() {
                            in_flight.fetch_sub(1, Ordering::AcqRel);
                            node.absorb_owned(more);
                        }
                        let go_on = step(&mut node, &mut transport);
                        active.fetch_sub(1, Ordering::AcqRel);
                        if !go_on {
                            return counters(&*node);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        // Quiescence kick, as in the threaded DTM executor:
                        // only under LocalDelta, and only when no worker is
                        // mid-step and nothing is in flight — so a merely
                        // delayed message can never feed the halt streak.
                        if self_halting
                            && active.load(Ordering::Acquire) == 0
                            && in_flight.load(Ordering::Acquire) == 0
                        {
                            active.fetch_add(1, Ordering::AcqRel);
                            let go_on = step(&mut node, &mut transport);
                            active.fetch_sub(1, Ordering::AcqRel);
                            if !go_on {
                                return counters(&*node);
                            }
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => return counters(&*node),
                }
            }
        }));
    }
    drop(senders);

    let outcome = supervise_monitor(
        &mut monitor,
        &snapshots,
        &n_locals,
        config.termination,
        config.budget,
        config.poll_interval,
        || {
            for (i, h) in handles.iter().enumerate() {
                if h.is_finished() {
                    while drain_rx[i].try_recv().is_ok() {
                        in_flight.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }
            handles.iter().all(|h| h.is_finished())
        },
    );
    stop.store(true, Ordering::Relaxed);
    let mut counters = Counters {
        solves: 0,
        messages: 0,
        flops: 0,
        coalesced: 0,
        any_capped: false,
    };
    for h in handles {
        // Propagate a worker panic verbatim rather than wrapping it: the
        // panic payload carries the original message and location.
        let (solves, messages, flops, capped) = match h.join() {
            Ok(counters) => counters,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        counters.solves += solves;
        counters.messages += messages;
        counters.flops += flops;
        counters.any_capped |= capped;
    }
    // Convergence under a tolerance rule follows the best observed metric
    // (snapshots can drift past the tolerance while workers keep going).
    let mut report = finish_report(
        BackendKind::Threaded,
        algo.kind(),
        monitor,
        a,
        b,
        config.termination,
        outcome.stop,
        outcome.elapsed_ms,
        counters,
        n_parts,
    );
    if let Some(tol) = metric_tol(config.termination) {
        report.converged = report.converged || outcome.best_metric <= tol;
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Executor 3: the in-process work-stealing pool.
// ---------------------------------------------------------------------------

struct PoolBaselineState {
    node: Box<dyn AsyncNode>,
    drain: Vec<DtmMsg>,
    outbox: Vec<(usize, DtmMsg)>,
}

struct PoolBaselineCell {
    state: Mutex<PoolBaselineState>,
    inbox: Mutex<Vec<DtmMsg>>,
    scheduled: AtomicBool,
    halted: AtomicBool,
}

struct PoolBaselineShared {
    cells: Vec<PoolBaselineCell>,
    snapshots: Vec<SharedBlock>,
    stop: AtomicBool,
    halted_count: AtomicUsize,
}

fn pool_activate(shared: &Arc<PoolBaselineShared>, pool: &Arc<ThreadPool>, p: usize, force: bool) {
    let cell = &shared.cells[p];
    cell.scheduled.store(false, Ordering::Release);
    if shared.stop.load(Ordering::Acquire) || cell.halted.load(Ordering::Acquire) {
        return;
    }
    let mut st = cell.state.lock();
    let PoolBaselineState {
        node,
        drain,
        outbox,
    } = &mut *st;
    std::mem::swap(&mut *cell.inbox.lock(), drain);
    if drain.is_empty() && !force {
        return;
    }
    for msg in drain.drain(..) {
        node.absorb_owned(msg);
    }
    let control = node.step_node(outbox);
    shared.snapshots[p].publish(node.solution(), 1);
    if control.is_halt() {
        cell.halted.store(true, Ordering::Release);
        shared.halted_count.fetch_add(1, Ordering::AcqRel);
    }
    for (dst, msg) in outbox.drain(..) {
        let target = &shared.cells[dst];
        if target.halted.load(Ordering::Acquire) {
            continue;
        }
        target.inbox.lock().push(msg);
        pool_schedule(shared, pool, dst, false);
    }
}

fn pool_schedule(shared: &Arc<PoolBaselineShared>, pool: &Arc<ThreadPool>, p: usize, force: bool) {
    let cell = &shared.cells[p];
    if shared.stop.load(Ordering::Acquire) || cell.halted.load(Ordering::Acquire) {
        return;
    }
    if cell
        .scheduled
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        let shared = shared.clone();
        let pool2 = pool.clone();
        pool.spawn(move || pool_activate(&shared, &pool2, p, force));
    }
}

/// Run a baseline on the in-process work-stealing pool: one task per
/// activation, delay realised by queueing/stealing latency.
///
/// # Errors
/// See [`solve_threaded`]; also fails on pool construction.
pub fn solve_workstealing(
    algo: &BaselineAlgo,
    a: &Csr,
    b: &[f64],
    assignment: &[usize],
    reference: Option<Vec<f64>>,
    config: &BaselineConfig,
) -> Result<SolveReport> {
    algo.validate()?;
    let pt = RowPartition::build(a, b, assignment)?;
    let nodes = algo.build_nodes(&pt, config);
    let n_parts = nodes.len();
    let n_locals: Vec<usize> = nodes.iter().map(|n| n.n_local()).collect();
    let reference = resolve_reference(a, b, reference, config.termination)?;
    let mut monitor = baseline_monitor(
        &pt,
        a,
        b,
        &reference,
        config.termination,
        config.sample_interval,
    );
    let pool = Arc::new(
        ThreadPoolBuilder::new()
            .num_threads(config.num_threads)
            .build()
            .map_err(|e| Error::Parse(format!("thread pool: {e}")))?,
    );
    let shared = Arc::new(PoolBaselineShared {
        snapshots: n_locals.iter().map(|&nl| SharedBlock::new(nl, 1)).collect(),
        cells: nodes
            .into_iter()
            .map(|node| PoolBaselineCell {
                state: Mutex::new(PoolBaselineState {
                    node,
                    drain: Vec::new(),
                    outbox: Vec::new(),
                }),
                inbox: Mutex::new(Vec::new()),
                scheduled: AtomicBool::new(false),
                halted: AtomicBool::new(false),
            })
            .collect(),
        stop: AtomicBool::new(false),
        halted_count: AtomicUsize::new(0),
    });
    for p in 0..n_parts {
        pool_schedule(&shared, &pool, p, true);
    }
    let self_halting = matches!(config.termination, Termination::LocalDelta { .. });
    let outcome = {
        let done = shared.clone();
        let pool2 = pool.clone();
        supervise_monitor(
            &mut monitor,
            &shared.snapshots,
            &n_locals,
            config.termination,
            config.budget,
            config.poll_interval,
            move || {
                if done.halted_count.load(Ordering::Acquire) == n_parts {
                    return true;
                }
                if self_halting && pool2.pending_tasks() == 0 {
                    for p in 0..n_parts {
                        pool_schedule(&done, &pool2, p, true);
                    }
                }
                false
            },
        )
    };
    shared.stop.store(true, Ordering::Release);
    pool.wait_quiescent();
    let mut counters = Counters {
        solves: 0,
        messages: 0,
        flops: 0,
        coalesced: 0,
        any_capped: false,
    };
    for cell in &shared.cells {
        let st = cell.state.lock();
        counters.solves += st.node.solves();
        counters.messages += st.node.messages_sent();
        counters.flops += st.node.flops();
        counters.any_capped |= st.node.capped();
    }
    let mut report = finish_report(
        BackendKind::WorkStealing,
        algo.kind(),
        monitor,
        a,
        b,
        config.termination,
        outcome.stop,
        outcome.elapsed_ms,
        counters,
        n_parts,
    );
    if let Some(tol) = metric_tol(config.termination) {
        report.converged = report.converged || outcome.best_metric <= tol;
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// ExecutorBackend: the baselines as first-class backends over a split.
// ---------------------------------------------------------------------------

/// Derive a non-overlapping row assignment from an EVS split: every
/// global vertex goes to the lowest part holding a copy of it. This is
/// the "same partition" a DTM run uses, collapsed to the raw row
/// partition the point baselines need.
pub fn assignment_of(split: &SplitSystem) -> Vec<usize> {
    let mut owner = vec![usize::MAX; split.original_n];
    for (p, sd) in split.subdomains.iter().enumerate() {
        for &g in &sd.global_of_local {
            if owner[g] == usize::MAX {
                owner[g] = p;
            }
        }
    }
    debug_assert!(owner.iter().all(|&p| p != usize::MAX));
    owner
}

/// Randomized asynchronous Richardson as an [`ExecutorBackend`]: runs on
/// the simulated machine against the split's reconstructed system, on the
/// partition derived by [`assignment_of`].
#[derive(Debug, Clone, Default)]
pub struct RandomizedRichardson {
    /// Algorithm parameters.
    pub params: RichardsonParams,
}

impl ExecutorBackend for RandomizedRichardson {
    type Config = (Topology, BaselineConfig);

    fn kind(&self) -> BackendKind {
        BackendKind::Simulated
    }

    fn solve(
        &self,
        split: &SplitSystem,
        reference: Option<Vec<f64>>,
        (topology, config): &Self::Config,
    ) -> Result<SolveReport> {
        let (a, b) = split.reconstruct();
        solve_sim(
            &BaselineAlgo::RandomizedRichardson(self.params.clone()),
            &a,
            &b,
            &assignment_of(split),
            topology.clone(),
            reference,
            config,
        )
    }
}

/// Hong's D-iteration as an [`ExecutorBackend`] (see
/// [`RandomizedRichardson`] for the mapping).
#[derive(Debug, Clone, Default)]
pub struct DIteration {
    /// Algorithm parameters.
    pub params: DIterationParams,
}

impl ExecutorBackend for DIteration {
    type Config = (Topology, BaselineConfig);

    fn kind(&self) -> BackendKind {
        BackendKind::Simulated
    }

    fn solve(
        &self,
        split: &SplitSystem,
        reference: Option<Vec<f64>>,
        (topology, config): &Self::Config,
    ) -> Result<SolveReport> {
        let (a, b) = split.reconstruct();
        solve_sim(
            &BaselineAlgo::DIteration(self.params.clone()),
            &a,
            &b,
            &assignment_of(split),
            topology.clone(),
            reference,
            config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_simnet::DelayModel;
    use dtm_sparse::generators;

    fn setup(nx: usize, k: usize, seed: u64) -> (Csr, Vec<f64>, Vec<usize>, Topology) {
        let a = generators::grid2d_random(nx, nx, 1.0, seed);
        let b = generators::random_rhs(nx * nx, seed + 1);
        let asg = dtm_graph::partition::grid_strips(nx, nx, k);
        let topo = Topology::ring(k).with_delays(&DelayModel::uniform_ms(5.0, 40.0, seed));
        (a, b, asg, topo)
    }

    fn direct(a: &Csr, b: &[f64]) -> Vec<f64> {
        SparseCholesky::factor_rcm(a).unwrap().solve(b)
    }

    fn sim_config(tol: f64) -> BaselineConfig {
        BaselineConfig {
            termination: Termination::Residual { tol },
            compute: ComputeModel::Fixed(SimDuration::from_micros_f64(200.0)),
            horizon: SimDuration::from_millis_f64(600_000.0),
            ..Default::default()
        }
    }

    #[test]
    fn row_partition_covers_every_offdiagonal_once() {
        let (a, b, asg, _) = setup(6, 3, 11);
        let pt = RowPartition::build(&a, &b, &asg).unwrap();
        let total_entries: usize = pt
            .entries
            .iter()
            .flat_map(|rows| rows.iter().map(Vec::len))
            .sum();
        let offdiag = a.nnz() - a.n_rows();
        assert_eq!(total_entries, offdiag, "each off-diagonal appears once");
        // Value routes and diffusion grouping cover the same coupled pairs.
        for p in 0..pt.n_parts() {
            let route_dsts: Vec<usize> = pt.routes[p].iter().map(|&(d, _)| d).collect();
            let ext_dsts: Vec<usize> = pt.ext_by_part[p].iter().map(|&(d, _)| d).collect();
            for d in &ext_dsts {
                assert!(route_dsts.contains(d), "symmetric coupling {p}↔{d}");
            }
            // Remote diagonals mirror the owner's local diagonal.
            for (slot, &g) in pt.ext_globals[p].iter().enumerate() {
                let q = pt.ext_owner[p][slot];
                let l = pt.ext_local[p][slot];
                assert_eq!(pt.diag[q][l], pt.ext_diag[p][slot]);
                assert_eq!(pt.rows[q][l], g);
            }
        }
    }

    #[test]
    fn richardson_sim_converges_to_direct_solution() {
        let (a, b, asg, topo) = setup(8, 3, 21);
        let exact = direct(&a, &b);
        let algo = BaselineAlgo::RandomizedRichardson(RichardsonParams::default());
        let report = solve_sim(&algo, &a, &b, &asg, topo, None, &sim_config(1e-9)).unwrap();
        assert!(report.converged, "resid {}", report.final_residual);
        assert_eq!(report.algorithm, AlgorithmKind::RandomizedRichardson);
        assert_eq!(report.backend, BackendKind::Simulated);
        assert!(report.final_rms.is_nan(), "residual mode is reference-free");
        for (u, v) in report.solution.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
        assert!(report.total_solves > 0);
        assert!(report.total_messages > 0);
        assert!(report.total_flops > 0);
    }

    #[test]
    fn richardson_polynomial_schedule_converges() {
        let (a, b, asg, topo) = setup(6, 2, 22);
        let exact = direct(&a, &b);
        let algo = BaselineAlgo::RandomizedRichardson(RichardsonParams {
            schedule: RelaxationSchedule::Polynomial {
                omega0: 1.0,
                power: 0.05,
            },
            ..Default::default()
        });
        let report = solve_sim(&algo, &a, &b, &asg, topo, None, &sim_config(1e-8)).unwrap();
        assert!(report.converged, "resid {}", report.final_residual);
        for (u, v) in report.solution.iter().zip(&exact) {
            assert!((u - v).abs() < 1e-5, "{u} vs {v}");
        }
    }

    #[test]
    fn diteration_sim_converges_and_retention_still_converges() {
        let (a, b, asg, topo) = setup(8, 3, 23);
        let exact = direct(&a, &b);
        for retention in [0.0, 0.3] {
            let algo = BaselineAlgo::DIteration(DIterationParams { retention });
            let report =
                solve_sim(&algo, &a, &b, &asg, topo.clone(), None, &sim_config(1e-9)).unwrap();
            assert!(
                report.converged,
                "retention {retention}: resid {}",
                report.final_residual
            );
            assert_eq!(report.algorithm, AlgorithmKind::DIteration);
            for (u, v) in report.solution.iter().zip(&exact) {
                assert!((u - v).abs() < 1e-6, "retention {retention}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn oracle_termination_reports_rms_for_both_algorithms() {
        let (a, b, asg, topo) = setup(6, 2, 24);
        let config = BaselineConfig {
            termination: Termination::OracleRms { tol: 1e-8 },
            compute: ComputeModel::Fixed(SimDuration::from_micros_f64(200.0)),
            horizon: SimDuration::from_millis_f64(600_000.0),
            ..Default::default()
        };
        for algo in [
            BaselineAlgo::RandomizedRichardson(RichardsonParams::default()),
            BaselineAlgo::DIteration(DIterationParams::default()),
        ] {
            let report = solve_sim(&algo, &a, &b, &asg, topo.clone(), None, &config).unwrap();
            assert!(report.converged, "rms {}", report.final_rms);
            assert!(report.final_rms <= 1e-8);
            assert!(report.final_residual.is_finite());
        }
    }

    #[test]
    fn local_delta_self_halt_on_the_simulated_machine() {
        let (a, b, asg, topo) = setup(6, 2, 25);
        let config = BaselineConfig {
            termination: Termination::LocalDelta {
                tol: 1e-11,
                patience: 3,
            },
            compute: ComputeModel::Fixed(SimDuration::from_micros_f64(200.0)),
            horizon: SimDuration::from_millis_f64(600_000.0),
            ..Default::default()
        };
        for algo in [
            BaselineAlgo::RandomizedRichardson(RichardsonParams::default()),
            BaselineAlgo::DIteration(DIterationParams::default()),
        ] {
            let report = solve_sim(&algo, &a, &b, &asg, topo.clone(), None, &config).unwrap();
            assert!(
                matches!(report.stop, StopKind::AllHalted | StopKind::Quiescent),
                "stop {:?}",
                report.stop
            );
            assert!(report.converged);
            assert!(report.final_rms < 1e-6, "rms {}", report.final_rms);
        }
    }

    #[test]
    fn threaded_driver_converges_for_both_algorithms() {
        let (a, b, asg, _) = setup(6, 3, 26);
        let exact = direct(&a, &b);
        let config = BaselineConfig {
            termination: Termination::Residual { tol: 1e-8 },
            budget: Duration::from_secs(60),
            ..Default::default()
        };
        for algo in [
            BaselineAlgo::RandomizedRichardson(RichardsonParams::default()),
            BaselineAlgo::DIteration(DIterationParams::default()),
        ] {
            let report = solve_threaded(&algo, &a, &b, &asg, None, &config).unwrap();
            assert!(report.converged, "resid {}", report.final_residual);
            assert_eq!(report.backend, BackendKind::Threaded);
            for (u, v) in report.solution.iter().zip(&exact) {
                assert!((u - v).abs() < 1e-5, "{u} vs {v}");
            }
            assert!(report.total_flops > 0);
        }
    }

    #[test]
    fn workstealing_driver_converges_for_both_algorithms() {
        let (a, b, asg, _) = setup(6, 3, 27);
        let exact = direct(&a, &b);
        let config = BaselineConfig {
            termination: Termination::Residual { tol: 1e-8 },
            budget: Duration::from_secs(60),
            num_threads: 2,
            ..Default::default()
        };
        for algo in [
            BaselineAlgo::RandomizedRichardson(RichardsonParams::default()),
            BaselineAlgo::DIteration(DIterationParams::default()),
        ] {
            let report = solve_workstealing(&algo, &a, &b, &asg, None, &config).unwrap();
            assert!(report.converged, "resid {}", report.final_residual);
            assert_eq!(report.backend, BackendKind::WorkStealing);
            for (u, v) in report.solution.iter().zip(&exact) {
                assert!((u - v).abs() < 1e-5, "{u} vs {v}");
            }
        }
    }

    #[test]
    fn executor_backend_trait_runs_baselines_over_a_split() {
        use dtm_graph::evs::{split as evs_split, EvsOptions};
        use dtm_graph::{ElectricGraph, PartitionPlan};
        let a = generators::grid2d_random(7, 7, 1.0, 31);
        let b = generators::random_rhs(49, 32);
        let g = ElectricGraph::from_system(a.clone(), b.clone()).unwrap();
        let asg = dtm_graph::partition::grid_strips(7, 7, 2);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        let ss = evs_split(&g, &plan, &EvsOptions::default()).unwrap();
        let topo = Topology::ring(2).with_delays(&DelayModel::fixed_ms(5.0));
        // The derived assignment matches the plan for a non-overlapping
        // strip split restricted to first-owner semantics.
        let derived = assignment_of(&ss);
        assert_eq!(derived.len(), 49);
        let config = sim_config(1e-8);
        let exact = direct(&a, &b);
        for report in [
            RandomizedRichardson::default()
                .solve(&ss, None, &(topo.clone(), config.clone()))
                .unwrap(),
            DIteration::default()
                .solve(&ss, None, &(topo.clone(), config.clone()))
                .unwrap(),
        ] {
            assert!(report.converged, "resid {}", report.final_residual);
            for (u, v) in report.solution.iter().zip(&exact) {
                assert!((u - v).abs() < 1e-5, "{u} vs {v}");
            }
        }
    }

    #[test]
    fn invalid_parameters_and_machines_are_typed_errors() {
        let (a, b, asg, _) = setup(6, 3, 33);
        let no_links = Topology::from_links(3, vec![]);
        let algo = BaselineAlgo::RandomizedRichardson(RichardsonParams::default());
        assert!(solve_sim(&algo, &a, &b, &asg, no_links, None, &sim_config(1e-6)).is_err());
        let wrong_count = Topology::ring(2).with_delays(&DelayModel::fixed_ms(1.0));
        assert!(solve_sim(&algo, &a, &b, &asg, wrong_count, None, &sim_config(1e-6)).is_err());
        let bad_retention = BaselineAlgo::DIteration(DIterationParams { retention: 1.0 });
        let topo = Topology::ring(3).with_delays(&DelayModel::fixed_ms(1.0));
        assert!(solve_sim(
            &bad_retention,
            &a,
            &b,
            &asg,
            topo.clone(),
            None,
            &sim_config(1e-6)
        )
        .is_err());
        let bad_schedule = BaselineAlgo::RandomizedRichardson(RichardsonParams {
            schedule: RelaxationSchedule::Constant(0.0),
            ..Default::default()
        });
        assert!(solve_sim(&bad_schedule, &a, &b, &asg, topo, None, &sim_config(1e-6)).is_err());
        // Wrong assignment length.
        let topo3 = Topology::ring(3).with_delays(&DelayModel::fixed_ms(1.0));
        assert!(solve_sim(&algo, &a, &b, &asg[..10], topo3, None, &sim_config(1e-6)).is_err());
    }

    #[test]
    fn seeded_update_order_is_reproducible() {
        let (a, b, asg, topo) = setup(6, 2, 34);
        let algo = BaselineAlgo::RandomizedRichardson(RichardsonParams {
            seed: 99,
            ..Default::default()
        });
        let r1 = solve_sim(&algo, &a, &b, &asg, topo.clone(), None, &sim_config(1e-8)).unwrap();
        let r2 = solve_sim(&algo, &a, &b, &asg, topo, None, &sim_config(1e-8)).unwrap();
        assert_eq!(r1.total_solves, r2.total_solves);
        assert_eq!(r1.total_messages, r2.total_messages);
        assert_eq!(r1.solution, r2.solution, "deterministic per seed");
    }
}

//! RMS-error-vs-time monitoring, over a block of K right-hand sides.
//!
//! The paper's convergence figures (8, 9, 12, 14) plot the error of the
//! evolving distributed state against the true solution `x* = A⁻¹b`. The
//! monitor maintains the *global* estimate (averaging every split vertex's
//! copies) incrementally — O(|part|·K) per activation, not O(n·K) — and
//! records a `(time, rms)` staircase series. With several right-hand sides
//! in flight the reported scalar is the **worst column's** RMS: a batched
//! solve is only done when its slowest column is done.

use dtm_graph::evs::SplitSystem;
use dtm_simnet::{SimDuration, SimTime};

/// Incremental global-error tracker for a K-column solution block.
#[derive(Debug, Clone)]
pub struct Monitor {
    /// RHS columns tracked.
    k: usize,
    /// Original dimension.
    n: usize,
    /// Reference solutions, column-major (`n·k`).
    reference: Vec<f64>,
    copy_count: Vec<f64>,
    global_of_local: Vec<Vec<usize>>,
    /// Latest local solution block per part (`n_local·k`).
    part_values: Vec<Vec<f64>>,
    /// Per-vertex sum of copies, column-major.
    sum: Vec<f64>,
    /// Per-vertex averaged estimate, column-major.
    est: Vec<f64>,
    /// Running Σ (est − ref)², per column.
    sum_sq_err: Vec<f64>,
    series: Vec<(f64, f64)>,
    sample_interval: SimDuration,
    last_sample: Option<SimTime>,
    /// When the incremental RMS drops below this value, resynchronize the
    /// accumulator exactly before reporting (guards against catastrophic
    /// cancellation near convergence). Zero disables.
    refresh_below: f64,
    /// Updates folded in since the last exact resync.
    updates_since_sync: usize,
}

/// Resync cadence while refresh is armed: the incremental accumulator can
/// also drift *upward* past the stopping tolerance (stalling an oracle run
/// at the horizon), so it is recomputed exactly every this many updates —
/// amortized O(copies-per-part) per activation, unchanged asymptotics.
const RESYNC_EVERY: usize = 256;

impl Monitor {
    /// Create a monitor for `split` against the reference solution
    /// (`x* = A⁻¹ b` of the original system). `sample_interval` throttles
    /// the recorded series (zero = record every activation).
    pub fn new(split: &SplitSystem, reference: Vec<f64>, sample_interval: SimDuration) -> Self {
        Self::new_block(split, &[reference], sample_interval)
    }

    /// Create a monitor for a K-column block solve: one reference solution
    /// per RHS column.
    ///
    /// # Panics
    /// Panics if `references` is empty or columns disagree in length.
    pub fn new_block(
        split: &SplitSystem,
        references: &[Vec<f64>],
        sample_interval: SimDuration,
    ) -> Self {
        Self::from_parts_block(
            split
                .subdomains
                .iter()
                .map(|sd| sd.global_of_local.clone())
                .collect(),
            split.copy_count.clone(),
            references,
            sample_interval,
        )
    }

    /// Create a monitor from raw part→global maps (used by the block-Jacobi
    /// baselines, whose parts don't overlap: `copy_count` all ones).
    pub fn from_parts(
        global_of_local: Vec<Vec<usize>>,
        copy_count: Vec<usize>,
        reference: Vec<f64>,
        sample_interval: SimDuration,
    ) -> Self {
        Self::from_parts_block(global_of_local, copy_count, &[reference], sample_interval)
    }

    /// Block form of [`from_parts`](Self::from_parts).
    ///
    /// # Panics
    /// Panics if `references` is empty or columns disagree in length.
    pub fn from_parts_block(
        global_of_local: Vec<Vec<usize>>,
        copy_count: Vec<usize>,
        references: &[Vec<f64>],
        sample_interval: SimDuration,
    ) -> Self {
        let k = references.len();
        assert!(k > 0, "at least one reference column");
        let n = references[0].len();
        assert_eq!(copy_count.len(), n, "copy_count length");
        let mut reference = Vec::with_capacity(n * k);
        for r in references {
            assert_eq!(r.len(), n, "reference column length");
            reference.extend_from_slice(r);
        }
        let sum_sq_err = references
            .iter()
            .map(|r| r.iter().map(|v| v * v).sum())
            .collect();
        Self {
            k,
            n,
            copy_count: copy_count.iter().map(|&c| c as f64).collect(),
            part_values: global_of_local
                .iter()
                .map(|g2l| vec![0.0; g2l.len() * k])
                .collect(),
            global_of_local,
            sum: vec![0.0; n * k],
            est: vec![0.0; n * k],
            sum_sq_err,
            series: Vec::new(),
            sample_interval,
            last_sample: None,
            refresh_below: 0.0,
            updates_since_sync: 0,
            reference,
        }
    }

    /// RHS columns tracked.
    pub fn n_rhs(&self) -> usize {
        self.k
    }

    /// Enable exact resynchronization whenever the incrementally tracked
    /// RMS falls below `threshold` (typically the solver's tolerance).
    pub fn set_refresh_below(&mut self, threshold: f64) {
        self.refresh_below = threshold;
    }

    /// Recompute the error accumulators exactly and return the exact
    /// worst-column RMS.
    pub fn resync(&mut self) -> f64 {
        let n = self.n;
        for c in 0..self.k {
            self.sum_sq_err[c] = self.est[c * n..(c + 1) * n]
                .iter()
                .zip(&self.reference[c * n..(c + 1) * n])
                .map(|(e, r)| (e - r) * (e - r))
                .sum();
        }
        self.rms()
    }

    /// Fold one part's newly solved local block in (`x` is the part's
    /// `n_local·k` column-major solution); returns the current worst-column
    /// global RMS error.
    pub fn update_part(&mut self, part: usize, time: SimTime, x: &[f64]) -> f64 {
        let g2l = &self.global_of_local[part];
        let nl = g2l.len();
        let n = self.n;
        assert_eq!(x.len(), nl * self.k, "monitor: local block length");
        for c in 0..self.k {
            for (l, &g) in g2l.iter().enumerate() {
                let (li, gi) = (c * nl + l, c * n + g);
                let old = self.part_values[part][li];
                if old == x[li] {
                    continue;
                }
                self.part_values[part][li] = x[li];
                self.sum[gi] += x[li] - old;
                let new_est = self.sum[gi] / self.copy_count[g];
                let e_old = self.est[gi] - self.reference[gi];
                let e_new = new_est - self.reference[gi];
                self.sum_sq_err[c] += e_new * e_new - e_old * e_old;
                self.est[gi] = new_est;
            }
        }
        let mut rms = self.rms();
        self.updates_since_sync += 1;
        if self.refresh_below > 0.0
            && (rms < self.refresh_below || self.updates_since_sync >= RESYNC_EVERY)
        {
            rms = self.resync();
            self.updates_since_sync = 0;
        }
        let due = match self.last_sample {
            None => true,
            Some(t0) => time.since(t0) >= self.sample_interval,
        };
        if due {
            self.series.push((time.as_millis_f64(), rms));
            self.last_sample = Some(time);
        }
        rms
    }

    /// Current worst-column RMS error (incrementally maintained).
    pub fn rms(&self) -> f64 {
        let n = self.n.max(1) as f64;
        self.sum_sq_err
            .iter()
            .map(|ss| (ss.max(0.0) / n).sqrt())
            .fold(0.0, f64::max)
    }

    /// Exactly recomputed worst-column RMS error (clears accumulated FP
    /// drift).
    pub fn rms_exact(&self) -> f64 {
        self.rms_exact_per_rhs().into_iter().fold(0.0, f64::max)
    }

    /// Exactly recomputed RMS error per RHS column.
    pub fn rms_exact_per_rhs(&self) -> Vec<f64> {
        let n = self.n;
        (0..self.k)
            .map(|c| {
                dtm_sparse::vector::rms_error(
                    &self.est[c * n..(c + 1) * n],
                    &self.reference[c * n..(c + 1) * n],
                )
            })
            .collect()
    }

    /// Current global estimate of column 0 (copies averaged).
    pub fn estimate(&self) -> &[f64] {
        self.estimate_col(0)
    }

    /// Current global estimate of one RHS column.
    pub fn estimate_col(&self, col: usize) -> &[f64] {
        &self.est[col * self.n..(col + 1) * self.n]
    }

    /// Current global estimates, one vector per RHS column.
    pub fn estimates(&self) -> Vec<Vec<f64>> {
        (0..self.k).map(|c| self.estimate_col(c).to_vec()).collect()
    }

    /// The recorded `(time_ms, rms)` staircase (worst column).
    pub fn series(&self) -> &[(f64, f64)] {
        &self.series
    }

    /// Consume into the series.
    pub fn into_series(self) -> Vec<(f64, f64)> {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtm_graph::evs::{split, EvsOptions};
    use dtm_graph::{ElectricGraph, PartitionPlan};
    use dtm_sparse::generators;

    fn make() -> (SplitSystem, Vec<f64>) {
        let a = generators::grid2d_laplacian(4, 4);
        let b = generators::random_rhs(16, 1);
        let reference = dtm_sparse::SparseCholesky::factor(&a).unwrap().solve(&b);
        let g = ElectricGraph::from_system(a, b).unwrap();
        let asg = dtm_graph::partition::grid_strips(4, 4, 2);
        let plan = PartitionPlan::from_assignment(&g, &asg).unwrap();
        (split(&g, &plan, &EvsOptions::default()).unwrap(), reference)
    }

    #[test]
    fn starts_at_reference_norm() {
        let (ss, reference) = make();
        let m = Monitor::new(&ss, reference.clone(), SimDuration::ZERO);
        let expect = dtm_sparse::vector::rms_error(&[0.0; 16], &reference);
        assert!((m.rms() - expect).abs() < 1e-12);
    }

    #[test]
    fn feeding_exact_solution_drives_rms_to_zero() {
        let (ss, reference) = make();
        let mut m = Monitor::new(&ss, reference.clone(), SimDuration::ZERO);
        m.set_refresh_below(1e-6);
        for (p, sd) in ss.subdomains.iter().enumerate() {
            let local: Vec<f64> = sd.global_of_local.iter().map(|&g| reference[g]).collect();
            m.update_part(p, SimTime::from_nanos(p as u64), &local);
        }
        assert!(m.rms() < 1e-12, "rms {}", m.rms());
        assert!(m.rms_exact() < 1e-12);
        for (e, r) in m.estimate().iter().zip(&reference) {
            assert!((e - r).abs() < 1e-12);
        }
    }

    #[test]
    fn incremental_matches_exact() {
        let (ss, reference) = make();
        let mut m = Monitor::new(&ss, reference, SimDuration::ZERO);
        // Feed arbitrary values in several rounds; drift must stay tiny.
        for round in 0..5 {
            for (p, sd) in ss.subdomains.iter().enumerate() {
                let local: Vec<f64> = (0..sd.n_local())
                    .map(|l| ((l + round) as f64 * 0.37).sin())
                    .collect();
                m.update_part(p, SimTime::from_nanos((round * 10 + p) as u64), &local);
            }
        }
        assert!((m.rms() - m.rms_exact()).abs() < 1e-10);
    }

    #[test]
    fn sampling_interval_throttles_series() {
        let (ss, reference) = make();
        let mut dense = Monitor::new(&ss, reference.clone(), SimDuration::ZERO);
        let mut sparse = Monitor::new(&ss, reference, SimDuration::from_nanos(100));
        for k in 0..50u64 {
            let local: Vec<f64> = vec![k as f64; ss.subdomains[0].n_local()];
            dense.update_part(0, SimTime::from_nanos(k * 10), &local);
            sparse.update_part(0, SimTime::from_nanos(k * 10), &local);
        }
        assert_eq!(dense.series().len(), 50);
        assert!(sparse.series().len() < 10);
    }

    #[test]
    fn block_monitor_tracks_worst_column() {
        // Two columns: feed column 0 its exact solution, leave column 1 at
        // zero — the reported RMS must be column 1's error, and the
        // per-column report must distinguish them.
        let (ss, reference) = make();
        let ref2: Vec<f64> = reference.iter().map(|v| v * 2.0).collect();
        let refs = vec![reference.clone(), ref2.clone()];
        let mut m = Monitor::new_block(&ss, &refs, SimDuration::ZERO);
        assert_eq!(m.n_rhs(), 2);
        for (p, sd) in ss.subdomains.iter().enumerate() {
            let nl = sd.n_local();
            let mut block = vec![0.0; nl * 2];
            for (l, &g) in sd.global_of_local.iter().enumerate() {
                block[l] = reference[g]; // column 0 exact
            }
            m.update_part(p, SimTime::from_nanos(p as u64), &block);
        }
        let per = m.rms_exact_per_rhs();
        assert!(per[0] < 1e-12, "column 0 exact, got {}", per[0]);
        let expect = dtm_sparse::vector::rms_error(&[0.0; 16], &ref2);
        assert!((per[1] - expect).abs() < 1e-12);
        assert!((m.rms() - per[1]).abs() < 1e-9, "worst column wins");
        // Column estimates address the right slices.
        for (e, r) in m.estimate_col(0).iter().zip(&reference) {
            assert!((e - r).abs() < 1e-12);
        }
        assert_eq!(m.estimates().len(), 2);
    }
}
